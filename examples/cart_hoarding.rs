//! Cart hoarding — OWASP's canonical Denial of Inventory on an e-commerce
//! store, straight from the paper's §II-A: "adding large quantities to a
//! cart or basket without completing the purchase."
//!
//! Demonstrates the attack loop against `fg_inventory::CartStore` and the
//! two cheapest §V mitigations for it: a shorter cart TTL and a per-client
//! hold rate limit.
//!
//! Run with:
//! ```text
//! cargo run --release -p fg-scenario --example cart_hoarding
//! ```

use fg_core::ids::ClientId;
use fg_core::money::Money;
use fg_core::time::{SimDuration, SimTime};
use fg_inventory::cart::{CartStore, Product, ProductId};
use fg_mitigation::rate_limit::KeyedLimiter;

const STOCK: u32 = 200;
const HOARDER: ClientId = ClientId(666);

/// Runs one day of a store under cart hoarding; returns (units sold,
/// hoarder rejections).
fn run_day(ttl_mins: i64, limiter: Option<&mut KeyedLimiter<ClientId>>) -> (u32, u64) {
    let mut store = CartStore::new(SimDuration::from_mins(ttl_mins));
    store.add_product(Product {
        id: ProductId(1),
        name: "Limited-edition console".into(),
        price: Money::from_units(500),
        stock: STOCK,
    });

    let mut limiter = limiter;
    let mut hoarder_rejections = 0u64;
    let mut shopper_id = 1_000u64;

    // One simulated day in 5-minute ticks. The hoarder re-grabs stock every
    // 15 minutes; with a long cart TTL nothing ever frees up between grabs,
    // while a short TTL returns units to shoppers mid-cycle.
    for tick in 0..288u64 {
        let now = SimTime::from_mins(tick * 5);
        store.expire_due(now);

        if tick % 3 == 0 {
            let allowed = match limiter.as_deref_mut() {
                Some(l) => l.try_acquire(HOARDER, now),
                None => true,
            };
            if allowed {
                if let Some(avail) = store.available(ProductId(1)) {
                    if avail > 0 {
                        let _ = store.add_to_cart(HOARDER, ProductId(1), avail, now);
                    }
                }
            } else {
                hoarder_rejections += 1;
            }
            // The hoarder never checks out; its cart lines simply expire.
        }

        // Legitimate shoppers: ~4 per tick, one unit each, immediate checkout.
        for _ in 0..4 {
            shopper_id += 1;
            let shopper = ClientId(shopper_id);
            if store.add_to_cart(shopper, ProductId(1), 1, now).is_ok() {
                store.checkout(shopper, now);
            }
        }
    }
    (store.sold(ProductId(1)).unwrap_or(0), hoarder_rejections)
}

fn main() {
    println!("=== Cart hoarding (OWASP DoI) on a {STOCK}-unit product, one day ===\n");

    let (sold_open, _) = run_day(60, None);
    println!("no mitigation, 60-min cart TTL : {sold_open:>4} units sold");

    let (sold_short_ttl, _) = run_day(10, None);
    println!("shorter 10-min cart TTL        : {sold_short_ttl:>4} units sold");

    let mut limiter: KeyedLimiter<ClientId> =
        KeyedLimiter::new(3.0, 3.0 / SimDuration::from_days(1).as_secs_f64());
    let (sold_limited, rejections) = run_day(60, Some(&mut limiter));
    println!(
        "per-client cart limit (3/day)  : {sold_limited:>4} units sold ({rejections} hoarder rejections)"
    );

    println!(
        "\nThe hoarding loop starves sales; each §V mitigation returns most of \
         the stock to genuine buyers."
    );
    assert!(sold_short_ttl > sold_open);
    assert!(sold_limited > sold_open);
}
