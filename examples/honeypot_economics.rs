//! Honeypot economics: the §V hypothesis that diverting a confirmed
//! attacker into a decoy beats blocking it — the attacker stops rotating,
//! keeps spending, and real inventory stays sellable.
//!
//! Run with:
//! ```text
//! cargo run --release -p fg-scenario --example honeypot_economics
//! ```

use fg_scenario::experiments::{ablation, honeypot_econ};

fn main() {
    println!("=== §V — honeypot vs blocking (same attacker, same stack) ===\n");
    let report = honeypot_econ::run(honeypot_econ::HoneypotConfig::default());
    println!("{report}");

    println!("\n=== §V — full mitigation ablation grid ===\n");
    let grid = ablation::run(ablation::AblationConfig::default());
    println!("{grid}");
}
