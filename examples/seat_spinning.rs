//! Seat Spinning end to end: regenerates the paper's Fig. 1 (the NiP
//! distribution across the average / attack / capped weeks) and the §IV-A
//! arms-race statistics (fingerprint rotation ≈ 5.3 h, persistence at the
//! cap, stop two days before departure).
//!
//! Run with:
//! ```text
//! cargo run --release -p fg-scenario --example seat_spinning
//! ```

use fg_scenario::experiments::{case_a, fig1};
use fg_scenario::report::to_json;

fn main() {
    println!("=== Fig. 1 — Number in Party distribution over three weeks ===\n");
    let fig1_report = fig1::run(fig1::Fig1Config::default());
    println!("{fig1_report}");
    println!(
        "bookings per week: {} / {} / {}\n",
        fig1_report.totals[0], fig1_report.totals[1], fig1_report.totals[2]
    );

    println!("=== §IV-A — the fingerprint-rotation arms race ===\n");
    let case_a_report = case_a::run(case_a::CaseAConfig::default());
    println!("{case_a_report}");

    // Machine-readable artifacts for downstream analysis.
    println!("--- JSON (fig1) ---");
    println!("{}", to_json(&fig1_report));
}
