//! Quickstart: stand up a defended airline application, let legitimate
//! traffic and a Seat Spinning bot loose on it, and inspect what the defence
//! saw — all deterministic, all in-process.
//!
//! Run with:
//! ```text
//! cargo run --release -p fg-scenario --example quickstart
//! ```

use fg_behavior::{LegitConfig, LegitPopulation, SeatSpinner, SeatSpinnerConfig};
use fg_core::ids::{ClientId, FlightId};
use fg_core::time::SimTime;
use fg_inventory::Flight;
use fg_mitigation::policy::PolicyConfig;
use fg_netsim::geo::GeoDatabase;
use fg_scenario::app::{AppConfig, DefendedApp};
use fg_scenario::engine::{share, Simulation};
use fg_scenario::team::TeamConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = 42;
    let geo = GeoDatabase::default_world();

    // 1. The application: one flight under the paper's §V recommended
    //    defensive posture (rate limits, trust gating, CAPTCHA, honeypot).
    let mut app = DefendedApp::new(AppConfig::airline(PolicyConfig::recommended()), seed);
    app.add_flight(Flight::new(FlightId(1), 180, SimTime::from_days(30)));
    app.add_flight(Flight::new(FlightId(2), 5_000, SimTime::from_days(40)));

    // 2. The simulation: a legitimate booking population, a Seat Spinning
    //    bot targeting flight 1, and an hourly security-team review.
    let mut sim = Simulation::new(app, seed);
    sim.with_team(
        TeamConfig::default(),
        fg_core::time::SimDuration::from_hours(2),
        SimTime::from_hours(2),
    );

    let legit_cfg =
        LegitConfig::default_airline(vec![FlightId(1), FlightId(2)], SimTime::from_days(3));
    let (legit, legit_agent) = share(LegitPopulation::new(legit_cfg, geo.clone(), 1_000_000));
    sim.add_agent(legit_agent, SimTime::ZERO);

    let mut rng = StdRng::seed_from_u64(seed);
    let (bot, bot_agent) = share(SeatSpinner::new(
        SeatSpinnerConfig::airline_a(FlightId(1)),
        ClientId(1),
        geo,
        &mut rng,
    ));
    sim.add_agent(bot_agent, SimTime::ZERO);

    // 3. Run three simulated days.
    let app = sim.run(SimTime::from_days(3));

    // 4. Inspect.
    println!("=== FeatureGuard quickstart: 3 simulated days ===\n");
    println!("legitimate population : {:?}\n", legit.borrow().stats());
    println!("seat spinner          : {:?}", bot.borrow().stats());
    println!("seat spinner ledger   : {}\n", bot.borrow().ledger());
    println!("defence decisions     : {:?}", app.policy().counts());
    println!("block rules deployed  : {}", app.policy().rules().len());
    println!("honeypot absorbed     : {:?}", app.honeypot().stats());
    println!(
        "target flight ledger  : {}",
        app.reservations()
            .availability(FlightId(1))
            .expect("flight 1 exists")
    );
    println!("defender ledger       : {}", app.defender_ledger());
}
