//! SMS pumping end to end: regenerates the paper's Table I (per-country SMS
//! surge) and the §IV-C posture comparison (how fast each rate-limiting key
//! detects the attack, and what it costs until then).
//!
//! Run with:
//! ```text
//! cargo run --release -p fg-scenario --example sms_pumping
//! ```

use fg_scenario::experiments::{case_c, table1};

fn main() {
    println!("=== Table I — top countries by SMS surge ===\n");
    let table = table1::run(table1::Table1Config::default());
    println!("{table}");

    println!("\n=== §IV-C — detection latency by rate-limit key ===\n");
    let case_c_report = case_c::run(case_c::CaseCConfig::default());
    println!("{case_c_report}");

    println!(
        "\nPaper anchors: +25% global boarding passes, 42 destination countries, \
         detection only via the path-level limit."
    );
}
