//! Criterion view of the hot-path suite: every `fg_bench::perf` case,
//! grouped exactly as in `BENCH_baseline.json`, so interactive
//! `cargo bench -p fg-bench --bench hotpaths` numbers line up with the
//! headless `fg-bench` harness and the CI gate.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_hotpaths(c: &mut Criterion) {
    // Cases arrive ordered by group, so one pass builds each group once.
    let mut cases = fg_bench::perf::cases();
    let mut idx = 0;
    while idx < cases.len() {
        let group_name = cases[idx].group;
        let mut group = c.benchmark_group(group_name);
        while idx < cases.len() && cases[idx].group == group_name {
            let case = &mut cases[idx];
            group.bench_function(case.name, |b| b.iter(|| case.run_once()));
            idx += 1;
        }
        group.finish();
    }
}

criterion_group!(benches, bench_hotpaths);
criterion_main!(benches);
