//! Regenerates the **§IV-A** arms-race statistics (≈5.3 h rotation, cap
//! persistence, two-day stop margin) and benchmarks the run.

use criterion::{criterion_group, criterion_main, Criterion};
use fg_bench::small;
use fg_scenario::experiments::case_a;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let report = case_a::run(small::case_a());
    println!("{report}");
    if let Some(h) = report.mean_rule_to_rotation_hours {
        assert!((3.0..9.0).contains(&h), "rotation delay {h:.1} h ≈ 5.3 h");
    }
    assert_eq!(report.nip_after_cap, 4, "attack persists at the cap");

    let mut group = c.benchmark_group("casea_rotation");
    group.sample_size(10);
    group.bench_function("arms_race_scenario", |b| {
        b.iter(|| black_box(case_a::run(small::case_a())))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
