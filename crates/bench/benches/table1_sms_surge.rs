//! Regenerates **Table I** (per-country SMS surge) and benchmarks the run.

use criterion::{criterion_group, criterion_main, Criterion};
use fg_bench::small;
use fg_scenario::experiments::table1;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let report = table1::run(small::table1());
    println!("{report}");
    assert!(
        report.rows[0].increase_pct > 10_000.0,
        "premium head surges"
    );
    assert!(report.countries_reached >= 30, "broad country coverage");

    let mut group = c.benchmark_group("table1_sms_surge");
    group.sample_size(10);
    group.bench_function("two_week_scenario", |b| {
        b.iter(|| black_box(table1::run(small::table1())))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
