//! Regenerates the **§IV-C** posture comparison (detection latency per
//! rate-limit key) and benchmarks the run.

use criterion::{criterion_group, criterion_main, Criterion};
use fg_bench::small;
use fg_scenario::experiments::case_c;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let report = case_c::run(small::case_c());
    println!("{report}");
    assert_eq!(report.outcomes[0].detection_latency_hours, None);
    assert!(report.outcomes[2].detection_latency_hours.is_some());

    let mut group = c.benchmark_group("casec_pumping");
    group.sample_size(10);
    group.bench_function("three_posture_scenario", |b| {
        b.iter(|| black_box(case_c::run(small::case_c())))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
