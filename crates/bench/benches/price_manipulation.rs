//! Regenerates the **§II-A** dynamic-pricing manipulation and benchmarks it.

use criterion::{criterion_group, criterion_main, Criterion};
use fg_bench::small;
use fg_scenario::experiments::pricing;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let report = pricing::run(small::pricing());
    println!("{report}");
    assert!(
        report.attacked.ticket_revenue < report.healthy.ticket_revenue,
        "suppression must cost the airline revenue"
    );

    let mut group = c.benchmark_group("price_manipulation");
    group.sample_size(10);
    group.bench_function("two_arm_scenario", |b| {
        b.iter(|| black_box(pricing::run(small::pricing())))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
