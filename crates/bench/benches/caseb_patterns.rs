//! Regenerates the **§IV-B** automated-vs-manual name-pattern detection and
//! benchmarks the run.

use criterion::{criterion_group, criterion_main, Criterion};
use fg_bench::small;
use fg_scenario::experiments::case_b;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let report = case_b::run(small::case_b());
    println!("{report}");
    assert!(report.automated_flagged && report.manual_flagged);
    assert!(report.precision > 0.85, "precision {:.3}", report.precision);

    let mut group = c.benchmark_group("caseb_patterns");
    group.sample_size(10);
    group.bench_function("name_pattern_scenario", |b| {
        b.iter(|| black_box(case_b::run(small::case_b())))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
