//! Regenerates the **§III-B** residential-vs-datacenter proxy ablation and
//! benchmarks it.

use criterion::{criterion_group, criterion_main, Criterion};
use fg_bench::small;
use fg_scenario::experiments::proxies;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let report = proxies::run(small::proxies());
    println!("{report}");
    assert!(
        report.residential.hold_ratio > report.datacenter.hold_ratio,
        "residential exits must outlast datacenter exits"
    );

    let mut group = c.benchmark_group("proxy_ablation");
    group.sample_size(10);
    group.bench_function("two_arm_scenario", |b| {
        b.iter(|| black_box(proxies::run(small::proxies())))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
