//! Regenerates the **§V** honeypot-vs-blocking economics and benchmarks it.

use criterion::{criterion_group, criterion_main, Criterion};
use fg_bench::small;
use fg_scenario::experiments::honeypot_econ;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let report = honeypot_econ::run(small::honeypot());
    println!("{report}");
    assert!(report.honeypot.rotations <= report.blocking.rotations);
    assert!(report.honeypot.absorbed_holds > 0);

    let mut group = c.benchmark_group("honeypot_econ");
    group.sample_size(10);
    group.bench_function("two_arm_scenario", |b| {
        b.iter(|| black_box(honeypot_econ::run(small::honeypot())))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
