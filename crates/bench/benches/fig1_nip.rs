//! Regenerates **Fig. 1** (NiP distribution over three weeks) and benchmarks
//! the full scenario run. The first iteration asserts the figure's shape.

use criterion::{criterion_group, criterion_main, Criterion};
use fg_bench::small;
use fg_scenario::experiments::fig1;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Shape check once, loudly.
    let report = fig1::run(small::fig1());
    println!("{report}");
    assert_eq!(report.attack_bucket, Some(6), "attack week spikes at NiP 6");
    assert_eq!(
        report.capped_bucket,
        Some(4),
        "capped week spikes at the cap"
    );

    let mut group = c.benchmark_group("fig1_nip");
    group.sample_size(10);
    group.bench_function("three_week_scenario", |b| {
        b.iter(|| black_box(fig1::run(small::fig1())))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
