//! Micro-benchmarks of the framework's hot building blocks — the components
//! a production deployment would place on the request path — plus ablation
//! comparisons for the design choices DESIGN.md calls out (keyed vs global
//! limiting, consistency checks vs similarity linking, sessionization cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fg_core::ids::ClientId;
use fg_core::stats::Histogram;
use fg_core::time::{SimDuration, SimTime};
use fg_detection::anomaly::chi_square;
use fg_detection::log::{Endpoint, LogRecord, Method};
use fg_detection::names::gibberish_score;
use fg_detection::session::sessionize;
use fg_detection::VelocityCounter;
use fg_fingerprint::inconsistency::consistency_report;
use fg_fingerprint::population::PopulationModel;
use fg_fingerprint::similarity;
use fg_mitigation::rate_limit::{KeyedLimiter, TokenBucket};
use fg_netsim::ip::IpAddress;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_rate_limiting(c: &mut Criterion) {
    let mut group = c.benchmark_group("rate_limiting");
    group.bench_function("token_bucket_acquire", |b| {
        let mut bucket = TokenBucket::new(1e9, 1e6);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(bucket.try_acquire(SimTime::from_millis(t)))
        })
    });
    for keys in [100u64, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("keyed_limiter", keys),
            &keys,
            |b, &keys| {
                let mut limiter: KeyedLimiter<u64> = KeyedLimiter::new(10.0, 1.0);
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    black_box(limiter.try_acquire(i % keys, SimTime::from_millis(i)))
                })
            },
        );
    }
    group.finish();
}

fn bench_fingerprinting(c: &mut Criterion) {
    let model = PopulationModel::default_web();
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("fingerprinting");
    group.bench_function("sample_human", |b| {
        b.iter(|| black_box(model.sample_human(&mut rng)))
    });
    let fp = model.sample_human(&mut StdRng::seed_from_u64(2));
    group.bench_function("consistency_report", |b| {
        b.iter(|| black_box(consistency_report(&fp)))
    });
    group.bench_function("identity_hash", |b| {
        b.iter(|| black_box(fp.identity_hash()))
    });
    let other = model.sample_human(&mut StdRng::seed_from_u64(3));
    group.bench_function("similarity", |b| {
        b.iter(|| black_box(similarity(&fp, &other)))
    });
    group.finish();
}

fn bench_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("detection");

    // Sessionization over a realistic day of logs.
    let mut rng = StdRng::seed_from_u64(4);
    let records: Vec<LogRecord> = (0..20_000)
        .map(|i| LogRecord {
            at: SimTime::from_secs(rng.gen_range(0..86_400)),
            ip: IpAddress(rng.gen_range(0..500u32)),
            fingerprint: rng.gen_range(0..800),
            truth_client: ClientId(u64::from(i % 997u32)),
            method: if i % 3 == 0 {
                Method::Post
            } else {
                Method::Get
            },
            endpoint: Endpoint::ALL[rng.gen_range(0..Endpoint::ALL.len())],
            ok: true,
        })
        .collect();
    group.bench_function("sessionize_20k_records", |b| {
        b.iter(|| black_box(sessionize(records.clone(), SimDuration::from_mins(30))))
    });

    group.bench_function("gibberish_score", |b| {
        b.iter(|| black_box(gibberish_score("affjgduirex")))
    });

    let mut baseline = Histogram::new(9);
    for (v, n) in [(1, 550u64), (2, 300), (3, 80), (4, 70)] {
        baseline.record_n(v, n);
    }
    let observed = baseline.buckets().to_vec();
    let shares = baseline.shares();
    group.bench_function("chi_square", |b| {
        b.iter(|| black_box(chi_square(&observed, &shares)))
    });

    group.bench_function("velocity_counter", |b| {
        let mut v: VelocityCounter<u64> = VelocityCounter::new(SimDuration::from_hours(1));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(v.record_and_count(i % 256, SimTime::from_millis(i * 10)))
        })
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_rate_limiting,
    bench_fingerprinting,
    bench_detection
);
criterion_main!(benches);
