//! Regenerates the **§III-A** volume-vs-domain rule comparison and
//! benchmarks it.

use criterion::{criterion_group, criterion_main, Criterion};
use fg_bench::small;
use fg_scenario::experiments::detectors;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let report = detectors::run(small::detectors());
    println!("{report}");
    assert!(
        report.domain.recall > report.volume.recall,
        "domain features must beat volume features on low-volume abuse"
    );

    let mut group = c.benchmark_group("detect_microbench");
    group.sample_size(10);
    group.bench_function("rule_comparison", |b| {
        b.iter(|| black_box(detectors::run(small::detectors())))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
