//! Regenerates the **§V** mitigation grid and benchmarks one grid run.

use criterion::{criterion_group, criterion_main, Criterion};
use fg_bench::small;
use fg_scenario::experiments::ablation::{self, AttackKind, Posture};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let report = ablation::run(small::ablation());
    println!("{report}");
    let open = report
        .cell(Posture::Unprotected, AttackKind::SeatSpinning)
        .attack_effect;
    let defended = report
        .cell(Posture::RecommendedHoneypot, AttackKind::SeatSpinning)
        .attack_effect;
    assert!(defended < open, "defence reduces DoI effect");

    let mut group = c.benchmark_group("mit_ablation");
    group.sample_size(10);
    group.bench_function("posture_grid", |b| {
        b.iter(|| black_box(ablation::run(small::ablation())))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
