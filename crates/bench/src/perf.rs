//! The hot-path performance suite: a registry of per-event benchmark cases,
//! a headless measurement loop, machine-readable baselines, and a baseline
//! comparator — the machinery behind `BENCH_baseline.json` and the CI
//! `bench` gate.
//!
//! Three consumers share the case registry returned by [`cases`]:
//!
//! * `benches/hotpaths.rs` registers every case as a Criterion benchmark
//!   (`cargo bench -p fg-bench --bench hotpaths`), one Criterion group per
//!   [`PerfCase::group`];
//! * the `fg-bench` binary measures every case with [`measure`] and emits a
//!   [`Baseline`] as JSON (`--bench-json`), or re-measures and diffs against
//!   a committed baseline (`--compare`);
//! * a unit test runs every case body once so the suite cannot rot.
//!
//! # Cross-machine comparability
//!
//! Absolute ns/op is machine-dependent, so every suite run includes a
//! `calibration/splitmix64_chain` case: a fixed pure-CPU workload whose cost
//! tracks the host's single-core speed. [`compare`] divides each metric's
//! current/baseline ratio by the calibration ratio, cancelling uniform
//! machine-speed differences to first order. Genuine code regressions remain
//! visible because they move one metric without moving the calibration case.

use fg_core::rng::splitmix64;
use fg_core::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// The metric name [`compare`] uses to normalize machine speed.
pub const CALIBRATION_METRIC: &str = "calibration/splitmix64_chain";

/// Schema version stamped into every [`Baseline`].
pub const BASELINE_SCHEMA: u32 = 1;

/// One benchmark case: a named closure performing a single hot-path
/// operation per call over pre-built state.
pub struct PerfCase {
    /// Group label (a Criterion group and the metric-name prefix).
    pub group: &'static str,
    /// Case label within the group.
    pub name: &'static str,
    /// Application-level events one op processes (for events/sec reporting).
    pub units_per_op: f64,
    /// `false` exempts the metric from the compare gate (see
    /// [`PerfCase::report_only`]).
    pub gated: bool,
    op: Box<dyn FnMut()>,
}

impl PerfCase {
    /// Builds a case whose op processes one event.
    pub fn new(group: &'static str, name: &'static str, op: impl FnMut() + 'static) -> Self {
        PerfCase {
            group,
            name,
            units_per_op: 1.0,
            gated: true,
            op: Box::new(op),
        }
    }

    /// Builds a case whose op processes `units` events (e.g. a whole
    /// simulated scenario per op).
    pub fn with_units(
        group: &'static str,
        name: &'static str,
        units: f64,
        op: impl FnMut() + 'static,
    ) -> Self {
        PerfCase {
            group,
            name,
            units_per_op: units,
            gated: true,
            op: Box::new(op),
        }
    }

    /// Marks the case report-only: it is measured, printed, and blessed into
    /// baselines, but never fails the compare gate. For cases that spawn
    /// more threads than a host may have cores — oversubscribed wall-clock
    /// time is scheduler noise, and calibration against a single-threaded
    /// yardstick cannot cancel a core-count difference between the blessing
    /// host and the CI runner.
    pub fn report_only(mut self) -> Self {
        self.gated = false;
        self
    }

    /// The metric name, `group/name`.
    pub fn full_name(&self) -> String {
        format!("{}/{}", self.group, self.name)
    }

    /// Runs the op once (smoke tests, Criterion registration).
    pub fn run_once(&mut self) {
        (self.op)();
    }

    /// Runs the op `n` times, returning the elapsed wall-clock time.
    pub fn run_timed(&mut self, n: u64) -> std::time::Duration {
        let start = Instant::now();
        for _ in 0..n {
            (self.op)();
        }
        start.elapsed()
    }
}

/// Measurement tuning for [`measure`].
#[derive(Clone, Copy, Debug)]
pub struct MeasureOpts {
    /// Wall-clock budget per timed sample, in nanoseconds.
    pub sample_budget_ns: u64,
    /// Timed samples taken; the reported value is their minimum (timing
    /// noise — preemption, interrupts, frequency dips — is strictly
    /// additive, so the smallest sample is the least-contaminated estimate
    /// of the true cost and is stable across measurement profiles).
    pub samples: u32,
    /// Warm-up budget before calibration, in nanoseconds.
    pub warmup_ns: u64,
}

impl Default for MeasureOpts {
    fn default() -> Self {
        MeasureOpts {
            sample_budget_ns: 40_000_000,
            samples: 5,
            warmup_ns: 10_000_000,
        }
    }
}

impl MeasureOpts {
    /// A fast profile for CI smoke runs and tests. The sample windows are
    /// 4x shorter than the full profile's, so each is more exposed to a
    /// stray preemption — taking more of them keeps the minimum clean.
    pub fn quick() -> Self {
        MeasureOpts {
            sample_budget_ns: 10_000_000,
            samples: 8,
            warmup_ns: 2_000_000,
        }
    }
}

/// One measured metric: mean cost per op and the derived rates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenchMetric {
    /// Minimum-of-samples mean nanoseconds per operation.
    pub ns_per_op: f64,
    /// Operations per second (`1e9 / ns_per_op`).
    pub ops_per_sec: f64,
    /// Application events per second (`ops_per_sec * units_per_op`).
    pub events_per_sec: f64,
    /// `false` exempts this metric from the compare gate (report-only;
    /// see [`PerfCase::report_only`]). Omitted from baselines when `true`,
    /// so pre-existing baseline files parse unchanged.
    pub gated: bool,
}

// Serialization is by hand (not derived) for the optional `gated` field:
// it is absent in schema-1 baselines blessed before report-only cases
// existed, and stays omitted when `true` so those files round-trip.
impl Serialize for BenchMetric {
    fn to_value(&self) -> serde::value::Value {
        let mut fields = vec![
            ("ns_per_op".to_owned(), self.ns_per_op.to_value()),
            ("ops_per_sec".to_owned(), self.ops_per_sec.to_value()),
            ("events_per_sec".to_owned(), self.events_per_sec.to_value()),
        ];
        if !self.gated {
            fields.push(("gated".to_owned(), serde::value::Value::Bool(false)));
        }
        serde::value::Value::Object(fields)
    }
}

impl Deserialize for BenchMetric {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::value::DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| serde::value::DeError::mismatch("object", v))?;
        Ok(BenchMetric {
            ns_per_op: Deserialize::from_value(serde::value::get_field(fields, "ns_per_op")?)?,
            ops_per_sec: Deserialize::from_value(serde::value::get_field(fields, "ops_per_sec")?)?,
            events_per_sec: Deserialize::from_value(serde::value::get_field(
                fields,
                "events_per_sec",
            )?)?,
            gated: match fields.iter().find(|(k, _)| k == "gated") {
                Some((_, flag)) => Deserialize::from_value(flag)?,
                None => true,
            },
        })
    }
}

impl BenchMetric {
    /// Builds a metric from a per-op cost and the case's units.
    pub fn from_ns(ns_per_op: f64, units_per_op: f64) -> Self {
        let ns = ns_per_op.max(f64::MIN_POSITIVE);
        BenchMetric {
            ns_per_op: ns,
            ops_per_sec: 1e9 / ns,
            events_per_sec: 1e9 / ns * units_per_op,
            gated: true,
        }
    }
}

/// Measures one case: warm-up, iteration-count calibration, then
/// `opts.samples` timed samples whose median is reported.
pub fn measure(case: &mut PerfCase, opts: &MeasureOpts) -> BenchMetric {
    // Warm-up and per-op estimation in one pass.
    let warmup_start = Instant::now();
    let mut warmup_ops = 0u64;
    while warmup_start.elapsed().as_nanos() < u128::from(opts.warmup_ns) && warmup_ops < 10_000 {
        case.run_once();
        warmup_ops += 1;
    }
    let per_op_estimate =
        (warmup_start.elapsed().as_nanos() as f64 / warmup_ops.max(1) as f64).max(1.0);

    let iters_per_sample =
        ((opts.sample_budget_ns as f64 / per_op_estimate) as u64).clamp(1, 10_000_000);

    let best = (0..opts.samples.max(1))
        .map(|_| {
            let elapsed = case.run_timed(iters_per_sample);
            elapsed.as_nanos() as f64 / iters_per_sample as f64
        })
        .fold(f64::INFINITY, f64::min);
    let mut metric = BenchMetric::from_ns(best.max(0.001), case.units_per_op);
    metric.gated = case.gated;
    metric
}

/// A machine-readable performance baseline: metric name → [`BenchMetric`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Baseline {
    /// Schema version ([`BASELINE_SCHEMA`]).
    pub schema: u32,
    /// Free-form provenance note (host class, commit, profile).
    pub note: String,
    /// Every measured metric, keyed by `group/name`.
    pub metrics: BTreeMap<String, BenchMetric>,
}

impl Baseline {
    /// Serializes to pretty JSON (the `BENCH_*.json` format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("baseline serializes")
    }

    /// Parses a `BENCH_*.json` document.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let parsed: Baseline = serde_json::from_str(text).map_err(|e| e.to_string())?;
        if parsed.schema != BASELINE_SCHEMA {
            return Err(format!(
                "unsupported baseline schema {} (expected {BASELINE_SCHEMA})",
                parsed.schema
            ));
        }
        Ok(parsed)
    }

    /// The calibration case's ns/op, if present.
    pub fn calibration_ns(&self) -> Option<f64> {
        self.metrics.get(CALIBRATION_METRIC).map(|m| m.ns_per_op)
    }
}

/// Runs every case whose `group/name` contains `filter` (all when `None`)
/// and collects the results into a [`Baseline`].
pub fn run_suite(filter: Option<&str>, opts: &MeasureOpts, note: &str) -> Baseline {
    let mut metrics = BTreeMap::new();
    for mut case in cases() {
        let full = case.full_name();
        if let Some(f) = filter {
            // The calibration case always runs: compare() needs it.
            if !full.contains(f) && full != CALIBRATION_METRIC {
                continue;
            }
        }
        metrics.insert(full, measure(&mut case, opts));
    }
    Baseline {
        schema: BASELINE_SCHEMA,
        note: note.to_owned(),
        metrics,
    }
}

/// Comparator policy.
#[derive(Clone, Copy, Debug)]
pub struct CompareOpts {
    /// Allowed fractional slowdown after normalization (0.5 = +50%).
    pub tolerance: f64,
    /// Normalized slowdown ratio that fails regardless of tolerance.
    pub hard_fail_ratio: f64,
    /// Divide ratios by the calibration ratio to cancel machine speed.
    pub normalize: bool,
}

impl Default for CompareOpts {
    fn default() -> Self {
        CompareOpts {
            tolerance: 0.5,
            hard_fail_ratio: 10.0,
            normalize: true,
        }
    }
}

/// Verdict for one metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricStatus {
    /// Within tolerance.
    Ok,
    /// Faster than the baseline by more than the tolerance — consider
    /// re-blessing the baseline.
    Improved,
    /// Slower than tolerance allows.
    Regressed,
    /// Slower by at least the hard-fail ratio.
    HardRegressed,
    /// Present in the current run but absent from the baseline (new case).
    New,
    /// Present in the baseline but absent from the current run.
    Missing,
    /// Measured but exempt from the gate ([`PerfCase::report_only`]): the
    /// ratio is shown for the record and never fails the run.
    ReportOnly,
}

impl MetricStatus {
    /// `true` when this status fails the gate.
    pub fn is_failure(self) -> bool {
        matches!(
            self,
            MetricStatus::Regressed | MetricStatus::HardRegressed | MetricStatus::Missing
        )
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            MetricStatus::Ok => "ok",
            MetricStatus::Improved => "improved",
            MetricStatus::Regressed => "REGRESSED",
            MetricStatus::HardRegressed => "HARD-REGRESSED",
            MetricStatus::New => "new",
            MetricStatus::Missing => "MISSING",
            MetricStatus::ReportOnly => "report-only",
        }
    }
}

/// One metric's comparison row.
#[derive(Clone, Debug)]
pub struct MetricComparison {
    /// Metric name (`group/name`).
    pub metric: String,
    /// Baseline ns/op, when present.
    pub baseline_ns: Option<f64>,
    /// Current ns/op, when present.
    pub current_ns: Option<f64>,
    /// Normalized current/baseline ratio (>1 = slower), when both present.
    pub ratio: Option<f64>,
    /// Verdict.
    pub status: MetricStatus,
}

/// The full comparison: one row per metric union, plus the policy used.
#[derive(Clone, Debug)]
pub struct ComparisonReport {
    /// Per-metric rows, sorted by metric name.
    pub rows: Vec<MetricComparison>,
    /// The machine-speed scale applied (current/baseline calibration ratio;
    /// 1.0 when normalization is off or the calibration case is missing).
    pub scale: f64,
    /// The tolerance used.
    pub tolerance: f64,
    /// The hard-fail ratio used.
    pub hard_fail_ratio: f64,
}

impl ComparisonReport {
    /// `true` when any row fails the gate.
    pub fn failed(&self) -> bool {
        self.rows.iter().any(|r| r.status.is_failure())
    }

    /// Rows that fail the gate.
    pub fn failures(&self) -> Vec<&MetricComparison> {
        self.rows.iter().filter(|r| r.status.is_failure()).collect()
    }

    /// Renders a fixed-width text table plus a verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .rows
            .iter()
            .map(|r| r.metric.len())
            .max()
            .unwrap_or(6)
            .max(6);
        out.push_str(&format!(
            "{:<width$}  {:>12}  {:>12}  {:>8}  status\n",
            "metric", "baseline", "current", "ratio"
        ));
        let fmt_ns = |ns: Option<f64>| match ns {
            Some(v) => format_ns(v),
            None => "-".to_owned(),
        };
        for row in &self.rows {
            let ratio = match row.ratio {
                Some(r) => format!("{r:.2}x"),
                None => "-".to_owned(),
            };
            out.push_str(&format!(
                "{:<width$}  {:>12}  {:>12}  {:>8}  {}\n",
                row.metric,
                fmt_ns(row.baseline_ns),
                fmt_ns(row.current_ns),
                ratio,
                row.status.label()
            ));
        }
        out.push_str(&format!(
            "scale={:.3} tolerance=+{:.0}% hard-fail={:.0}x verdict={}\n",
            self.scale,
            self.tolerance * 100.0,
            self.hard_fail_ratio,
            if self.failed() { "FAIL" } else { "PASS" }
        ));
        out
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Diffs `current` against `baseline` under `opts`.
pub fn compare(baseline: &Baseline, current: &Baseline, opts: &CompareOpts) -> ComparisonReport {
    let scale = if opts.normalize {
        match (baseline.calibration_ns(), current.calibration_ns()) {
            (Some(b), Some(c)) if b > 0.0 && c > 0.0 => c / b,
            _ => 1.0,
        }
    } else {
        1.0
    };

    let mut names: Vec<&String> = baseline.metrics.keys().collect();
    for k in current.metrics.keys() {
        if !baseline.metrics.contains_key(k) {
            names.push(k);
        }
    }
    names.sort();

    let rows = names
        .into_iter()
        .map(|name| {
            let base = baseline.metrics.get(name).map(|m| m.ns_per_op);
            let cur = current.metrics.get(name).map(|m| m.ns_per_op);
            // Either side marking the metric report-only exempts it, so a
            // newly-exempted case does not fail against an older baseline.
            let report_only = baseline.metrics.get(name).is_some_and(|m| !m.gated)
                || current.metrics.get(name).is_some_and(|m| !m.gated);
            let (ratio, status) = match (base, cur) {
                (Some(b), Some(c)) => {
                    let ratio = (c / b) / scale;
                    let status = if name == CALIBRATION_METRIC {
                        // The yardstick itself is never gated: after
                        // normalization its ratio is 1.0 by construction.
                        MetricStatus::Ok
                    } else if report_only {
                        MetricStatus::ReportOnly
                    } else if ratio >= opts.hard_fail_ratio {
                        MetricStatus::HardRegressed
                    } else if ratio > 1.0 + opts.tolerance {
                        MetricStatus::Regressed
                    } else if ratio < 1.0 / (1.0 + opts.tolerance) {
                        MetricStatus::Improved
                    } else {
                        MetricStatus::Ok
                    };
                    (Some(ratio), status)
                }
                (Some(_), None) => (None, MetricStatus::Missing),
                (None, Some(_)) => (None, MetricStatus::New),
                (None, None) => unreachable!("name came from one of the maps"),
            };
            MetricComparison {
                metric: name.clone(),
                baseline_ns: base,
                current_ns: cur,
                ratio,
                status,
            }
        })
        .collect();

    ComparisonReport {
        rows,
        scale,
        tolerance: opts.tolerance,
        hard_fail_ratio: opts.hard_fail_ratio,
    }
}

// ---------------------------------------------------------------------------
// The case registry.
// ---------------------------------------------------------------------------

/// Builds every hot-path case. Each call constructs fresh state, so cases
/// are independent across runs and consumers.
pub fn cases() -> Vec<PerfCase> {
    use fg_core::ids::BookingRef;
    use fg_detection::log::{Endpoint, LogRecord, Method};
    use fg_detection::names::{gibberish_score, levenshtein, misspelling_clusters};
    use fg_detection::session::sessionize;
    use fg_detection::{DetectionEngine, SessionFeatures, VelocityCounter};
    use fg_fingerprint::similarity::{linking_score, similarity_with, SimilarityWeights};
    use fg_fingerprint::PopulationModel;
    use fg_mitigation::gating::TrustTier;
    use fg_mitigation::policy::{PolicyConfig, PolicyEngine, RequestContext};
    use fg_mitigation::rate_limit::{KeyedLimiter, TokenBucket};
    use fg_netsim::ip::IpAddress;
    use fg_scenario::experiments::case_a;
    use fg_telemetry::{
        AuditRecord, AuditTrail, Counter, Histogram, MetricsRegistry, SignalScore,
        TelemetrySnapshot,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut cases = Vec::new();

    // --- calibration: a fixed pure-CPU workload for machine-speed scaling.
    cases.push(PerfCase::with_units(
        "calibration",
        "splitmix64_chain",
        256.0,
        {
            let mut acc = 0x5EED_u64;
            move || {
                for _ in 0..256 {
                    acc = splitmix64(acc);
                }
                std::hint::black_box(acc);
            }
        },
    ));

    // --- detection_engine: per-event scoring, the product's inline path.
    let model = PopulationModel::default_web();
    {
        let mut rng = StdRng::seed_from_u64(11);
        let fps: Vec<_> = (0..64).map(|_| model.sample_human(&mut rng)).collect();
        let mut engine = DetectionEngine::with_defaults();
        let mut t = 0u64;
        cases.push(PerfCase::new("detection_engine", "assess_clean_search", {
            move || {
                t += 1;
                let fp = &fps[(t % 64) as usize];
                // Bounded 4096-IP key space: the engine's per-key state
                // plateaus within warmup, so the measured cost is stationary
                // across measurement profiles (quick vs full).
                let ip = IpAddress::from_octets(10, 1, ((t >> 8) & 0x0f) as u8, t as u8);
                std::hint::black_box(engine.assess(
                    SimTime::from_millis(t * 50),
                    ip,
                    fp,
                    Endpoint::Search,
                    None,
                ));
            }
        }));
    }
    {
        let mut rng = StdRng::seed_from_u64(12);
        let fps: Vec<_> = (0..64).map(|_| model.sample_human(&mut rng)).collect();
        let mut engine = DetectionEngine::with_defaults();
        let mut t = 0u64;
        cases.push(PerfCase::new("detection_engine", "assess_sms_booking", {
            move || {
                t += 1;
                let fp = &fps[(t % 64) as usize];
                // Bounded key space, same reasoning as assess_clean_search.
                let ip = IpAddress::from_octets(10, 2, ((t >> 8) & 0x0f) as u8, t as u8);
                std::hint::black_box(engine.assess(
                    SimTime::from_millis(t * 50),
                    ip,
                    fp,
                    Endpoint::BoardingPass,
                    Some(BookingRef::from_index(t % 512)),
                ));
            }
        }));
    }

    // --- feature_extraction: behavioural features over a realistic session.
    {
        let records: Vec<LogRecord> = (0..50)
            .map(|i| {
                let endpoint = match i % 7 {
                    0 => Endpoint::Home,
                    1 | 2 => Endpoint::Search,
                    3 => Endpoint::Detail,
                    4 => Endpoint::Hold,
                    5 => Endpoint::Pay,
                    _ => Endpoint::Account,
                };
                LogRecord {
                    at: SimTime::from_secs(i * 7 + (i % 3)),
                    ip: IpAddress::from_octets(10, 0, 0, 1),
                    fingerprint: 1,
                    truth_client: fg_core::ids::ClientId(1),
                    method: if i % 3 == 0 {
                        Method::Post
                    } else {
                        Method::Get
                    },
                    endpoint,
                    ok: i % 11 != 0,
                }
            })
            .collect();
        let mut sessions = sessionize(records, SimDuration::from_hours(1));
        let session = sessions.remove(0);
        cases.push(PerfCase::with_units(
            "feature_extraction",
            "session_features_50req",
            50.0,
            move || {
                std::hint::black_box(SessionFeatures::extract(&session));
            },
        ));
    }

    // --- name_heuristics: the §IV-B per-passenger string analysis.
    {
        let names = [
            "Elisabeth",
            "Martinez",
            "affjgdui",
            "Kowalski",
            "ddfjrei",
            "Thompson",
            "xkcdqwrt",
            "Dubois",
        ];
        let mut i = 0usize;
        cases.push(PerfCase::new("name_heuristics", "gibberish_score", {
            move || {
                i = (i + 1) % names.len();
                std::hint::black_box(gibberish_score(names[i]));
            }
        }));
    }
    {
        let pairs = [
            ("MARTINEZ", "MARTINZE"),
            ("KOWALSKI", "KOWALSKY"),
            ("THOMPSON", "THOMSON"),
            ("GARCIA", "GARCLA"),
        ];
        let mut i = 0usize;
        cases.push(PerfCase::new("name_heuristics", "levenshtein_pair", {
            move || {
                i = (i + 1) % pairs.len();
                let (a, b) = pairs[i];
                std::hint::black_box(levenshtein(a, b));
            }
        }));
    }
    {
        // 200 surnames: 40 stems × 5 variants (typos + repeats), the shape
        // NameAbuseAnalyzer::report feeds misspelling_clusters.
        let stems = [
            "GARCIA", "SMITH", "JONES", "MARTIN", "BERNARD", "DUBOIS", "THOMAS", "ROBERT",
            "RICHARD", "PETIT", "DURAND", "LEROY", "MOREAU", "SIMON", "LAURENT", "LEFEVRE",
            "MICHEL", "DAVID", "BERTRAND", "ROUX", "VINCENT", "FOURNIER", "MOREL", "GIRARD",
            "ANDRE", "LEFEBVRE", "MERCIER", "DUPONT", "LAMBERT", "BONNET", "FRANCOIS", "MARTINEZ",
            "LEGRAND", "GARNIER", "FAURE", "ROUSSEAU", "BLANC", "GUERIN", "MULLER", "HENRY",
        ];
        let pool: Vec<String> = (0..200)
            .map(|i| {
                let stem = stems[i % stems.len()];
                match i / stems.len() {
                    0 | 1 => stem.to_owned(),
                    2 => format!("{stem}E"),
                    3 => {
                        // Swap the last two letters — the adjacent-typo class.
                        let mut b = stem.as_bytes().to_vec();
                        let n = b.len();
                        b.swap(n - 1, n - 2);
                        String::from_utf8(b).expect("ascii")
                    }
                    _ => stem.chars().rev().collect(),
                }
            })
            .collect();
        let refs: Vec<&'static str> = pool
            .into_iter()
            .map(|s| &*Box::leak(s.into_boxed_str()))
            .collect();
        cases.push(PerfCase::with_units(
            "name_heuristics",
            "misspelling_clusters_200",
            200.0,
            move || {
                std::hint::black_box(misspelling_clusters(&refs, 2));
            },
        ));
    }

    // --- fingerprint: pairwise similarity scoring.
    {
        let mut rng = StdRng::seed_from_u64(21);
        let a = model.sample_human(&mut rng);
        let mut b = a.clone();
        b.browser_version += 1;
        b.language = "fr-FR".to_owned();
        let w = SimilarityWeights::default();
        cases.push(PerfCase::new("fingerprint", "similarity_with", {
            move || {
                std::hint::black_box(similarity_with(&a, &b, &w));
            }
        }));
    }
    {
        let mut rng = StdRng::seed_from_u64(22);
        let a = model.sample_human(&mut rng);
        let b = model.sample_human(&mut rng);
        cases.push(PerfCase::new("fingerprint", "linking_score", {
            move || {
                std::hint::black_box(linking_score(&a, &b));
            }
        }));
    }

    // --- population_linking: the defender's rotation-linking scan — score a
    // probe against every live identity and keep the best match.
    {
        let mut rng = StdRng::seed_from_u64(23);
        let pool: Vec<_> = (0..256).map(|_| model.sample_human(&mut rng)).collect();
        let probe = model.sample_human(&mut rng);
        cases.push(PerfCase::with_units(
            "population_linking",
            "best_match_256",
            256.0,
            move || {
                let best = pool
                    .iter()
                    .map(|fp| linking_score(&probe, fp))
                    .fold(0.0f64, f64::max);
                std::hint::black_box(best);
            },
        ));
    }
    {
        let model = model.clone();
        let mut rng = StdRng::seed_from_u64(24);
        cases.push(PerfCase::new("population_linking", "sample_human", {
            move || {
                std::hint::black_box(model.sample_human(&mut rng));
            }
        }));
    }

    // --- rate_limiting: keyed limiter under identity churn.
    {
        let mut limiter: KeyedLimiter<u64> = KeyedLimiter::new(10.0, 1.0);
        let mut t = 0u64;
        cases.push(PerfCase::new("rate_limiting", "keyed_limiter_churn", {
            move || {
                t += 1;
                let key = splitmix64(t / 8) % 4096;
                std::hint::black_box(limiter.try_acquire(key, SimTime::from_millis(t)));
                if t.is_multiple_of(65_536) {
                    limiter.evict_idle(SimTime::from_millis(t));
                }
            }
        }));
    }
    {
        let mut bucket = TokenBucket::new(1e9, 1e6);
        let mut t = 0u64;
        cases.push(PerfCase::new("rate_limiting", "token_bucket", {
            move || {
                t += 1;
                std::hint::black_box(bucket.try_acquire(SimTime::from_millis(t)));
            }
        }));
    }

    // --- velocity: the sliding-window counters behind every velocity signal.
    {
        let mut counter: VelocityCounter<u64> = VelocityCounter::new(SimDuration::from_hours(1));
        let mut t = 0u64;
        cases.push(PerfCase::new("velocity", "record_and_count_churn", {
            move || {
                t += 1;
                let key = splitmix64(t / 16) % 2048;
                std::hint::black_box(counter.record_and_count(key, SimTime::from_millis(t * 20)));
                if t.is_multiple_of(65_536) {
                    counter.compact(SimTime::from_millis(t * 20));
                }
            }
        }));
    }

    // --- policy: the mitigation decision per request.
    {
        let mut rng = StdRng::seed_from_u64(31);
        let fp = model.sample_human(&mut rng);
        let clean = fg_detection::engine::Verdict::clean();
        let mut engine = PolicyEngine::new(PolicyConfig::recommended());
        let mut t = 0u64;
        cases.push(PerfCase::new("policy", "decide_recommended_mixed", {
            move || {
                t += 1;
                let endpoint = match t % 4 {
                    0 => Endpoint::Search,
                    1 => Endpoint::Detail,
                    2 => Endpoint::Hold,
                    _ => Endpoint::SendOtp,
                };
                let ctx = RequestContext {
                    now: SimTime::from_millis(t * 200),
                    ip: IpAddress::from_octets(10, 3, (t >> 8) as u8, t as u8),
                    fingerprint: &fp,
                    endpoint,
                    booking: Some(BookingRef::from_index(t % 1024)),
                    tier: TrustTier::Verified,
                    client_key: splitmix64(t / 8) % 4096,
                    verdict: &clean,
                };
                std::hint::black_box(engine.decide(&ctx));
                if t.is_multiple_of(65_536) {
                    engine.evict_idle(SimTime::from_millis(t * 200));
                }
            }
        }));
    }

    // --- telemetry: per-event observability overhead.
    {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("fg_bench_events_total");
        cases.push(PerfCase::new("telemetry", "counter_inc", {
            move || {
                counter.inc();
            }
        }));
    }
    {
        let histogram = Histogram::new(&[0.001, 0.01, 0.1, 1.0, 10.0]);
        let mut t = 0u64;
        cases.push(PerfCase::new("telemetry", "histogram_record", {
            move || {
                t += 1;
                histogram.record((t % 1000) as f64 / 100.0);
            }
        }));
    }
    {
        let mut trail = AuditTrail::new(1024);
        let mut t = 0u64;
        cases.push(PerfCase::new("telemetry", "audit_push_evicting", {
            move || {
                t += 1;
                trail.push(AuditRecord {
                    at: SimTime::from_millis(t),
                    endpoint: "/booking/hold".to_owned(),
                    client: t,
                    fingerprint: splitmix64(t),
                    ip: "10.0.0.1".to_owned(),
                    score: 0.2,
                    signals: vec![SignalScore {
                        signal: "ip-velocity(4)".to_owned(),
                        weight: 0.16,
                    }],
                    decision: "allow".to_owned(),
                    reasons: Vec::new(),
                    trace_id: fg_core::hash::trace_id(t, t),
                });
            }
        }));
    }

    // --- tracing: the span pipeline. The disabled check is the cost every
    // gate() pays when tracing is off — it must price at a single relaxed
    // atomic load — and the build+submit case is the full enabled path.
    {
        let telemetry = fg_telemetry::Telemetry::new();
        cases.push(PerfCase::new("tracing", "enabled_check_off", {
            move || {
                std::hint::black_box(telemetry.tracing_enabled());
            }
        }));
    }
    {
        use fg_telemetry::{RequestTrace, Telemetry, TraceConfig};
        let telemetry = Telemetry::new();
        telemetry.enable_tracing(TraceConfig::default());
        let mut t = 0u64;
        cases.push(PerfCase::new("tracing", "span_build_submit", {
            move || {
                t += 1;
                let id = fg_core::hash::trace_id(t % 64, t);
                let mut trace =
                    RequestTrace::new(id, t % 64, "/booking/hold", SimTime::from_millis(t));
                let detect = trace.stage("detect.assess");
                trace.attr(detect, "score", "0.42");
                let decide = trace.stage("policy.decide");
                trace.attr(decide, "decision", "block");
                trace.finish("block");
                telemetry.record_trace(trace);
            }
        }));
    }

    // --- sentinel: the online alerting hot paths — one observe pass over a
    // registry shaped like a live run (dozens of per-country SMS counters, a
    // NiP histogram, spend gauges), and the report-time incident correlation
    // over a populated audit ring.
    {
        use fg_sentinel::{
            AlertPolicy, AlertRule, DriftBaseline, DriftStat, MetricSelector, Sentinel,
        };

        let registry = MetricsRegistry::new();
        let countries = [
            "UZ", "IR", "KG", "JO", "NG", "KH", "SG", "GB", "CN", "TH", "FR", "DE", "IT", "ES",
            "PL", "RO", "NL", "BE", "GR", "PT", "CZ", "HU", "SE", "AT", "CH", "BG", "DK", "FI",
            "SK", "NO", "IE", "HR", "LT", "SI", "LV", "EE", "US", "CA", "BR", "IN",
        ];
        let counters: Vec<Counter> = countries
            .iter()
            .map(|c| registry.counter_with("fg_sms_sent_total", &[("country", c)]))
            .collect();
        let holds = registry.counter_with("fg_requests_total", &[("endpoint", "/booking/hold")]);
        let nip = registry.histogram(
            "fg_nip_hold",
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
        );
        let spend = registry.gauge("fg_sms_owner_cost_units");
        let policy = AlertPolicy::named("bench")
            .rule(AlertRule::surge(
                "sms-country-surge",
                MetricSelector::any("fg_sms_sent_total"),
                SimDuration::from_hours(1),
                SimDuration::from_days(7),
                8.0,
                10.0,
            ))
            .rule(AlertRule::burn_rate(
                "sms-burn-rate",
                SimDuration::from_hours(6),
                SimDuration::from_days(7),
                3.0,
                2.0,
            ))
            .rule(AlertRule::threshold(
                "hold-volume",
                MetricSelector::exact("fg_requests_total", &[("endpoint", "/booking/hold")]),
                SimDuration::from_hours(1),
                2_000.0,
            ))
            .rule(AlertRule::drift(
                "nip-drift",
                MetricSelector::exact("fg_nip_hold", &[]),
                SimDuration::from_hours(6),
                40,
                DriftBaseline::Static(vec![52.0, 30.0, 7.0, 5.0, 2.5, 1.5, 1.0, 0.6, 0.4]),
                DriftStat::ChiSquarePerSample,
                0.5,
            ));
        let mut sentinel = Sentinel::new(policy, &registry);
        let mut t = 0u64;
        // 43 rule-series evaluations per observe: 40 country surges, the
        // spend burn rate, the hold threshold, and the NiP drift.
        cases.push(PerfCase::with_units("sentinel", "rule_eval", 43.0, {
            move || {
                t += 1;
                // One 5-minute housekeeping tick's worth of traffic.
                for (i, c) in counters.iter().enumerate() {
                    c.add(1 + (splitmix64(t * 41 + i as u64) % 3));
                }
                holds.add(2);
                nip.record(1.0 + (splitmix64(t) % 4) as f64);
                spend.add(0.2);
                let snap = registry.snapshot();
                sentinel.observe(SimTime::from_mins(t * 5), &snap);
                std::hint::black_box(sentinel.events().len());
            }
        }));
    }
    {
        use fg_sentinel::engine::{AlertEvent, AlertTransition};
        use fg_sentinel::{incident, AlertPolicy};

        let policy = AlertPolicy::named("bench").campaign(SimTime::from_hours(1), 7);
        let events: Vec<AlertEvent> = (0..200)
            .map(|i| AlertEvent {
                at: SimTime::from_mins(60 + i * 3),
                rule: "sms-country-surge".to_owned(),
                series: format!("fg_sms_sent_total{{country=\"C{}\"}}", i % 40),
                event: match i % 3 {
                    0 => AlertTransition::Pending,
                    1 => AlertTransition::Firing,
                    _ => AlertTransition::Resolved,
                },
                value: 12.0,
                threshold: 8.0,
            })
            .collect();
        let mut trail = AuditTrail::new(4096);
        for i in 0..2_000u64 {
            // Every 8th record is the attacker, rotating fingerprints every
            // 50 of its requests; the rest is legitimate background.
            let attacker = i.is_multiple_of(8);
            trail.push(AuditRecord {
                at: SimTime::from_secs(i * 30),
                endpoint: "/booking/hold".to_owned(),
                client: if attacker { 7 } else { 1_000 + i % 64 },
                fingerprint: if attacker {
                    splitmix64(i / 50)
                } else {
                    splitmix64(1_000_000 + i)
                },
                ip: "10.0.0.1".to_owned(),
                score: 0.3,
                signals: Vec::new(),
                decision: if attacker && i > 1_000 {
                    "challenge".to_owned()
                } else {
                    "allow".to_owned()
                },
                reasons: Vec::new(),
                trace_id: fg_core::hash::trace_id(if attacker { 7 } else { 1_000 + i % 64 }, i),
            });
        }
        let audit = trail.snapshot();
        let end = SimTime::from_days(1);
        cases.push(PerfCase::with_units(
            "sentinel",
            "incident_correlation",
            2_200.0,
            move || {
                std::hint::black_box(incident::build(&policy, &events, &audit, end, 0, None));
            },
        ));
    }

    // --- serve: the serving layer's per-request costs — the HTTP parse and
    // the full in-process decide-handler round trip (JSON in → decision
    // core → JSON out), i.e. everything `POST /v1/decide` does above the
    // socket and below it respectively.
    {
        use fg_serve::http::{read_request, Limits};
        let workload = fg_scenario::workload::generate(&fg_scenario::workload::WorkloadConfig {
            seed: 42,
            horizon_hours: 1,
            arrivals_per_day: 200.0,
            seat_spinner: true,
            sms_pumper: false,
        });
        let raw: Vec<Vec<u8>> = workload
            .requests
            .iter()
            .take(64)
            .map(|r| {
                let body = serde_json::to_string(r).expect("request serializes");
                let mut bytes = format!(
                    "POST /v1/decide HTTP/1.1\r\nHost: bench\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
                    body.len()
                )
                .into_bytes();
                bytes.extend_from_slice(body.as_bytes());
                bytes
            })
            .collect();
        let limits = Limits::default();
        let mut t = 0usize;
        cases.push(PerfCase::new("serve", "request_parse", {
            move || {
                t += 1;
                let bytes = &raw[t % raw.len()];
                std::hint::black_box(
                    read_request(&mut std::io::Cursor::new(bytes.as_slice()), &limits)
                        .expect("canned request parses"),
                );
            }
        }));

        use fg_serve::{DecisionService, ServeConfig};
        let service = DecisionService::new(
            &ServeConfig::recommended(),
            fg_telemetry::Telemetry::shared(),
        );
        let requests: Vec<fg_scenario::workload::WireRequest> =
            workload.requests.into_iter().take(256).collect();
        let mut t = 0u64;
        cases.push(PerfCase::new("serve", "decide_handler", {
            move || {
                t += 1;
                let mut req = requests[t as usize % requests.len()].clone();
                // Monotone session clock: housekeeping ticks fire on cadence
                // and per-key windows stay bounded over long measurements.
                req.now_ms = t * 50;
                let body = serde_json::to_string(&req).expect("request serializes");
                let wire: fg_scenario::workload::WireRequest =
                    serde_json::from_str(&body).expect("request parses");
                let decision = service.decide(&wire);
                std::hint::black_box(
                    serde_json::to_string(&decision).expect("decision serializes"),
                );
            }
        }));
    }

    // --- simulation: end-to-end defended-app throughput on a small Case A.
    let case_a_config = case_a::CaseAConfig {
        departure_day: 3,
        cap_day: 1,
        arrivals_per_day: 40.0,
        ..case_a::CaseAConfig::default()
    };
    // Count the requests one run serves so the metric reads as application
    // events/sec, not runs/sec (the scaling cases below reuse the count).
    let case_a_requests: u64 = {
        let (_, telemetry) = case_a::run_with_telemetry(case_a_config.clone());
        telemetry
            .snapshot()
            .metrics
            .counters
            .iter()
            .filter(|c| c.name.name == "fg_requests_total")
            .map(|c| c.value)
            .sum()
    };
    {
        let config = case_a_config.clone();
        cases.push(PerfCase::with_units(
            "simulation",
            "case_a_smoke_run",
            case_a_requests.max(1) as f64,
            move || {
                std::hint::black_box(case_a::run(config.clone()));
            },
        ));
    }

    // --- scaling: the shard-per-core structures under real threads. Each
    // worker owns one shard (`shards_mut` hands out disjoint `&mut`), so
    // there is no synchronization on the hot path; events/sec across these
    // cases against their single-thread peers is the scaling curve. On an
    // N-core host the thread cases approach N× the flat ones; on one core
    // they price the sharding + spawn overhead instead. The thread cases are
    // report-only in the compare gate: their wall-clock depends on how many
    // cores the runner has, which single-threaded calibration cannot cancel.
    {
        use std::thread;
        const SHARDS: usize = 4;
        const KEYS: u64 = 4096;
        let mut limiter: KeyedLimiter<u64> = KeyedLimiter::with_shards(10.0, 1.0, SHARDS);
        // Pre-partition the key space so each worker touches only its shard.
        let mut keys: Vec<Vec<u64>> = vec![Vec::new(); SHARDS];
        for k in 0..KEYS {
            keys[limiter.shard_index(&k)].push(k);
        }
        let mut t = 0u64;
        cases.push(
            PerfCase::with_units("scaling", "limiter_churn_4t", KEYS as f64, move || {
                t += 1;
                let now = SimTime::from_millis(t);
                let round = t;
                thread::scope(|s| {
                    // fg-analyze: allow(shard-discipline): disjoint per-worker hand-out — each thread owns exactly one shard
                    for (shard, keys) in limiter.shards_mut().iter_mut().zip(&keys) {
                        s.spawn(move || {
                            for &k in keys {
                                std::hint::black_box(shard.try_acquire(k, now));
                            }
                            if round.is_multiple_of(64) {
                                shard.evict_idle(now);
                            }
                        });
                    }
                });
            })
            .report_only(),
        );
    }
    {
        use std::thread;
        const SHARDS: usize = 4;
        const KEYS: u64 = 2048;
        let mut counter: VelocityCounter<u64> =
            VelocityCounter::with_shards(SimDuration::from_hours(1), SHARDS);
        let mut keys: Vec<Vec<u64>> = vec![Vec::new(); SHARDS];
        for k in 0..KEYS {
            keys[counter.shard_index(&k)].push(k);
        }
        let mut t = 0u64;
        cases.push(
            PerfCase::with_units("scaling", "velocity_fanin_4t", KEYS as f64, move || {
                t += 1;
                let now = SimTime::from_millis(t * 20);
                let round = t;
                thread::scope(|s| {
                    // fg-analyze: allow(shard-discipline): disjoint per-worker hand-out — each thread owns exactly one shard
                    for (shard, keys) in counter.shards_mut().iter_mut().zip(&keys) {
                        s.spawn(move || {
                            for &k in keys {
                                shard.record(k, now);
                            }
                            if round.is_multiple_of(64) {
                                shard.compact(now);
                            }
                        });
                    }
                });
            })
            .report_only(),
        );
    }
    for (name, threads) in [
        ("case_a_smoke_2t", 2usize),
        ("case_a_smoke_4t", 4),
        ("case_a_smoke_8t", 8),
    ] {
        use std::thread;
        let config = case_a_config.clone();
        cases.push(
            PerfCase::with_units(
                "scaling",
                name,
                (threads as u64 * case_a_requests.max(1)) as f64,
                move || {
                    // N independent defended apps — the service-style deployment
                    // shape — with their telemetry merged at the end exactly as
                    // the harness merges replicates.
                    thread::scope(|s| {
                        let workers: Vec<_> = (0..threads)
                            .map(|_| {
                                let config = config.clone();
                                s.spawn(move || {
                                    let (_, telemetry) = case_a::run_with_telemetry(config);
                                    telemetry.snapshot()
                                })
                            })
                            .collect();
                        let merged = TelemetrySnapshot::merged(
                            workers.into_iter().map(|w| w.join().expect("worker")),
                        );
                        std::hint::black_box(merged);
                    });
                },
            )
            .report_only(),
        );
    }
    {
        // Residency at fleet scale: a limiter tracking 10M keys (100k under
        // debug assertions, so tests stay quick). Population is lazy — only
        // a run that actually measures this case pays for materializing it.
        const TRACKED: u64 = if cfg!(debug_assertions) {
            100_000
        } else {
            10_000_000
        };
        let mut limiter: Option<KeyedLimiter<u64>> = None;
        let mut t = 0u64;
        cases.push(PerfCase::new("scaling", "sharded_keys_10m", {
            move || {
                let limiter = limiter.get_or_insert_with(|| {
                    let mut l = KeyedLimiter::with_shards(1e6, 1e-3, 8);
                    for k in 0..TRACKED {
                        l.try_acquire(k, SimTime::ZERO);
                    }
                    l
                });
                t += 1;
                let key = splitmix64(t) % TRACKED;
                std::hint::black_box(limiter.try_acquire(key, SimTime::from_millis(t)));
            }
        }));
    }

    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(ns: f64) -> BenchMetric {
        BenchMetric::from_ns(ns, 1.0)
    }

    fn baseline_of(pairs: &[(&str, f64)]) -> Baseline {
        Baseline {
            schema: BASELINE_SCHEMA,
            note: "test".to_owned(),
            metrics: pairs
                .iter()
                .map(|(k, v)| ((*k).to_owned(), metric(*v)))
                .collect(),
        }
    }

    #[test]
    fn every_case_runs_and_groups_cover_the_hot_paths() {
        let mut cases = cases();
        let mut groups = std::collections::BTreeSet::new();
        let mut names = std::collections::BTreeSet::new();
        for case in &mut cases {
            case.run_once();
            groups.insert(case.group);
            assert!(
                names.insert(case.full_name()),
                "duplicate case {}",
                case.full_name()
            );
            assert!(case.units_per_op >= 1.0);
        }
        for expected in [
            "calibration",
            "detection_engine",
            "feature_extraction",
            "name_heuristics",
            "fingerprint",
            "population_linking",
            "rate_limiting",
            "velocity",
            "policy",
            "telemetry",
            "tracing",
            "sentinel",
            "serve",
            "simulation",
            "scaling",
        ] {
            assert!(groups.contains(expected), "missing group {expected}");
        }
        assert!(groups.len() >= 8, "suite has {} groups", groups.len());
    }

    #[test]
    fn measure_produces_consistent_rates() {
        let mut case = PerfCase::with_units("t", "noop", 4.0, || {
            std::hint::black_box(1 + 1);
        });
        let opts = MeasureOpts {
            sample_budget_ns: 200_000,
            samples: 3,
            warmup_ns: 50_000,
        };
        let m = measure(&mut case, &opts);
        assert!(m.ns_per_op > 0.0);
        assert!((m.ops_per_sec - 1e9 / m.ns_per_op).abs() / m.ops_per_sec < 1e-9);
        assert!((m.events_per_sec - m.ops_per_sec * 4.0).abs() / m.events_per_sec < 1e-9);
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let b = baseline_of(&[(CALIBRATION_METRIC, 100.0), ("g/fast", 50.0)]);
        let parsed = Baseline::from_json(&b.to_json()).expect("parses");
        assert_eq!(parsed, b);
    }

    #[test]
    fn baseline_rejects_unknown_schema() {
        let mut b = baseline_of(&[("g/x", 1.0)]);
        b.schema = 999;
        let err = Baseline::from_json(&b.to_json()).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn comparator_detects_regression() {
        let base = baseline_of(&[(CALIBRATION_METRIC, 100.0), ("g/hot", 100.0)]);
        let cur = baseline_of(&[(CALIBRATION_METRIC, 100.0), ("g/hot", 200.0)]);
        let report = compare(&base, &cur, &CompareOpts::default());
        let row = report.rows.iter().find(|r| r.metric == "g/hot").unwrap();
        assert_eq!(row.status, MetricStatus::Regressed);
        assert!(report.failed());
        assert!(report.render().contains("FAIL"));
    }

    #[test]
    fn comparator_hard_fails_order_of_magnitude() {
        let base = baseline_of(&[(CALIBRATION_METRIC, 100.0), ("g/hot", 100.0)]);
        let cur = baseline_of(&[(CALIBRATION_METRIC, 100.0), ("g/hot", 1500.0)]);
        let report = compare(&base, &cur, &CompareOpts::default());
        let row = report.rows.iter().find(|r| r.metric == "g/hot").unwrap();
        assert_eq!(row.status, MetricStatus::HardRegressed);
    }

    #[test]
    fn comparator_accepts_improvement() {
        let base = baseline_of(&[(CALIBRATION_METRIC, 100.0), ("g/hot", 100.0)]);
        let cur = baseline_of(&[(CALIBRATION_METRIC, 100.0), ("g/hot", 20.0)]);
        let report = compare(&base, &cur, &CompareOpts::default());
        let row = report.rows.iter().find(|r| r.metric == "g/hot").unwrap();
        assert_eq!(row.status, MetricStatus::Improved);
        assert!(!report.failed(), "improvements pass the gate");
    }

    #[test]
    fn report_only_metrics_never_fail_the_gate() {
        let base = baseline_of(&[(CALIBRATION_METRIC, 100.0), ("scaling/8t", 100.0)]);
        let mut cur = baseline_of(&[(CALIBRATION_METRIC, 100.0), ("scaling/8t", 5000.0)]);
        cur.metrics.get_mut("scaling/8t").unwrap().gated = false;
        let report = compare(&base, &cur, &CompareOpts::default());
        let row = report
            .rows
            .iter()
            .find(|r| r.metric == "scaling/8t")
            .unwrap();
        assert_eq!(row.status, MetricStatus::ReportOnly);
        assert!(
            row.ratio.is_some(),
            "the ratio is still shown for the record"
        );
        assert!(!report.failed(), "a 50x swing on an ungated case passes");

        // The exemption is honoured from the baseline side too, and the flag
        // round-trips (omitted when true, so old baselines parse unchanged).
        let parsed = Baseline::from_json(&cur.to_json()).expect("parses");
        assert_eq!(parsed, cur);
        assert!(!cur.to_json().contains("\"gated\": true"));
        let flipped = compare(&cur, &base, &CompareOpts::default());
        let row = flipped
            .rows
            .iter()
            .find(|r| r.metric == "scaling/8t")
            .unwrap();
        assert_eq!(row.status, MetricStatus::ReportOnly);
    }

    #[test]
    fn thread_scaling_cases_are_report_only() {
        for case in cases() {
            let expect_gated = !(case.group == "scaling" && case.name.ends_with('t'));
            assert_eq!(
                case.gated,
                expect_gated,
                "{}: thread-count cases must be report-only, the rest gated",
                case.full_name()
            );
        }
    }

    #[test]
    fn comparator_flags_missing_and_new_metrics() {
        let base = baseline_of(&[(CALIBRATION_METRIC, 100.0), ("g/old", 100.0)]);
        let cur = baseline_of(&[(CALIBRATION_METRIC, 100.0), ("g/new", 100.0)]);
        let report = compare(&base, &cur, &CompareOpts::default());
        let old = report.rows.iter().find(|r| r.metric == "g/old").unwrap();
        let new = report.rows.iter().find(|r| r.metric == "g/new").unwrap();
        assert_eq!(old.status, MetricStatus::Missing);
        assert_eq!(new.status, MetricStatus::New);
        assert!(report.failed(), "a vanished metric fails the gate");
        assert!(!new.status.is_failure(), "a new metric alone passes");
    }

    #[test]
    fn normalization_cancels_uniform_machine_slowdown() {
        let base = baseline_of(&[(CALIBRATION_METRIC, 100.0), ("g/hot", 100.0)]);
        // Same code on a 3x slower machine: everything scales together.
        let cur = baseline_of(&[(CALIBRATION_METRIC, 300.0), ("g/hot", 300.0)]);
        let report = compare(&base, &cur, &CompareOpts::default());
        assert!((report.scale - 3.0).abs() < 1e-12);
        let row = report.rows.iter().find(|r| r.metric == "g/hot").unwrap();
        assert_eq!(row.status, MetricStatus::Ok);
        assert!(!report.failed());

        // Without normalization the same run fails.
        let unnormalized = compare(
            &base,
            &cur,
            &CompareOpts {
                normalize: false,
                ..CompareOpts::default()
            },
        );
        assert!(unnormalized.failed());
    }

    #[test]
    fn run_suite_quick_always_includes_calibration() {
        let b = run_suite(Some("name_heuristics"), &MeasureOpts::quick(), "test");
        assert!(b.metrics.contains_key(CALIBRATION_METRIC));
        assert!(b.metrics.keys().any(|k| k.starts_with("name_heuristics/")));
        assert!(b.metrics.len() < cases().len(), "filter narrowed the suite");
    }
}
