//! `fg-bench` — headless hot-path benchmark harness and baseline gate.
//!
//! ```text
//! fg-bench --list                                  # show every case
//! fg-bench --bench-json BENCH_current.json         # measure, write baseline JSON
//! fg-bench --compare BENCH_baseline.json           # measure, diff, exit 1 on fail
//! fg-bench --compare BENCH_baseline.json --tolerance 0.5 --hard-fail 10
//! fg-bench --filter name_heuristics --bench-json - # subset, JSON to stdout
//! fg-bench --quick --compare BENCH_baseline.json   # CI profile (shorter samples)
//! fg-bench --bless                                 # re-measure, overwrite BENCH_baseline.json
//! ```
//!
//! `--compare` normalizes ratios by the `calibration/splitmix64_chain` case
//! so shared-runner speed differences don't trip the gate; pass
//! `--no-normalize` to gate on raw ns/op instead.

use fg_bench::perf::{self, Baseline, CompareOpts, MeasureOpts};
use std::process::ExitCode;

/// Where `--bless` writes: the committed baseline the CI gate compares
/// against. Run it from the repository root, full (non-`--quick`) profile,
/// on a quiet machine, and commit the diff deliberately.
const BLESS_PATH: &str = "BENCH_baseline.json";

struct Args {
    bench_json: Option<String>,
    compare: Option<String>,
    serve_json: Option<String>,
    tolerance: f64,
    hard_fail: f64,
    normalize: bool,
    filter: Option<String>,
    quick: bool,
    list: bool,
    note: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        bench_json: None,
        compare: None,
        serve_json: None,
        tolerance: 0.5,
        hard_fail: 10.0,
        normalize: true,
        filter: None,
        quick: false,
        list: false,
        note: "fg-bench".to_owned(),
    };
    let mut bless = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match arg.as_str() {
            "--bench-json" => {
                if bless {
                    return Err("--bless conflicts with --bench-json (it implies one)".into());
                }
                args.bench_json = Some(value("--bench-json")?);
            }
            "--compare" => args.compare = Some(value("--compare")?),
            "--serve-json" => args.serve_json = Some(value("--serve-json")?),
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?
            }
            "--hard-fail" => {
                args.hard_fail = value("--hard-fail")?
                    .parse()
                    .map_err(|e| format!("--hard-fail: {e}"))?
            }
            "--no-normalize" => args.normalize = false,
            "--bless" => {
                if args.bench_json.is_some() {
                    return Err("--bless conflicts with --bench-json (it implies one)".into());
                }
                bless = true;
                args.bench_json = Some(BLESS_PATH.to_owned());
                args.note = "blessed baseline (fg-bench --bless)".to_owned();
            }
            "--filter" => args.filter = Some(value("--filter")?),
            "--note" => args.note = value("--note")?,
            "--quick" => args.quick = true,
            "--list" => args.list = true,
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other} (see --help)")),
        }
    }
    if !args.list
        && args.bench_json.is_none()
        && args.compare.is_none()
        && args.serve_json.is_none()
    {
        return Err(
            "nothing to do: pass --list, --bench-json <path>, --compare <path>, \
             or --serve-json <path>"
                .into(),
        );
    }
    Ok(args)
}

fn print_help() {
    println!(
        "fg-bench: headless hot-path benchmarks and baseline regression gate\n\n\
         USAGE:\n  fg-bench [OPTIONS]\n\n\
         OPTIONS:\n\
         \x20 --list                 list every benchmark case and exit\n\
         \x20 --bench-json <PATH>    measure the suite, write baseline JSON ('-' = stdout)\n\
         \x20 --compare <PATH>       measure the suite, diff against a committed baseline;\n\
         \x20                        exits 1 when the gate fails\n\
         \x20 --tolerance <FRAC>     allowed fractional slowdown (default 0.5 = +50%)\n\
         \x20 --hard-fail <RATIO>    normalized slowdown that always fails (default 10)\n\
         \x20 --no-normalize         gate on raw ns/op, skip calibration scaling\n\
         \x20 --bless                re-measure and overwrite BENCH_baseline.json in the\n\
         \x20                        current directory (run from the repo root; full\n\
         \x20                        profile; commit the diff deliberately)\n\
         \x20 --serve-json <PATH>    print a wire-bench summary from a BENCH_serve.json\n\
         \x20                        (fg-loadgen output); report-only, never fails the run\n\
         \x20 --filter <SUBSTR>      only run cases whose group/name contains SUBSTR\n\
         \x20 --note <TEXT>          provenance note stored in the emitted JSON\n\
         \x20 --quick                short CI measurement profile\n"
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fg-bench: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list {
        for case in perf::cases() {
            println!("{:<44} units/op={}", case.full_name(), case.units_per_op);
        }
        return ExitCode::SUCCESS;
    }

    // Report-only wire-bench summary: shown alongside (or without) the
    // hot-path gate, never part of the verdict — wire latency is a property
    // of the runner, not the code, until a serve baseline is blessed.
    if let Some(path) = &args.serve_json {
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| fg_serve::LoadReport::from_json(&text))
        {
            Ok(report) => {
                println!(
                    "serve wire bench ({path}, report-only): seed={} conns={} \
                     {:.1}s {:.1} decisions/s p50={:.2}ms p99={:.2}ms p999={:.2}ms \
                     sent={} ok={} transport_errors={}",
                    report.seed,
                    report.connections,
                    report.duration_secs,
                    report.decisions_per_sec,
                    report.latency_ms.p50,
                    report.latency_ms.p99,
                    report.latency_ms.p999,
                    report.sent,
                    report.ok,
                    report.transport_errors,
                );
            }
            Err(e) => eprintln!("fg-bench: --serve-json {path}: {e} (report-only, ignoring)"),
        }
    }
    if args.bench_json.is_none() && args.compare.is_none() {
        return ExitCode::SUCCESS;
    }

    let opts = if args.quick {
        MeasureOpts::quick()
    } else {
        MeasureOpts::default()
    };
    eprintln!(
        "fg-bench: measuring{}{} ...",
        if args.quick { " (quick profile)" } else { "" },
        match &args.filter {
            Some(f) => format!(", filter '{f}'"),
            None => String::new(),
        }
    );
    let current = perf::run_suite(args.filter.as_deref(), &opts, &args.note);
    for (name, metric) in &current.metrics {
        eprintln!(
            "  {name:<44} {:>12.1} ns/op  {:>14.0} events/s",
            metric.ns_per_op, metric.events_per_sec
        );
    }

    if let Some(path) = &args.bench_json {
        let json = current.to_json();
        if path == "-" {
            println!("{json}");
        } else if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("fg-bench: writing {path}: {e}");
            return ExitCode::FAILURE;
        } else {
            eprintln!("fg-bench: wrote {path}");
        }
    }

    if let Some(path) = &args.compare {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fg-bench: reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match Baseline::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("fg-bench: parsing {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let report = perf::compare(
            &baseline,
            &current,
            &CompareOpts {
                tolerance: args.tolerance,
                hard_fail_ratio: args.hard_fail,
                normalize: args.normalize,
            },
        );
        print!("{}", report.render());
        if report.failed() {
            eprintln!("fg-bench: perf gate FAILED against {path}");
            return ExitCode::FAILURE;
        }
        eprintln!("fg-bench: perf gate passed against {path}");
    }

    ExitCode::SUCCESS
}
