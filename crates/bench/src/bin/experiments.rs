//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p fg-bench --bin experiments            # everything
//! cargo run --release -p fg-bench --bin experiments fig1      # one artifact
//! ```
//!
//! Artifacts: the human-readable report on stdout, plus a JSON file per
//! experiment under `results/`.

use fg_scenario::experiments::*;
use fg_scenario::report::to_json;
use std::fs;
use std::path::Path;

fn write_artifact(name: &str, json: String) {
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        match fs::write(&path, json) {
            Ok(()) => println!("[artifact] {}", path.display()),
            Err(e) => eprintln!("[artifact] failed to write {}: {e}", path.display()),
        }
    }
}

fn run_one(name: &str) -> bool {
    match name {
        "fig1" => {
            let r = fig1::run(fig1::Fig1Config::default());
            println!("{r}");
            write_artifact("fig1", to_json(&r));
        }
        "table1" => {
            let r = table1::run(table1::Table1Config::default());
            println!("{r}");
            write_artifact("table1", to_json(&r));
        }
        "case_a" => {
            let r = case_a::run(case_a::CaseAConfig::default());
            println!("{r}");
            write_artifact("case_a", to_json(&r));
        }
        "case_b" => {
            let r = case_b::run(case_b::CaseBConfig::default());
            println!("{r}");
            write_artifact("case_b", to_json(&r));
        }
        "case_c" => {
            let r = case_c::run(case_c::CaseCConfig::default());
            println!("{r}");
            write_artifact("case_c", to_json(&r));
        }
        "ablation" => {
            let r = ablation::run(ablation::AblationConfig::default());
            println!("{r}");
            write_artifact("ablation", to_json(&r));
        }
        "honeypot" => {
            let r = honeypot_econ::run(honeypot_econ::HoneypotConfig::default());
            println!("{r}");
            write_artifact("honeypot", to_json(&r));
        }
        "detectors" => {
            let r = detectors::run(detectors::DetectorsConfig::default());
            println!("{r}");
            write_artifact("detectors", to_json(&r));
        }
        "pricing" => {
            let r = pricing::run(pricing::PricingConfig::default());
            println!("{r}");
            write_artifact("pricing", to_json(&r));
        }
        "proxies" => {
            let r = proxies::run(proxies::ProxiesConfig::default());
            println!("{r}");
            write_artifact("proxies", to_json(&r));
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            return false;
        }
    }
    true
}

const ALL: [&str; 10] = [
    "fig1", "table1", "case_a", "case_b", "case_c", "ablation", "honeypot", "detectors",
    "pricing", "proxies",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<&str> = if args.is_empty() {
        ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut ok = true;
    for name in selected {
        println!("\n================ {name} ================\n");
        ok &= run_one(name);
    }
    if !ok {
        eprintln!("\navailable experiments: {ALL:?}");
        std::process::exit(2);
    }
}
