//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p fg-bench --bin experiments              # everything
//! cargo run --release -p fg-bench --bin experiments fig1        # one artifact
//! cargo run --release -p fg-bench --bin experiments case_a --telemetry
//! ```
//!
//! Artifacts: the human-readable report on stdout, plus a JSON file per
//! experiment under `results/`. With `--telemetry`, experiments that expose a
//! telemetry sink (`case_a`, `case_b`) additionally write
//! `results/<name>.telemetry.json` (full metrics + audit-trail snapshot) and
//! `results/<name>.prom` (Prometheus text exposition), and print the
//! per-stage latency table.

use fg_scenario::experiments::*;
use fg_scenario::report::{render_stage_table, to_json};
use fg_telemetry::Telemetry;
use std::fs;
use std::path::Path;
use std::sync::Arc;

fn write_file(path: &Path, contents: String) {
    match fs::write(path, contents) {
        Ok(()) => println!("[artifact] {}", path.display()),
        Err(e) => eprintln!("[artifact] failed to write {}: {e}", path.display()),
    }
}

fn write_artifact(name: &str, json: String) {
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_ok() {
        write_file(&dir.join(format!("{name}.json")), json);
    }
}

/// Dumps the telemetry artifacts for one experiment run: the JSON snapshot,
/// the Prometheus exposition, and the stage-latency table on stdout.
fn dump_telemetry(name: &str, telemetry: &Arc<Telemetry>) {
    let snapshot = telemetry.snapshot();
    println!("{}", render_stage_table(&snapshot.stages));
    let audit = telemetry.audit();
    println!(
        "audit trail: {} decisions recorded ({} evicted); totals {:?}",
        audit.recorded(),
        audit.evicted(),
        audit.decision_totals()
    );
    drop(audit);
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_ok() {
        write_file(
            &dir.join(format!("{name}.telemetry.json")),
            snapshot.to_json(),
        );
        write_file(&dir.join(format!("{name}.prom")), snapshot.to_prometheus());
    }
}

fn run_one(name: &str, telemetry: bool) -> bool {
    if telemetry && !TELEMETRY_CAPABLE.contains(&name) {
        eprintln!("[telemetry] {name} does not expose a telemetry sink; running plain");
    }
    match name {
        "fig1" => {
            let r = fig1::run(fig1::Fig1Config::default());
            println!("{r}");
            write_artifact("fig1", to_json(&r));
        }
        "table1" => {
            let r = table1::run(table1::Table1Config::default());
            println!("{r}");
            write_artifact("table1", to_json(&r));
        }
        "case_a" if telemetry => {
            let (r, t) = case_a::run_with_telemetry(case_a::CaseAConfig::default());
            println!("{r}");
            write_artifact("case_a", to_json(&r));
            dump_telemetry("case_a", &t);
        }
        "case_a" => {
            let r = case_a::run(case_a::CaseAConfig::default());
            println!("{r}");
            write_artifact("case_a", to_json(&r));
        }
        "case_b" if telemetry => {
            let (r, t) = case_b::run_with_telemetry(case_b::CaseBConfig::default());
            println!("{r}");
            write_artifact("case_b", to_json(&r));
            dump_telemetry("case_b", &t);
        }
        "case_b" => {
            let r = case_b::run(case_b::CaseBConfig::default());
            println!("{r}");
            write_artifact("case_b", to_json(&r));
        }
        "case_c" => {
            let r = case_c::run(case_c::CaseCConfig::default());
            println!("{r}");
            write_artifact("case_c", to_json(&r));
        }
        "ablation" => {
            let r = ablation::run(ablation::AblationConfig::default());
            println!("{r}");
            write_artifact("ablation", to_json(&r));
        }
        "honeypot" => {
            let r = honeypot_econ::run(honeypot_econ::HoneypotConfig::default());
            println!("{r}");
            write_artifact("honeypot", to_json(&r));
        }
        "detectors" => {
            let r = detectors::run(detectors::DetectorsConfig::default());
            println!("{r}");
            write_artifact("detectors", to_json(&r));
        }
        "pricing" => {
            let r = pricing::run(pricing::PricingConfig::default());
            println!("{r}");
            write_artifact("pricing", to_json(&r));
        }
        "proxies" => {
            let r = proxies::run(proxies::ProxiesConfig::default());
            println!("{r}");
            write_artifact("proxies", to_json(&r));
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            return false;
        }
    }
    true
}

const ALL: [&str; 10] = [
    "fig1",
    "table1",
    "case_a",
    "case_b",
    "case_c",
    "ablation",
    "honeypot",
    "detectors",
    "pricing",
    "proxies",
];

/// Experiments that expose a telemetry sink via `run_with_telemetry`.
const TELEMETRY_CAPABLE: [&str; 2] = ["case_a", "case_b"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry = args.iter().any(|a| a == "--telemetry");
    let names: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| !a.starts_with("--"))
        .collect();
    let selected: Vec<&str> = if names.is_empty() {
        ALL.to_vec()
    } else {
        names
    };
    let mut ok = true;
    for name in selected {
        println!("\n================ {name} ================\n");
        ok &= run_one(name, telemetry);
    }
    if !ok {
        eprintln!("\navailable experiments: {ALL:?} (flags: --telemetry)");
        std::process::exit(2);
    }
}
