//! Regenerates every table and figure of the paper — in parallel, over any
//! number of replicate seeds.
//!
//! ```text
//! cargo run --release -p fg-bench --bin experiments                # everything, 1 seed
//! cargo run --release -p fg-bench --bin experiments fig1          # one artifact
//! cargo run --release -p fg-bench --bin experiments --seeds 4 --jobs 4
//! cargo run --release -p fg-bench --bin experiments case_a --telemetry
//! cargo run --release -p fg-bench --bin experiments --smoke --seeds 2 --jobs 2  # CI
//! cargo run --release -p fg-bench --bin experiments --shards 4   # sharded stores
//! ```
//!
//! `--shards S` partitions every keyed defence store into S shards
//! (`fg_core::shard`). Replay stays single-threaded per cell, so artifacts
//! are byte-identical to the default `--shards 1` — CI runs one sharded
//! smoke sweep to hold that invariant.
//!
//! Artifacts under `results/`:
//!
//! * `<name>.s<seed>.json` — one report per (experiment × seed) cell. Cell
//!   content is a pure function of the seed, so these are byte-identical
//!   whatever `--jobs` is, and `--seeds 1 --seed-offset K` regenerates
//!   exactly cell `K` of a larger sweep.
//! * `<name>.json` — the replicate-0 report (the experiment's historical
//!   default seed), kept for compatibility with single-run artifacts.
//! * `<name>.agg.json` — cross-seed mean/stddev/min–max per scalar metric
//!   (written when more than one seed ran).
//! * `<name>.telemetry.json` / `<name>.prom` — with `--telemetry`, the
//!   replicate-merged telemetry snapshot for experiments that expose a sink
//!   (`case_a`, `case_b`).
//! * `<name>.alerts.json` — with `--alerts`, the sentinel outcome: per-seed
//!   time-to-detection, the aggregate TTD summary, and the replicate-0
//!   alert/incident timeline. The process exits non-zero if any experiment
//!   whose policy expects detection reports none (the CI alerting gate).
//! * `<name>.traces.json` — with `--traces`, the replicate-0 causal span
//!   trace in Chrome trace-event form (load it in Perfetto or
//!   `chrome://tracing`). The process exits non-zero if any incident's
//!   exemplar trace ids fail to resolve in the export (the CI tracing gate).

use fg_scenario::experiments::all_specs;
use fg_scenario::harness::{run_matrix, ExperimentRun, ExperimentSpec, HarnessConfig};
use fg_scenario::report::{render_sentinel_report, render_stage_table};
use std::fs;
use std::path::Path;
use std::process::ExitCode;

/// Every way this process can exit, in one place. CI shell snippets match on
/// the numeric values, so they are part of the binary's interface: keep them
/// stable and document any addition here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Exit {
    /// All runs completed and every enabled gate passed.
    Success = 0,
    /// Bad command line: unknown flag, unknown experiment, malformed value.
    Usage = 2,
    /// The `--alerts` gate failed: an experiment whose policy expects
    /// detection reported no alert.
    DetectionMissing = 3,
    /// The `--traces` gate failed: an incident carries an exemplar trace id
    /// that does not resolve in the run's trace export.
    ExemplarUnresolved = 4,
}

impl From<Exit> for ExitCode {
    fn from(exit: Exit) -> ExitCode {
        ExitCode::from(exit as u8)
    }
}

fn write_file(path: &Path, contents: String) {
    match fs::write(path, contents) {
        Ok(()) => println!("[artifact] {}", path.display()),
        Err(e) => eprintln!("[artifact] failed to write {}: {e}", path.display()),
    }
}

/// Writes every artifact for one experiment's sweep.
fn write_artifacts(run: &ExperimentRun, telemetry: bool, alerts: bool, traces: bool) {
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_err() {
        eprintln!("[artifact] cannot create {}", dir.display());
        return;
    }
    for cell in &run.cells {
        write_file(
            &dir.join(format!("{}.s{}.json", run.name, cell.seed)),
            cell.json.clone(),
        );
        if cell.replicate == 0 {
            write_file(&dir.join(format!("{}.json", run.name)), cell.json.clone());
        }
    }
    if run.cells.len() > 1 {
        write_file(
            &dir.join(format!("{}.agg.json", run.name)),
            run.aggregate_json(),
        );
    }
    if telemetry {
        if let Some(snapshot) = &run.merged_telemetry {
            write_file(
                &dir.join(format!("{}.telemetry.json", run.name)),
                snapshot.to_json(),
            );
            write_file(
                &dir.join(format!("{}.prom", run.name)),
                snapshot.to_prometheus(),
            );
        }
    }
    if alerts {
        if let Some(json) = run.alerts_json() {
            write_file(&dir.join(format!("{}.alerts.json", run.name)), json);
        }
    }
    if traces {
        if let Some(json) = run.traces_json() {
            write_file(&dir.join(format!("{}.traces.json", run.name)), json);
        }
    }
}

fn print_run(run: &ExperimentRun) {
    println!("\n================ {} ================", run.name);
    for cell in &run.cells {
        if run.cells.len() > 1 {
            println!(
                "\n---- replicate {} (seed {:#x}) ----\n",
                cell.replicate, cell.seed
            );
        } else {
            println!();
        }
        println!("{}", cell.display);
    }
    if run.cells.len() > 1 {
        println!("---- aggregate over {} seeds ----\n", run.cells.len());
        println!("{}", run.render_aggregate());
    }
    if let Some(snapshot) = &run.merged_telemetry {
        println!("{}", render_stage_table(&snapshot.stages));
        println!(
            "audit trail: {} decisions recorded ({} evicted); totals {:?}",
            snapshot.audit.recorded, snapshot.audit.evicted, snapshot.audit.decision_totals
        );
    }
    // Replicate 0's sentinel outcome (TTD + incident timeline); every seed's
    // TTD is in the `.alerts.json` artifact.
    if let Some(report) = run
        .cells
        .iter()
        .find(|c| c.replicate == 0)
        .and_then(|c| c.alerts.as_ref())
    {
        println!("{}", render_sentinel_report(report));
    }
}

struct Cli {
    names: Vec<String>,
    config: HarnessConfig,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        names: Vec::new(),
        config: HarnessConfig {
            jobs: std::thread::available_parallelism().map_or(1, usize::from),
            ..HarnessConfig::default()
        },
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of = |flag: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--seeds" => {
                cli.config.seeds = value_of("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?;
            }
            "--jobs" => {
                cli.config.jobs = value_of("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--seed-offset" => {
                cli.config.seed_offset = value_of("--seed-offset")?
                    .parse()
                    .map_err(|e| format!("--seed-offset: {e}"))?;
            }
            "--shards" => {
                cli.config.shards = value_of("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--smoke" => cli.config.smoke = true,
            "--telemetry" => cli.config.telemetry = true,
            "--alerts" => cli.config.alerts = true,
            "--traces" => cli.config.traces = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            name => cli.names.push(name.to_owned()),
        }
    }
    Ok(cli)
}

/// Resolves requested names against the registry, preserving request order.
fn select_specs(names: &[String]) -> Result<Vec<ExperimentSpec>, String> {
    let registry = all_specs();
    if names.is_empty() {
        return Ok(registry);
    }
    names
        .iter()
        .map(|name| {
            registry
                .iter()
                .find(|s| s.name == name)
                .copied()
                .ok_or_else(|| format!("unknown experiment {name:?}"))
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let available: Vec<&str> = all_specs().iter().map(|s| s.name).collect();
    let usage = format!(
        "available experiments: {available:?}\n\
         flags: --seeds N  --jobs J  --seed-offset K  --shards S  --smoke  --telemetry  --alerts  --traces"
    );
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}\n{usage}");
            return Exit::Usage.into();
        }
    };
    let specs = match select_specs(&cli.names) {
        Ok(specs) => specs,
        Err(e) => {
            eprintln!("{e}\n{usage}");
            return Exit::Usage.into();
        }
    };
    if cli.config.telemetry {
        for spec in specs.iter().filter(|s| !s.telemetry_capable) {
            eprintln!(
                "[telemetry] {} does not expose a telemetry sink; running plain",
                spec.name
            );
        }
    }
    println!(
        "running {} experiment(s) × {} seed(s) on {} thread(s)",
        specs.len(),
        cli.config.seeds.max(1),
        cli.config.jobs.max(1)
    );
    let runs = run_matrix(&specs, &cli.config);
    let mut detection_missing = false;
    let mut exemplars_unresolved = false;
    for run in &runs {
        print_run(run);
        write_artifacts(
            run,
            cli.config.telemetry,
            cli.config.alerts,
            cli.config.traces,
        );
        if cli.config.alerts && run.detection_missing() {
            eprintln!(
                "[alerts] {}: policy expected detection but no alert fired",
                run.name
            );
            detection_missing = true;
        }
        if cli.config.traces && run.exemplars_unresolved() {
            eprintln!(
                "[traces] {}: an incident exemplar trace id does not resolve in the trace export",
                run.name
            );
            exemplars_unresolved = true;
        }
    }
    if detection_missing {
        return Exit::DetectionMissing.into();
    }
    if exemplars_unresolved {
        return Exit::ExemplarUnresolved.into();
    }
    Exit::Success.into()
}
