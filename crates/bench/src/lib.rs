//! # fg-bench
//!
//! Benchmark and experiment harness for the FeatureGuard workspace.
//!
//! Two entry points:
//!
//! * **Criterion benches** (`cargo bench -p fg-bench`) — one per paper
//!   artifact (`fig1_nip`, `table1_sms_surge`, `casea_rotation`,
//!   `caseb_patterns`, `casec_pumping`, `mit_ablation`, `honeypot_econ`,
//!   `detect_microbench`) plus [`components`] micro-benchmarks of the hot
//!   building blocks (rate limiter, sessionization, fingerprint sampling,
//!   chi-square). Each experiment bench also *asserts* its report's headline
//!   shape, so `cargo bench` doubles as a reproduction check.
//! * **The `experiments` binary** (`cargo run -p fg-bench --bin
//!   experiments [name]`) — regenerates every table and figure, printing the
//!   human-readable report and writing a JSON artifact next to it.
//!
//! A third surface, the [`perf`] module plus the `fg-bench` binary
//! (`cargo run -p fg-bench --release --bin fg-bench -- --bench-json …`),
//! measures the per-event hot paths headlessly, emits the machine-readable
//! `BENCH_baseline.json`, and diffs fresh runs against it — the CI
//! regression gate. The `hotpaths` Criterion bench exposes the same case
//! registry interactively.
//!
//! [`components`]: ../benches/components.rs

#![forbid(unsafe_code)]

pub mod perf;

/// Reduced-size experiment configurations used by the Criterion benches so a
/// full `cargo bench` finishes in minutes. The `experiments` binary uses the
/// full defaults instead.
pub mod small {
    use fg_scenario::experiments::*;

    /// Small Fig. 1 config.
    pub fn fig1() -> fig1::Fig1Config {
        fig1::Fig1Config {
            arrivals_per_day: 120.0,
            flights: 6,
            ..fig1::Fig1Config::default()
        }
    }

    /// Small Table I config.
    pub fn table1() -> table1::Table1Config {
        table1::Table1Config {
            arrivals_per_day: 400.0,
            pump_per_hour: 200.0,
            ..table1::Table1Config::default()
        }
    }

    /// Small Case A config.
    pub fn case_a() -> case_a::CaseAConfig {
        case_a::CaseAConfig {
            arrivals_per_day: 150.0,
            departure_day: 10,
            ..case_a::CaseAConfig::default()
        }
    }

    /// Small Case B config.
    pub fn case_b() -> case_b::CaseBConfig {
        case_b::CaseBConfig {
            days: 4,
            arrivals_per_day: 200.0,
            ..case_b::CaseBConfig::default()
        }
    }

    /// Small Case C config.
    pub fn case_c() -> case_c::CaseCConfig {
        case_c::CaseCConfig::default()
    }

    /// Small ablation config.
    pub fn ablation() -> ablation::AblationConfig {
        ablation::AblationConfig {
            days: 3,
            arrivals_per_day: 100.0,
            ..ablation::AblationConfig::default()
        }
    }

    /// Small honeypot config.
    pub fn honeypot() -> honeypot_econ::HoneypotConfig {
        honeypot_econ::HoneypotConfig {
            days: 4,
            arrivals_per_day: 120.0,
            ..honeypot_econ::HoneypotConfig::default()
        }
    }

    /// Small pricing config.
    pub fn pricing() -> pricing::PricingConfig {
        pricing::PricingConfig::default()
    }

    /// Small proxies config.
    pub fn proxies() -> proxies::ProxiesConfig {
        proxies::ProxiesConfig {
            days: 3,
            ..proxies::ProxiesConfig::default()
        }
    }

    /// Small detectors config.
    pub fn detectors() -> detectors::DetectorsConfig {
        detectors::DetectorsConfig {
            days: 2,
            arrivals_per_day: 150.0,
            ..detectors::DetectorsConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn small_configs_are_consistent() {
        assert!(super::small::fig1().arrivals_per_day > 0.0);
        assert!(super::small::table1().pump_per_hour > 0.0);
        assert!(super::small::ablation().days > 0);
    }
}
