//! The [`Sentinel`]: online rule evaluation and the alert lifecycle.

use crate::incident::{self, Incident};
use crate::policy::AlertPolicy;
use crate::rule::{DriftBaseline, DriftStat, MetricSource, RuleKind};
use crate::window::RateWindow;
use fg_core::time::{SimDuration, SimTime};
use fg_telemetry::{AuditSnapshot, Counter, Gauge, MetricName, MetricsRegistry, MetricsSnapshot};
use serde::Serialize;

/// Window bucket resolution: matches the simulation's 5-minute housekeeping
/// cadence, so each tick lands in (at most) one new bucket.
const GRANULARITY: SimDuration = SimDuration::from_mins(5);

/// An alert lifecycle transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum AlertTransition {
    /// Condition newly true; debounce clock started.
    Pending,
    /// Condition held for `for_duration`; the alert is live.
    Firing,
    /// Condition cleared on a firing alert; cooldown started.
    Resolved,
    /// Condition cleared while still pending (debounce rejected the blip).
    Cancelled,
}

impl AlertTransition {
    /// Lowercase label, used for the `event` metric label and incident rows.
    pub fn label(self) -> &'static str {
        match self {
            AlertTransition::Pending => "pending",
            AlertTransition::Firing => "firing",
            AlertTransition::Resolved => "resolved",
            AlertTransition::Cancelled => "cancelled",
        }
    }
}

/// One recorded lifecycle transition of one (rule, series) dedup key.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct AlertEvent {
    /// Sim-time of the transition.
    pub at: SimTime,
    /// Rule id (first half of the dedup key).
    pub rule: String,
    /// Watched series rendered as `name{label="value"}` (second half).
    pub series: String,
    /// Which transition occurred.
    pub event: AlertTransition,
    /// The rule statistic at transition time (windowed count, surge ratio,
    /// or drift score).
    pub value: f64,
    /// The trigger level the statistic is compared against.
    pub threshold: f64,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Status {
    Idle,
    Pending { since: SimTime },
    Firing,
}

/// Differentiated series state: either a scalar rate window or a per-bucket
/// distribution window.
enum SeriesData {
    Rate {
        last: f64,
        window: RateWindow,
    },
    Dist {
        last: Vec<u64>,
        windows: Vec<RateWindow>,
        /// Accumulated baseline counts (pre-normalisation). For
        /// [`DriftBaseline::Static`] this is fixed at creation; for
        /// [`DriftBaseline::Learned`] it accumulates until the learn
        /// deadline.
        baseline: Vec<f64>,
    },
}

/// Per-(rule, series) alert state — the dedup unit.
struct SeriesState {
    rule_idx: usize,
    series: MetricName,
    data: SeriesData,
    status: Status,
    cooldown_until: SimTime,
}

/// Evaluates an [`AlertPolicy`] online against metrics snapshots.
///
/// Attach one per simulation run (the `DefendedApp` owns it) and feed it
/// every housekeeping tick; it differentiates cumulative series into
/// windowed rates, evaluates each rule, and drives the
/// pending → firing → resolved lifecycle. Its own transitions are exported
/// as `fg_sentinel_*` metrics into the same registry it watches.
pub struct Sentinel {
    policy: AlertPolicy,
    states: Vec<SeriesState>,
    events: Vec<AlertEvent>,
    started: Option<SimTime>,
    observations: u64,
    evaluations: Counter,
    transitions: [Counter; 4],
    active: Gauge,
    counter_resets: Counter,
}

impl std::fmt::Debug for Sentinel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sentinel")
            .field("policy", &self.policy.name)
            .field("states", &self.states.len())
            .field("events", &self.events.len())
            .finish_non_exhaustive()
    }
}

impl Sentinel {
    /// Creates a sentinel for `policy`, registering its `fg_sentinel_*`
    /// metrics (and their help text) in `registry`.
    pub fn new(policy: AlertPolicy, registry: &MetricsRegistry) -> Self {
        registry.set_help(
            "fg_sentinel_evaluations_total",
            "Rule-series evaluations performed by the alert sentinel",
        );
        registry.set_help(
            "fg_sentinel_alerts_total",
            "Alert lifecycle transitions by event (pending/firing/resolved/cancelled)",
        );
        registry.set_help(
            "fg_sentinel_active_alerts",
            "Alerts currently in the firing state",
        );
        registry.set_help(
            "fg_sentinel_counter_reset_total",
            "Cumulative series observed stepping backwards (merged or re-registered counters); the negative delta is clamped to zero",
        );
        let transitions = [
            AlertTransition::Pending,
            AlertTransition::Firing,
            AlertTransition::Resolved,
            AlertTransition::Cancelled,
        ]
        .map(|t| registry.counter_with("fg_sentinel_alerts_total", &[("event", t.label())]));
        Sentinel {
            policy,
            states: Vec::new(),
            events: Vec::new(),
            started: None,
            observations: 0,
            evaluations: registry.counter("fg_sentinel_evaluations_total"),
            transitions,
            active: registry.gauge("fg_sentinel_active_alerts"),
            counter_resets: registry.counter("fg_sentinel_counter_reset_total"),
        }
    }

    /// The policy this sentinel enforces.
    pub fn policy(&self) -> &AlertPolicy {
        &self.policy
    }

    /// All lifecycle transitions recorded so far, in occurrence order.
    pub fn events(&self) -> &[AlertEvent] {
        &self.events
    }

    /// Alerts currently in the firing state.
    pub fn active_alerts(&self) -> u64 {
        self.states
            .iter()
            .filter(|s| s.status == Status::Firing)
            .count() as u64
    }

    /// Sim-time of the first `firing` transition, if any.
    pub fn first_firing(&self) -> Option<SimTime> {
        self.events
            .iter()
            .find(|e| e.event == AlertTransition::Firing)
            .map(|e| e.at)
    }

    /// Evaluates every rule against `snap` at sim-time `now`.
    ///
    /// Cumulative counter/gauge values are differentiated into deltas and
    /// fed into per-series sliding windows; rules then test the windowed
    /// state. Series appearing mid-run (lazily registered country counters)
    /// inherit the sentinel's own start time as their baseline origin — a
    /// series the sentinel never saw was at rate zero, which is exactly the
    /// baseline that makes a premium-rate country's first burst stand out.
    pub fn observe(&mut self, now: SimTime, snap: &MetricsSnapshot) {
        self.started.get_or_insert(now);
        self.observations += 1;
        for rule_idx in 0..self.policy.rules.len() {
            let selector = self.policy.rules[rule_idx].selector.clone();
            let source = match self.policy.rules[rule_idx].kind {
                RuleKind::Threshold { source, .. } | RuleKind::Surge { source, .. } => Some(source),
                // Level rules read gauges, but instantaneously rather than
                // differentiated — dispatched below like gauges.
                RuleKind::Level { .. } => Some(MetricSource::Gauge),
                RuleKind::Drift { .. } => None,
            };
            let level = matches!(self.policy.rules[rule_idx].kind, RuleKind::Level { .. });
            match source {
                None => {
                    for h in snap.histograms.iter().filter(|h| selector.matches(&h.name)) {
                        let state_idx = self.ensure_dist_state(rule_idx, &h.name, h.buckets.len());
                        self.update_dist(state_idx, now, &h.buckets);
                        self.evaluate(state_idx, now);
                    }
                }
                Some(MetricSource::Counter) => {
                    for c in snap.counters.iter().filter(|c| selector.matches(&c.name)) {
                        let state_idx = self.ensure_rate_state(rule_idx, &c.name);
                        self.update_rate(state_idx, now, c.value as f64);
                        self.evaluate(state_idx, now);
                    }
                }
                Some(MetricSource::Gauge) => {
                    for g in snap.gauges.iter().filter(|g| selector.matches(&g.name)) {
                        let state_idx = self.ensure_rate_state(rule_idx, &g.name);
                        if level {
                            self.update_level(state_idx, now, g.value);
                        } else {
                            self.update_rate(state_idx, now, g.value);
                        }
                        self.evaluate(state_idx, now);
                    }
                }
            }
        }
        let firing = self
            .states
            .iter()
            .filter(|s| s.status == Status::Firing)
            .count();
        self.active.set(firing as f64);
    }

    /// Finalises the run: time-to-detection plus the correlated incident
    /// timeline.
    pub fn report(&self, end: SimTime, audit: &AuditSnapshot) -> SentinelReport {
        self.report_with_traces(end, audit, None)
    }

    /// Like [`Sentinel::report`], but restricts the incident's exemplar
    /// trace ids to `retained_traces` (what the tracer actually kept) so
    /// every cited id resolves in the exported trace file.
    pub fn report_with_traces(
        &self,
        end: SimTime,
        audit: &AuditSnapshot,
        retained_traces: Option<&std::collections::BTreeSet<u64>>,
    ) -> SentinelReport {
        let first_firing = self.first_firing();
        let time_to_detection = match (self.policy.attack_start, first_firing) {
            (Some(start), Some(fired)) => Some(fired.saturating_since(start)),
            _ => None,
        };
        let active_at_end = self
            .states
            .iter()
            .filter(|s| s.status == Status::Firing)
            .count() as u64;
        let incident = incident::build(
            &self.policy,
            &self.events,
            audit,
            end,
            active_at_end,
            retained_traces,
        );
        SentinelReport {
            policy: self.policy.clone(),
            observations: self.observations,
            evaluations: self.evaluations.get(),
            events: self.events.clone(),
            active_at_end,
            first_firing,
            time_to_detection,
            incident,
        }
    }

    fn rule_span(kind: &RuleKind) -> SimDuration {
        match kind {
            RuleKind::Threshold { window, .. } => *window + GRANULARITY,
            RuleKind::Surge {
                current_window,
                baseline_window,
                ..
            } => *current_window + *baseline_window + GRANULARITY,
            RuleKind::Level { .. } => GRANULARITY,
            RuleKind::Drift { window, .. } => *window + GRANULARITY,
        }
    }

    fn find_state(&self, rule_idx: usize, series: &MetricName) -> Option<usize> {
        self.states
            .iter()
            .position(|s| s.rule_idx == rule_idx && s.series == *series)
    }

    fn ensure_rate_state(&mut self, rule_idx: usize, series: &MetricName) -> usize {
        if let Some(i) = self.find_state(rule_idx, series) {
            return i;
        }
        let span = Self::rule_span(&self.policy.rules[rule_idx].kind);
        self.states.push(SeriesState {
            rule_idx,
            series: series.clone(),
            data: SeriesData::Rate {
                last: 0.0,
                window: RateWindow::new(GRANULARITY, span),
            },
            status: Status::Idle,
            cooldown_until: SimTime::ZERO,
        });
        self.states.len() - 1
    }

    fn ensure_dist_state(&mut self, rule_idx: usize, series: &MetricName, buckets: usize) -> usize {
        if let Some(i) = self.find_state(rule_idx, series) {
            return i;
        }
        let rule = &self.policy.rules[rule_idx];
        let span = Self::rule_span(&rule.kind);
        let baseline = match &rule.kind {
            RuleKind::Drift {
                baseline: DriftBaseline::Static(weights),
                ..
            } => {
                let mut b = weights.clone();
                b.resize(buckets, 0.0);
                b
            }
            _ => vec![0.0; buckets],
        };
        self.states.push(SeriesState {
            rule_idx,
            series: series.clone(),
            data: SeriesData::Dist {
                last: vec![0; buckets],
                windows: (0..buckets)
                    .map(|_| RateWindow::new(GRANULARITY, span))
                    .collect(),
                baseline,
            },
            status: Status::Idle,
            cooldown_until: SimTime::ZERO,
        });
        self.states.len() - 1
    }

    fn update_rate(&mut self, state_idx: usize, now: SimTime, value: f64) {
        if let SeriesData::Rate { last, window } = &mut self.states[state_idx].data {
            // Differentiate the cumulative series; clamp decreases to zero
            // (spend gauges only grow; a merged or re-registered counter
            // stepping backwards would otherwise inject a huge negative
            // rate sample). Resets are counted so operators can see when a
            // series' baseline was disturbed.
            if value < *last {
                self.counter_resets.inc();
            }
            let delta = (value - *last).max(0.0);
            *last = value;
            window.push(now, delta);
        }
    }

    /// Stores a level signal's current value without differentiation;
    /// `last` *is* the evaluated statistic for [`RuleKind::Level`].
    fn update_level(&mut self, state_idx: usize, now: SimTime, value: f64) {
        if let SeriesData::Rate { last, window } = &mut self.states[state_idx].data {
            *last = value;
            window.push(now, 0.0); // keep the window clock aligned
        }
    }

    fn update_dist(&mut self, state_idx: usize, now: SimTime, buckets: &[u64]) {
        let state = &mut self.states[state_idx];
        let learning = match &self.policy.rules[state.rule_idx].kind {
            RuleKind::Drift {
                baseline: DriftBaseline::Learned { until },
                ..
            } => now <= *until,
            _ => false,
        };
        if let SeriesData::Dist {
            last,
            windows,
            baseline,
        } = &mut state.data
        {
            for i in 0..last.len().min(buckets.len()) {
                let delta = buckets[i].saturating_sub(last[i]) as f64;
                last[i] = buckets[i];
                if learning {
                    baseline[i] += delta;
                } else {
                    windows[i].push(now, delta);
                }
            }
            if !learning {
                // Keep every per-bucket window aligned on the same clock so
                // eviction is uniform even for quiet buckets.
                for w in windows.iter_mut() {
                    w.push(now, 0.0);
                }
            }
        }
    }

    /// Evaluates one state's rule condition and advances its lifecycle.
    fn evaluate(&mut self, state_idx: usize, now: SimTime) {
        self.evaluations.inc();
        let started = self.started.unwrap_or(now);
        let rule = &self.policy.rules[self.states[state_idx].rule_idx];
        let (condition, value, threshold) = match (&rule.kind, &self.states[state_idx].data) {
            (
                RuleKind::Threshold {
                    window, min_value, ..
                },
                SeriesData::Rate { window: w, .. },
            ) => {
                let from = now.saturating_add(SimDuration::ZERO - *window);
                let cur = w.total_between(from, SimTime::MAX);
                (cur >= *min_value, cur, *min_value)
            }
            (
                RuleKind::Surge {
                    current_window,
                    baseline_window,
                    factor,
                    min_count,
                    floor_per_hour,
                    ..
                },
                SeriesData::Rate { window: w, .. },
            ) => {
                let cur_from = now.saturating_add(SimDuration::ZERO - *current_window);
                let base_from = cur_from.saturating_add(SimDuration::ZERO - *baseline_window);
                let cur = w.total_between(cur_from, SimTime::MAX);
                let base = w.total_between(base_from, cur_from);
                // Baseline coverage: how long we have actually been watching
                // the world before the current window (a lazily-created
                // series was simply at zero — the sentinel's own start is
                // the origin).
                let coverage = cur_from.saturating_since(started.max(base_from));
                if coverage < *current_window {
                    (false, 0.0, *factor)
                } else {
                    let cur_rate = cur / current_window.as_hours_f64();
                    let base_rate = base / coverage.as_hours_f64();
                    let ratio = cur_rate / base_rate.max(*floor_per_hour);
                    (cur >= *min_count && ratio >= *factor, ratio, *factor)
                }
            }
            (RuleKind::Level { min_value }, SeriesData::Rate { last, .. }) => {
                (*last >= *min_value, *last, *min_value)
            }
            (
                RuleKind::Drift {
                    min_samples,
                    baseline: baseline_kind,
                    stat,
                    threshold,
                    ..
                },
                SeriesData::Dist {
                    windows, baseline, ..
                },
            ) => {
                let learning = match baseline_kind {
                    DriftBaseline::Learned { until } => now <= *until,
                    DriftBaseline::Static(_) => false,
                };
                let obs: Vec<f64> = windows.iter().map(|w| w.total()).collect();
                let n: f64 = obs.iter().sum();
                let base_total: f64 = baseline.iter().sum();
                if learning || n < *min_samples as f64 || base_total <= 0.0 {
                    (false, 0.0, *threshold)
                } else {
                    let p: Vec<f64> = obs.iter().map(|o| o / n).collect();
                    let q: Vec<f64> = baseline.iter().map(|b| b / base_total).collect();
                    let score = match stat {
                        DriftStat::ChiSquarePerSample => chi_square_per_sample(&p, &q),
                        DriftStat::JsDivergence => js_divergence(&p, &q),
                    };
                    (score >= *threshold, score, *threshold)
                }
            }
            // Selector/kind mismatches (a drift rule somehow bound to rate
            // state) cannot occur by construction.
            _ => (false, 0.0, 0.0),
        };
        let (for_duration, cooldown, rule_id) = (rule.for_duration, rule.cooldown, rule.id.clone());
        let state = &mut self.states[state_idx];
        let mut emit: Option<AlertTransition> = None;
        match state.status {
            Status::Idle => {
                if condition && now >= state.cooldown_until {
                    if for_duration == SimDuration::ZERO {
                        state.status = Status::Firing;
                        emit = Some(AlertTransition::Firing);
                    } else {
                        state.status = Status::Pending { since: now };
                        emit = Some(AlertTransition::Pending);
                    }
                }
            }
            Status::Pending { since } => {
                if !condition {
                    state.status = Status::Idle;
                    emit = Some(AlertTransition::Cancelled);
                } else if now.saturating_since(since) >= for_duration {
                    state.status = Status::Firing;
                    emit = Some(AlertTransition::Firing);
                }
            }
            Status::Firing => {
                if !condition {
                    state.status = Status::Idle;
                    state.cooldown_until = now.saturating_add(cooldown);
                    emit = Some(AlertTransition::Resolved);
                }
            }
        }
        if let Some(event) = emit {
            self.transitions[event as usize].inc();
            self.events.push(AlertEvent {
                at: now,
                rule: rule_id,
                series: state.series.to_string(),
                event,
                value,
                threshold,
            });
        }
    }
}

/// `Σ (p_i − q_i)² / q_i` with the baseline floored at 1e-3 per bucket so a
/// bucket the baseline considers impossible contributes a large-but-finite
/// term.
fn chi_square_per_sample(p: &[f64], q: &[f64]) -> f64 {
    p.iter()
        .zip(q)
        .map(|(&pi, &qi)| {
            let d = pi - qi;
            d * d / qi.max(1e-3)
        })
        .sum()
}

/// Jensen–Shannon divergence in bits (`0log0 = 0`), bounded to `[0, 1]`.
fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    fn kl(a: &[f64], m: &[f64]) -> f64 {
        a.iter()
            .zip(m)
            .map(|(&ai, &mi)| {
                if ai > 0.0 && mi > 0.0 {
                    ai * (ai / mi).log2()
                } else {
                    0.0
                }
            })
            .sum()
    }
    let m: Vec<f64> = p.iter().zip(q).map(|(&pi, &qi)| 0.5 * (pi + qi)).collect();
    0.5 * kl(p, &m) + 0.5 * kl(q, &m)
}

/// The serialisable outcome of one sentinel run: the deployed policy, every
/// lifecycle transition, time-to-detection, and the correlated incident.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct SentinelReport {
    /// The policy that was enforced (self-documenting artifact).
    pub policy: AlertPolicy,
    /// Snapshot observations performed (one per housekeeping tick).
    pub observations: u64,
    /// Rule-series evaluations performed.
    pub evaluations: u64,
    /// Every lifecycle transition, in occurrence order.
    pub events: Vec<AlertEvent>,
    /// Alerts still firing at the horizon.
    pub active_at_end: u64,
    /// Sim-time of the first firing alert.
    pub first_firing: Option<SimTime>,
    /// `first_firing − attack_start`: the headline metric. `None` when the
    /// policy declares no campaign or nothing fired.
    pub time_to_detection: Option<SimDuration>,
    /// The correlated incident timeline.
    pub incident: Incident,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{AlertRule, MetricSelector};
    use fg_telemetry::Telemetry;

    fn empty_audit() -> AuditSnapshot {
        AuditSnapshot {
            recorded: 0,
            evicted: 0,
            decision_totals: Vec::new(),
            records: Vec::new(),
        }
    }

    #[test]
    fn threshold_rule_fires_and_resolves() {
        let telemetry = Telemetry::new();
        let registry = telemetry.metrics();
        let c = registry.counter("fg_requests_total");
        let policy = AlertPolicy::named("t").rule(AlertRule::threshold(
            "req-vol",
            MetricSelector::any("fg_requests_total"),
            SimDuration::from_hours(1),
            10.0,
        ));
        let mut s = Sentinel::new(policy, registry);
        s.observe(SimTime::ZERO, &registry.snapshot());
        c.add(20);
        s.observe(SimTime::from_mins(5), &registry.snapshot());
        assert_eq!(s.first_firing(), Some(SimTime::from_mins(5)));
        // No further traffic: an hour later the window drains and the alert
        // resolves.
        s.observe(SimTime::from_mins(90), &registry.snapshot());
        let kinds: Vec<AlertTransition> = s.events().iter().map(|e| e.event).collect();
        assert_eq!(
            kinds,
            vec![AlertTransition::Firing, AlertTransition::Resolved]
        );
    }

    #[test]
    fn for_duration_debounces_blips() {
        let telemetry = Telemetry::new();
        let registry = telemetry.metrics();
        let c = registry.counter("fg_requests_total");
        let policy = AlertPolicy::named("t").rule(
            AlertRule::threshold(
                "req-vol",
                MetricSelector::any("fg_requests_total"),
                SimDuration::from_mins(10),
                5.0,
            )
            .hold_for(SimDuration::from_mins(10)),
        );
        let mut s = Sentinel::new(policy, registry);
        c.add(6);
        s.observe(SimTime::from_mins(5), &registry.snapshot());
        // Blip: condition clears before the debounce elapses.
        s.observe(SimTime::from_mins(20), &registry.snapshot());
        let kinds: Vec<AlertTransition> = s.events().iter().map(|e| e.event).collect();
        assert_eq!(
            kinds,
            vec![AlertTransition::Pending, AlertTransition::Cancelled],
            "a blip never fires"
        );
        // Sustained load escalates to firing after the hold.
        c.add(6);
        s.observe(SimTime::from_mins(25), &registry.snapshot());
        c.add(6);
        s.observe(SimTime::from_mins(30), &registry.snapshot());
        c.add(6);
        s.observe(SimTime::from_mins(35), &registry.snapshot());
        assert_eq!(s.first_firing(), Some(SimTime::from_mins(35)));
    }

    #[test]
    fn level_rule_tracks_the_instantaneous_gauge() {
        let telemetry = Telemetry::new();
        let registry = telemetry.metrics();
        let g = registry.gauge_with("fg_http_request_p99_seconds", &[("endpoint", "decide")]);
        let policy = AlertPolicy::named("t").rule(AlertRule::level(
            "p99-slo",
            MetricSelector::any("fg_http_request_p99_seconds"),
            0.25,
        ));
        let mut s = Sentinel::new(policy, registry);
        g.set(0.01);
        s.observe(SimTime::from_mins(5), &registry.snapshot());
        assert!(s.first_firing().is_none(), "under the SLO, no alert");
        g.set(0.40);
        s.observe(SimTime::from_mins(10), &registry.snapshot());
        assert_eq!(s.first_firing(), Some(SimTime::from_mins(10)));
        // A level rule reads the gauge, not a delta: dropping back under the
        // threshold resolves even though the cumulative "rate" never drained.
        g.set(0.05);
        s.observe(SimTime::from_mins(15), &registry.snapshot());
        let kinds: Vec<AlertTransition> = s.events().iter().map(|e| e.event).collect();
        assert_eq!(
            kinds,
            vec![AlertTransition::Firing, AlertTransition::Resolved]
        );
    }

    #[test]
    fn surge_rule_needs_baseline_coverage() {
        let telemetry = Telemetry::new();
        let registry = telemetry.metrics();
        let c = registry.counter_with("fg_sms_sent_total", &[("country", "UZ")]);
        let policy = AlertPolicy::named("t").rule(AlertRule::surge(
            "sms-surge",
            MetricSelector::any("fg_sms_sent_total"),
            SimDuration::from_hours(1),
            SimDuration::from_days(7),
            8.0,
            10.0,
        ));
        let mut s = Sentinel::new(policy, registry);
        s.observe(SimTime::ZERO, &registry.snapshot());
        // A burst right at sim start cannot fire: no baseline coverage yet.
        c.add(100);
        s.observe(SimTime::from_mins(30), &registry.snapshot());
        assert!(s.first_firing().is_none(), "no baseline, no alert");
        // A quiet day later, the same burst trips the (floored) baseline.
        s.observe(SimTime::from_days(1), &registry.snapshot());
        c.add(100);
        s.observe(
            SimTime::from_days(1) + SimDuration::from_mins(30),
            &registry.snapshot(),
        );
        assert_eq!(
            s.first_firing(),
            Some(SimTime::from_days(1) + SimDuration::from_mins(30))
        );
        let e = &s.events()[0];
        assert!(e.value >= e.threshold);
        assert_eq!(e.series, "fg_sms_sent_total{country=\"UZ\"}");
    }

    #[test]
    fn drift_rule_detects_distribution_shift() {
        let telemetry = Telemetry::new();
        let registry = telemetry.metrics();
        let h = registry.histogram(
            "fg_nip_hold",
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
        );
        // Baseline: overwhelmingly small parties.
        let baseline = vec![52.0, 30.0, 7.0, 5.0, 2.5, 1.5, 1.0, 0.6, 0.4];
        let policy = AlertPolicy::named("t").rule(AlertRule::drift(
            "nip-drift",
            MetricSelector::any("fg_nip_hold"),
            SimDuration::from_hours(6),
            40,
            DriftBaseline::Static(baseline),
            DriftStat::ChiSquarePerSample,
            0.5,
        ));
        let mut s = Sentinel::new(policy, registry);
        s.observe(SimTime::ZERO, &registry.snapshot());
        // Legit-looking traffic: no alert.
        for _ in 0..30 {
            h.record(1.0);
        }
        for _ in 0..15 {
            h.record(2.0);
        }
        for _ in 0..5 {
            h.record(3.0);
        }
        s.observe(SimTime::from_mins(30), &registry.snapshot());
        assert!(s.first_firing().is_none(), "legit mix matches baseline");
        // A NiP-6 flood drags the distribution off the baseline.
        for _ in 0..80 {
            h.record(6.0);
        }
        s.observe(SimTime::from_mins(60), &registry.snapshot());
        assert_eq!(s.first_firing(), Some(SimTime::from_mins(60)));
    }

    #[test]
    fn learned_baseline_is_inert_until_frozen() {
        let telemetry = Telemetry::new();
        let registry = telemetry.metrics();
        let h = registry.histogram("fg_nip_hold", &[1.0, 2.0, 3.0]);
        let policy = AlertPolicy::named("t").rule(AlertRule::drift(
            "nip-drift",
            MetricSelector::any("fg_nip_hold"),
            SimDuration::from_hours(6),
            20,
            DriftBaseline::Learned {
                until: SimTime::from_days(1),
            },
            DriftStat::JsDivergence,
            0.2,
        ));
        let mut s = Sentinel::new(policy, registry);
        // Learning phase: all NiP-1.
        for _ in 0..100 {
            h.record(1.0);
        }
        s.observe(SimTime::from_hours(12), &registry.snapshot());
        // Even a wild mix during learning never alerts.
        for _ in 0..100 {
            h.record(3.0);
        }
        s.observe(SimTime::from_hours(20), &registry.snapshot());
        assert!(s.first_firing().is_none(), "inert while learning");
        // After the freeze the same shift fires. (The learning-phase mix,
        // including the wild tail, *is* the learned baseline.)
        for _ in 0..200 {
            h.record(2.0);
        }
        s.observe(
            SimTime::from_days(1) + SimDuration::from_hours(1),
            &registry.snapshot(),
        );
        assert!(s.first_firing().is_some(), "fires once frozen");
    }

    #[test]
    fn cooldown_suppresses_refiring() {
        let telemetry = Telemetry::new();
        let registry = telemetry.metrics();
        let c = registry.counter("fg_requests_total");
        let policy = AlertPolicy::named("t").rule(
            AlertRule::threshold(
                "req-vol",
                MetricSelector::any("fg_requests_total"),
                SimDuration::from_mins(10),
                5.0,
            )
            .with_cooldown(SimDuration::from_hours(2)),
        );
        let mut s = Sentinel::new(policy, registry);
        c.add(10);
        s.observe(SimTime::from_mins(5), &registry.snapshot());
        s.observe(SimTime::from_mins(30), &registry.snapshot()); // resolves
        c.add(10);
        s.observe(SimTime::from_mins(40), &registry.snapshot());
        let kinds: Vec<AlertTransition> = s.events().iter().map(|e| e.event).collect();
        assert_eq!(
            kinds,
            vec![AlertTransition::Firing, AlertTransition::Resolved],
            "within cooldown the second burst stays silent"
        );
        // Past the cooldown it may fire again.
        c.add(10);
        s.observe(SimTime::from_hours(3), &registry.snapshot());
        assert_eq!(s.events().len(), 3);
        assert_eq!(s.events()[2].event, AlertTransition::Firing);
    }

    #[test]
    fn transitions_are_telemetry_backed() {
        let telemetry = Telemetry::new();
        let registry = telemetry.metrics();
        let c = registry.counter("fg_requests_total");
        let policy = AlertPolicy::named("t").rule(AlertRule::threshold(
            "req-vol",
            MetricSelector::any("fg_requests_total"),
            SimDuration::from_mins(10),
            5.0,
        ));
        let mut s = Sentinel::new(policy, registry);
        c.add(10);
        s.observe(SimTime::from_mins(5), &registry.snapshot());
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_value("fg_sentinel_alerts_total", &[("event", "firing")]),
            Some(1)
        );
        assert_eq!(
            snap.gauge_value("fg_sentinel_active_alerts", &[]),
            Some(1.0)
        );
        assert!(
            snap.counter_value("fg_sentinel_evaluations_total", &[])
                .unwrap()
                > 0
        );
    }

    #[test]
    fn counter_reset_clamps_to_zero_and_is_counted() {
        let telemetry = Telemetry::new();
        let registry = telemetry.metrics();
        let g = registry.gauge("fg_sms_owner_cost_units");
        // High min_spend: the test is about differentiation, not firing.
        let policy = AlertPolicy::named("t").rule(AlertRule::burn_rate(
            "burn",
            SimDuration::from_mins(10),
            SimDuration::from_hours(2),
            3.0,
            1e9,
        ));
        let mut s = Sentinel::new(policy, registry);
        g.set(10.0);
        s.observe(SimTime::from_mins(1), &registry.snapshot());
        assert_eq!(
            registry
                .snapshot()
                .counter_value("fg_sentinel_counter_reset_total", &[]),
            Some(0),
            "monotone series: no reset yet"
        );
        // A merged or re-registered cumulative series steps backwards.
        g.set(3.0);
        s.observe(SimTime::from_mins(2), &registry.snapshot());
        assert_eq!(
            registry
                .snapshot()
                .counter_value("fg_sentinel_counter_reset_total", &[]),
            Some(1),
            "the backwards step is counted"
        );
        // Differentiation resumes from the new baseline: a forward step
        // after the reset is a normal positive delta, not another reset.
        g.set(4.0);
        s.observe(SimTime::from_mins(3), &registry.snapshot());
        assert_eq!(
            registry
                .snapshot()
                .counter_value("fg_sentinel_counter_reset_total", &[]),
            Some(1)
        );
        assert!(
            s.events().is_empty(),
            "clamped reset must not fire any alert"
        );
    }

    #[test]
    fn report_measures_time_to_detection() {
        let telemetry = Telemetry::new();
        let registry = telemetry.metrics();
        let c = registry.counter("fg_requests_total");
        let policy = AlertPolicy::named("t")
            .rule(AlertRule::threshold(
                "req-vol",
                MetricSelector::any("fg_requests_total"),
                SimDuration::from_mins(10),
                5.0,
            ))
            .campaign(SimTime::from_hours(1), 1);
        let mut s = Sentinel::new(policy, registry);
        s.observe(SimTime::from_hours(1), &registry.snapshot());
        c.add(10);
        s.observe(
            SimTime::from_hours(1) + SimDuration::from_mins(5),
            &registry.snapshot(),
        );
        let report = s.report(SimTime::from_hours(2), &empty_audit());
        assert_eq!(
            report.time_to_detection,
            Some(SimDuration::from_mins(5)),
            "TTD = first firing − attack start"
        );
        assert_eq!(report.active_at_end, 1);
        assert!(!report.incident.entries.is_empty());
    }
}
