//! fg-sentinel: online anomaly alerting over fg-telemetry streams.
//!
//! The paper's case studies turn on an *operational* failure: the SMS-pumping
//! campaign of Table I was noticed only when the operator's invoice arrived,
//! and the NiP-distribution shifts of Fig. 1 were spotted by humans eyeballing
//! charts. This crate is the layer that closes that gap — it watches the
//! metrics fg-telemetry already exports and turns them into alerts, incident
//! timelines, and a first-class *time-to-detection* measurement.
//!
//! Structure:
//!
//! - [`rule`] — the alert-rule vocabulary: static thresholds, surge
//!   (rate-of-change vs a sliding seasonal baseline, the Table I detector),
//!   distribution drift (NiP histogram vs an average-week baseline, the
//!   Fig. 1 detector), and cost burn-rate rules over owner SMS spend.
//! - [`window`] — the bounded sliding-window state behind every rule.
//! - [`policy`] — [`AlertPolicy`]: the set of rules an experiment deploys,
//!   plus the declared campaign facts (attack start, attacker client) that
//!   anchor time-to-detection.
//! - [`engine`] — the [`Sentinel`] itself: evaluates rules against
//!   [`fg_telemetry::MetricsSnapshot`]s on every housekeeping tick and runs
//!   the pending → firing → resolved alert lifecycle, with its own
//!   transitions exported back into telemetry as `fg_sentinel_*` metrics.
//! - [`incident`] — correlates fired alerts with the decision audit trail
//!   into a deterministic incident timeline.
//!
//! Everything here is sim-time-driven and deterministic: two runs with the
//! same seed produce byte-identical [`engine::SentinelReport`]s regardless of
//! thread count.

#![forbid(unsafe_code)]

pub mod engine;
pub mod incident;
pub mod policy;
pub mod rule;
pub mod window;

pub use engine::{AlertEvent, Sentinel, SentinelReport};
pub use incident::{Incident, IncidentEntry};
pub use policy::AlertPolicy;
pub use rule::{AlertRule, DriftBaseline, DriftStat, MetricSelector, MetricSource, RuleKind};
pub use window::RateWindow;
