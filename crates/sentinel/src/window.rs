//! Bounded sliding-window state for rate and baseline tracking.

use fg_core::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// A sliding window of value deltas over sim-time, coalesced into fixed
/// `granularity` buckets so the state stays bounded by `span / granularity`
/// regardless of how often the sentinel ticks.
///
/// Windows also serve as the cross-seed folding unit: [`RateWindow::merge`]
/// mirrors `TelemetrySnapshot::merge` (per-bucket sums, newest-span kept) and
/// is associative — a property pinned by proptest, because the multi-seed
/// harness may fold replicate results in any grouping.
#[derive(Clone, Debug, PartialEq)]
pub struct RateWindow {
    granularity: SimDuration,
    span: SimDuration,
    /// `(bucket_start, accumulated_delta)`, oldest first, bucket starts
    /// strictly increasing.
    buckets: VecDeque<(SimTime, f64)>,
}

impl RateWindow {
    /// Creates an empty window keeping `span` of history at `granularity`
    /// resolution.
    ///
    /// # Panics
    ///
    /// If `granularity` or `span` is non-positive.
    pub fn new(granularity: SimDuration, span: SimDuration) -> Self {
        assert!(
            granularity > SimDuration::ZERO,
            "window granularity must be positive"
        );
        assert!(span > SimDuration::ZERO, "window span must be positive");
        RateWindow {
            granularity,
            span,
            buckets: VecDeque::new(),
        }
    }

    fn bucket_start(&self, at: SimTime) -> SimTime {
        let g = self.granularity.as_millis() as u64;
        SimTime::from_millis((at.as_millis() / g) * g)
    }

    /// Adds `delta` observed at `at` and evicts buckets older than the span.
    ///
    /// Observation times are expected to be non-decreasing (sim-time only
    /// moves forward); an out-of-order `at` is folded into the newest bucket
    /// rather than reordering history.
    pub fn push(&mut self, at: SimTime, delta: f64) {
        let start = self.bucket_start(at);
        match self.buckets.back_mut() {
            Some((last, v)) if *last >= start => *v += delta,
            _ => self.buckets.push_back((start, delta)),
        }
        self.evict(at);
    }

    fn evict(&mut self, now: SimTime) {
        let cutoff = now.saturating_add(SimDuration::ZERO - self.span);
        while let Some(&(start, _)) = self.buckets.front() {
            if start.saturating_add(self.granularity) <= cutoff {
                self.buckets.pop_front();
            } else {
                break;
            }
        }
    }

    /// Sum of deltas in buckets whose start lies in `[from, to)`.
    pub fn total_between(&self, from: SimTime, to: SimTime) -> f64 {
        self.buckets
            .iter()
            .filter(|&&(start, _)| start >= from && start < to)
            .map(|&(_, v)| v)
            .sum()
    }

    /// Sum of all retained deltas.
    pub fn total(&self) -> f64 {
        self.buckets.iter().map(|&(_, v)| v).sum()
    }

    /// Start time of the oldest retained bucket.
    pub fn oldest(&self) -> Option<SimTime> {
        self.buckets.front().map(|&(start, _)| start)
    }

    /// Start time of the newest retained bucket.
    pub fn newest(&self) -> Option<SimTime> {
        self.buckets.back().map(|&(start, _)| start)
    }

    /// Number of retained buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether the window holds no history.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Folds `other` into `self`: per-bucket-start sums, then eviction
    /// relative to the newest bucket across both.
    ///
    /// This is the cross-seed analogue of `TelemetrySnapshot::merge`, and it
    /// is associative: intermediate evictions only drop buckets the final
    /// eviction would drop anyway, because merge never moves the newest
    /// bucket backwards.
    ///
    /// # Panics
    ///
    /// If the two windows disagree on granularity or span.
    pub fn merge(&mut self, other: &RateWindow) {
        assert_eq!(
            self.granularity, other.granularity,
            "cannot merge windows of different granularity"
        );
        assert_eq!(
            self.span, other.span,
            "cannot merge windows of different span"
        );
        let mut merged: VecDeque<(SimTime, f64)> =
            VecDeque::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(sa, va)), Some(&&(sb, vb))) => {
                    if sa < sb {
                        merged.push_back((sa, va));
                        a.next();
                    } else if sb < sa {
                        merged.push_back((sb, vb));
                        b.next();
                    } else {
                        merged.push_back((sa, va + vb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push_back(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push_back(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        if let Some(&(newest, _)) = self.buckets.back() {
            self.evict(newest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mins(m: u64) -> SimTime {
        SimTime::from_mins(m)
    }

    fn window() -> RateWindow {
        RateWindow::new(SimDuration::from_mins(5), SimDuration::from_hours(1))
    }

    #[test]
    fn coalesces_into_granularity_buckets() {
        let mut w = window();
        w.push(mins(1), 2.0);
        w.push(mins(4), 3.0);
        w.push(mins(6), 1.0);
        assert_eq!(w.len(), 2, "0–5 and 5–10 minute buckets");
        assert!((w.total() - 6.0).abs() < 1e-12);
        assert!((w.total_between(mins(0), mins(5)) - 5.0).abs() < 1e-12);
        assert!((w.total_between(mins(5), mins(10)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn evicts_beyond_span() {
        let mut w = window();
        w.push(mins(0), 1.0);
        w.push(mins(30), 1.0);
        // At t=70min the 0–5min bucket has fully left the 60-minute span.
        w.push(mins(70), 1.0);
        assert_eq!(w.oldest(), Some(mins(30)));
        assert!((w.total() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn state_is_bounded_by_span_over_granularity() {
        let mut w = window();
        for m in 0..10_000 {
            w.push(mins(m), 1.0);
        }
        assert!(w.len() <= 13, "60min span / 5min buckets, one in flight");
    }

    #[test]
    fn merge_sums_overlapping_buckets() {
        let mut a = window();
        let mut b = window();
        a.push(mins(10), 2.0);
        a.push(mins(20), 1.0);
        b.push(mins(10), 3.0);
        b.push(mins(40), 4.0);
        a.merge(&b);
        assert!((a.total_between(mins(10), mins(15)) - 5.0).abs() < 1e-12);
        assert!((a.total() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn merge_evicts_relative_to_newest() {
        let mut a = window();
        a.push(mins(0), 1.0);
        let mut b = window();
        b.push(mins(120), 1.0);
        a.merge(&b);
        assert_eq!(a.oldest(), Some(mins(120)), "old bucket aged out");
    }

    #[test]
    #[should_panic(expected = "granularity")]
    fn merge_rejects_mismatched_granularity() {
        let mut a = window();
        let b = RateWindow::new(SimDuration::from_mins(1), SimDuration::from_hours(1));
        a.merge(&b);
    }
}
