//! Correlates fired alerts with the decision audit trail into a
//! deterministic incident timeline.
//!
//! The timeline answers the question the paper's defenders could not: *what
//! happened, in what order, and when did we know?* It interleaves the
//! declared campaign start, the attacker's fingerprint-rotation epochs and
//! first mitigation engagement (both mined from `AuditRecord` reason
//! chains), and every alert lifecycle transition, sorted by sim-time with
//! deterministic tie-breaks.

use crate::engine::AlertEvent;
use crate::policy::AlertPolicy;
use fg_core::time::SimTime;
use fg_telemetry::AuditSnapshot;
use serde::Serialize;
use std::collections::BTreeSet;

/// Detailed rotation entries before the tail is summarised into one row.
const MAX_ROTATION_ENTRIES: usize = 10;

/// One row of the incident timeline.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub struct IncidentEntry {
    /// Sim-time of the event.
    pub at: SimTime,
    /// Stable row kind: `campaign-start`, `fingerprint-rotation`,
    /// `mitigation-engaged`, `alert-pending`, `alert-firing`,
    /// `alert-resolved`, `alert-cancelled`, or `incident-end`.
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

/// A deterministic incident timeline for one simulation run.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Incident {
    /// Timeline rows, sorted by `(at, kind, detail)`.
    pub entries: Vec<IncidentEntry>,
    /// Whether any alert was still firing at the horizon.
    pub ongoing_at_end: bool,
    /// Exemplar span-trace ids for the attacker's decision path (first
    /// record seen, first and last non-allow decision — deduplicated, at
    /// most three). When a retained-trace set is supplied to [`build`],
    /// only ids whose traces survived sampling and eviction are cited, so
    /// every listed id resolves in the exported trace file.
    pub exemplar_trace_ids: Vec<u64>,
}

/// Builds the timeline from the policy's campaign facts, the sentinel's
/// recorded transitions, and the audit trail.
///
/// The audit trail is a bounded ring (oldest records may have been evicted
/// on long runs); rotation epochs are therefore mined from the *retained*
/// records only, which keeps the builder deterministic without pretending
/// to evidence the ring no longer holds.
pub fn build(
    policy: &AlertPolicy,
    events: &[AlertEvent],
    audit: &AuditSnapshot,
    end: SimTime,
    active_at_end: u64,
    retained_traces: Option<&BTreeSet<u64>>,
) -> Incident {
    let mut entries: Vec<IncidentEntry> = Vec::new();
    let mut exemplar_trace_ids: Vec<u64> = Vec::new();

    if let Some(start) = policy.attack_start {
        let who = match policy.attacker_client {
            Some(c) => format!(" (client c{c})"),
            None => String::new(),
        };
        entries.push(IncidentEntry {
            at: start,
            kind: "campaign-start".to_owned(),
            detail: format!("declared campaign start{who}"),
        });
    }

    if let Some(attacker) = policy.attacker_client {
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        let mut extra = 0usize;
        let mut last_rotation = SimTime::ZERO;
        let mut engaged = false;
        for rec in audit.records.iter().filter(|r| r.client == attacker) {
            if seen.insert(rec.fingerprint) {
                let epoch = seen.len();
                last_rotation = rec.at;
                if epoch <= MAX_ROTATION_ENTRIES {
                    entries.push(IncidentEntry {
                        at: rec.at,
                        kind: "fingerprint-rotation".to_owned(),
                        detail: format!(
                            "epoch {epoch}: fingerprint {:#018x} first seen",
                            rec.fingerprint
                        ),
                    });
                } else {
                    extra += 1;
                }
            }
            if !engaged && rec.decision != "allow" {
                engaged = true;
                let why = if rec.reasons.is_empty() {
                    String::new()
                } else {
                    format!(" [{}]", rec.reasons.join(" → "))
                };
                entries.push(IncidentEntry {
                    at: rec.at,
                    kind: "mitigation-engaged".to_owned(),
                    detail: format!(
                        "first non-allow decision for attacker: {}{why}",
                        rec.decision
                    ),
                });
            }
        }
        if extra > 0 {
            entries.push(IncidentEntry {
                at: last_rotation,
                kind: "fingerprint-rotation".to_owned(),
                detail: format!("… {extra} further rotation epochs (summarised)"),
            });
        }

        // Exemplar traces: the attacker's first request, first non-allow,
        // and last non-allow — the three moments an analyst opens first.
        // Filtered to traces the tracer actually retained (when known) so
        // every cited id resolves in the export.
        let resolvable = |r: &&fg_telemetry::AuditRecord| {
            r.trace_id != 0 && retained_traces.is_none_or(|kept| kept.contains(&r.trace_id))
        };
        let attacker_records = || {
            audit
                .records
                .iter()
                .filter(|r| r.client == attacker)
                .filter(resolvable)
        };
        let candidates = [
            attacker_records().find(|r| r.decision != "allow"),
            attacker_records().rev().find(|r| r.decision != "allow"),
            attacker_records().next(),
        ];
        for rec in candidates.into_iter().flatten() {
            if !exemplar_trace_ids.contains(&rec.trace_id) {
                exemplar_trace_ids.push(rec.trace_id);
            }
        }
    }

    for e in events {
        entries.push(IncidentEntry {
            at: e.at,
            kind: format!("alert-{}", e.event.label()),
            detail: format!(
                "{} on {} (value {:.3} vs threshold {:.3})",
                e.rule, e.series, e.value, e.threshold
            ),
        });
    }

    let fired = events
        .iter()
        .any(|e| e.event == crate::engine::AlertTransition::Firing);
    let closing = if active_at_end > 0 {
        format!("incident ongoing at horizon ({active_at_end} alert(s) still firing)")
    } else if fired {
        "all alerts resolved by horizon".to_owned()
    } else {
        "no alerts fired over the horizon".to_owned()
    };
    entries.push(IncidentEntry {
        at: end,
        kind: "incident-end".to_owned(),
        detail: closing,
    });

    entries.sort();
    Incident {
        entries,
        ongoing_at_end: active_at_end > 0,
        exemplar_trace_ids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AlertTransition;
    use fg_telemetry::AuditRecord;

    fn record(at: SimTime, client: u64, fingerprint: u64, decision: &str) -> AuditRecord {
        AuditRecord {
            at,
            endpoint: "/booking/hold".to_owned(),
            client,
            fingerprint,
            ip: "10.0.0.1".to_owned(),
            score: 0.5,
            signals: Vec::new(),
            decision: decision.to_owned(),
            reasons: vec!["velocity".to_owned()],
            trace_id: fg_core::hash::trace_id(client, at.as_millis()),
        }
    }

    fn audit(records: Vec<AuditRecord>) -> AuditSnapshot {
        AuditSnapshot {
            recorded: records.len() as u64,
            evicted: 0,
            decision_totals: Vec::new(),
            records,
        }
    }

    #[test]
    fn timeline_orders_campaign_rotations_and_alerts() {
        let policy = AlertPolicy::named("t").campaign(SimTime::from_hours(1), 7);
        let events = vec![AlertEvent {
            at: SimTime::from_hours(2),
            rule: "sms-surge".to_owned(),
            series: "fg_sms_sent_total{country=\"UZ\"}".to_owned(),
            event: AlertTransition::Firing,
            value: 120.0,
            threshold: 8.0,
        }];
        let records = vec![
            record(SimTime::from_hours(1), 7, 0xA, "allow"),
            record(SimTime::from_hours(3), 7, 0xB, "block"),
            record(SimTime::from_mins(30), 99, 0xC, "allow"), // not the attacker
        ];
        let inc = build(
            &policy,
            &events,
            &audit(records),
            SimTime::from_days(1),
            0,
            None,
        );
        let kinds: Vec<&str> = inc.entries.iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(
            kinds,
            vec![
                "campaign-start",
                "fingerprint-rotation",
                "alert-firing",
                "fingerprint-rotation",
                "mitigation-engaged",
                "incident-end",
            ]
        );
        assert!(!inc.ongoing_at_end);
        assert!(inc.entries.last().unwrap().detail.contains("resolved"));
    }

    #[test]
    fn rotation_tail_is_summarised() {
        let policy = AlertPolicy::named("t").campaign(SimTime::ZERO, 1);
        let records: Vec<AuditRecord> = (0..25)
            .map(|i| record(SimTime::from_mins(i), 1, 0x100 + i, "allow"))
            .collect();
        let inc = build(
            &policy,
            &[],
            &audit(records),
            SimTime::from_hours(1),
            0,
            None,
        );
        let rotations = inc
            .entries
            .iter()
            .filter(|e| e.kind == "fingerprint-rotation")
            .count();
        assert_eq!(rotations, MAX_ROTATION_ENTRIES + 1, "10 detailed + summary");
        assert!(inc
            .entries
            .iter()
            .any(|e| e.detail.contains("15 further rotation epochs")));
    }

    #[test]
    fn quiet_run_reports_no_alerts() {
        let inc = build(
            &AlertPolicy::none(),
            &[],
            &audit(Vec::new()),
            SimTime::from_days(1),
            0,
            None,
        );
        assert_eq!(inc.entries.len(), 1);
        assert!(inc.entries[0].detail.contains("no alerts fired"));
        assert!(inc.exemplar_trace_ids.is_empty());
    }

    #[test]
    fn exemplars_cite_first_and_last_non_allow_then_first_record() {
        let policy = AlertPolicy::named("t").campaign(SimTime::ZERO, 7);
        let records = vec![
            record(SimTime::from_mins(1), 7, 0xA, "allow"),
            record(SimTime::from_mins(2), 7, 0xA, "challenge"),
            record(SimTime::from_mins(3), 7, 0xB, "allow"),
            record(SimTime::from_mins(4), 7, 0xB, "block"),
        ];
        let expect =
            |at_mins: u64| fg_core::hash::trace_id(7, SimTime::from_mins(at_mins).as_millis());
        let inc = build(
            &policy,
            &[],
            &audit(records),
            SimTime::from_hours(1),
            0,
            None,
        );
        assert_eq!(
            inc.exemplar_trace_ids,
            vec![expect(2), expect(4), expect(1)],
            "first non-allow, last non-allow, first record"
        );
    }

    #[test]
    fn exemplars_honour_the_retained_trace_set() {
        let policy = AlertPolicy::named("t").campaign(SimTime::ZERO, 7);
        let records = vec![
            record(SimTime::from_mins(1), 7, 0xA, "allow"),
            record(SimTime::from_mins(2), 7, 0xA, "challenge"),
            record(SimTime::from_mins(4), 7, 0xB, "block"),
        ];
        let kept: BTreeSet<u64> = [fg_core::hash::trace_id(
            7,
            SimTime::from_mins(4).as_millis(),
        )]
        .into();
        let inc = build(
            &policy,
            &[],
            &audit(records),
            SimTime::from_hours(1),
            0,
            Some(&kept),
        );
        assert_eq!(
            inc.exemplar_trace_ids,
            kept.iter().copied().collect::<Vec<u64>>()
        );
    }
}
