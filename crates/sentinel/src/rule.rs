//! The alert-rule vocabulary.
//!
//! Three rule kinds cover the paper's detection surfaces:
//!
//! - [`RuleKind::Threshold`] — absolute level over a window ("more than N
//!   holds per hour"), the classic volumetric detector.
//! - [`RuleKind::Surge`] — rate-of-change vs a sliding seasonal baseline
//!   ("per-country SMS volume at ≥ 8× its trailing-week rate"), the detector
//!   that would have caught Table I's +160,209 % Uzbekistan spike in
//!   sim-minutes instead of an invoice cycle. Applied to the owner-spend
//!   gauge it becomes a cost burn-rate rule, the SRE-style alert the ISSUE's
//!   related work (Prometheus/SRE practice) prescribes.
//! - [`RuleKind::Drift`] — histogram distribution drift vs an average-week
//!   baseline ("the NiP mix no longer looks like the airline's"), the Fig. 1
//!   detector, available with a chi-square-per-sample statistic (mirroring
//!   `fg-detection`'s offline `NipDistributionMonitor`) or Jensen–Shannon
//!   divergence.

use fg_core::time::SimDuration;
use fg_telemetry::MetricName;
use serde::Serialize;

/// Whether a rule reads cumulative counters or cumulative gauges.
///
/// Both are differentiated into windowed deltas before evaluation; gauge
/// decreases are clamped to zero (spend and revenue gauges only grow).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum MetricSource {
    /// A `fg_telemetry::Counter` series.
    Counter,
    /// A `fg_telemetry::Gauge` series.
    Gauge,
}

/// Which telemetry series a rule watches.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct MetricSelector {
    /// Base metric name, e.g. `fg_sms_sent_total`.
    pub name: String,
    /// Exact label pairs when `Some` (one series); `None` fans the rule out
    /// over *every* series sharing the base name, each with its own alert
    /// state and dedup key — how one surge rule watches ~200 country series.
    pub labels: Option<Vec<(String, String)>>,
}

impl MetricSelector {
    /// Selects every series with this base name.
    pub fn any(name: &str) -> Self {
        MetricSelector {
            name: name.to_owned(),
            labels: None,
        }
    }

    /// Selects the single series with this exact name and label set.
    pub fn exact(name: &str, labels: &[(&str, &str)]) -> Self {
        MetricSelector {
            name: name.to_owned(),
            labels: Some(
                labels
                    .iter()
                    .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                    .collect(),
            ),
        }
    }

    /// Whether `id` is one of the series this selector watches.
    pub fn matches(&self, id: &MetricName) -> bool {
        id.name == self.name
            && match &self.labels {
                Some(want) => *want == id.labels,
                None => true,
            }
    }
}

/// The baseline a [`RuleKind::Drift`] rule compares against.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub enum DriftBaseline {
    /// Known-good per-bucket weights (normalised before use), aligned to the
    /// histogram's buckets including the overflow bucket; shorter vectors
    /// are zero-padded. This is the "defender knows the airline's group-size
    /// mix" case — the only option when the campaign starts at t = 0.
    Static(Vec<f64>),
    /// Learn the baseline from observed samples until `until` sim-time, then
    /// freeze — the literal "average week" of Fig. 1. The rule is inert
    /// while learning.
    Learned {
        /// Sim-time at which learning stops and evaluation begins.
        until: fg_core::time::SimTime,
    },
}

/// The drift statistic to compare against the rule threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum DriftStat {
    /// `Σ (p_i − q_i)² / q_i` over normalised distributions — chi-square per
    /// sample, the statistic `fg-detection`'s offline NiP monitor uses
    /// (≈ (k−1)/N under the null, so it is sample-size aware via
    /// `min_samples`).
    ChiSquarePerSample,
    /// Jensen–Shannon divergence in bits, bounded to `[0, 1]`.
    JsDivergence,
}

/// What a rule computes each tick and compares against its trigger.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub enum RuleKind {
    /// Fires when the windowed delta of the series reaches `min_value`.
    Threshold {
        /// Counter or gauge series.
        source: MetricSource,
        /// Window the delta is summed over.
        window: SimDuration,
        /// Trigger level in events (or gauge units) per window.
        min_value: f64,
    },
    /// Fires when the current-window rate reaches `factor` × the trailing
    /// baseline rate, with volume and floor guards.
    Surge {
        /// Counter or gauge series.
        source: MetricSource,
        /// The "now" window whose rate is tested.
        current_window: SimDuration,
        /// How much trailing history forms the seasonal baseline.
        baseline_window: SimDuration,
        /// Surge factor, e.g. 8.0 for "8× the baseline rate".
        factor: f64,
        /// Minimum events in the current window before the rule may fire —
        /// keeps single stray events on a silent series from alerting.
        min_count: f64,
        /// Baseline floor in events/hour: a series with (near-)zero history
        /// is treated as if it ran at this rate, so "0 → anything" surges
        /// stay finite. This is the knob that makes premium-rate countries
        /// with no legitimate traffic alertable without dividing by zero.
        floor_per_hour: f64,
    },
    /// Fires while a gauge's *instantaneous* value is at or above
    /// `min_value` — no differentiation, no window. This is the SLO-style
    /// rule for level signals such as a served p99 latency gauge, which
    /// fluctuates rather than accumulates (a windowed delta of it would be
    /// meaningless).
    Level {
        /// Trigger level in gauge units.
        min_value: f64,
    },
    /// Fires when a histogram's windowed distribution drifts from the
    /// baseline by more than `threshold` under `stat`.
    Drift {
        /// Window the observed distribution is accumulated over.
        window: SimDuration,
        /// Minimum samples in the window before the statistic is meaningful.
        min_samples: u64,
        /// What the observed distribution is compared against.
        baseline: DriftBaseline,
        /// Which drift statistic to compute.
        stat: DriftStat,
        /// Trigger level for the statistic.
        threshold: f64,
    },
}

/// One deployable alert rule: a selector, a trigger, and lifecycle timing.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct AlertRule {
    /// Stable rule id, the first half of every alert's dedup key
    /// (`id` + series identity), e.g. `sms-country-surge`.
    pub id: String,
    /// Which series the rule watches.
    pub selector: MetricSelector,
    /// The trigger.
    pub kind: RuleKind,
    /// How long the condition must hold before `pending` escalates to
    /// `firing` (0 = immediately).
    pub for_duration: SimDuration,
    /// Quiet period after `resolved` before the same dedup key may go
    /// `pending` again.
    pub cooldown: SimDuration,
}

impl AlertRule {
    /// An absolute-level rule over a counter series.
    pub fn threshold(
        id: &str,
        selector: MetricSelector,
        window: SimDuration,
        min_value: f64,
    ) -> Self {
        AlertRule {
            id: id.to_owned(),
            selector,
            kind: RuleKind::Threshold {
                source: MetricSource::Counter,
                window,
                min_value,
            },
            for_duration: SimDuration::ZERO,
            cooldown: SimDuration::from_hours(1),
        }
    }

    /// A surge rule over a counter series (the Table I per-country SMS
    /// detector shape).
    pub fn surge(
        id: &str,
        selector: MetricSelector,
        current_window: SimDuration,
        baseline_window: SimDuration,
        factor: f64,
        min_count: f64,
    ) -> Self {
        AlertRule {
            id: id.to_owned(),
            selector,
            kind: RuleKind::Surge {
                source: MetricSource::Counter,
                current_window,
                baseline_window,
                factor,
                min_count,
                floor_per_hour: 0.5,
            },
            for_duration: SimDuration::ZERO,
            cooldown: SimDuration::from_hours(1),
        }
    }

    /// A cost burn-rate rule: a surge over the cumulative owner-spend gauge
    /// (`fg_sms_owner_cost_units`) — "we are spending N× faster than the
    /// trailing baseline", the alert that replaces waiting for the invoice.
    pub fn burn_rate(
        id: &str,
        current_window: SimDuration,
        baseline_window: SimDuration,
        factor: f64,
        min_spend: f64,
    ) -> Self {
        AlertRule {
            id: id.to_owned(),
            selector: MetricSelector::exact("fg_sms_owner_cost_units", &[]),
            kind: RuleKind::Surge {
                source: MetricSource::Gauge,
                current_window,
                baseline_window,
                factor,
                min_count: min_spend,
                floor_per_hour: 0.05,
            },
            for_duration: SimDuration::ZERO,
            cooldown: SimDuration::from_hours(1),
        }
    }

    /// An instantaneous-level rule over a gauge series ("served p99 is
    /// above the SLO right now"). Pair with [`AlertRule::hold_for`] to
    /// require the level to persist before firing.
    pub fn level(id: &str, selector: MetricSelector, min_value: f64) -> Self {
        AlertRule {
            id: id.to_owned(),
            selector,
            kind: RuleKind::Level { min_value },
            for_duration: SimDuration::ZERO,
            cooldown: SimDuration::from_hours(1),
        }
    }

    /// A distribution-drift rule over a histogram series (the Fig. 1 NiP
    /// detector shape).
    pub fn drift(
        id: &str,
        selector: MetricSelector,
        window: SimDuration,
        min_samples: u64,
        baseline: DriftBaseline,
        stat: DriftStat,
        threshold: f64,
    ) -> Self {
        AlertRule {
            id: id.to_owned(),
            selector,
            kind: RuleKind::Drift {
                window,
                min_samples,
                baseline,
                stat,
                threshold,
            },
            for_duration: SimDuration::ZERO,
            cooldown: SimDuration::from_hours(1),
        }
    }

    /// Builder: require the condition to hold this long before firing.
    pub fn hold_for(mut self, d: SimDuration) -> Self {
        self.for_duration = d;
        self
    }

    /// Builder: quiet period after resolution.
    pub fn with_cooldown(mut self, d: SimDuration) -> Self {
        self.cooldown = d;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectors_match_by_name_and_labels() {
        let any = MetricSelector::any("fg_sms_sent_total");
        let uz = MetricName::with_labels("fg_sms_sent_total", &[("country", "UZ")]);
        let gb = MetricName::with_labels("fg_sms_sent_total", &[("country", "GB")]);
        let other = MetricName::with_labels("fg_requests_total", &[]);
        assert!(any.matches(&uz) && any.matches(&gb));
        assert!(!any.matches(&other));

        let exact = MetricSelector::exact("fg_sms_sent_total", &[("country", "UZ")]);
        assert!(exact.matches(&uz));
        assert!(!exact.matches(&gb));
    }

    #[test]
    fn burn_rate_watches_owner_spend() {
        let r = AlertRule::burn_rate(
            "sms-burn",
            SimDuration::from_hours(6),
            SimDuration::from_days(7),
            3.0,
            1.0,
        );
        assert!(r
            .selector
            .matches(&MetricName::with_labels("fg_sms_owner_cost_units", &[])));
        assert!(matches!(
            r.kind,
            RuleKind::Surge {
                source: MetricSource::Gauge,
                ..
            }
        ));
    }
}
