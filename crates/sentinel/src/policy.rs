//! [`AlertPolicy`] — the alerting deployment an experiment declares.

use crate::rule::AlertRule;
use fg_core::time::SimTime;
use serde::Serialize;

/// The set of alert rules an experiment deploys, plus the declared campaign
/// facts that anchor time-to-detection and incident correlation.
///
/// Every `ExperimentSpec` in `fg-scenario` declares one; `fg-analyze` lints
/// it against the experiment's `DefenceProfile` (an alert rule that can
/// never fire, or an abused channel no rule watches, is the same class of
/// operational misconfiguration the paper's defenders suffered from).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct AlertPolicy {
    /// Policy name, e.g. `case_a-ops`.
    pub name: String,
    /// The deployed rules.
    pub rules: Vec<AlertRule>,
    /// Declared campaign start (sim-time of the first abusive event), the
    /// time-to-detection origin. `None` for experiments without an attack.
    pub attack_start: Option<SimTime>,
    /// The attacker's `ClientId` raw value, used by the incident builder to
    /// pull the attacker's audit records (fingerprint-rotation epochs,
    /// first mitigation engagement).
    pub attacker_client: Option<u64>,
    /// Whether the CI detection gate requires a finite time-to-detection.
    /// `false` documents a deliberate blind spot (e.g. low-and-slow abuse
    /// calibrated to evade the sentinel, §III-A).
    pub expect_detection: bool,
}

impl AlertPolicy {
    /// An empty policy with nothing deployed and no detection expected.
    pub fn named(name: &str) -> Self {
        AlertPolicy {
            name: name.to_owned(),
            rules: Vec::new(),
            attack_start: None,
            attacker_client: None,
            expect_detection: false,
        }
    }

    /// The no-op policy (used by experiments with nothing to watch and by
    /// test scaffolding).
    pub fn none() -> Self {
        AlertPolicy::named("none")
    }

    /// Builder: add a rule.
    pub fn rule(mut self, rule: AlertRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Builder: declare the campaign start and attacker identity, and mark
    /// the policy as expecting detection.
    pub fn campaign(mut self, attack_start: SimTime, attacker_client: u64) -> Self {
        self.attack_start = Some(attack_start);
        self.attacker_client = Some(attacker_client);
        self.expect_detection = true;
        self
    }

    /// Builder: override whether the CI gate demands detection (documented
    /// blind spots keep their campaign facts but set this to `false`).
    pub fn expect_detection(mut self, expect: bool) -> Self {
        self.expect_detection = expect;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::MetricSelector;
    use fg_core::time::SimDuration;

    #[test]
    fn campaign_builder_sets_detection_expectation() {
        let p = AlertPolicy::named("t")
            .rule(AlertRule::threshold(
                "r",
                MetricSelector::any("fg_requests_total"),
                SimDuration::from_hours(1),
                10.0,
            ))
            .campaign(SimTime::from_weeks(1), 1);
        assert!(p.expect_detection);
        assert_eq!(p.attack_start, Some(SimTime::from_weeks(1)));
        assert_eq!(p.attacker_client, Some(1));
        assert_eq!(p.rules.len(), 1);

        let blind = p.expect_detection(false);
        assert!(!blind.expect_detection, "blind spots keep campaign facts");
        assert!(blind.attack_start.is_some());
    }
}
