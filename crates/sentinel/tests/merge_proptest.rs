//! Associativity of cross-seed folding.
//!
//! The multi-seed harness folds per-replicate state in whatever grouping the
//! work-stealing executor produces, so both folding units must be
//! associative: the sentinel's [`RateWindow`] (sliding-window/baseline
//! state) and the metric sections of `TelemetrySnapshot::merge` it mirrors.
//! Values are generated as small integers so f64 addition is exact and the
//! assertions can demand bitwise equality.
//!
//! (Stage-latency and audit sections are excluded deliberately: weighted
//! percentile averaging is float-order sensitive by design, and audit
//! re-sorting only ties on full-record equality.)

use fg_core::time::{SimDuration, SimTime};
use fg_sentinel::RateWindow;
use fg_telemetry::metrics::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};
use fg_telemetry::{AuditSnapshot, MetricName, TelemetrySnapshot};
use proptest::prelude::*;

fn window_from(pushes: &[(u64, u8)]) -> RateWindow {
    let mut w = RateWindow::new(SimDuration::from_mins(5), SimDuration::from_hours(2));
    let mut sorted: Vec<(u64, u8)> = pushes.to_vec();
    sorted.sort();
    for &(minute, delta) in &sorted {
        w.push(SimTime::from_mins(minute), delta as f64);
    }
    w
}

fn snapshot_from(counters: &[(u8, u8)], gauges: &[(u8, u8)], hist: &[u8]) -> TelemetrySnapshot {
    let name = |i: u8| MetricName {
        name: format!("fg_m{}_total", i % 4),
        labels: if i.is_multiple_of(2) {
            vec![("country".to_owned(), format!("C{}", i % 3))]
        } else {
            Vec::new()
        },
    };
    let metrics = MetricsSnapshot {
        counters: counters
            .iter()
            .enumerate()
            .map(|(i, &(id, v))| CounterSample {
                name: name(id),
                value: v as u64 + i as u64,
            })
            .collect(),
        gauges: gauges
            .iter()
            .map(|&(id, v)| GaugeSample {
                name: name(id),
                value: v as f64,
            })
            .collect(),
        histograms: vec![HistogramSample {
            name: MetricName::with_labels("fg_nip_hold", &[]),
            bounds: vec![1.0, 2.0, 3.0],
            buckets: hist.iter().map(|&b| b as u64).collect(),
            count: hist.iter().map(|&b| b as u64).sum(),
            sum: hist.iter().map(|&b| b as f64).sum(),
        }],
        latencies: Vec::new(),
        help: vec![("fg_nip_hold".to_owned(), "NiP of accepted holds".to_owned())],
    };
    TelemetrySnapshot {
        metrics,
        stages: Vec::new(),
        audit: AuditSnapshot {
            recorded: 0,
            evicted: 0,
            decision_totals: Vec::new(),
            records: Vec::new(),
        },
    }
}

proptest! {
    /// `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)` for sliding-window state, including
    /// eviction interplay: intermediate merges may evict early, but only
    /// buckets the final eviction would drop anyway.
    #[test]
    fn prop_rate_window_merge_is_associative(
        a in proptest::collection::vec((0u64..600, 0u8..50), 0..12),
        b in proptest::collection::vec((0u64..600, 0u8..50), 0..12),
        c in proptest::collection::vec((0u64..600, 0u8..50), 0..12),
    ) {
        let (wa, wb, wc) = (window_from(&a), window_from(&b), window_from(&c));

        let mut left = wa.clone();
        left.merge(&wb);
        left.merge(&wc);

        let mut right_inner = wb.clone();
        right_inner.merge(&wc);
        let mut right = wa.clone();
        right.merge(&right_inner);

        prop_assert_eq!(left, right);
    }

    /// Metric-section associativity of `TelemetrySnapshot::merge` — the
    /// cross-seed parity the sentinel's windows rely on.
    #[test]
    fn prop_snapshot_metric_merge_is_associative(
        (ca, ga, ha) in (
            proptest::collection::vec((0u8..8, 0u8..100), 0..6),
            proptest::collection::vec((0u8..8, 0u8..100), 0..4),
            proptest::collection::vec(0u8..100, 4..5),
        ),
        (cb, gb, hb) in (
            proptest::collection::vec((0u8..8, 0u8..100), 0..6),
            proptest::collection::vec((0u8..8, 0u8..100), 0..4),
            proptest::collection::vec(0u8..100, 4..5),
        ),
        (cc, hc) in (
            proptest::collection::vec((0u8..8, 0u8..100), 0..6),
            proptest::collection::vec(0u8..100, 4..5),
        ),
    ) {
        let sa = snapshot_from(&ca, &ga, &ha);
        let sb = snapshot_from(&cb, &gb, &hb);
        let sc = snapshot_from(&cc, &[], &hc);

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut right_inner = sb.clone();
        right_inner.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_inner);

        prop_assert_eq!(left.metrics, right.metrics);
    }
}
