//! Shard-per-core partitioning for keyed defence state.
//!
//! The defence stack's keyed stores (rate-limiter buckets, velocity windows,
//! reputation evidence, fingerprint populations) are single writer by
//! design — the deterministic simulation replays one request at a time. To
//! let one `DefendedApp` saturate a machine, each store is split into
//! `2^n` *shards*, hash-partitioned by key: every key deterministically owns
//! exactly one shard, so shards can be pinned to cores and mutated without
//! any cross-shard coordination, and housekeeping (`evict_idle`/`compact`)
//! stripes across shards independently.
//!
//! Two properties make the partitioning safe for the reproduction harness:
//!
//! * **Shard-count independence of aggregates.** Summing per-shard counters
//!   (grants, rejections, tracked keys) in shard-index order is
//!   order-insensitive for the integer totals the telemetry layer exports,
//!   so a 4-shard store replayed single-threaded reports byte-identical
//!   results to a 1-shard store (guarded by
//!   `scenario/tests/shard_independence.rs`).
//! * **Bit-identical single-shard path.** With `shards == 1` the mask is
//!   zero, every key maps to shard 0, and the store *is* the pre-sharding
//!   flat map — experiments keep their committed artifacts.
//!
//! The shard index is derived from the key's [`FxHasher`] hash, finalised
//! through [`splitmix64`]: Fx alone leaves the low bits weak for small
//! integer keys, and the shard mask keys off exactly those bits.
//!
//! # Example
//!
//! ```
//! use fg_core::shard::ShardedStore;
//!
//! let mut store: ShardedStore<u64, Vec<u64>> = ShardedStore::new(4, |_| Vec::new());
//! assert_eq!(store.shard_count(), 4);
//! for key in 0..100u64 {
//!     store.shard_mut(&key).push(key);
//! }
//! let total: usize = store.shards().iter().map(Vec::len).sum();
//! assert_eq!(total, 100);
//! // A key's shard is stable: re-lookup finds what was stored.
//! assert!(store.shard(&7).contains(&7));
//! ```

use crate::hash::FxHasher;
use crate::rng::splitmix64;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;

/// How a `DefendedApp` (and the keyed stores beneath it) partitions state.
///
/// `Deterministic` is the reproduction default: one shard, one writer,
/// bit-identical to the pre-sharding code path. `Sharded` hash-partitions
/// every keyed store into `shards` (rounded up to a power of two) so
/// housekeeping stripes per shard and a service-style deployment can pin
/// shards to cores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ConcurrencyMode {
    /// Single-shard, single-writer: the experiment-grade deterministic path.
    #[default]
    Deterministic,
    /// Hash-partitioned keyed state with `shards` partitions per store.
    Sharded {
        /// Requested shard count; rounded up to a power of two, minimum 1.
        shards: usize,
    },
}

impl ConcurrencyMode {
    /// Builds the mode implied by a shard count: `<= 1` is deterministic.
    pub fn from_shards(shards: usize) -> Self {
        if shards <= 1 {
            ConcurrencyMode::Deterministic
        } else {
            ConcurrencyMode::Sharded { shards }
        }
    }

    /// The effective shard count (power of two, at least 1).
    pub fn shard_count(self) -> usize {
        match self {
            ConcurrencyMode::Deterministic => 1,
            ConcurrencyMode::Sharded { shards } => shards.max(1).next_power_of_two(),
        }
    }
}

/// A keyed store split into `2^n` hash-partitioned shards.
///
/// `V` is the per-shard sub-store (a map of buckets, a map of sliding
/// windows, …); `K` is the key type whose hash picks the shard. The store
/// owns routing only — sub-store semantics live in `V`.
#[derive(Clone, Debug)]
pub struct ShardedStore<K, V> {
    shards: Vec<V>,
    mask: u64,
    // `fn(&K)` keeps the store covariant-free and `Send`/`Sync` independent
    // of `K` while still tying `shard_index` to one key type.
    _key: PhantomData<fn(&K)>,
}

impl<K: Hash, V> ShardedStore<K, V> {
    /// Creates a store with `shards` partitions (rounded up to a power of
    /// two, minimum 1), building each shard with `mk(shard_index)`.
    pub fn new(shards: usize, mk: impl FnMut(usize) -> V) -> Self {
        let count = shards.max(1).next_power_of_two();
        ShardedStore {
            shards: (0..count).map(mk).collect(),
            mask: (count - 1) as u64,
            _key: PhantomData,
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index owning `key` — a pure function of the key and the
    /// shard count, identical across runs and processes.
    #[inline]
    pub fn shard_index(&self, key: &K) -> usize {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        (splitmix64(h.finish()) & self.mask) as usize
    }

    /// The shard owning `key`.
    #[inline]
    pub fn shard(&self, key: &K) -> &V {
        &self.shards[self.shard_index(key)]
    }

    /// Mutable access to the shard owning `key`.
    #[inline]
    pub fn shard_mut(&mut self, key: &K) -> &mut V {
        let idx = self.shard_index(key);
        &mut self.shards[idx]
    }

    /// All shards in index order (aggregate reads sum over this).
    pub fn shards(&self) -> &[V] {
        &self.shards
    }

    /// All shards, mutably — striped housekeeping iterates this, and
    /// `std::thread::scope` workers may each take one `&mut V` for
    /// coordination-free parallel updates.
    pub fn shards_mut(&mut self) -> &mut [V] {
        &mut self.shards
    }

    /// Folds `f` over all shards in index order.
    pub fn fold<T>(&self, init: T, f: impl FnMut(T, &V) -> T) -> T {
        self.shards.iter().fold(init, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_counts_round_to_powers_of_two() {
        for (requested, effective) in [(0, 1), (1, 1), (2, 2), (3, 4), (5, 8), (8, 8), (9, 16)] {
            let s: ShardedStore<u64, ()> = ShardedStore::new(requested, |_| ());
            assert_eq!(s.shard_count(), effective, "requested {requested}");
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let s: ShardedStore<u64, ()> = ShardedStore::new(1, |_| ());
        for key in 0..1000u64 {
            assert_eq!(s.shard_index(&key), 0);
        }
    }

    #[test]
    fn shard_index_is_stable_and_in_range() {
        let s: ShardedStore<u64, ()> = ShardedStore::new(8, |_| ());
        for key in 0..1000u64 {
            let idx = s.shard_index(&key);
            assert!(idx < 8);
            assert_eq!(idx, s.shard_index(&key), "must be a pure function");
        }
    }

    #[test]
    fn small_integer_keys_spread_across_shards() {
        // Fx alone leaves low bits weak for sequential integers; the
        // splitmix64 finaliser must spread them so no shard is starved.
        let s: ShardedStore<u64, ()> = ShardedStore::new(8, |_| ());
        let mut hist = [0usize; 8];
        for key in 0..8000u64 {
            hist[s.shard_index(&key)] += 1;
        }
        for (i, &n) in hist.iter().enumerate() {
            assert!(
                (500..=1500).contains(&n),
                "shard {i} got {n} of 8000 keys — partition is badly skewed"
            );
        }
    }

    #[test]
    fn shard_mut_and_shard_agree() {
        let mut s: ShardedStore<&str, Vec<&'static str>> = ShardedStore::new(4, |_| Vec::new());
        s.shard_mut(&"booking-X").push("evidence");
        assert_eq!(s.shard(&"booking-X").len(), 1);
        let total: usize = s.fold(0, |acc, v| acc + v.len());
        assert_eq!(total, 1);
    }

    #[test]
    fn mk_sees_shard_indices_in_order() {
        let s: ShardedStore<u64, usize> = ShardedStore::new(4, |i| i);
        assert_eq!(s.shards(), &[0, 1, 2, 3]);
    }

    #[test]
    fn concurrency_mode_shard_counts() {
        assert_eq!(ConcurrencyMode::Deterministic.shard_count(), 1);
        assert_eq!(ConcurrencyMode::Sharded { shards: 6 }.shard_count(), 8);
        assert_eq!(
            ConcurrencyMode::from_shards(1),
            ConcurrencyMode::Deterministic
        );
        assert_eq!(
            ConcurrencyMode::from_shards(4),
            ConcurrencyMode::Sharded { shards: 4 }
        );
        assert_eq!(ConcurrencyMode::default(), ConcurrencyMode::Deterministic);
    }
}
