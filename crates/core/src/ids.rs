//! Strongly-typed identifiers.
//!
//! Every entity that crosses a crate boundary is identified by a newtype, so
//! a flight id can never be confused with a client id. Identifiers that the
//! paper's attacks rotate or randomize (booking references, phone numbers)
//! carry just enough structure to support the corresponding heuristics.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! numeric_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Returns the raw numeric value.
            pub const fn as_u64(self) -> u64 {
                self.0
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

numeric_id!(
    /// A logical end client (human user or bot instance) of the platform.
    ClientId,
    "c"
);
numeric_id!(
    /// A web session, as reconstructed by sessionization over web logs.
    SessionId,
    "s"
);
numeric_id!(
    /// A flight instance (route + departure date).
    FlightId,
    "f"
);
numeric_id!(
    /// A passenger record inside a booking.
    PassengerId,
    "p"
);

/// A six-character alphanumeric booking reference (PNR-style record locator).
///
/// Booking references are what SMS-pumping attacks in the paper's §IV-C abuse:
/// a handful of real references were used to request boarding-pass SMSes at
/// high volume, so rate limits keyed on this identifier matter.
///
/// # Example
///
/// ```
/// use fg_core::ids::BookingRef;
///
/// let r = BookingRef::from_index(0);
/// assert_eq!(r.as_str().len(), 6);
/// assert!(r.as_str().chars().all(|c| c.is_ascii_alphanumeric()));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BookingRef([u8; 6]);

/// Alphabet used by [`BookingRef`]: unambiguous upper-case letters and digits.
const PNR_ALPHABET: &[u8] = b"ABCDEFGHJKLMNPQRSTUVWXYZ23456789";

impl BookingRef {
    /// Deterministically maps an index to a booking reference.
    ///
    /// Distinct indices below `32^6` map to distinct references.
    pub fn from_index(mut idx: u64) -> Self {
        let mut buf = [0u8; 6];
        for slot in buf.iter_mut() {
            *slot = PNR_ALPHABET[(idx % 32) as usize];
            idx /= 32;
        }
        BookingRef(buf)
    }

    /// Draws a uniformly random booking reference.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        BookingRef::from_index(rng.gen_range(0..32u64.pow(6)))
    }

    /// The reference as a string slice.
    pub fn as_str(&self) -> &str {
        // PNR_ALPHABET is pure ASCII, so the bytes are always valid UTF-8.
        std::str::from_utf8(&self.0).expect("booking ref is ASCII")
    }
}

impl fmt::Debug for BookingRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BookingRef({})", self.as_str())
    }
}

impl fmt::Display for BookingRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// ISO-3166-style two-letter country code.
///
/// # Example
///
/// ```
/// use fg_core::ids::CountryCode;
///
/// let uz = CountryCode::new("UZ");
/// assert_eq!(uz.as_str(), "UZ");
/// assert_eq!(uz.to_string(), "UZ");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CountryCode([u8; 2]);

impl CountryCode {
    /// Creates a country code from a two-character ASCII string.
    ///
    /// # Panics
    ///
    /// Panics if `code` is not exactly two ASCII characters. Use this only
    /// with literals; parse untrusted input with [`CountryCode::try_new`].
    pub fn new(code: &str) -> Self {
        Self::try_new(code).expect("country code must be two ASCII characters")
    }

    /// Fallible constructor for untrusted input.
    pub fn try_new(code: &str) -> Option<Self> {
        let bytes = code.as_bytes();
        if bytes.len() == 2 && bytes.iter().all(u8::is_ascii) {
            Some(CountryCode([
                bytes[0].to_ascii_uppercase(),
                bytes[1].to_ascii_uppercase(),
            ]))
        } else {
            None
        }
    }

    /// The code as a string slice.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.0).expect("country code is ASCII")
    }
}

impl fmt::Debug for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CountryCode({})", self.as_str())
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An E.164-style phone number: a country plus a national significant number.
///
/// # Example
///
/// ```
/// use fg_core::ids::{CountryCode, PhoneNumber};
///
/// let n = PhoneNumber::new(CountryCode::new("UZ"), 935_550_123);
/// assert_eq!(n.country(), CountryCode::new("UZ"));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PhoneNumber {
    country: CountryCode,
    national: u64,
}

impl PhoneNumber {
    /// Creates a phone number in `country` with the given national number.
    pub fn new(country: CountryCode, national: u64) -> Self {
        PhoneNumber { country, national }
    }

    /// The destination country of this number.
    pub fn country(&self) -> CountryCode {
        self.country
    }

    /// The national significant number.
    pub fn national(&self) -> u64 {
        self.national
    }
}

impl fmt::Display for PhoneNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+{}-{}", self.country, self.national)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn numeric_ids_display_with_prefix() {
        assert_eq!(ClientId(7).to_string(), "c7");
        assert_eq!(SessionId(7).to_string(), "s7");
        assert_eq!(FlightId(7).to_string(), "f7");
        assert_eq!(PassengerId(7).to_string(), "p7");
    }

    #[test]
    fn booking_ref_distinct_for_distinct_indices() {
        let a = BookingRef::from_index(1);
        let b = BookingRef::from_index(2);
        assert_ne!(a, b);
        assert_eq!(a, BookingRef::from_index(1));
    }

    #[test]
    fn booking_ref_random_is_deterministic_per_seed() {
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        assert_eq!(BookingRef::random(&mut r1), BookingRef::random(&mut r2));
    }

    #[test]
    fn country_code_normalizes_case() {
        assert_eq!(CountryCode::new("uz"), CountryCode::new("UZ"));
        assert!(CountryCode::try_new("USA").is_none());
        assert!(CountryCode::try_new("U").is_none());
    }

    #[test]
    fn phone_number_accessors() {
        let n = PhoneNumber::new(CountryCode::new("IR"), 9_123_456);
        assert_eq!(n.country().as_str(), "IR");
        assert_eq!(n.national(), 9_123_456);
        assert_eq!(n.to_string(), "+IR-9123456");
    }
}
