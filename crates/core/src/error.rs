//! Shared error types.

use std::error::Error;
use std::fmt;

/// Errors produced by core primitives.
///
/// Downstream crates define their own richer error enums and convert into /
/// wrap this type where a core primitive is the underlying cause.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// An identifier string failed validation (wrong length / alphabet).
    InvalidIdentifier {
        /// What kind of identifier was being parsed.
        kind: &'static str,
        /// The offending input.
        input: String,
    },
    /// A requested histogram bucket or index was out of range.
    IndexOutOfRange {
        /// The requested index.
        index: usize,
        /// The number of valid slots.
        len: usize,
    },
    /// An operation that requires at least one sample was called on an empty
    /// accumulator.
    EmptyAccumulator,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidIdentifier { kind, input } => {
                write!(f, "invalid {kind} identifier: {input:?}")
            }
            CoreError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for length {len}")
            }
            CoreError::EmptyAccumulator => {
                write!(f, "operation requires at least one sample")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync() {
        fn assert_bounds<T: Send + Sync + Error + 'static>() {}
        assert_bounds::<CoreError>();
    }

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = CoreError::InvalidIdentifier {
            kind: "country code",
            input: "USA".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("country code"));
        assert!(msg.contains("USA"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn index_error_display() {
        let e = CoreError::IndexOutOfRange { index: 9, len: 3 };
        assert_eq!(e.to_string(), "index 9 out of range for length 3");
    }
}
