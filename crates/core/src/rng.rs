//! Deterministic randomness plumbing.
//!
//! A simulation run is reproducible iff every stochastic decision is derived
//! from the run's master seed. [`SeedFork`] derives independent child seeds
//! from a parent seed and a label, so that adding a new consumer of
//! randomness in one subsystem does not perturb the stream seen by another
//! (the classic "seed hygiene" problem in discrete-event simulators).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent, labelled child seeds from a master seed.
///
/// Internally this is a tiny SplitMix64-style mixer over the parent seed and
/// a label hash — not cryptographic, but well-distributed, stable across
/// platforms, and dependency-free.
///
/// # Example
///
/// ```
/// use fg_core::rng::SeedFork;
///
/// let fork = SeedFork::new(42);
/// let workload_rng = fork.rng("workload");
/// let attacker_rng = fork.rng("attacker");
/// // Streams are independent: reordering draws in one never affects the other.
/// # let _ = (workload_rng, attacker_rng);
/// assert_ne!(fork.seed("workload"), fork.seed("attacker"));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedFork {
    master: u64,
}

impl SeedFork {
    /// Creates a fork rooted at `master`.
    pub const fn new(master: u64) -> Self {
        SeedFork { master }
    }

    /// The master seed this fork was created with.
    pub const fn master(self) -> u64 {
        self.master
    }

    /// Derives the child seed for `label`.
    pub fn seed(self, label: &str) -> u64 {
        let mut h = self.master ^ 0x9E37_79B9_7F4A_7C15;
        for &b in label.as_bytes() {
            h ^= u64::from(b);
            h = splitmix64(h);
        }
        splitmix64(h)
    }

    /// Derives the child seed for a `(label, index)` pair, for per-entity
    /// streams (e.g. one stream per bot).
    pub fn seed_indexed(self, label: &str, index: u64) -> u64 {
        splitmix64(self.seed(label) ^ splitmix64(index ^ 0xD1B5_4A32_D192_ED03))
    }

    /// A ready-to-use [`StdRng`] for `label`.
    pub fn rng(self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.seed(label))
    }

    /// A ready-to-use [`StdRng`] for a `(label, index)` pair.
    pub fn rng_indexed(self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed_indexed(label, index))
    }

    /// A sub-fork rooted at `label`, for hierarchical seed derivation.
    pub fn fork(self, label: &str) -> SeedFork {
        SeedFork::new(self.seed(label))
    }
}

/// SplitMix64 finalizer. Public within the crate family because the
/// fingerprint sampler reuses it to hash attribute tuples deterministically.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn labels_give_distinct_seeds() {
        let f = SeedFork::new(1);
        assert_ne!(f.seed("a"), f.seed("b"));
        assert_ne!(f.seed("ab"), f.seed("ba"));
    }

    #[test]
    fn same_label_same_seed() {
        let f = SeedFork::new(7);
        assert_eq!(f.seed("x"), f.seed("x"));
        assert_eq!(f.seed_indexed("x", 3), f.seed_indexed("x", 3));
        assert_ne!(f.seed_indexed("x", 3), f.seed_indexed("x", 4));
    }

    #[test]
    fn different_masters_diverge() {
        assert_ne!(SeedFork::new(1).seed("x"), SeedFork::new(2).seed("x"));
    }

    #[test]
    fn rng_streams_reproducible() {
        let f = SeedFork::new(99);
        let a: u64 = f.rng("stream").gen();
        let b: u64 = f.rng("stream").gen();
        assert_eq!(a, b);
    }

    #[test]
    fn fork_is_hierarchical() {
        let f = SeedFork::new(5);
        assert_eq!(f.fork("child").seed("leaf"), f.fork("child").seed("leaf"));
        assert_ne!(f.fork("child").seed("leaf"), f.seed("leaf"));
    }

    #[test]
    fn splitmix_spreads_bits() {
        // Consecutive inputs should not produce consecutive outputs.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert!(a.abs_diff(b) > 1_000_000);
    }
}
