//! Deterministic discrete-event queue.
//!
//! The scenario engine in `fg-scenario` drives the whole simulation off a
//! single [`EventQueue`]. Determinism requires a *total* order on events:
//! ties on timestamp are broken by insertion sequence number, so two events
//! scheduled for the same instant always pop in the order they were pushed,
//! regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A time-ordered, insertion-stable event queue.
///
/// # Example
///
/// ```
/// use fg_core::event::EventQueue;
/// use fg_core::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(10), "b");
/// q.schedule(SimTime::from_secs(10), "c");
/// q.schedule(SimTime::from_secs(1), "a");
///
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest-seq)
        // entry is the maximum.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `deadline`.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        let out: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_secs(5), i);
        }
        let out: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "late");
        q.schedule(SimTime::from_secs(1), "early");
        assert_eq!(
            q.pop_before(SimTime::from_secs(5)).map(|(_, e)| e),
            Some("early")
        );
        assert_eq!(q.pop_before(SimTime::from_secs(5)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    proptest! {
        /// Popping always yields a non-decreasing time sequence, for any
        /// schedule order.
        #[test]
        fn prop_pop_order_is_monotone(times in proptest::collection::vec(0u64..10_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_millis(t), i);
            }
            let mut last = SimTime::ZERO;
            let mut count = 0;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                count += 1;
            }
            prop_assert_eq!(count, times.len());
        }

        /// Events with identical timestamps pop in insertion order.
        #[test]
        fn prop_stable_for_equal_times(n in 1usize..100) {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule(SimTime::from_secs(1), i);
            }
            let out: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            prop_assert_eq!(out, (0..n).collect::<Vec<_>>());
        }
    }
}
