//! # fg-core
//!
//! Core primitives shared by every crate in the FeatureGuard workspace — the
//! reproduction of *"When Features Gets Exploited: Functional Abuse and the
//! Future of Industrial Fraud Prevention"* (DSN 2025).
//!
//! The workspace models an online reservation platform under attack from
//! functional-abuse bots (Denial of Inventory / Seat Spinning, SMS Pumping)
//! and the detection/mitigation pipeline defending it. Everything runs inside
//! a deterministic discrete-event simulation, and this crate provides the
//! shared substrate:
//!
//! * [`time`] — simulated wall-clock time ([`SimTime`], [`SimDuration`]) with
//!   calendar helpers (weeks, days, hours) used by every scheduler and ledger.
//! * [`event`] — a deterministic, seq-tie-broken event queue for
//!   discrete-event simulation.
//! * [`rng`] — seed-forking helpers so that independent subsystems draw from
//!   independent, reproducible random streams.
//! * [`ids`] — strongly-typed identifiers (clients, sessions, flights,
//!   booking references, phone numbers, countries).
//! * [`money`] — fixed-point money arithmetic for the attacker/defender
//!   economics models.
//! * [`stats`] — streaming statistics: histograms, categorical distributions,
//!   time-bucketed series, summary accumulators.
//! * [`hash`] — fast deterministic hashing ([`hash::FxHashMap`]) for the
//!   per-event keyed maps on the request path.
//! * [`shard`] — shard-per-core partitioning ([`ShardedStore`]) for those
//!   keyed maps, plus the [`ConcurrencyMode`] selecting it.
//! * [`error`] — the shared error type hierarchy.
//!
//! # Example
//!
//! ```
//! use fg_core::time::{SimTime, SimDuration};
//! use fg_core::event::EventQueue;
//!
//! let mut queue = EventQueue::new();
//! queue.schedule(SimTime::ZERO + SimDuration::from_secs(5), "hold expires");
//! queue.schedule(SimTime::ZERO + SimDuration::from_secs(1), "request arrives");
//!
//! let (t, what) = queue.pop().unwrap();
//! assert_eq!(t, SimTime::ZERO + SimDuration::from_secs(1));
//! assert_eq!(what, "request arrives");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod event;
pub mod hash;
pub mod ids;
pub mod money;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;

pub use error::CoreError;
pub use event::EventQueue;
pub use ids::{BookingRef, ClientId, CountryCode, FlightId, PhoneNumber, SessionId};
pub use money::Money;
pub use rng::SeedFork;
pub use shard::{ConcurrencyMode, ShardedStore};
pub use time::{SimDuration, SimTime};
