//! Simulated time.
//!
//! All FeatureGuard components run against a simulated clock rather than the
//! host's. [`SimTime`] is an absolute instant (milliseconds since the
//! simulation epoch) and [`SimDuration`] a span between instants. Both are
//! plain `u64`/`i64`-backed `Copy` types so they can be used freely as map
//! keys and event timestamps.
//!
//! Calendar helpers treat the epoch as midnight on a Monday, which makes
//! "week 0 / week 1 / week 2" experiment phrasing (as in the paper's Fig. 1)
//! line up with [`SimTime::week_index`].

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Milliseconds in one second.
pub const MILLIS_PER_SEC: u64 = 1_000;
/// Milliseconds in one minute.
pub const MILLIS_PER_MIN: u64 = 60 * MILLIS_PER_SEC;
/// Milliseconds in one hour.
pub const MILLIS_PER_HOUR: u64 = 60 * MILLIS_PER_MIN;
/// Milliseconds in one day.
pub const MILLIS_PER_DAY: u64 = 24 * MILLIS_PER_HOUR;
/// Milliseconds in one (7-day) week.
pub const MILLIS_PER_WEEK: u64 = 7 * MILLIS_PER_DAY;

/// An absolute instant in simulated time.
///
/// Internally a count of milliseconds since the simulation epoch.
///
/// # Example
///
/// ```
/// use fg_core::time::{SimTime, SimDuration};
///
/// let t = SimTime::from_days(9) + SimDuration::from_hours(3);
/// assert_eq!(t.week_index(), 1);
/// assert_eq!(t.day_of_week(), 2); // epoch is a Monday, day 9 is a Wednesday
/// assert_eq!(t.hour_of_day(), 3);
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinite" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MILLIS_PER_SEC)
    }

    /// Creates an instant `mins` minutes after the epoch.
    pub const fn from_mins(mins: u64) -> Self {
        SimTime(mins * MILLIS_PER_MIN)
    }

    /// Creates an instant `hours` hours after the epoch.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * MILLIS_PER_HOUR)
    }

    /// Creates an instant `days` days after the epoch.
    pub const fn from_days(days: u64) -> Self {
        SimTime(days * MILLIS_PER_DAY)
    }

    /// Creates an instant `weeks` weeks after the epoch.
    pub const fn from_weeks(weeks: u64) -> Self {
        SimTime(weeks * MILLIS_PER_WEEK)
    }

    /// Raw milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0 / MILLIS_PER_SEC
    }

    /// Whole hours since the epoch.
    pub const fn as_hours(self) -> u64 {
        self.0 / MILLIS_PER_HOUR
    }

    /// Whole days since the epoch.
    pub const fn as_days(self) -> u64 {
        self.0 / MILLIS_PER_DAY
    }

    /// Zero-based index of the calendar week containing this instant.
    pub const fn week_index(self) -> u64 {
        self.0 / MILLIS_PER_WEEK
    }

    /// Zero-based day of week (0 = Monday … 6 = Sunday).
    pub const fn day_of_week(self) -> u64 {
        (self.0 / MILLIS_PER_DAY) % 7
    }

    /// Hour of day, `0..24`.
    pub const fn hour_of_day(self) -> u64 {
        (self.0 / MILLIS_PER_HOUR) % 24
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_millis(self.0.saturating_sub(earlier.0) as i64)
    }

    /// Adds `d`, saturating at [`SimTime::MAX`]. Negative durations saturate
    /// at [`SimTime::ZERO`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        if d.0 >= 0 {
            SimTime(self.0.saturating_add(d.0 as u64))
        } else {
            SimTime(self.0.saturating_sub(d.0.unsigned_abs()))
        }
    }

    /// The later of `self` and `other`.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of `self` and `other`.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let days = self.as_days();
        let hours = self.hour_of_day();
        let mins = (self.0 / MILLIS_PER_MIN) % 60;
        let secs = self.as_secs() % 60;
        write!(f, "d{days} {hours:02}:{mins:02}:{secs:02}")
    }
}

/// A span of simulated time. Signed so that subtraction is total.
///
/// # Example
///
/// ```
/// use fg_core::time::{SimTime, SimDuration};
///
/// let a = SimTime::from_hours(2);
/// let b = SimTime::from_hours(5);
/// assert_eq!(b - a, SimDuration::from_hours(3));
/// assert_eq!((a - b).as_hours_f64(), -3.0);
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimDuration(i64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw (signed) milliseconds.
    pub const fn from_millis(ms: i64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: i64) -> Self {
        SimDuration(secs * MILLIS_PER_SEC as i64)
    }

    /// Creates a duration of `mins` minutes.
    pub const fn from_mins(mins: i64) -> Self {
        SimDuration(mins * MILLIS_PER_MIN as i64)
    }

    /// Creates a duration of `hours` hours.
    pub const fn from_hours(hours: i64) -> Self {
        SimDuration(hours * MILLIS_PER_HOUR as i64)
    }

    /// Creates a duration of `days` days.
    pub const fn from_days(days: i64) -> Self {
        SimDuration(days * MILLIS_PER_DAY as i64)
    }

    /// Creates a duration from fractional hours (useful for "5.3 hours").
    pub fn from_hours_f64(hours: f64) -> Self {
        SimDuration((hours * MILLIS_PER_HOUR as f64).round() as i64)
    }

    /// Raw signed milliseconds.
    pub const fn as_millis(self) -> i64 {
        self.0
    }

    /// This duration expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_SEC as f64
    }

    /// This duration expressed in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_HOUR as f64
    }

    /// This duration expressed in fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_DAY as f64
    }

    /// `true` if this duration is strictly negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Absolute value.
    pub const fn abs(self) -> SimDuration {
        SimDuration(self.0.abs())
    }

    /// Multiplies the duration by a scalar, rounding to the nearest ms.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k).round() as i64)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.abs() >= MILLIS_PER_HOUR as i64 {
            write!(f, "{:.2}h", self.as_hours_f64())
        } else if self.0.abs() >= MILLIS_PER_SEC as i64 {
            write!(f, "{:.2}s", self.as_secs_f64())
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        self.saturating_add(SimDuration(-rhs.0))
    }
}

impl SubAssign<SimDuration> for SimTime {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 as i64 - rhs.0 as i64)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calendar_helpers() {
        let t = SimTime::from_weeks(2) + SimDuration::from_days(3) + SimDuration::from_hours(14);
        assert_eq!(t.week_index(), 2);
        assert_eq!(t.day_of_week(), 3);
        assert_eq!(t.hour_of_day(), 14);
        assert_eq!(t.as_days(), 17);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let a = SimTime::from_hours(10);
        let d = SimDuration::from_mins(90);
        assert_eq!((a + d) - a, d);
        assert_eq!((a + d) - d, a);
    }

    #[test]
    fn negative_duration_saturates_at_zero() {
        let t = SimTime::from_secs(1);
        assert_eq!(t - SimDuration::from_secs(10), SimTime::ZERO);
    }

    #[test]
    fn saturating_since_is_zero_when_earlier_is_later() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(9);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(4));
    }

    #[test]
    fn fractional_hours() {
        let d = SimDuration::from_hours_f64(5.3);
        assert!((d.as_hours_f64() - 5.3).abs() < 1e-6);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_days(1).to_string(), "d1 00:00:00");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.00s");
        assert_eq!(SimDuration::from_hours(3).to_string(), "3.00h");
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_hours(2).mul_f64(1.5);
        assert_eq!(d, SimDuration::from_hours(3));
    }
}
