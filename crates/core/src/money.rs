//! Fixed-point money arithmetic.
//!
//! The paper's §V argues that the strongest deterrent against functional
//! abuse is destroying the attacker's economics. The workspace therefore
//! accounts costs and revenue on both sides of every attack (SMS termination
//! fees, proxy rental, CAPTCHA-solver fees, ticket purchases, lost sales) in
//! a single fixed-point currency type to avoid float drift in long runs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// An amount of money in micro-units (1 unit = 1_000_000 micros).
///
/// Signed: negative amounts represent losses / costs.
///
/// # Example
///
/// ```
/// use fg_core::money::Money;
///
/// let sms_cost = Money::from_f64(0.25);
/// let total = sms_cost * 1_000i64;
/// assert_eq!(total, Money::from_units(250));
/// assert_eq!(total.to_string(), "$250.00");
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Money(i64);

/// Micro-units per whole currency unit.
const MICROS: i64 = 1_000_000;

impl Money {
    /// Zero money.
    pub const ZERO: Money = Money(0);

    /// Creates an amount from whole currency units.
    pub const fn from_units(units: i64) -> Self {
        Money(units * MICROS)
    }

    /// Creates an amount from cents (hundredths of a unit).
    pub const fn from_cents(cents: i64) -> Self {
        Money(cents * (MICROS / 100))
    }

    /// Creates an amount from raw micro-units.
    pub const fn from_micros(micros: i64) -> Self {
        Money(micros)
    }

    /// Creates an amount from a float, rounding to the nearest micro.
    pub fn from_f64(units: f64) -> Self {
        Money((units * MICROS as f64).round() as i64)
    }

    /// Raw micro-units.
    pub const fn as_micros(self) -> i64 {
        self.0
    }

    /// Value as fractional currency units.
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / MICROS as f64
    }

    /// `true` if strictly negative (a net cost).
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// `true` if strictly positive (a net gain).
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// Multiplies by a float factor, rounding to the nearest micro.
    pub fn mul_f64(self, k: f64) -> Money {
        Money((self.0 as f64 * k).round() as i64)
    }

    /// Saturating addition (ledgers must never wrap).
    pub fn saturating_add(self, rhs: Money) -> Money {
        Money(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        let units = abs / MICROS as u64;
        let cents = (abs % MICROS as u64) / (MICROS as u64 / 100);
        write!(f, "{sign}${units}.{cents:02}")
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0 + rhs.0)
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        self.0 += rhs.0;
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money(self.0 - rhs.0)
    }
}

impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        self.0 -= rhs.0;
    }
}

impl Neg for Money {
    type Output = Money;
    fn neg(self) -> Money {
        Money(-self.0)
    }
}

impl Mul<i64> for Money {
    type Output = Money;
    fn mul(self, rhs: i64) -> Money {
        Money(self.0 * rhs)
    }
}

impl Mul<u64> for Money {
    type Output = Money;
    fn mul(self, rhs: u64) -> Money {
        Money(self.0 * rhs as i64)
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Money::from_units(3), Money::from_cents(300));
        assert_eq!(Money::from_cents(25), Money::from_f64(0.25));
        assert_eq!(Money::from_micros(MICROS), Money::from_units(1));
    }

    #[test]
    fn display_formats_signs_and_cents() {
        assert_eq!(Money::from_cents(1250).to_string(), "$12.50");
        assert_eq!((-Money::from_cents(5)).to_string(), "-$0.05");
        assert_eq!(Money::ZERO.to_string(), "$0.00");
    }

    #[test]
    fn arithmetic() {
        let a = Money::from_units(10);
        let b = Money::from_units(4);
        assert_eq!(a - b, Money::from_units(6));
        assert_eq!(a + b, Money::from_units(14));
        assert_eq!(b * 3i64, Money::from_units(12));
        assert_eq!(a.mul_f64(0.5), Money::from_units(5));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Money = (1..=4).map(Money::from_units).sum();
        assert_eq!(total, Money::from_units(10));
    }

    #[test]
    fn sign_predicates() {
        assert!(Money::from_cents(1).is_positive());
        assert!((-Money::from_cents(1)).is_negative());
        assert!(!Money::ZERO.is_positive());
        assert!(!Money::ZERO.is_negative());
    }

    #[test]
    fn saturating_add_does_not_wrap() {
        let max = Money::from_micros(i64::MAX);
        assert_eq!(max.saturating_add(Money::from_units(1)), max);
    }
}
