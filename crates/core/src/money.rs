//! Fixed-point money arithmetic.
//!
//! The paper's §V argues that the strongest deterrent against functional
//! abuse is destroying the attacker's economics. The workspace therefore
//! accounts costs and revenue on both sides of every attack (SMS termination
//! fees, proxy rental, CAPTCHA-solver fees, ticket purchases, lost sales) in
//! a single fixed-point currency type to avoid float drift in long runs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// An amount of money in micro-units (1 unit = 1_000_000 micros).
///
/// Signed: negative amounts represent losses / costs.
///
/// All arithmetic saturates at the `i64` range instead of wrapping: the
/// economics ledgers accumulate per-request amounts over multi-year
/// sim-time horizons, where a silent two's-complement wrap would flip a
/// catastrophic attacker loss into a profit (release builds don't panic on
/// overflow — they wrap). A saturated ledger is visibly pegged at the rail;
/// a wrapped one lies.
///
/// # Example
///
/// ```
/// use fg_core::money::Money;
///
/// let sms_cost = Money::from_f64(0.25);
/// let total = sms_cost * 1_000i64;
/// assert_eq!(total, Money::from_units(250));
/// assert_eq!(total.to_string(), "$250.00");
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Money(i64);

/// Micro-units per whole currency unit.
const MICROS: i64 = 1_000_000;

impl Money {
    /// Zero money.
    pub const ZERO: Money = Money(0);

    /// Creates an amount from whole currency units (saturating at the
    /// `i64` micro-unit range).
    pub const fn from_units(units: i64) -> Self {
        Money(units.saturating_mul(MICROS))
    }

    /// Creates an amount from cents (hundredths of a unit), saturating at
    /// the `i64` micro-unit range.
    pub const fn from_cents(cents: i64) -> Self {
        Money(cents.saturating_mul(MICROS / 100))
    }

    /// Creates an amount from raw micro-units.
    pub const fn from_micros(micros: i64) -> Self {
        Money(micros)
    }

    /// Creates an amount from a float, rounding to the nearest micro.
    pub fn from_f64(units: f64) -> Self {
        Money((units * MICROS as f64).round() as i64)
    }

    /// Raw micro-units.
    pub const fn as_micros(self) -> i64 {
        self.0
    }

    /// Value as fractional currency units.
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / MICROS as f64
    }

    /// `true` if strictly negative (a net cost).
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// `true` if strictly positive (a net gain).
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// Multiplies by a float factor, rounding to the nearest micro.
    pub fn mul_f64(self, k: f64) -> Money {
        Money((self.0 as f64 * k).round() as i64)
    }

    /// Saturating addition (ledgers must never wrap).
    pub fn saturating_add(self, rhs: Money) -> Money {
        Money(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        let units = abs / MICROS as u64;
        let cents = (abs % MICROS as u64) / (MICROS as u64 / 100);
        write!(f, "{sign}${units}.{cents:02}")
    }
}

impl Add for Money {
    type Output = Money;
    fn add(self, rhs: Money) -> Money {
        Money(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Money {
    type Output = Money;
    fn sub(self, rhs: Money) -> Money {
        Money(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Neg for Money {
    type Output = Money;
    fn neg(self) -> Money {
        // `-i64::MIN` overflows; saturate like everything else.
        Money(self.0.saturating_neg())
    }
}

impl Mul<i64> for Money {
    type Output = Money;
    fn mul(self, rhs: i64) -> Money {
        Money(self.0.saturating_mul(rhs))
    }
}

impl Mul<u64> for Money {
    type Output = Money;
    fn mul(self, rhs: u64) -> Money {
        // A count beyond i64::MAX saturates the cast (the old `as i64`
        // wrapped it negative, flipping the product's sign).
        let count = i64::try_from(rhs).unwrap_or(i64::MAX);
        Money(self.0.saturating_mul(count))
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Money::from_units(3), Money::from_cents(300));
        assert_eq!(Money::from_cents(25), Money::from_f64(0.25));
        assert_eq!(Money::from_micros(MICROS), Money::from_units(1));
    }

    #[test]
    fn display_formats_signs_and_cents() {
        assert_eq!(Money::from_cents(1250).to_string(), "$12.50");
        assert_eq!((-Money::from_cents(5)).to_string(), "-$0.05");
        assert_eq!(Money::ZERO.to_string(), "$0.00");
    }

    #[test]
    fn arithmetic() {
        let a = Money::from_units(10);
        let b = Money::from_units(4);
        assert_eq!(a - b, Money::from_units(6));
        assert_eq!(a + b, Money::from_units(14));
        assert_eq!(b * 3i64, Money::from_units(12));
        assert_eq!(a.mul_f64(0.5), Money::from_units(5));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Money = (1..=4).map(Money::from_units).sum();
        assert_eq!(total, Money::from_units(10));
    }

    #[test]
    fn sign_predicates() {
        assert!(Money::from_cents(1).is_positive());
        assert!((-Money::from_cents(1)).is_negative());
        assert!(!Money::ZERO.is_positive());
        assert!(!Money::ZERO.is_negative());
    }

    #[test]
    fn saturating_add_does_not_wrap() {
        let max = Money::from_micros(i64::MAX);
        assert_eq!(max.saturating_add(Money::from_units(1)), max);
    }

    #[test]
    fn all_arithmetic_saturates_at_the_rails() {
        let max = Money::from_micros(i64::MAX);
        let min = Money::from_micros(i64::MIN);
        let one = Money::from_units(1);
        // Operators, not just the named saturating_add.
        assert_eq!(max + one, max);
        assert_eq!(min - one, min);
        assert_eq!(max * 2i64, max);
        assert_eq!(min * 2i64, min);
        assert_eq!(max * 2u64, max);
        assert_eq!(-min, max, "-i64::MIN saturates instead of overflowing");
        let mut acc = max;
        acc += one;
        assert_eq!(acc, max);
        let mut acc = min;
        acc -= one;
        assert_eq!(acc, min);
    }

    #[test]
    fn huge_unit_counts_saturate_instead_of_truncating() {
        // `Mul<u64>` used to cast with `as i64`, wrapping counts beyond
        // i64::MAX negative and flipping the product's sign.
        assert_eq!(
            Money::from_units(1) * u64::MAX,
            Money::from_micros(i64::MAX)
        );
        assert_eq!(
            -Money::from_units(1) * u64::MAX,
            Money::from_micros(i64::MIN)
        );
        // Constructors at the boundary: i64::MAX units ≫ representable
        // micros, so the product pegs rather than wrapping.
        assert_eq!(Money::from_units(i64::MAX), Money::from_micros(i64::MAX));
        assert_eq!(Money::from_cents(i64::MIN), Money::from_micros(i64::MIN));
    }

    #[test]
    fn multi_year_accumulation_stays_exact_below_the_rail() {
        // A decade of one $0.25 SMS per second is far inside i64 micros —
        // accumulation must stay exact, not merely un-wrapped.
        let per_event = Money::from_cents(25);
        let events: u64 = 10 * 365 * 24 * 3600;
        let total = per_event * events;
        assert_eq!(total, Money::from_micros(250_000 * events as i64));
        let mut ledger = Money::ZERO;
        for _ in 0..1000 {
            ledger += per_event * (events / 1000);
        }
        assert_eq!(ledger, per_event * (events / 1000 * 1000));
    }
}
