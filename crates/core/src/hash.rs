//! Fast, deterministic hashing for the per-event keyed maps.
//!
//! The defence stack's hot paths hash small integer keys (IPs, fingerprint
//! identity hashes, booking indices) on every request — velocity counters,
//! keyed rate limiters, reputation ledgers. `std`'s default SipHash is
//! DoS-hardened but costs tens of nanoseconds per small key; [`FxHasher`]
//! (the Firefox/rustc multiply-xor scheme) hashes a `u64` in a couple of
//! instructions.
//!
//! Simulation-side keys are either attacker-chosen *already-hashed* values
//! (`Fingerprint::identity_hash`) or bounded enumerations (IPs, endpoints),
//! so hash-flooding resistance buys nothing here; determinism across runs
//! and processes is what the reproducibility harness actually wants.
//!
//! # Example
//!
//! ```
//! use fg_core::hash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, u32> = FxHashMap::default();
//! m.insert(42, 1);
//! assert_eq!(m[&42], 1);
//! ```

use crate::rng::splitmix64;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Derives the deterministic trace id for request `sequence` of `session`.
///
/// Trace ids are a pure function of the session identifier and a per-run
/// request sequence number — no wall clock, no entropy — so traces exported
/// by the harness are byte-identical across thread counts. The Fx fold
/// mixes both words; a final [`splitmix64`] finaliser spreads the entropy
/// into the low bits (Fx alone leaves them weak, and the trace sampler
/// keys off the full width). `0` is reserved for "no trace" and is never
/// returned.
pub fn trace_id(session: u64, sequence: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(session);
    h.write_u64(sequence);
    match splitmix64(h.finish()) {
        0 => 1,
        id => id,
    }
}

/// The 64-bit Fx multiply-xor hasher (as used by rustc): each word is
/// folded in with a rotate, xor, and multiply by a mixing constant.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

/// `π`-derived odd mixing constant (the 64-bit Fx constant).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" and "ab\0" differ.
            tail[7] = rest.len() as u8;
            self.add_word(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_word(n as u64);
        self.add_word((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_i8(&mut self, n: i8) {
        self.add_word(n as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, n: i16) {
        self.add_word(n as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.add_word(n as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_isize(&mut self, n: isize) {
        self.add_word(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"booking-X"), hash_of(&"booking-X"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let hashes: std::collections::HashSet<u64> = (0u64..1000).map(|k| hash_of(&k)).collect();
        assert_eq!(hashes.len(), 1000, "small integers must not collide");
    }

    #[test]
    fn byte_strings_fold_in_length() {
        assert_ne!(
            hash_of(&[b'a', b'b'].as_slice()),
            hash_of(&[b'a', b'b', 0].as_slice())
        );
    }

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        assert_eq!(trace_id(7, 1), trace_id(7, 1));
        assert_ne!(trace_id(7, 1), trace_id(7, 2));
        assert_ne!(trace_id(7, 1), trace_id(8, 1));
        assert_ne!(trace_id(7, 1), 0, "0 is reserved for \"no trace\"");
        let ids: std::collections::HashSet<u64> = (0..64u64)
            .flat_map(|s| (0..64u64).map(move |q| trace_id(s, q)))
            .collect();
        assert_eq!(
            ids.len(),
            64 * 64,
            "session × sequence ids must not collide"
        );
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("k", 7);
        assert_eq!(m.get("k"), Some(&7));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }
}
