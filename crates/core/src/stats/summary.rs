//! Running summary statistics with exact percentiles.

use serde::{Deserialize, Serialize};

/// A streaming accumulator tracking count, min, max, mean, variance
/// (Welford's algorithm) and — because our experiment scales are modest —
/// retaining all samples for exact percentile queries.
///
/// # Example
///
/// ```
/// use fg_core::stats::Summary;
///
/// let mut rotation_hours = Summary::new();
/// for h in [4.9, 5.1, 5.6, 5.3, 5.7] {
///     rotation_hours.record(h);
/// }
/// assert!((rotation_hours.mean() - 5.32).abs() < 1e-9);
/// assert_eq!(rotation_hours.count(), 5);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    samples: Vec<f64>,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Summary {
            samples: Vec::new(),
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    ///
    /// Non-finite samples are ignored (they would poison every statistic).
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.samples.push(x);
        let n = self.samples.len() as f64;
        let delta = x - self.mean;
        self.mean += delta / n;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.samples.len() < 2 {
            0.0
        } else {
            self.m2 / self.samples.len() as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (None when empty).
    pub fn min(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest sample (None when empty).
    pub fn max(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.max)
        }
    }

    /// Exact percentile by nearest-rank (`p` in `0.0..=100.0`; None when
    /// empty).
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
    }

    /// Median (50th percentile).
    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// The raw samples, in recording order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        for &x in &other.samples {
            self.record(x);
        }
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.median(), None);
    }

    #[test]
    fn basic_stats() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let s: Summary = (1..=100).map(f64::from).collect();
        assert_eq!(s.percentile(50.0), Some(50.0));
        assert_eq!(s.percentile(95.0), Some(95.0));
        assert_eq!(s.percentile(100.0), Some(100.0));
        assert_eq!(s.percentile(0.0), Some(1.0));
    }

    #[test]
    fn ignores_non_finite() {
        let mut s = Summary::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(1.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 1.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a: Summary = [1.0, 2.0].into_iter().collect();
        let b: Summary = [3.0, 4.0].into_iter().collect();
        a.merge(&b);
        let c: Summary = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert!((a.mean() - c.mean()).abs() < 1e-12);
        assert_eq!(a.count(), c.count());
    }

    proptest! {
        /// Mean is always within [min, max].
        #[test]
        fn prop_mean_bounded(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s: Summary = xs.iter().copied().collect();
            let (min, max) = (s.min().unwrap(), s.max().unwrap());
            prop_assert!(s.mean() >= min - 1e-9);
            prop_assert!(s.mean() <= max + 1e-9);
        }

        /// Variance is never negative.
        #[test]
        fn prop_variance_nonnegative(xs in proptest::collection::vec(-1e6f64..1e6, 0..200)) {
            let s: Summary = xs.iter().copied().collect();
            prop_assert!(s.variance() >= -1e-9);
        }

        /// Percentile is monotone in p.
        #[test]
        fn prop_percentile_monotone(
            xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
            p1 in 0.0f64..100.0,
            p2 in 0.0f64..100.0,
        ) {
            let s: Summary = xs.iter().copied().collect();
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(s.percentile(lo).unwrap() <= s.percentile(hi).unwrap());
        }
    }
}
