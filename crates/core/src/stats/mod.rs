//! Streaming statistics used by workloads, detectors, and experiment reports.
//!
//! * [`Histogram`] — dense integer-bucket histogram (the NiP distribution of
//!   the paper's Fig. 1 is exactly such a histogram).
//! * [`Categorical`] — a weighted categorical distribution supporting
//!   deterministic sampling (used for NiP choices, country targeting, …).
//! * [`Summary`] — a running min/max/mean/variance accumulator with exact
//!   percentiles over retained samples (used e.g. for the ~5.3 h fingerprint
//!   rotation statistic of §IV-A).
//! * [`TimeSeries`] — fixed-width time-bucketed counters (SMS per day,
//!   requests per hour, …).

mod categorical;
mod histogram;
mod summary;
mod timeseries;

pub use categorical::{Categorical, CategoricalError};
pub use histogram::Histogram;
pub use summary::Summary;
pub use timeseries::TimeSeries;
