//! Dense integer-bucket histogram.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A histogram over the integer domain `0..=max_value`.
///
/// Values above `max_value` are clamped into the last bucket (and counted in
/// [`Histogram::clamped`]), which is the right behaviour for bounded
/// quantities like Number-in-Party where the application enforces a maximum.
///
/// # Example
///
/// ```
/// use fg_core::stats::Histogram;
///
/// let mut nip = Histogram::new(9);
/// for v in [1, 1, 2, 1, 6, 2] {
///     nip.record(v);
/// }
/// assert_eq!(nip.count(1), 3);
/// assert_eq!(nip.total(), 6);
/// assert!((nip.share(1) - 0.5).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    total: u64,
    clamped: u64,
}

impl Histogram {
    /// Creates a histogram covering `0..=max_value`.
    ///
    /// # Panics
    ///
    /// Panics if `max_value` is `usize::MAX` (bucket count would overflow).
    pub fn new(max_value: usize) -> Self {
        Histogram {
            buckets: vec![0; max_value.checked_add(1).expect("histogram too large")],
            total: 0,
            clamped: 0,
        }
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: usize) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value`.
    pub fn record_n(&mut self, value: usize, n: u64) {
        let idx = if value >= self.buckets.len() {
            self.clamped += n;
            self.buckets.len() - 1
        } else {
            value
        };
        self.buckets[idx] += n;
        self.total += n;
    }

    /// Count in bucket `value` (0 if out of range).
    pub fn count(&self, value: usize) -> u64 {
        self.buckets.get(value).copied().unwrap_or(0)
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations clamped into the last bucket because they exceeded the
    /// histogram's domain.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// The inclusive maximum value of the domain.
    pub fn max_value(&self) -> usize {
        self.buckets.len() - 1
    }

    /// Fraction of observations that fell in bucket `value` (0.0 when empty).
    pub fn share(&self, value: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// The full bucket vector, indexed by value.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Normalized bucket shares (all zeros when empty).
    pub fn shares(&self) -> Vec<f64> {
        (0..self.buckets.len()).map(|v| self.share(v)).collect()
    }

    /// Mean of the observations (None when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let weighted: u64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(v, &c)| v as u64 * c)
            .sum();
        Some(weighted as f64 / self.total as f64)
    }

    /// The bucket with the highest count (ties broken toward the smaller
    /// value; None when empty).
    pub fn mode(&self) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        self.buckets
            .iter()
            .enumerate()
            .max_by(|(ia, ca), (ib, cb)| ca.cmp(cb).then(ib.cmp(ia)))
            .map(|(v, _)| v)
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the domains differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "cannot merge histograms with different domains"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.total += other.total;
        self.clamped += other.clamped;
    }

    /// Resets all buckets to zero.
    pub fn clear(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.total = 0;
        self.clamped = 0;
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Histogram(total={}", self.total)?;
        for (v, &c) in self.buckets.iter().enumerate() {
            if c > 0 {
                write!(f, ", {v}:{c}")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn record_and_share() {
        let mut h = Histogram::new(4);
        h.record(0);
        h.record(0);
        h.record(3);
        h.record(4);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.total(), 4);
        assert!((h.share(0) - 0.5).abs() < 1e-12);
        assert_eq!(h.clamped(), 0);
    }

    #[test]
    fn clamps_above_domain() {
        let mut h = Histogram::new(2);
        h.record(99);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.clamped(), 1);
    }

    #[test]
    fn mean_and_mode() {
        let mut h = Histogram::new(9);
        h.record_n(1, 3);
        h.record_n(2, 1);
        assert!((h.mean().unwrap() - 1.25).abs() < 1e-12);
        assert_eq!(h.mode(), Some(1));
        assert_eq!(Histogram::new(3).mean(), None);
        assert_eq!(Histogram::new(3).mode(), None);
    }

    #[test]
    fn mode_tie_breaks_low() {
        let mut h = Histogram::new(5);
        h.record_n(2, 4);
        h.record_n(4, 4);
        assert_eq!(h.mode(), Some(2));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(3);
        a.record(1);
        let mut b = Histogram::new(3);
        b.record(1);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.count(1), 2);
        assert_eq!(a.count(2), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    #[should_panic(expected = "different domains")]
    fn merge_rejects_mismatched_domains() {
        let mut a = Histogram::new(2);
        a.merge(&Histogram::new(3));
    }

    #[test]
    fn clear_resets() {
        let mut h = Histogram::new(3);
        h.record(1);
        h.clear();
        assert_eq!(h.total(), 0);
        assert_eq!(h.count(1), 0);
    }

    #[test]
    fn display_shows_nonzero_buckets() {
        let mut h = Histogram::new(3);
        h.record(2);
        assert_eq!(h.to_string(), "Histogram(total=1, 2:1)");
    }

    proptest! {
        /// Total always equals the sum of all buckets.
        #[test]
        fn prop_total_is_bucket_sum(values in proptest::collection::vec(0usize..20, 0..500)) {
            let mut h = Histogram::new(9);
            for &v in &values {
                h.record(v);
            }
            prop_assert_eq!(h.total(), h.buckets().iter().sum::<u64>());
            prop_assert_eq!(h.total(), values.len() as u64);
        }

        /// Shares always sum to ~1 for non-empty histograms.
        #[test]
        fn prop_shares_sum_to_one(values in proptest::collection::vec(0usize..12, 1..300)) {
            let mut h = Histogram::new(9);
            for &v in &values {
                h.record(v);
            }
            let sum: f64 = h.shares().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}
