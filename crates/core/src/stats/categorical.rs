//! Weighted categorical distribution with deterministic sampling.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A finite categorical distribution over items of type `T`.
///
/// Weights need not be normalized. Sampling walks the cumulative weights,
/// which keeps behaviour bit-identical across platforms (no float summation
/// ordering surprises as long as insertion order is fixed).
///
/// # Example
///
/// ```
/// use fg_core::stats::Categorical;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// // A typical-week Number-in-Party distribution: most bookings are 1–2 pax.
/// let nip = Categorical::new(vec![(1usize, 55.0), (2, 30.0), (3, 8.0), (4, 7.0)])?;
/// let mut rng = StdRng::seed_from_u64(7);
/// let draw = nip.sample(&mut rng);
/// assert!((1..=4).contains(draw));
/// # Ok::<(), fg_core::stats::CategoricalError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Categorical<T> {
    items: Vec<T>,
    cumulative: Vec<f64>,
    total: f64,
}

/// Error returned when constructing a [`Categorical`] from invalid weights.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CategoricalError {
    /// No items were supplied.
    Empty,
    /// A weight was negative, NaN, or infinite.
    InvalidWeight,
    /// All weights were zero.
    ZeroTotal,
}

impl std::fmt::Display for CategoricalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CategoricalError::Empty => {
                write!(f, "categorical distribution needs at least one item")
            }
            CategoricalError::InvalidWeight => {
                write!(f, "weights must be finite and non-negative")
            }
            CategoricalError::ZeroTotal => write!(f, "at least one weight must be positive"),
        }
    }
}

impl std::error::Error for CategoricalError {}

impl<T> Categorical<T> {
    /// Builds a distribution from `(item, weight)` pairs.
    ///
    /// # Errors
    ///
    /// Returns an error if no items are given, any weight is negative or
    /// non-finite, or all weights are zero.
    pub fn new(pairs: Vec<(T, f64)>) -> Result<Self, CategoricalError> {
        if pairs.is_empty() {
            return Err(CategoricalError::Empty);
        }
        let mut items = Vec::with_capacity(pairs.len());
        let mut cumulative = Vec::with_capacity(pairs.len());
        let mut acc = 0.0;
        for (item, w) in pairs {
            if !w.is_finite() || w < 0.0 {
                return Err(CategoricalError::InvalidWeight);
            }
            acc += w;
            items.push(item);
            cumulative.push(acc);
        }
        if acc <= 0.0 {
            return Err(CategoricalError::ZeroTotal);
        }
        Ok(Categorical {
            items,
            cumulative,
            total: acc,
        })
    }

    /// Draws one item by reference.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &T {
        let x = rng.gen_range(0.0..self.total);
        // partition_point finds the first cumulative weight > x.
        let idx = self.cumulative.partition_point(|&c| c <= x);
        // x < total == last cumulative entry, so idx is always in range.
        &self.items[idx.min(self.items.len() - 1)]
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if there are no categories (never true for a constructed value,
    /// but required for API completeness).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The items in insertion order.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// The probability assigned to the item at `index`.
    pub fn probability(&self, index: usize) -> Option<f64> {
        let hi = *self.cumulative.get(index)?;
        let lo = if index == 0 {
            0.0
        } else {
            self.cumulative[index - 1]
        };
        Some((hi - lo) / self.total)
    }
}

impl<T: Clone> Categorical<T> {
    /// Draws one item by value.
    pub fn sample_owned<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        self.sample(rng).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(
            Categorical::<u8>::new(vec![]).unwrap_err(),
            CategoricalError::Empty
        );
        assert_eq!(
            Categorical::new(vec![(1, -1.0)]).unwrap_err(),
            CategoricalError::InvalidWeight
        );
        assert_eq!(
            Categorical::new(vec![(1, f64::NAN)]).unwrap_err(),
            CategoricalError::InvalidWeight
        );
        assert_eq!(
            Categorical::new(vec![(1, 0.0), (2, 0.0)]).unwrap_err(),
            CategoricalError::ZeroTotal
        );
    }

    #[test]
    fn probability_matches_weights() {
        let d = Categorical::new(vec![("a", 1.0), ("b", 3.0)]).unwrap();
        assert!((d.probability(0).unwrap() - 0.25).abs() < 1e-12);
        assert!((d.probability(1).unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(d.probability(2), None);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = Categorical::new(vec![(1, 1.0), (2, 1.0), (3, 1.0)]).unwrap();
        let draws = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..32).map(|_| *d.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draws(5), draws(5));
    }

    #[test]
    fn sampling_respects_weights_empirically() {
        let d = Categorical::new(vec![(0usize, 9.0), (1, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let ones = (0..n).filter(|_| *d.sample(&mut rng) == 1).count();
        let freq = ones as f64 / n as f64;
        assert!((freq - 0.1).abs() < 0.02, "freq={freq}");
    }

    #[test]
    fn zero_weight_items_never_sampled() {
        let d = Categorical::new(vec![("never", 0.0), ("always", 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            assert_eq!(*d.sample(&mut rng), "always");
        }
    }

    #[test]
    fn accessors() {
        let d = Categorical::new(vec![(7, 2.0)]).unwrap();
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
        assert_eq!(d.items(), &[7]);
        assert_eq!(d.sample_owned(&mut StdRng::seed_from_u64(0)), 7);
    }
}
