//! Fixed-width time-bucketed counters.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A counter series over fixed-width time buckets starting at an origin.
///
/// Used throughout the experiment harness: SMS sent per day, holds per hour,
/// boarding passes per week, and so on. Buckets grow on demand, so callers
/// never pre-declare a horizon.
///
/// # Example
///
/// ```
/// use fg_core::stats::TimeSeries;
/// use fg_core::time::{SimDuration, SimTime};
///
/// let mut sms_per_day = TimeSeries::new(SimTime::ZERO, SimDuration::from_days(1));
/// sms_per_day.record(SimTime::from_hours(3), 2);
/// sms_per_day.record(SimTime::from_hours(30), 1);
/// assert_eq!(sms_per_day.bucket(0), 2);
/// assert_eq!(sms_per_day.bucket(1), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeSeries {
    origin: SimTime,
    width: SimDuration,
    buckets: Vec<u64>,
}

impl TimeSeries {
    /// Creates a series with buckets of `width` starting at `origin`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not strictly positive.
    pub fn new(origin: SimTime, width: SimDuration) -> Self {
        assert!(
            width.as_millis() > 0,
            "time-series bucket width must be positive"
        );
        TimeSeries {
            origin,
            width,
            buckets: Vec::new(),
        }
    }

    /// Records `count` occurrences at instant `at`.
    ///
    /// Events before the origin are counted into bucket 0 (they represent
    /// warm-up artifacts and must not be silently dropped).
    pub fn record(&mut self, at: SimTime, count: u64) {
        let idx = self.bucket_index(at);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += count;
    }

    /// The bucket index an instant maps to.
    pub fn bucket_index(&self, at: SimTime) -> usize {
        let offset = at.saturating_since(self.origin).as_millis();
        (offset / self.width.as_millis()) as usize
    }

    /// Count in bucket `idx` (0 for untouched buckets).
    pub fn bucket(&self, idx: usize) -> u64 {
        self.buckets.get(idx).copied().unwrap_or(0)
    }

    /// Number of materialized buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// All bucket counts, index-ordered.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Sum over every bucket.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum over the half-open instant range `[from, to)`.
    pub fn total_between(&self, from: SimTime, to: SimTime) -> u64 {
        if to <= from {
            return 0;
        }
        let lo = self.bucket_index(from);
        // to is exclusive: the instant one ms earlier determines the last bucket.
        let hi = self.bucket_index(to - SimDuration::from_millis(1));
        (lo..=hi).map(|i| self.bucket(i)).sum()
    }

    /// Percentage change between the totals of two equal-length windows
    /// (e.g. attack week vs. baseline week, the Table I metric).
    ///
    /// Returns `None` when the baseline window total is zero.
    pub fn surge_pct(
        &self,
        baseline: (SimTime, SimTime),
        window: (SimTime, SimTime),
    ) -> Option<f64> {
        let base = self.total_between(baseline.0, baseline.1);
        if base == 0 {
            return None;
        }
        let cur = self.total_between(window.0, window.1);
        Some((cur as f64 - base as f64) / base as f64 * 100.0)
    }

    /// The bucket width.
    pub fn width(&self) -> SimDuration {
        self.width
    }

    /// The series origin.
    pub fn origin(&self) -> SimTime {
        self.origin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn daily() -> TimeSeries {
        TimeSeries::new(SimTime::ZERO, SimDuration::from_days(1))
    }

    #[test]
    fn records_into_correct_buckets() {
        let mut ts = daily();
        ts.record(SimTime::from_hours(1), 1);
        ts.record(SimTime::from_hours(25), 2);
        ts.record(SimTime::from_hours(49), 3);
        assert_eq!(ts.buckets(), &[1, 2, 3]);
        assert_eq!(ts.total(), 6);
    }

    #[test]
    fn pre_origin_events_land_in_bucket_zero() {
        let mut ts = TimeSeries::new(SimTime::from_days(5), SimDuration::from_days(1));
        ts.record(SimTime::from_days(1), 4);
        assert_eq!(ts.bucket(0), 4);
    }

    #[test]
    fn total_between_is_half_open() {
        let mut ts = daily();
        ts.record(SimTime::from_hours(12), 1); // day 0
        ts.record(SimTime::from_hours(36), 1); // day 1
        assert_eq!(
            ts.total_between(SimTime::ZERO, SimTime::from_days(1)),
            1,
            "day-1 bucket excluded by exclusive upper bound"
        );
        assert_eq!(ts.total_between(SimTime::ZERO, SimTime::from_days(2)), 2);
        assert_eq!(
            ts.total_between(SimTime::from_days(1), SimTime::from_days(1)),
            0
        );
    }

    #[test]
    fn surge_pct_matches_table_semantics() {
        let mut ts = daily();
        // Baseline week: 10 SMS. Attack week: 1 + 160,209% of 10 ≈ 16031.
        for d in 0..7 {
            ts.record(SimTime::from_days(d), 10 / 7 + u64::from(d < 3));
        }
        let base_total = ts.total_between(SimTime::ZERO, SimTime::from_weeks(1));
        for d in 7..14 {
            ts.record(SimTime::from_days(d), base_total * 3 / 7);
        }
        let surge = ts
            .surge_pct(
                (SimTime::ZERO, SimTime::from_weeks(1)),
                (SimTime::from_weeks(1), SimTime::from_weeks(2)),
            )
            .unwrap();
        assert!(
            surge > 100.0,
            "tripled traffic is a >100% surge, got {surge}"
        );
    }

    #[test]
    fn surge_pct_none_for_zero_baseline() {
        let ts = daily();
        assert_eq!(
            ts.surge_pct(
                (SimTime::ZERO, SimTime::from_days(1)),
                (SimTime::from_days(1), SimTime::from_days(2))
            ),
            None
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        TimeSeries::new(SimTime::ZERO, SimDuration::ZERO);
    }

    proptest! {
        /// total() equals the sum of all window queries over a partition.
        #[test]
        fn prop_windows_partition_total(
            events in proptest::collection::vec((0u64..14 * 24, 1u64..5), 0..200)
        ) {
            let mut ts = TimeSeries::new(SimTime::ZERO, SimDuration::from_hours(1));
            for &(h, c) in &events {
                ts.record(SimTime::from_hours(h), c);
            }
            let w1 = ts.total_between(SimTime::ZERO, SimTime::from_weeks(1));
            let w2 = ts.total_between(SimTime::from_weeks(1), SimTime::from_weeks(2));
            prop_assert_eq!(w1 + w2, ts.total());
        }
    }
}
