//! The automated Seat Spinning bot (§IV-A).
//!
//! Reproduces the Airline A attacker end to end:
//!
//! 1. **Reconnaissance** — probes the reservation system to learn the
//!    maximum Number in Party (from the application's own error message) and
//!    uses the configured hold-TTL knowledge "to devise an approach that
//!    maximized disruption while minimizing costs".
//! 2. **Stealth NiP choice** — books *below* the maximum ("they did not
//!    target the highest possible NiP value …, possibly to avoid triggering
//!    an immediate anomaly detection alert"): with max 9 and margin 3 the
//!    bot lands on the paper's NiP 6.
//! 3. **The hold-expiry loop** — "each new request sent as soon as the
//!    temporary hold on the previous one expired".
//! 4. **Adaptation** — when a NiP cap appears, it re-learns the maximum and
//!    continues at the cap; when blocked, it rotates fingerprint and proxy
//!    after a reaction delay (the 5.3 h statistic's mechanism).
//! 5. **Endgame** — activity ceases a configured time before departure
//!    ("the attack continued until two days before the flight's departure").

use crate::api::{Agent, ApiOutcome, App, ClientRequest};
use crate::namegen::{gibberish_party, RotatingBirthdateGenerator};
use fg_core::ids::{BookingRef, ClientId, CountryCode, FlightId};
use fg_core::time::{SimDuration, SimTime};
use fg_fingerprint::population::PopulationModel;
use fg_fingerprint::rotation::{RotationSchedule, RotationStrategy, Rotator};
use fg_inventory::error::InventoryError;
use fg_mitigation::economics::AttackerLedger;
use fg_mitigation::gating::TrustTier;
use fg_netsim::geo::GeoDatabase;
use fg_netsim::proxy::ProxyPool;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the bot chooses its party size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NipStrategy {
    /// Always this size (clamped to the learned maximum).
    Fixed(u32),
    /// `learned_max - margin`, falling back to the full maximum when the cap
    /// leaves no stealth room — the observed pre- and post-cap behaviour.
    StealthBelowMax {
        /// How far below the maximum to stay.
        margin: u32,
    },
    /// Small parties that blend into the typical 1–2 NiP mass — the evolved
    /// low-volume tactic the paper says attackers now open with.
    LowAndSlow(u32),
}

/// How the bot fabricates passenger details.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NameStyle {
    /// Random keyboard-mash entries.
    Gibberish,
    /// Fixed lead name with rotating birthdate (Airline B).
    RotatingBirthdate,
}

/// Seat-spinner configuration.
#[derive(Clone, Debug)]
pub struct SeatSpinnerConfig {
    /// The flight under attack.
    pub target_flight: FlightId,
    /// Party-size strategy.
    pub nip_strategy: NipStrategy,
    /// Passenger-detail style.
    pub name_style: NameStyle,
    /// Fingerprint fabrication strategy.
    pub rotation_strategy: RotationStrategy,
    /// Rotation schedule.
    pub rotation_schedule: RotationSchedule,
    /// Countries the proxy subscription covers.
    pub proxy_countries: Vec<CountryCode>,
    /// Use cheap datacenter exits instead of residential ones — the
    /// cost-cutting choice §III-B explains defenders can punish.
    pub datacenter_proxies: bool,
    /// Exits the proxy subscription offers per country.
    pub proxy_exits_per_country: usize,
    /// Bookings maintained concurrently.
    pub concurrent_holds: u32,
    /// The hold TTL the attacker learned during reconnaissance.
    pub known_hold_ttl: SimDuration,
    /// Stop this long before departure.
    pub stop_before_departure: SimDuration,
    /// Poll cadence between hold-expiry checks.
    pub recheck_interval: SimDuration,
}

impl SeatSpinnerConfig {
    /// The Airline A / May-2022 configuration: stealth NiP 3 below max,
    /// mimicry rotation reacting to blocks, gibberish names.
    pub fn airline_a(target_flight: FlightId) -> Self {
        SeatSpinnerConfig {
            target_flight,
            nip_strategy: NipStrategy::StealthBelowMax { margin: 3 },
            name_style: NameStyle::Gibberish,
            rotation_strategy: RotationStrategy::Mimicry,
            rotation_schedule: RotationSchedule::OnBlock {
                reaction: SimDuration::from_hours_f64(5.3),
            },
            proxy_countries: vec![
                CountryCode::new("US"),
                CountryCode::new("GB"),
                CountryCode::new("DE"),
                CountryCode::new("FR"),
            ],
            datacenter_proxies: false,
            proxy_exits_per_country: 64,
            concurrent_holds: 12,
            known_hold_ttl: SimDuration::from_mins(30),
            stop_before_departure: SimDuration::from_days(2),
            recheck_interval: SimDuration::from_mins(5),
        }
    }
}

/// Observable seat-spinner statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpinnerStats {
    /// Holds successfully placed.
    pub holds_placed: u64,
    /// Seats currently believed held.
    pub seats_held_now: u64,
    /// Requests refused by the defence.
    pub defence_refusals: u64,
    /// Fingerprint rotations performed.
    pub rotations: u64,
    /// When the bot stopped, if it has.
    pub stopped_at: Option<SimTime>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Recon,
    Attack,
    Done,
}

/// The automated seat-spinner agent.
#[derive(Debug)]
pub struct SeatSpinner {
    config: SeatSpinnerConfig,
    client: ClientId,
    rotator: Rotator,
    proxies: ProxyPool,
    current_ip: fg_netsim::ip::IpAddress,
    learned_max_nip: Option<u32>,
    active_holds: Vec<(BookingRef, SimTime)>,
    phase: Phase,
    names: RotatingBirthdateGenerator,
    ledger: AttackerLedger,
    stats: SpinnerStats,
    label: String,
}

impl SeatSpinner {
    /// Creates the bot. `client` namespaces its ground-truth identity.
    pub fn new(
        config: SeatSpinnerConfig,
        client: ClientId,
        geo: GeoDatabase,
        rng: &mut StdRng,
    ) -> Self {
        let rotator = Rotator::new(
            PopulationModel::default_web(),
            config.rotation_strategy,
            config.rotation_schedule,
            SimTime::ZERO,
            rng,
        );
        let mut proxies = if config.datacenter_proxies {
            ProxyPool::datacenter(&geo, config.proxy_exits_per_country)
        } else {
            ProxyPool::residential(&geo, config.proxy_exits_per_country)
        };
        let country = config.proxy_countries[rng.gen_range(0..config.proxy_countries.len())];
        let lease = proxies
            .rent(country, SimTime::ZERO, rng)
            .expect("proxy countries exist in the geo database");
        let names = RotatingBirthdateGenerator::new(rng, 6);
        SeatSpinner {
            current_ip: lease.ip(),
            config,
            client,
            rotator,
            proxies,
            learned_max_nip: None,
            active_holds: Vec::new(),
            phase: Phase::Recon,
            names,
            ledger: AttackerLedger::new(),
            stats: SpinnerStats::default(),
            label: "seat-spinner".to_owned(),
        }
    }

    /// The bot's profit-and-loss ledger (proxy spend accrues here).
    pub fn ledger(&self) -> AttackerLedger {
        let mut l = self.ledger;
        l.proxy_spend = self.proxies.total_spend();
        l
    }

    /// Observable statistics.
    pub fn stats(&self) -> SpinnerStats {
        let mut s = self.stats;
        s.seats_held_now = self.active_holds.len() as u64 * u64::from(self.chosen_nip());
        s.rotations = self.rotator.rotation_times().len() as u64;
        s
    }

    /// The fingerprint rotation history (for the 5.3 h statistic).
    pub fn rotation_times(&self) -> &[SimTime] {
        self.rotator.rotation_times()
    }

    /// The party size the bot currently uses.
    pub fn chosen_nip(&self) -> u32 {
        let max = self.learned_max_nip.unwrap_or(9);
        match self.config.nip_strategy {
            NipStrategy::Fixed(n) => n.min(max).max(1),
            NipStrategy::StealthBelowMax { margin } => {
                if max > margin + 2 {
                    max - margin
                } else {
                    max
                }
            }
            NipStrategy::LowAndSlow(n) => n.min(max).max(1),
        }
    }

    fn request(&self) -> ClientRequest {
        ClientRequest {
            client: self.client,
            ip: self.current_ip,
            fingerprint: self.rotator.current().clone(),
            tier: TrustTier::Anonymous,
            is_bot: true,
        }
    }

    fn on_refusal(&mut self, now: SimTime, rng: &mut StdRng) {
        self.stats.defence_refusals += 1;
        self.rotator.notify_blocked(now, rng);
        // Rotate the exit too: rent a fresh lease.
        let country =
            self.config.proxy_countries[rng.gen_range(0..self.config.proxy_countries.len())];
        if let Some(lease) = self.proxies.rent(country, now, rng) {
            self.current_ip = lease.ip();
        }
    }

    fn party(&mut self, rng: &mut StdRng, n: u32) -> Vec<fg_inventory::passenger::Passenger> {
        match self.config.name_style {
            NameStyle::Gibberish => gibberish_party(rng, n as usize),
            NameStyle::RotatingBirthdate => self.names.next_party(rng, n as usize),
        }
    }

    fn recon(&mut self, app: &mut dyn App, now: SimTime, rng: &mut StdRng) {
        // Probe with an oversized party; the error message leaks the cap.
        let probe = self.party(rng, 20);
        match app.hold(&self.request(), self.config.target_flight, probe, now) {
            ApiOutcome::Domain(InventoryError::PartyTooLarge { max, .. }) => {
                self.learned_max_nip = Some(max);
                self.phase = Phase::Attack;
            }
            ApiOutcome::Ok(reference) => {
                // No cap at 20 — treat 20 as the working maximum.
                self.learned_max_nip = Some(20);
                self.active_holds
                    .push((reference, now + self.config.known_hold_ttl));
                self.stats.holds_placed += 1;
                self.phase = Phase::Attack;
            }
            outcome => {
                if outcome.defence_refused() {
                    self.on_refusal(now, rng);
                }
                // Stay in recon; retry next wake.
            }
        }
    }

    fn attack(&mut self, app: &mut dyn App, now: SimTime, rng: &mut StdRng) {
        // Drop expired holds — and replace them immediately.
        self.active_holds.retain(|&(_, expiry)| expiry > now);

        let mut attempts = 0;
        while (self.active_holds.len() as u32) < self.config.concurrent_holds && attempts < 30 {
            attempts += 1;
            let nip = self.chosen_nip();
            let party = self.party(rng, nip);
            match app.hold(&self.request(), self.config.target_flight, party, now) {
                ApiOutcome::Ok(reference) => {
                    self.active_holds
                        .push((reference, now + self.config.known_hold_ttl));
                    self.stats.holds_placed += 1;
                }
                ApiOutcome::Domain(InventoryError::PartyTooLarge { max, .. }) => {
                    // The defender moved the cap mid-attack: adapt and retry.
                    self.learned_max_nip = Some(max);
                }
                ApiOutcome::Domain(InventoryError::InsufficientSeats { available, .. }) => {
                    // Flight exhausted (partly by us): take whatever remains.
                    if available == 0 {
                        break;
                    }
                    let party = self.party(rng, available.min(self.chosen_nip()));
                    if let ApiOutcome::Ok(reference) =
                        app.hold(&self.request(), self.config.target_flight, party, now)
                    {
                        self.active_holds
                            .push((reference, now + self.config.known_hold_ttl));
                        self.stats.holds_placed += 1;
                    }
                    break;
                }
                ApiOutcome::Domain(_) => break,
                _refused => {
                    self.on_refusal(now, rng);
                    break; // wait for rotation before hammering on
                }
            }
        }
    }
}

impl Agent for SeatSpinner {
    fn wake(&mut self, app: &mut dyn App, now: SimTime, rng: &mut StdRng) -> Option<SimTime> {
        if self.phase == Phase::Done {
            return None;
        }
        // Endgame: stop before departure.
        if let Some(dep) = app.departure(self.config.target_flight) {
            if now >= dep - self.config.stop_before_departure {
                self.phase = Phase::Done;
                self.stats.stopped_at = Some(now);
                return None;
            }
        }

        self.rotator.tick(now, rng);
        match self.phase {
            Phase::Recon => self.recon(app, now, rng),
            Phase::Attack => self.attack(app, now, rng),
            Phase::Done => return None,
        }

        // Wake at the earliest hold expiry (to re-hold instantly) or the
        // regular recheck, whichever comes first.
        let next_expiry = self
            .active_holds
            .iter()
            .map(|&(_, e)| e)
            .min()
            .unwrap_or(SimTime::MAX);
        Some(next_expiry.min(now + self.config.recheck_interval))
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_core::money::Money;
    use fg_inventory::flight::{Availability, Flight};
    use fg_inventory::passenger::Passenger;
    use fg_inventory::system::ReservationSystem;
    use rand::SeedableRng;

    /// An undefended app over a real reservation system.
    struct OpenApp {
        sys: ReservationSystem,
    }

    impl OpenApp {
        fn new(capacity: u32, max_nip: u32, departure_days: u64) -> Self {
            let mut sys = ReservationSystem::new(SimDuration::from_mins(30), max_nip);
            sys.add_flight(Flight::new(
                FlightId(1),
                capacity,
                SimTime::from_days(departure_days),
            ));
            OpenApp { sys }
        }
    }

    impl App for OpenApp {
        fn search(&mut self, _req: &ClientRequest, _now: SimTime) -> ApiOutcome<()> {
            ApiOutcome::Ok(())
        }
        fn hold(
            &mut self,
            _req: &ClientRequest,
            flight: FlightId,
            passengers: Vec<Passenger>,
            now: SimTime,
        ) -> ApiOutcome<BookingRef> {
            match self.sys.hold(flight, passengers, now) {
                Ok(r) => ApiOutcome::Ok(r),
                Err(e) => ApiOutcome::Domain(e),
            }
        }
        fn pay(
            &mut self,
            _req: &ClientRequest,
            booking: BookingRef,
            now: SimTime,
        ) -> ApiOutcome<()> {
            match self
                .sys
                .pay(booking, now)
                .and_then(|()| self.sys.ticket(booking))
            {
                Ok(()) => ApiOutcome::Ok(()),
                Err(e) => ApiOutcome::Domain(e),
            }
        }
        fn send_otp(
            &mut self,
            _req: &ClientRequest,
            _phone: fg_core::ids::PhoneNumber,
            _now: SimTime,
        ) -> ApiOutcome<()> {
            ApiOutcome::Ok(())
        }
        fn boarding_pass_sms(
            &mut self,
            _req: &ClientRequest,
            _booking: BookingRef,
            _phone: fg_core::ids::PhoneNumber,
            _now: SimTime,
        ) -> ApiOutcome<()> {
            ApiOutcome::Ok(())
        }
        fn availability(&self, flight: FlightId) -> Option<Availability> {
            self.sys.availability(flight)
        }
        fn departure(&self, flight: FlightId) -> Option<SimTime> {
            self.sys.flight(flight).map(|f| f.departure())
        }
    }

    fn drive(bot: &mut SeatSpinner, app: &mut OpenApp, until: SimTime, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now = SimTime::ZERO;
        loop {
            app.sys.expire_due(now);
            match bot.wake(app, now, &mut rng) {
                Some(next) if next <= until => now = next,
                _ => break,
            }
        }
    }

    #[test]
    fn recon_learns_the_nip_cap_from_the_error() {
        let mut app = OpenApp::new(180, 9, 30);
        let mut rng = StdRng::seed_from_u64(1);
        let mut bot = SeatSpinner::new(
            SeatSpinnerConfig::airline_a(FlightId(1)),
            ClientId(666),
            GeoDatabase::default_world(),
            &mut rng,
        );
        bot.wake(&mut app, SimTime::ZERO, &mut rng);
        assert_eq!(bot.learned_max_nip, Some(9));
        // Stealth: 3 below the max of 9 → the paper's NiP 6.
        assert_eq!(bot.chosen_nip(), 6);
    }

    #[test]
    fn spinning_loop_keeps_seats_held() {
        let mut app = OpenApp::new(180, 9, 30);
        let mut rng = StdRng::seed_from_u64(2);
        let mut bot = SeatSpinner::new(
            SeatSpinnerConfig::airline_a(FlightId(1)),
            ClientId(666),
            GeoDatabase::default_world(),
            &mut rng,
        );
        drive(&mut bot, &mut app, SimTime::from_days(2), 3);
        let s = bot.stats();
        // 12 concurrent holds × 6 seats ≈ 72 seats continuously denied.
        assert!(
            s.holds_placed > 100,
            "re-holding loop ran: {}",
            s.holds_placed
        );
        let a = app.sys.availability(FlightId(1)).unwrap();
        assert!(a.held >= 60, "sustained seat denial: {a}");
        assert_eq!(a.sold, 0, "the spinner never pays");
    }

    #[test]
    fn adapts_to_mid_attack_cap() {
        let mut app = OpenApp::new(180, 9, 30);
        let mut rng = StdRng::seed_from_u64(3);
        let mut bot = SeatSpinner::new(
            SeatSpinnerConfig::airline_a(FlightId(1)),
            ClientId(666),
            GeoDatabase::default_world(),
            &mut rng,
        );
        drive(&mut bot, &mut app, SimTime::from_hours(12), 4);
        assert_eq!(bot.chosen_nip(), 6);

        // The defender caps NiP at 4 (the Fig. 1 mitigation).
        app.sys.set_max_nip(4);
        drive(&mut bot, &mut app, SimTime::from_days(1), 5);
        assert_eq!(bot.learned_max_nip, Some(4), "cap re-learned");
        assert_eq!(bot.chosen_nip(), 4, "attack continues at the cap");
    }

    #[test]
    fn stops_before_departure() {
        let mut app = OpenApp::new(60, 9, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let mut bot = SeatSpinner::new(
            SeatSpinnerConfig::airline_a(FlightId(1)),
            ClientId(666),
            GeoDatabase::default_world(),
            &mut rng,
        );
        drive(&mut bot, &mut app, SimTime::from_days(10), 7);
        let stopped = bot.stats().stopped_at.expect("bot reached its endgame");
        // Departure day 5, stop 2 days before: must stop near day 3.
        assert!(stopped >= SimTime::from_days(3) - SimDuration::from_mins(30));
        assert!(stopped < SimTime::from_days(3) + SimDuration::from_hours(1));
    }

    #[test]
    fn low_and_slow_strategy_books_small_parties() {
        let mut app = OpenApp::new(180, 9, 30);
        let mut rng = StdRng::seed_from_u64(8);
        let mut config = SeatSpinnerConfig::airline_a(FlightId(1));
        config.nip_strategy = NipStrategy::LowAndSlow(2);
        config.concurrent_holds = 4;
        let mut bot = SeatSpinner::new(
            config,
            ClientId(667),
            GeoDatabase::default_world(),
            &mut rng,
        );
        drive(&mut bot, &mut app, SimTime::from_days(1), 9);
        assert_eq!(bot.chosen_nip(), 2);
        let held = app.sys.availability(FlightId(1)).unwrap().held;
        assert!(held <= 8, "low-and-slow holds stay small: {held}");
    }

    #[test]
    fn ledger_accrues_proxy_spend() {
        let mut app = OpenApp::new(180, 9, 30);
        let mut rng = StdRng::seed_from_u64(10);
        let mut bot = SeatSpinner::new(
            SeatSpinnerConfig::airline_a(FlightId(1)),
            ClientId(666),
            GeoDatabase::default_world(),
            &mut rng,
        );
        drive(&mut bot, &mut app, SimTime::from_days(1), 11);
        assert!(bot.ledger().proxy_spend > Money::ZERO);
        assert!(bot.ledger().unviable(), "pure DoI has no direct revenue");
    }
}
