//! The manual Seat Spinning attacker (§IV-B, Airline C).
//!
//! "Individuals seeking to secure specific seats on an upcoming flight":
//! the same fixed set of passenger names reused in different orders, slight
//! misspellings betraying manual input, a broad range of IP addresses but a
//! perfectly ordinary (non-rotating) browser fingerprint, human pacing, and
//! no automation tells at all — "traditional bot-detection alerts are not
//! triggered".

use crate::api::{Agent, ApiOutcome, App, ClientRequest};
use crate::namegen::PermutedSetGenerator;
use fg_core::ids::{ClientId, CountryCode, FlightId};
use fg_core::time::{SimDuration, SimTime};
use fg_fingerprint::attributes::Fingerprint;
use fg_fingerprint::population::PopulationModel;
use fg_mitigation::gating::TrustTier;
use fg_netsim::geo::GeoDatabase;
use fg_netsim::proxy::ProxyPool;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Manual-spinner configuration.
#[derive(Clone, Debug)]
pub struct ManualSpinnerConfig {
    /// The flight whose seats the attacker wants to monopolize.
    pub target_flight: FlightId,
    /// Size of the fixed passenger pool (= party size per booking).
    pub pool_size: usize,
    /// Per-passenger typo probability (manual input slips).
    pub typo_prob: f64,
    /// Sessions per day (a human does this a few times daily).
    pub sessions_per_day: f64,
    /// Countries the attacker's VPN exits cover.
    pub proxy_countries: Vec<CountryCode>,
    /// Stop after this instant.
    pub end_time: SimTime,
    /// The hold TTL the attacker knows (to come back right after expiry).
    pub known_hold_ttl: SimDuration,
}

impl ManualSpinnerConfig {
    /// The Airline C / December-2024 configuration.
    pub fn airline_c(target_flight: FlightId, end_time: SimTime) -> Self {
        ManualSpinnerConfig {
            target_flight,
            pool_size: 4,
            typo_prob: 0.12,
            sessions_per_day: 20.0,
            proxy_countries: vec![
                CountryCode::new("US"),
                CountryCode::new("GB"),
                CountryCode::new("FR"),
                CountryCode::new("DE"),
                CountryCode::new("ES"),
                CountryCode::new("IT"),
            ],
            end_time,
            known_hold_ttl: SimDuration::from_mins(30),
        }
    }
}

/// Observable manual-spinner statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManualStats {
    /// Sessions run.
    pub sessions: u64,
    /// Holds placed.
    pub holds_placed: u64,
    /// Requests refused by the defence.
    pub defence_refusals: u64,
}

/// The manual seat-spinner agent.
#[derive(Debug)]
pub struct ManualSpinner {
    config: ManualSpinnerConfig,
    client: ClientId,
    fingerprint: Fingerprint,
    names: PermutedSetGenerator,
    proxies: ProxyPool,
    stats: ManualStats,
    label: String,
}

impl ManualSpinner {
    /// Creates the attacker with one ordinary, *stable* browser fingerprint.
    pub fn new(
        config: ManualSpinnerConfig,
        client: ClientId,
        geo: GeoDatabase,
        rng: &mut StdRng,
    ) -> Self {
        let names = PermutedSetGenerator::new(rng, config.pool_size, config.typo_prob);
        ManualSpinner {
            fingerprint: PopulationModel::default_web().sample_human(rng),
            proxies: ProxyPool::residential(&geo, 32),
            config,
            client,
            names,
            stats: ManualStats::default(),
            label: "manual-spinner".to_owned(),
        }
    }

    /// Observable statistics.
    pub fn stats(&self) -> ManualStats {
        self.stats
    }

    fn request(&mut self, now: SimTime, rng: &mut StdRng) -> ClientRequest {
        // A broad range of IPs — but the same browser every time.
        let country =
            self.config.proxy_countries[rng.gen_range(0..self.config.proxy_countries.len())];
        let ip = self
            .proxies
            .rent(country, now, rng)
            .map(|l| l.ip())
            .expect("proxy countries exist in the geo database");
        ClientRequest {
            client: self.client,
            ip,
            fingerprint: self.fingerprint.clone(),
            tier: TrustTier::Verified, // a real account, like a real user
            is_bot: false,             // manual: solves CAPTCHAs personally
        }
    }
}

impl Agent for ManualSpinner {
    fn wake(&mut self, app: &mut dyn App, now: SimTime, rng: &mut StdRng) -> Option<SimTime> {
        if now > self.config.end_time {
            return None;
        }
        self.stats.sessions += 1;
        let req = self.request(now, rng);

        // A human session: browse a little, then hold the usual party.
        let _ = app.search(&req, now);
        let _ = app.search(&req, now + SimDuration::from_secs(rng.gen_range(20..90)));
        let party = self.names.next_party(rng, self.config.pool_size);
        let t_hold = now + SimDuration::from_secs(rng.gen_range(120..300));
        match app.hold(&req, self.config.target_flight, party, t_hold) {
            ApiOutcome::Ok(_) => self.stats.holds_placed += 1,
            outcome if outcome.defence_refused() => self.stats.defence_refusals += 1,
            _ => {}
        }

        // Come back roughly when the hold lapses (to re-grab the seats), with
        // human jitter, at the configured daily cadence.
        let mean_gap_secs = 86_400.0 / self.config.sessions_per_day.max(0.1);
        let gap = self
            .config
            .known_hold_ttl
            .as_secs_f64()
            .max(mean_gap_secs * rng.gen_range(0.5..1.5));
        Some(now + SimDuration::from_millis((gap * 1_000.0) as i64))
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_core::ids::BookingRef;
    use fg_detection::names::NameAbuseAnalyzer;
    use fg_inventory::flight::{Availability, Flight};
    use fg_inventory::passenger::Passenger;
    use fg_inventory::system::ReservationSystem;
    use rand::SeedableRng;

    struct OpenApp {
        sys: ReservationSystem,
        parties: Vec<Vec<Passenger>>,
    }

    impl App for OpenApp {
        fn search(&mut self, _req: &ClientRequest, _now: SimTime) -> ApiOutcome<()> {
            ApiOutcome::Ok(())
        }
        fn hold(
            &mut self,
            _req: &ClientRequest,
            flight: FlightId,
            passengers: Vec<Passenger>,
            now: SimTime,
        ) -> ApiOutcome<BookingRef> {
            self.parties.push(passengers.clone());
            match self.sys.hold(flight, passengers, now) {
                Ok(r) => ApiOutcome::Ok(r),
                Err(e) => ApiOutcome::Domain(e),
            }
        }
        fn pay(
            &mut self,
            _req: &ClientRequest,
            _booking: BookingRef,
            _now: SimTime,
        ) -> ApiOutcome<()> {
            ApiOutcome::Ok(())
        }
        fn send_otp(
            &mut self,
            _req: &ClientRequest,
            _phone: fg_core::ids::PhoneNumber,
            _now: SimTime,
        ) -> ApiOutcome<()> {
            ApiOutcome::Ok(())
        }
        fn boarding_pass_sms(
            &mut self,
            _req: &ClientRequest,
            _booking: BookingRef,
            _phone: fg_core::ids::PhoneNumber,
            _now: SimTime,
        ) -> ApiOutcome<()> {
            ApiOutcome::Ok(())
        }
        fn availability(&self, flight: FlightId) -> Option<Availability> {
            self.sys.availability(flight)
        }
        fn departure(&self, flight: FlightId) -> Option<SimTime> {
            self.sys.flight(flight).map(|f| f.departure())
        }
    }

    fn run(seed: u64, days: u64) -> (ManualSpinner, OpenApp) {
        let mut sys = ReservationSystem::new(SimDuration::from_mins(30), 9);
        sys.add_flight(Flight::new(FlightId(1), 180, SimTime::from_days(60)));
        let mut app = OpenApp {
            sys,
            parties: Vec::new(),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bot = ManualSpinner::new(
            ManualSpinnerConfig::airline_c(FlightId(1), SimTime::from_days(days)),
            ClientId(777),
            GeoDatabase::default_world(),
            &mut rng,
        );
        let mut now = SimTime::ZERO;
        loop {
            app.sys.expire_due(now);
            match bot.wake(&mut app, now, &mut rng) {
                Some(next) if next <= SimTime::from_days(days) => now = next,
                _ => break,
            }
        }
        (bot, app)
    }

    #[test]
    fn produces_the_airline_c_signature() {
        let (bot, app) = run(1, 3);
        assert!(bot.stats().holds_placed >= 10, "{:?}", bot.stats());
        let mut analyzer = NameAbuseAnalyzer::new();
        for party in &app.parties {
            analyzer.record(party);
        }
        let report = analyzer.report();
        assert!(report.manual_suspected(), "{report:?}");
        assert!(!report.automated_suspected(), "{report:?}");
    }

    #[test]
    fn fingerprint_is_stable_across_sessions() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut bot = ManualSpinner::new(
            ManualSpinnerConfig::airline_c(FlightId(1), SimTime::from_days(2)),
            ClientId(7),
            GeoDatabase::default_world(),
            &mut rng,
        );
        let a = bot.request(SimTime::ZERO, &mut rng);
        let b = bot.request(SimTime::from_hours(5), &mut rng);
        assert_eq!(
            a.fingerprint.identity_hash(),
            b.fingerprint.identity_hash(),
            "no rotation — it's a real browser"
        );
        assert_ne!(a.ip, b.ip, "but IPs vary across sessions");
    }

    #[test]
    fn pacing_is_human_scale() {
        let (bot, _) = run(3, 2);
        // ~20 sessions/day for 2 days, ± jitter; far from bot volume.
        let s = bot.stats().sessions;
        assert!((20..=120).contains(&s), "sessions {s}");
    }

    #[test]
    fn stops_at_end_time() {
        let (bot, _) = run(4, 1);
        let sessions_after_1d = bot.stats().sessions;
        assert!(
            sessions_after_1d < 80,
            "bounded by horizon: {sessions_after_1d}"
        );
    }
}
