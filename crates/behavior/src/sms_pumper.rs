//! The advanced SMS-pumping bot (§IV-C, Airline D).
//!
//! "Attackers purchased tickets … using fake data and (later discovered)
//! stolen credit cards. They repeatedly requested the boarding pass through
//! SMS via automated bot, leveraging residential proxies to rotate their
//! bots' IP addresses *while matching the countries associated with the
//! mobile numbers*. Additionally, they continuously altered their bots'
//! fingerprints."
//!
//! The bot runs two phases: **provision** (buy a handful of tickets) and
//! **pump** (flood boarding-pass SMS across premium destinations chosen by
//! expected payout). A separate [`SmsPumperConfig::otp_variant`] skips the
//! purchase and pumps the login-OTP endpoint instead — the classic,
//! cheaper-to-mount form.

use crate::api::{Agent, ApiOutcome, App, ClientRequest};
use crate::namegen::gibberish_party;
use fg_core::ids::{BookingRef, ClientId, CountryCode, FlightId, PhoneNumber};
use fg_core::money::Money;
use fg_core::stats::Categorical;
use fg_core::time::{SimDuration, SimTime};
use fg_fingerprint::population::PopulationModel;
use fg_fingerprint::rotation::{RotationSchedule, RotationStrategy, Rotator};
use fg_mitigation::economics::AttackerLedger;
use fg_mitigation::gating::TrustTier;
use fg_netsim::geo::GeoDatabase;
use fg_netsim::ip::IpClass;
use fg_netsim::proxy::ProxyPool;
use fg_smsgw::rates::RateTable;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// SMS-pumper configuration.
#[derive(Clone, Debug)]
pub struct SmsPumperConfig {
    /// Flight to buy enabling tickets on (boarding-pass variant).
    pub target_flight: FlightId,
    /// Tickets to purchase in the provisioning phase.
    pub tickets_to_buy: u32,
    /// What each ticket costs the attacker (≈ 0 with stolen cards, but the
    /// card-acquisition cost is real; default \$8 per ticket equivalent).
    pub ticket_cost: Money,
    /// SMS requests attempted per hour at full throttle.
    pub sms_per_hour: f64,
    /// Pump the OTP endpoint instead of boarding passes (no purchase phase).
    pub otp_variant: bool,
    /// Stop after this instant.
    pub end_time: SimTime,
    /// Fingerprint rotation cadence while pumping.
    pub rotation_schedule: RotationSchedule,
}

impl SmsPumperConfig {
    /// The Airline D / December-2022 configuration.
    pub fn airline_d(target_flight: FlightId, end_time: SimTime) -> Self {
        SmsPumperConfig {
            target_flight,
            tickets_to_buy: 5,
            ticket_cost: Money::from_units(8),
            sms_per_hour: 600.0,
            otp_variant: false,
            end_time,
            rotation_schedule: RotationSchedule::IntervalAndOnBlock {
                mean: SimDuration::from_hours(4),
                jitter_frac: 0.4,
                reaction: SimDuration::from_mins(20),
            },
        }
    }
}

/// Observable pumper statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PumperStats {
    /// Tickets successfully provisioned.
    pub tickets: u32,
    /// SMS successfully triggered.
    pub sms_sent: u64,
    /// Requests refused by the defence.
    pub defence_refusals: u64,
    /// Requests refused by the gateway quota.
    pub quota_refusals: u64,
    /// Distinct destination countries pumped.
    pub countries_used: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Provision,
    Pump,
    Done,
}

/// The SMS-pumping agent.
#[derive(Debug)]
pub struct SmsPumper {
    config: SmsPumperConfig,
    client: ClientId,
    rotator: Rotator,
    proxies: ProxyPool,
    geo: GeoDatabase,
    country_weights: Categorical<CountryCode>,
    tickets: Vec<BookingRef>,
    next_ticket_idx: usize,
    phase: Phase,
    ledger: AttackerLedger,
    stats: PumperStats,
    countries_seen: std::collections::HashSet<CountryCode>,
    backoff_until: SimTime,
    // Leased exits are reused across requests (real pumpers amortize proxy
    // cost); the cache is flushed on fingerprint rotation and refreshed per
    // exit after LEASE_REUSE requests.
    exit_cache: std::collections::HashMap<CountryCode, (fg_netsim::ip::IpAddress, u32)>,
    last_rotation_count: usize,
    label: String,
}

/// Requests served per proxy lease before renewing it.
const LEASE_REUSE: u32 = 50;

impl SmsPumper {
    /// Creates the bot. Country targeting weights are proportional to the
    /// economic value of each destination ([`RateTable::attack_value`]) —
    /// the paper found "no significant correlation between the targeted
    /// countries and the attacked domain"; the attacker follows the money.
    pub fn new(
        config: SmsPumperConfig,
        client: ClientId,
        geo: GeoDatabase,
        rates: &RateTable,
        rng: &mut StdRng,
    ) -> Self {
        let pairs: Vec<(CountryCode, f64)> = geo
            .countries()
            .iter()
            .map(|&c| (c, rates.attack_value(c).max(1e-6)))
            .collect();
        let country_weights = Categorical::new(pairs).expect("geo countries are non-empty");
        let rotator = Rotator::new(
            PopulationModel::default_web(),
            RotationStrategy::Mimicry,
            config.rotation_schedule,
            SimTime::ZERO,
            rng,
        );
        let phase = if config.otp_variant {
            Phase::Pump
        } else {
            Phase::Provision
        };
        SmsPumper {
            proxies: ProxyPool::residential(&geo, 64),
            config,
            client,
            rotator,
            geo,
            country_weights,
            tickets: Vec::new(),
            next_ticket_idx: 0,
            phase,
            ledger: AttackerLedger::new(),
            stats: PumperStats::default(),
            countries_seen: std::collections::HashSet::new(),
            backoff_until: SimTime::ZERO,
            exit_cache: std::collections::HashMap::new(),
            last_rotation_count: 0,
            label: "sms-pumper".to_owned(),
        }
    }

    /// The bot's ledger; the scenario adds SMS kickback revenue from the
    /// gateway's accounting.
    pub fn ledger(&self) -> AttackerLedger {
        let mut l = self.ledger;
        l.proxy_spend = self.proxies.total_spend();
        l
    }

    /// Observable statistics.
    pub fn stats(&self) -> PumperStats {
        let mut s = self.stats;
        s.countries_used = self.countries_seen.len() as u64;
        s
    }

    fn request_via(
        &mut self,
        country: CountryCode,
        now: SimTime,
        rng: &mut StdRng,
    ) -> ClientRequest {
        // A new fingerprint identity must not keep old exits (linkable);
        // flush the lease cache on rotation.
        let rotations = self.rotator.rotation_times().len();
        if rotations != self.last_rotation_count {
            self.last_rotation_count = rotations;
            self.exit_cache.clear();
        }
        // Geo-matched exit: rent in the SMS destination country (falling
        // back to any country with inventory), reusing each lease for
        // LEASE_REUSE requests to amortize its cost.
        let cached = self
            .exit_cache
            .get(&country)
            .filter(|&&(_, used)| used < LEASE_REUSE)
            .map(|&(ip, _)| ip);
        let ip = match cached {
            Some(ip) => {
                self.exit_cache
                    .entry(country)
                    .and_modify(|(_, used)| *used += 1);
                ip
            }
            None => {
                let fresh = self
                    .proxies
                    .rent(country, now, rng)
                    .or_else(|| self.proxies.rent_any(now, rng))
                    .map(|l| l.ip())
                    .unwrap_or_else(|| {
                        self.geo
                            .sample_ip(CountryCode::new("US"), IpClass::Datacenter, rng)
                            .expect("US datacenter space exists")
                    });
                self.exit_cache.insert(country, (fresh, 1));
                fresh
            }
        };
        ClientRequest {
            client: self.client,
            ip,
            fingerprint: self.rotator.current().clone(),
            tier: TrustTier::Anonymous,
            is_bot: true,
        }
    }

    fn provision(&mut self, app: &mut dyn App, now: SimTime, rng: &mut StdRng) {
        let country = *self.country_weights.sample(rng);
        let req = self.request_via(country, now, rng);
        let party = gibberish_party(rng, 1);
        match app.hold(&req, self.config.target_flight, party, now) {
            ApiOutcome::Ok(reference) => {
                match app.pay(&req, reference, now + SimDuration::from_mins(2)) {
                    ApiOutcome::Ok(()) => {
                        self.tickets.push(reference);
                        self.ledger.purchase_spend += self.config.ticket_cost;
                        self.stats.tickets += 1;
                        if self.stats.tickets >= self.config.tickets_to_buy {
                            self.phase = Phase::Pump;
                        }
                    }
                    outcome => {
                        if outcome.defence_refused() {
                            self.on_refusal(now, rng);
                        }
                    }
                }
            }
            outcome => {
                if outcome.defence_refused() {
                    self.on_refusal(now, rng);
                }
            }
        }
    }

    fn on_refusal(&mut self, now: SimTime, rng: &mut StdRng) {
        self.stats.defence_refusals += 1;
        self.rotator.notify_blocked(now, rng);
        self.exit_cache.clear(); // the current exits may be burned
        self.backoff_until = now + SimDuration::from_mins(rng.gen_range(5..30));
    }

    fn pump_one(&mut self, app: &mut dyn App, now: SimTime, rng: &mut StdRng) {
        let country = *self.country_weights.sample(rng);
        let phone = PhoneNumber::new(country, 900_000_000 + rng.gen_range(0..1_000_000));
        let req = self.request_via(country, now, rng);

        let outcome = if self.config.otp_variant {
            app.send_otp(&req, phone, now)
        } else {
            // Round-robin across the provisioned booking references.
            let Some(&booking) = self
                .tickets
                .get(self.next_ticket_idx % self.tickets.len().max(1))
            else {
                self.phase = Phase::Done;
                return;
            };
            self.next_ticket_idx += 1;
            app.boarding_pass_sms(&req, booking, phone, now)
        };

        match outcome {
            ApiOutcome::Ok(()) => {
                self.stats.sms_sent += 1;
                self.countries_seen.insert(country);
            }
            ApiOutcome::QuotaExceeded => {
                self.stats.quota_refusals += 1;
            }
            o if o.defence_refused() => self.on_refusal(now, rng),
            _ => {}
        }
    }
}

impl Agent for SmsPumper {
    fn wake(&mut self, app: &mut dyn App, now: SimTime, rng: &mut StdRng) -> Option<SimTime> {
        if now > self.config.end_time || self.phase == Phase::Done {
            return None;
        }
        self.rotator.tick(now, rng);

        if now >= self.backoff_until {
            match self.phase {
                Phase::Provision => self.provision(app, now, rng),
                Phase::Pump => self.pump_one(app, now, rng),
                Phase::Done => return None,
            }
        }

        let gap_secs = 3_600.0 / self.config.sms_per_hour.max(0.01);
        let jitter = rng.gen_range(0.5..1.5);
        Some(now + SimDuration::from_millis((gap_secs * jitter * 1_000.0) as i64))
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_inventory::flight::{Availability, Flight};
    use fg_inventory::passenger::Passenger;
    use fg_inventory::system::ReservationSystem;
    use fg_smsgw::gateway::Gateway;
    use fg_smsgw::message::{SmsKind, SmsMessage};
    use rand::SeedableRng;

    /// An undefended app with a real reservation system and SMS gateway.
    struct OpenApp {
        sys: ReservationSystem,
        gw: Gateway,
    }

    impl OpenApp {
        fn new() -> Self {
            let mut sys = ReservationSystem::new(SimDuration::from_mins(30), 9);
            sys.add_flight(Flight::new(FlightId(1), 300, SimTime::from_days(60)));
            OpenApp {
                sys,
                gw: Gateway::default_network(),
            }
        }
    }

    impl App for OpenApp {
        fn search(&mut self, _req: &ClientRequest, _now: SimTime) -> ApiOutcome<()> {
            ApiOutcome::Ok(())
        }
        fn hold(
            &mut self,
            _req: &ClientRequest,
            flight: FlightId,
            passengers: Vec<Passenger>,
            now: SimTime,
        ) -> ApiOutcome<BookingRef> {
            match self.sys.hold(flight, passengers, now) {
                Ok(r) => ApiOutcome::Ok(r),
                Err(e) => ApiOutcome::Domain(e),
            }
        }
        fn pay(
            &mut self,
            _req: &ClientRequest,
            booking: BookingRef,
            now: SimTime,
        ) -> ApiOutcome<()> {
            match self
                .sys
                .pay(booking, now)
                .and_then(|()| self.sys.ticket(booking))
            {
                Ok(()) => ApiOutcome::Ok(()),
                Err(e) => ApiOutcome::Domain(e),
            }
        }
        fn send_otp(
            &mut self,
            _req: &ClientRequest,
            phone: PhoneNumber,
            now: SimTime,
        ) -> ApiOutcome<()> {
            let r = self.gw.send(SmsMessage::new(phone, SmsKind::Otp), now);
            if r.quota_exceeded {
                ApiOutcome::QuotaExceeded
            } else {
                ApiOutcome::Ok(())
            }
        }
        fn boarding_pass_sms(
            &mut self,
            _req: &ClientRequest,
            booking: BookingRef,
            phone: PhoneNumber,
            now: SimTime,
        ) -> ApiOutcome<()> {
            match self.sys.issue_boarding_pass(booking) {
                Ok(_) => {
                    let r = self
                        .gw
                        .send(SmsMessage::new(phone, SmsKind::BoardingPass(booking)), now);
                    if r.quota_exceeded {
                        ApiOutcome::QuotaExceeded
                    } else {
                        ApiOutcome::Ok(())
                    }
                }
                Err(e) => ApiOutcome::Domain(e),
            }
        }
        fn availability(&self, flight: FlightId) -> Option<Availability> {
            self.sys.availability(flight)
        }
        fn departure(&self, flight: FlightId) -> Option<SimTime> {
            self.sys.flight(flight).map(|f| f.departure())
        }
    }

    fn run(days: u64, otp: bool, seed: u64) -> (SmsPumper, OpenApp) {
        let mut app = OpenApp::new();
        let geo = GeoDatabase::default_world();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut config = SmsPumperConfig::airline_d(FlightId(1), SimTime::from_days(days));
        config.otp_variant = otp;
        let mut bot = SmsPumper::new(config, ClientId(888), geo, app.gw.rates(), &mut rng);
        let mut now = SimTime::ZERO;
        loop {
            app.sys.expire_due(now);
            match bot.wake(&mut app, now, &mut rng) {
                Some(next) if next <= SimTime::from_days(days) => now = next,
                _ => break,
            }
        }
        (bot, app)
    }

    #[test]
    fn provisions_tickets_then_pumps() {
        let (bot, app) = run(2, false, 1);
        let s = bot.stats();
        assert_eq!(s.tickets, 5, "provisioned the configured tickets");
        assert!(s.sms_sent > 5_000, "pumped hard: {}", s.sms_sent);
        assert!(
            app.gw.owner_cost() > Money::from_units(100),
            "owner pays: {}",
            app.gw.owner_cost()
        );
        assert!(app.gw.attacker_revenue() > Money::ZERO, "kickbacks flow");
    }

    #[test]
    fn targets_premium_head_countries() {
        let (_, app) = run(2, false, 2);
        let uz = app.gw.sent_to(CountryCode::new("UZ"));
        let fr = app.gw.sent_to(CountryCode::new("FR"));
        assert!(uz > fr * 5, "premium UZ ({uz}) dwarfs ordinary FR ({fr})");
    }

    #[test]
    fn spreads_across_many_countries() {
        let (bot, _) = run(2, false, 3);
        // §IV-C: 42 different countries. With value-weighted sampling over
        // 48, a two-day pump reaches most of them.
        assert!(
            bot.stats().countries_used >= 35,
            "{}",
            bot.stats().countries_used
        );
    }

    #[test]
    fn otp_variant_needs_no_tickets() {
        let (bot, app) = run(1, true, 4);
        assert_eq!(bot.stats().tickets, 0);
        assert!(bot.stats().sms_sent > 2_000);
        assert_eq!(app.sys.booking_count(), 0, "no reservations at all");
    }

    #[test]
    fn geo_matches_exit_to_destination() {
        let mut app = OpenApp::new();
        let geo = GeoDatabase::default_world();
        let mut rng = StdRng::seed_from_u64(5);
        let mut bot = SmsPumper::new(
            SmsPumperConfig::airline_d(FlightId(1), SimTime::from_days(1)),
            ClientId(9),
            geo.clone(),
            app.gw.rates(),
            &mut rng,
        );
        let uz = CountryCode::new("UZ");
        let req = bot.request_via(uz, SimTime::ZERO, &mut rng);
        assert_eq!(
            geo.country_of(req.ip),
            Some(uz),
            "exit country matches number country"
        );
        let _ = &mut app;
    }

    #[test]
    fn profitable_when_undefended() {
        let (bot, app) = run(2, false, 6);
        let mut ledger = bot.ledger();
        ledger.sms_revenue = app.gw.attacker_revenue();
        assert!(
            !ledger.unviable(),
            "undefended pumping is profitable: {ledger}"
        );
    }

    #[test]
    fn ledger_counts_ticket_purchases() {
        let (bot, _) = run(1, false, 7);
        assert_eq!(bot.ledger().purchase_spend, Money::from_units(40)); // 5 × $8
    }
}
