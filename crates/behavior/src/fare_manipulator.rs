//! The price-drop manipulator (§II-A).
//!
//! "In cases involving dynamic pricing, attackers strategically hold
//! reservations and items at lower fares without an investment to force
//! price drops before making a legitimate purchase." The agent runs the
//! Seat-Spinning hold loop to suppress real sales, watches the public fare
//! quote, and converts to a *genuine purchase* the moment the revenue-
//! management system capitulates (or its deadline arrives).

use crate::api::{Agent, ApiOutcome, App, ClientRequest};
use crate::namegen::legit_party;
use fg_core::ids::{BookingRef, ClientId, CountryCode, FlightId};
use fg_core::money::Money;
use fg_core::time::{SimDuration, SimTime};
use fg_fingerprint::population::PopulationModel;
use fg_fingerprint::rotation::{RotationSchedule, RotationStrategy, Rotator};
use fg_mitigation::economics::AttackerLedger;
use fg_mitigation::gating::TrustTier;
use fg_netsim::geo::GeoDatabase;
use fg_netsim::proxy::ProxyPool;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Fare-manipulator configuration.
#[derive(Clone, Debug)]
pub struct FareManipulatorConfig {
    /// The flight whose fare is being manipulated.
    pub target_flight: FlightId,
    /// Seats the attacker actually wants to buy at the bottom.
    pub seats_wanted: u32,
    /// Buy once the quote falls to this fraction of the opening quote.
    pub buy_at_fraction: f64,
    /// Give up waiting and buy this long before departure regardless.
    pub deadline_before_departure: SimDuration,
    /// Bookings maintained concurrently during the suppression phase.
    pub concurrent_holds: u32,
    /// The hold TTL the attacker learned.
    pub known_hold_ttl: SimDuration,
    /// Party size per suppression hold.
    pub hold_nip: u32,
}

impl FareManipulatorConfig {
    /// A typical manipulation campaign: hold aggressively, buy 4 seats once
    /// the fare dropped 25 %, never later than 3 days before departure.
    pub fn typical(target_flight: FlightId) -> Self {
        FareManipulatorConfig {
            target_flight,
            seats_wanted: 4,
            buy_at_fraction: 0.75,
            deadline_before_departure: SimDuration::from_days(3),
            concurrent_holds: 10,
            known_hold_ttl: SimDuration::from_mins(30),
            hold_nip: 6,
        }
    }
}

/// Observable manipulator statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ManipulatorStats {
    /// Suppression holds placed.
    pub holds_placed: u64,
    /// The opening fare quote the campaign saw.
    pub opening_fare: Option<Money>,
    /// The fare actually paid per seat, once bought.
    pub bought_at: Option<Money>,
    /// Seats bought.
    pub seats_bought: u32,
    /// Defence refusals encountered.
    pub defence_refusals: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Suppress,
    Done,
}

/// The price-drop manipulation agent.
#[derive(Debug)]
pub struct FareManipulator {
    config: FareManipulatorConfig,
    client: ClientId,
    rotator: Rotator,
    proxies: ProxyPool,
    active_holds: Vec<(BookingRef, SimTime)>,
    current_ip: fg_netsim::ip::IpAddress,
    phase: Phase,
    stats: ManipulatorStats,
    ledger: AttackerLedger,
    label: String,
}

impl FareManipulator {
    /// Creates the agent.
    pub fn new(
        config: FareManipulatorConfig,
        client: ClientId,
        geo: GeoDatabase,
        rng: &mut StdRng,
    ) -> Self {
        let rotator = Rotator::new(
            PopulationModel::default_web(),
            RotationStrategy::Mimicry,
            RotationSchedule::OnBlock {
                reaction: SimDuration::from_hours(3),
            },
            SimTime::ZERO,
            rng,
        );
        let mut proxies = ProxyPool::residential(&geo, 64);
        let lease = proxies
            .rent(CountryCode::new("US"), SimTime::ZERO, rng)
            .expect("US residential exits exist");
        FareManipulator {
            current_ip: lease.ip(),
            config,
            client,
            rotator,
            proxies,
            active_holds: Vec::new(),
            phase: Phase::Suppress,
            stats: ManipulatorStats::default(),
            ledger: AttackerLedger::new(),
            label: "fare-manipulator".to_owned(),
        }
    }

    /// Observable statistics.
    pub fn stats(&self) -> ManipulatorStats {
        self.stats
    }

    /// The campaign ledger: proxy spend, the genuine purchase, and the
    /// savings relative to the opening fare booked as `other_revenue`.
    pub fn ledger(&self) -> AttackerLedger {
        let mut l = self.ledger;
        l.proxy_spend = self.proxies.total_spend();
        l
    }

    fn request(&self) -> ClientRequest {
        ClientRequest {
            client: self.client,
            ip: self.current_ip,
            fingerprint: self.rotator.current().clone(),
            tier: TrustTier::Verified,
            is_bot: true,
        }
    }

    fn try_buy(&mut self, app: &mut dyn App, now: SimTime, rng: &mut StdRng, fare: Money) {
        // Release pressure: stop re-holding; buy as a clean, paying customer.
        let party = legit_party(rng, self.config.seats_wanted as usize);
        match app.hold(&self.request(), self.config.target_flight, party, now) {
            ApiOutcome::Ok(reference) => {
                match app.pay(&self.request(), reference, now + SimDuration::from_mins(3)) {
                    ApiOutcome::Ok(()) => {
                        self.stats.bought_at = Some(fare);
                        self.stats.seats_bought = self.config.seats_wanted;
                        self.ledger.purchase_spend += fare * u64::from(self.config.seats_wanted);
                        if let Some(open) = self.stats.opening_fare {
                            let saved = (open - fare) * u64::from(self.config.seats_wanted);
                            if saved.is_positive() {
                                self.ledger.other_revenue += saved;
                            }
                        }
                        self.phase = Phase::Done;
                    }
                    o if o.defence_refused() => {
                        self.stats.defence_refusals += 1;
                        self.rotator.notify_blocked(now, rng);
                    }
                    _ => {}
                }
            }
            o if o.defence_refused() => {
                self.stats.defence_refusals += 1;
                self.rotator.notify_blocked(now, rng);
            }
            _ => {}
        }
    }

    fn suppress(&mut self, app: &mut dyn App, now: SimTime, rng: &mut StdRng) {
        self.active_holds.retain(|&(_, expiry)| expiry > now);
        let mut attempts = 0;
        while (self.active_holds.len() as u32) < self.config.concurrent_holds && attempts < 20 {
            attempts += 1;
            let party = legit_party(rng, self.config.hold_nip as usize);
            match app.hold(&self.request(), self.config.target_flight, party, now) {
                ApiOutcome::Ok(reference) => {
                    self.active_holds
                        .push((reference, now + self.config.known_hold_ttl));
                    self.stats.holds_placed += 1;
                }
                o if o.defence_refused() => {
                    self.stats.defence_refusals += 1;
                    self.rotator.notify_blocked(now, rng);
                    if let Some(lease) = self.proxies.rent(CountryCode::new("US"), now, rng) {
                        self.current_ip = lease.ip();
                    }
                    break;
                }
                _ => break,
            }
        }
    }
}

impl Agent for FareManipulator {
    fn wake(&mut self, app: &mut dyn App, now: SimTime, rng: &mut StdRng) -> Option<SimTime> {
        if self.phase == Phase::Done {
            return None;
        }
        self.rotator.tick(now, rng);

        let fare = app.quote(self.config.target_flight, now);
        if self.stats.opening_fare.is_none() {
            self.stats.opening_fare = fare;
        }

        let departure = app.departure(self.config.target_flight)?;
        let deadline = departure - self.config.deadline_before_departure;

        let cheap_enough = match (fare, self.stats.opening_fare) {
            (Some(f), Some(open)) => f <= open.mul_f64(self.config.buy_at_fraction),
            _ => false,
        };
        if cheap_enough || now >= deadline {
            if let Some(f) = fare {
                self.try_buy(app, now, rng, f);
            }
            return if self.phase == Phase::Done {
                None
            } else {
                Some(now + SimDuration::from_mins(30))
            };
        }

        self.suppress(app, now, rng);
        let next_expiry = self
            .active_holds
            .iter()
            .map(|&(_, e)| e)
            .min()
            .unwrap_or(SimTime::MAX);
        Some(next_expiry.min(now + SimDuration::from_mins(15)))
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_inventory::flight::{Availability, Flight};
    use fg_inventory::passenger::Passenger;
    use fg_inventory::pricing::DynamicPricer;
    use fg_inventory::system::ReservationSystem;
    use rand::SeedableRng;

    /// A minimal dynamically-priced open app.
    struct PricedApp {
        sys: ReservationSystem,
        pricer: DynamicPricer,
    }

    impl PricedApp {
        fn new() -> Self {
            let mut sys = ReservationSystem::new(SimDuration::from_mins(30), 9);
            sys.add_flight(Flight::new(FlightId(1), 180, SimTime::from_days(30)));
            PricedApp {
                sys,
                pricer: DynamicPricer::airline(Money::from_units(100)),
            }
        }
    }

    impl App for PricedApp {
        fn search(&mut self, _req: &ClientRequest, _now: SimTime) -> ApiOutcome<()> {
            ApiOutcome::Ok(())
        }
        fn hold(
            &mut self,
            _req: &ClientRequest,
            flight: FlightId,
            passengers: Vec<Passenger>,
            now: SimTime,
        ) -> ApiOutcome<BookingRef> {
            match self.sys.hold(flight, passengers, now) {
                Ok(r) => ApiOutcome::Ok(r),
                Err(e) => ApiOutcome::Domain(e),
            }
        }
        fn pay(
            &mut self,
            _req: &ClientRequest,
            booking: BookingRef,
            now: SimTime,
        ) -> ApiOutcome<()> {
            match self
                .sys
                .pay(booking, now)
                .and_then(|()| self.sys.ticket(booking))
            {
                Ok(()) => ApiOutcome::Ok(()),
                Err(e) => ApiOutcome::Domain(e),
            }
        }
        fn send_otp(
            &mut self,
            _req: &ClientRequest,
            _phone: fg_core::ids::PhoneNumber,
            _now: SimTime,
        ) -> ApiOutcome<()> {
            ApiOutcome::Ok(())
        }
        fn boarding_pass_sms(
            &mut self,
            _req: &ClientRequest,
            _booking: BookingRef,
            _phone: fg_core::ids::PhoneNumber,
            _now: SimTime,
        ) -> ApiOutcome<()> {
            ApiOutcome::Ok(())
        }
        fn availability(&self, flight: FlightId) -> Option<Availability> {
            self.sys.availability(flight)
        }
        fn departure(&self, flight: FlightId) -> Option<SimTime> {
            self.sys.flight(flight).map(|f| f.departure())
        }
        fn quote(&self, flight: FlightId, now: SimTime) -> Option<Money> {
            let a = self.sys.availability(flight)?;
            let dep = self.sys.flight(flight)?.departure();
            Some(self.pricer.quote(a, now, SimTime::ZERO, dep))
        }
    }

    fn drive(bot: &mut FareManipulator, app: &mut PricedApp, until: SimTime, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now = SimTime::ZERO;
        loop {
            app.sys.expire_due(now);
            match bot.wake(app, now, &mut rng) {
                Some(next) if next <= until => now = next,
                _ => break,
            }
        }
    }

    #[test]
    fn suppression_forces_the_fare_down_then_buys() {
        let mut app = PricedApp::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut bot = FareManipulator::new(
            FareManipulatorConfig::typical(FlightId(1)),
            ClientId(13),
            GeoDatabase::default_world(),
            &mut rng,
        );
        drive(&mut bot, &mut app, SimTime::from_days(29), 2);

        let stats = bot.stats();
        assert!(stats.holds_placed > 50, "{stats:?}");
        let open = stats.opening_fare.expect("saw an opening fare");
        let bought = stats.bought_at.expect("bought at the bottom");
        assert!(
            bought <= open.mul_f64(0.76),
            "bought at {bought} vs opening {open}"
        );
        assert_eq!(stats.seats_bought, 4);

        // The campaign ledger shows real savings.
        let ledger = bot.ledger();
        assert!(ledger.other_revenue.is_positive(), "{ledger}");
    }

    #[test]
    fn without_suppression_the_fare_stays_higher() {
        // Control: the same flight left alone sells nothing either, but the
        // manipulator's value is the *guarantee* of the bottom fare despite
        // genuine demand. Simulate genuine demand: pre-sell on pace, then
        // verify the quote never reaches the fire-sale floor.
        let mut app = PricedApp::new();
        let mut rng = StdRng::seed_from_u64(3);
        let req = ClientRequest {
            client: ClientId(99),
            ip: fg_netsim::ip::IpAddress::from_octets(10, 0, 0, 1),
            fingerprint: PopulationModel::default_web().sample_human(&mut rng),
            tier: TrustTier::Verified,
            is_bot: false,
        };
        for day in 0..29u64 {
            let now = SimTime::from_days(day);
            // Six seats per day keeps the flight on pace.
            let b = app
                .hold(&req, FlightId(1), legit_party(&mut rng, 6), now)
                .unwrap();
            app.pay(&req, b, now + SimDuration::from_mins(5)).unwrap();
        }
        let quote = app.quote(FlightId(1), SimTime::from_days(29)).unwrap();
        assert!(
            quote >= Money::from_units(90),
            "healthy flight never fire-sales: {quote}"
        );
    }

    #[test]
    fn deadline_forces_the_purchase() {
        let mut app = PricedApp::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mut cfg = FareManipulatorConfig::typical(FlightId(1));
        cfg.buy_at_fraction = 0.01; // a bottom that never arrives
        let mut bot =
            FareManipulator::new(cfg, ClientId(14), GeoDatabase::default_world(), &mut rng);
        drive(&mut bot, &mut app, SimTime::from_days(29), 5);
        assert!(
            bot.stats().bought_at.is_some(),
            "deadline purchase happened: {:?}",
            bot.stats()
        );
    }
}
