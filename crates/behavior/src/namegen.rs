//! Passenger-detail generators.
//!
//! One generator per population the paper describes: realistic names for
//! legitimate travellers, and the three §IV-B attacker signatures.

use fg_inventory::passenger::{Date, Passenger};
use rand::Rng;

/// First-name pool for the legitimate population (multi-locale).
const FIRST_NAMES: &[&str] = &[
    "Maria", "Elena", "Anna", "Sofia", "Laura", "Carmen", "Julia", "Emma", "Alice", "Clara",
    "James", "John", "David", "Carlos", "Luis", "Pierre", "Jean", "Marco", "Luca", "Andrea", "Wei",
    "Ming", "Yuki", "Hiro", "Amir", "Omar", "Fatima", "Aisha", "Priya", "Raj", "Olga", "Ivan",
    "Dmitri", "Katya", "Hans", "Greta", "Lars", "Ingrid", "Kofi", "Ama",
];

/// Surname pool for the legitimate population.
const SURNAMES: &[&str] = &[
    "Garcia", "Martinez", "Rossi", "Bianchi", "Dupont", "Martin", "Schmidt", "Muller", "Smith",
    "Johnson", "Brown", "Taylor", "Chen", "Wang", "Tanaka", "Sato", "Ali", "Hassan", "Patel",
    "Sharma", "Ivanov", "Petrov", "Kowalski", "Nowak", "Silva", "Santos", "Larsen", "Berg",
    "Mensah", "Osei", "Costa", "Ferreira", "Moreau", "Lefebvre", "Ricci", "Greco", "Keller",
    "Wagner", "Lindberg", "Holm",
];

const EMAIL_DOMAINS: &[&str] = &["example.com", "mail.test", "inbox.example", "post.invalid"];

/// Draws a random birthdate between 1950 and 2005.
pub fn random_birthdate<R: Rng + ?Sized>(rng: &mut R) -> Date {
    loop {
        let y = rng.gen_range(1950..=2005);
        let m = rng.gen_range(1..=12);
        let d = rng.gen_range(1..=28);
        if let Some(date) = Date::new(y, m, d) {
            return date;
        }
    }
}

/// Draws a surname; 35 % are hyphenated double-barrelled names, which keeps
/// the effective surname space large enough that repeated full-name
/// collisions across thousands of passengers stay rare (as in reality).
pub fn legit_surname<R: Rng + ?Sized>(rng: &mut R) -> String {
    let a = SURNAMES[rng.gen_range(0..SURNAMES.len())];
    if rng.gen_bool(0.35) {
        let b = SURNAMES[rng.gen_range(0..SURNAMES.len())];
        if a != b {
            return format!("{a}-{b}");
        }
    }
    a.to_owned()
}

/// Generates a realistic legitimate passenger.
pub fn legit_passenger<R: Rng + ?Sized>(rng: &mut R) -> Passenger {
    let first = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
    let last = legit_surname(rng);
    let email = format!(
        "{}.{}{}@{}",
        first.to_lowercase(),
        last.to_lowercase().replace('-', "."),
        rng.gen_range(1..999),
        EMAIL_DOMAINS[rng.gen_range(0..EMAIL_DOMAINS.len())]
    );
    Passenger::full(first, &last, random_birthdate(rng), &email)
}

/// Generates a party of `n` legitimate passengers; members of a party share
/// a surname with 60 % probability (families travel together).
pub fn legit_party<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<Passenger> {
    let mut party = Vec::with_capacity(n);
    let family = rng.gen_bool(0.6);
    let shared_surname = legit_surname(rng);
    for _ in 0..n {
        let mut p = legit_passenger(rng);
        if family {
            let first = p.first_name.clone();
            let email = p.email.clone().unwrap_or_default();
            p = Passenger::full(
                &first,
                &shared_surname,
                p.birthdate.expect("legit passengers carry birthdates"),
                &email,
            );
        }
        party.push(p);
    }
    party
}

/// Generates a keyboard-mash gibberish string of `len` letters.
pub fn gibberish_name<R: Rng + ?Sized>(rng: &mut R, len: usize) -> String {
    // Consonant-heavy alphabet: mimics real observed junk entries.
    const LETTERS: &[u8] = b"bcdfghjklmnpqrstvwxzaeiou";
    let mut s = String::with_capacity(len);
    for i in 0..len {
        // Bias towards consonants (first 20 letters) to look mashed.
        let idx = if rng.gen_bool(0.8) {
            rng.gen_range(0..20)
        } else {
            rng.gen_range(20..LETTERS.len())
        };
        let c = LETTERS[idx] as char;
        s.push(if i == 0 { c.to_ascii_uppercase() } else { c });
    }
    s
}

/// Generates a party of gibberish passengers — the random-entry bot
/// signature ("Name: affjgdui, Surname: ddfjrei").
pub fn gibberish_party<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<Passenger> {
    (0..n)
        .map(|_| {
            let first_len = rng.gen_range(6..10);
            let last_len = rng.gen_range(6..10);
            let first = gibberish_name(rng, first_len);
            let last = gibberish_name(rng, last_len);
            let email = format!("{}@emailprovider.test", last.to_lowercase());
            Passenger::full(&first, &last, random_birthdate(rng), &email)
        })
        .collect()
}

/// The Airline B automation signature: a fixed lead passenger whose
/// birthdate rotates systematically; companions drawn from a small
/// overlapping pool with varying birthdates.
#[derive(Clone, Debug)]
pub struct RotatingBirthdateGenerator {
    lead_first: String,
    lead_surname: String,
    companion_pool: Vec<(String, String)>,
    bookings_made: u32,
}

impl RotatingBirthdateGenerator {
    /// Creates a generator with a fixed lead identity and a companion pool of
    /// `pool_size` name pairs.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, pool_size: usize) -> Self {
        let companion_pool = (0..pool_size)
            .map(|_| {
                (
                    FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())].to_owned(),
                    SURNAMES[rng.gen_range(0..SURNAMES.len())].to_owned(),
                )
            })
            .collect();
        RotatingBirthdateGenerator {
            lead_first: FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())].to_owned(),
            lead_surname: SURNAMES[rng.gen_range(0..SURNAMES.len())].to_owned(),
            companion_pool,
            bookings_made: 0,
        }
    }

    /// Generates the next booking's party of `n` passengers.
    pub fn next_party<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize) -> Vec<Passenger> {
        self.bookings_made += 1;
        let mut party = Vec::with_capacity(n);
        // Lead: fixed name, systematically advancing birthdate.
        let base = Date::new(1990, 1, 1).expect("static date is valid");
        let lead_birthdate = base.plus_days(self.bookings_made * 7);
        party.push(Passenger::full(
            &self.lead_first,
            &self.lead_surname,
            lead_birthdate,
            "lead@pax.test",
        ));
        // Companions: overlapping name pairs, varying birthdates.
        for _ in 1..n {
            let (first, last) = &self.companion_pool[rng.gen_range(0..self.companion_pool.len())];
            party.push(Passenger::full(
                first,
                last,
                random_birthdate(rng),
                "c@pax.test",
            ));
        }
        party
    }
}

/// The Airline C manual signature: a fixed set of passenger names reused in
/// different orders, with occasional misspellings.
#[derive(Clone, Debug)]
pub struct PermutedSetGenerator {
    // Each pool member is a real person to the attacker: name AND birthdate
    // are fixed across bookings (unlike the automated rotating-birthdate
    // signature).
    pool: Vec<(String, String, Date)>,
    typo_prob: f64,
}

impl PermutedSetGenerator {
    /// Creates a generator over a fixed pool of `pool_size` names with the
    /// given per-passenger typo probability.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, pool_size: usize, typo_prob: f64) -> Self {
        let mut pool: Vec<(String, String, Date)> = Vec::with_capacity(pool_size);
        while pool.len() < pool_size {
            let first = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())].to_owned();
            let last = SURNAMES[rng.gen_range(0..SURNAMES.len())].to_owned();
            if !pool.iter().any(|(f, l, _)| *f == first && *l == last) {
                let birthdate = random_birthdate(rng);
                pool.push((first, last, birthdate));
            }
        }
        PermutedSetGenerator {
            pool,
            typo_prob: typo_prob.clamp(0.0, 1.0),
        }
    }

    fn typo<R: Rng + ?Sized>(rng: &mut R, name: &str) -> String {
        let mut chars: Vec<char> = name.chars().collect();
        if chars.len() >= 2 {
            let i = rng.gen_range(0..chars.len() - 1);
            chars.swap(i, i + 1);
        }
        chars.into_iter().collect()
    }

    /// Generates the next booking's party: the same `n` pool members in a
    /// fresh order (manual seat selection for the same people, §IV-B).
    pub fn next_party<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Passenger> {
        let n = n.min(self.pool.len());
        // A random ordering of the pool prefix — always the same people.
        let mut order: Vec<usize> = (0..self.pool.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        order.truncate(n);
        order
            .into_iter()
            .map(|idx| {
                let (first, last, birthdate) = &self.pool[idx];
                let last = if rng.gen_bool(self.typo_prob) {
                    Self::typo(rng, last)
                } else {
                    last.clone()
                };
                Passenger::full(first, &last, *birthdate, "m@pax.test")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_detection::names::{gibberish_score, NameAbuseAnalyzer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn legit_names_look_human() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let p = legit_passenger(&mut rng);
            assert!(
                gibberish_score(&p.first_name) < 0.5,
                "{} scored gibberish",
                p.first_name
            );
            assert!(p.birthdate.is_some());
            assert!(p.email.as_deref().unwrap_or("").contains('@'));
        }
    }

    #[test]
    fn legit_party_size_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in 1..=9 {
            assert_eq!(legit_party(&mut rng, n).len(), n);
        }
    }

    #[test]
    fn gibberish_parties_trip_the_detector() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = 0;
        for _ in 0..100 {
            let p = &gibberish_party(&mut rng, 1)[0];
            if gibberish_score(&p.first_name).max(gibberish_score(&p.surname)) > 0.5 {
                hits += 1;
            }
        }
        assert!(hits > 75, "only {hits}/100 gibberish parties flagged");
    }

    #[test]
    fn rotating_birthdate_generator_matches_airline_b() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut g = RotatingBirthdateGenerator::new(&mut rng, 5);
        let mut analyzer = NameAbuseAnalyzer::new();
        for _ in 0..8 {
            analyzer.record(&g.next_party(&mut rng, 3));
        }
        let report = analyzer.report();
        assert!(report.automated_suspected(), "{report:?}");
        assert!(!report.rotating_birthdate_keys.is_empty());
    }

    #[test]
    fn rotating_lead_is_stable_name_distinct_birthdates() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = RotatingBirthdateGenerator::new(&mut rng, 4);
        let p1 = g.next_party(&mut rng, 2);
        let p2 = g.next_party(&mut rng, 2);
        assert_eq!(p1[0].name_key(), p2[0].name_key());
        assert_ne!(p1[0].birthdate, p2[0].birthdate);
    }

    #[test]
    fn permuted_set_generator_matches_airline_c() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = PermutedSetGenerator::new(&mut rng, 4, 0.15);
        let mut analyzer = NameAbuseAnalyzer::new();
        for _ in 0..12 {
            analyzer.record(&g.next_party(&mut rng, 4));
        }
        let report = analyzer.report();
        assert!(report.manual_suspected(), "{report:?}");
    }

    #[test]
    fn permuted_parties_reuse_the_pool() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = PermutedSetGenerator::new(&mut rng, 3, 0.0);
        let mut keys = std::collections::HashSet::new();
        for _ in 0..20 {
            for p in g.next_party(&mut rng, 3) {
                keys.insert(p.name_key());
            }
        }
        assert_eq!(keys.len(), 3, "exactly the fixed pool appears");
    }

    #[test]
    fn typo_swaps_adjacent_letters() {
        let mut rng = StdRng::seed_from_u64(8);
        let t = PermutedSetGenerator::typo(&mut rng, "GARCIA");
        assert_ne!(t, "GARCIA");
        assert_eq!(t.len(), 6);
        assert_eq!(fg_detection::names::levenshtein(&t, "GARCIA"), 2);
    }
}
