//! The classic web scraper — the paper's introductory functional abuse.
//!
//! "A well-known and straightforward example of such an attack is web
//! scraping … the exploited feature is the item display functionality."
//! The scraper is everything DoI and SMS-pumping bots are not: loud. It
//! crawls search and detail pages at machine rate, which is exactly what
//! classical volume-based behaviour detection (§III-A) and trap files catch.
//! It serves as the contrast class in the detector experiments.

use crate::api::{Agent, App, ClientRequest};
use fg_core::ids::{ClientId, CountryCode, FlightId};
use fg_core::time::{SimDuration, SimTime};
use fg_fingerprint::population::PopulationModel;
use fg_fingerprint::rotation::{RotationSchedule, RotationStrategy, Rotator};
use fg_mitigation::gating::TrustTier;
use fg_netsim::geo::GeoDatabase;
use fg_netsim::proxy::ProxyPool;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Scraper configuration.
#[derive(Clone, Debug)]
pub struct ScraperConfig {
    /// Flights whose prices/availability are being scraped.
    pub flights: Vec<FlightId>,
    /// Pages fetched per crawl burst.
    pub pages_per_burst: u32,
    /// Bursts per hour.
    pub bursts_per_hour: f64,
    /// Probability of following the hidden trap link per burst (naive
    /// crawlers follow every href; careful ones prune).
    pub trap_prob: f64,
    /// Stop after this instant.
    pub end_time: SimTime,
}

impl ScraperConfig {
    /// A naive fare scraper: fast, trap-blind.
    pub fn naive(flights: Vec<FlightId>, end_time: SimTime) -> Self {
        ScraperConfig {
            flights,
            pages_per_burst: 40,
            bursts_per_hour: 6.0,
            trap_prob: 0.3,
            end_time,
        }
    }
}

/// Observable scraper statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScraperStats {
    /// Pages successfully fetched.
    pub pages_fetched: u64,
    /// Requests refused by the defence.
    pub defence_refusals: u64,
}

/// The scraping agent.
#[derive(Debug)]
pub struct Scraper {
    config: ScraperConfig,
    client: ClientId,
    rotator: Rotator,
    proxies: ProxyPool,
    stats: ScraperStats,
    label: String,
}

impl Scraper {
    /// Creates the scraper.
    pub fn new(
        config: ScraperConfig,
        client: ClientId,
        geo: GeoDatabase,
        rng: &mut StdRng,
    ) -> Self {
        let rotator = Rotator::new(
            PopulationModel::default_web(),
            RotationStrategy::Naive { artifact_prob: 0.1 },
            RotationSchedule::Interval {
                mean: SimDuration::from_hours(2),
                jitter_frac: 0.3,
            },
            SimTime::ZERO,
            rng,
        );
        Scraper {
            proxies: ProxyPool::datacenter(&geo, 64),
            config,
            client,
            rotator,
            stats: ScraperStats::default(),
            label: "scraper".to_owned(),
        }
    }

    /// Observable statistics.
    pub fn stats(&self) -> ScraperStats {
        self.stats
    }
}

impl Agent for Scraper {
    fn wake(&mut self, app: &mut dyn App, now: SimTime, rng: &mut StdRng) -> Option<SimTime> {
        if now > self.config.end_time {
            return None;
        }
        self.rotator.tick(now, rng);
        // Cheap datacenter exits, one per burst.
        let ip = self
            .proxies
            .rent(CountryCode::new("US"), now, rng)
            .map(|l| l.ip())
            .expect("US datacenter exits exist");
        let req = ClientRequest {
            client: self.client,
            ip,
            fingerprint: self.rotator.current().clone(),
            tier: TrustTier::Anonymous,
            is_bot: true,
        };

        // A burst: rapid-fire searches across the catalogue, seconds apart.
        for page in 0..self.config.pages_per_burst {
            let t = now + SimDuration::from_millis(i64::from(page) * 800);
            let outcome = app.search(&req, t);
            if outcome.is_ok() {
                self.stats.pages_fetched += 1;
                let _ = app
                    .availability(self.config.flights[page as usize % self.config.flights.len()]);
            } else {
                self.stats.defence_refusals += 1;
                break; // burst aborted; rotate and retry next burst
            }
        }
        let _ = rng.gen_bool(self.config.trap_prob.clamp(0.0, 1.0));

        let gap_secs = 3_600.0 / self.config.bursts_per_hour.max(0.01);
        Some(now + SimDuration::from_millis((gap_secs * rng.gen_range(0.7..1.3) * 1_000.0) as i64))
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ApiOutcome;
    use fg_core::ids::BookingRef;
    use fg_inventory::flight::Availability;
    use fg_inventory::passenger::Passenger;
    use rand::SeedableRng;

    struct CountingApp {
        searches: u64,
    }

    impl App for CountingApp {
        fn search(&mut self, _req: &ClientRequest, _now: SimTime) -> ApiOutcome<()> {
            self.searches += 1;
            ApiOutcome::Ok(())
        }
        fn hold(
            &mut self,
            _req: &ClientRequest,
            _flight: FlightId,
            _passengers: Vec<Passenger>,
            _now: SimTime,
        ) -> ApiOutcome<BookingRef> {
            ApiOutcome::Blocked
        }
        fn pay(&mut self, _req: &ClientRequest, _b: BookingRef, _now: SimTime) -> ApiOutcome<()> {
            ApiOutcome::Blocked
        }
        fn send_otp(
            &mut self,
            _req: &ClientRequest,
            _p: fg_core::ids::PhoneNumber,
            _now: SimTime,
        ) -> ApiOutcome<()> {
            ApiOutcome::Blocked
        }
        fn boarding_pass_sms(
            &mut self,
            _req: &ClientRequest,
            _b: BookingRef,
            _p: fg_core::ids::PhoneNumber,
            _now: SimTime,
        ) -> ApiOutcome<()> {
            ApiOutcome::Blocked
        }
        fn availability(&self, _flight: FlightId) -> Option<Availability> {
            Some(Availability {
                available: 100,
                held: 0,
                sold: 0,
            })
        }
        fn departure(&self, _flight: FlightId) -> Option<SimTime> {
            Some(SimTime::from_days(30))
        }
    }

    #[test]
    fn scraper_is_loud() {
        let mut app = CountingApp { searches: 0 };
        let mut rng = StdRng::seed_from_u64(1);
        let mut bot = Scraper::new(
            ScraperConfig::naive(vec![FlightId(1), FlightId(2)], SimTime::from_days(1)),
            ClientId(3),
            GeoDatabase::default_world(),
            &mut rng,
        );
        let mut now = SimTime::ZERO;
        while let Some(next) = bot.wake(&mut app, now, &mut rng) {
            if next > SimTime::from_days(1) {
                break;
            }
            now = next;
        }
        // ~6 bursts/hour × 40 pages × 24 h ≈ 5760 pages.
        assert!(bot.stats().pages_fetched > 3_000, "{:?}", bot.stats());
        assert_eq!(app.searches, bot.stats().pages_fetched);
    }

    #[test]
    fn refused_burst_aborts_early() {
        struct RefusingApp;
        impl App for RefusingApp {
            fn search(&mut self, _req: &ClientRequest, _now: SimTime) -> ApiOutcome<()> {
                ApiOutcome::Blocked
            }
            fn hold(
                &mut self,
                _req: &ClientRequest,
                _flight: FlightId,
                _passengers: Vec<Passenger>,
                _now: SimTime,
            ) -> ApiOutcome<BookingRef> {
                ApiOutcome::Blocked
            }
            fn pay(&mut self, _r: &ClientRequest, _b: BookingRef, _n: SimTime) -> ApiOutcome<()> {
                ApiOutcome::Blocked
            }
            fn send_otp(
                &mut self,
                _r: &ClientRequest,
                _p: fg_core::ids::PhoneNumber,
                _n: SimTime,
            ) -> ApiOutcome<()> {
                ApiOutcome::Blocked
            }
            fn boarding_pass_sms(
                &mut self,
                _r: &ClientRequest,
                _b: BookingRef,
                _p: fg_core::ids::PhoneNumber,
                _n: SimTime,
            ) -> ApiOutcome<()> {
                ApiOutcome::Blocked
            }
            fn availability(&self, _f: FlightId) -> Option<Availability> {
                None
            }
            fn departure(&self, _f: FlightId) -> Option<SimTime> {
                None
            }
        }
        let mut app = RefusingApp;
        let mut rng = StdRng::seed_from_u64(2);
        let mut bot = Scraper::new(
            ScraperConfig::naive(vec![FlightId(1)], SimTime::from_hours(2)),
            ClientId(3),
            GeoDatabase::default_world(),
            &mut rng,
        );
        bot.wake(&mut app, SimTime::ZERO, &mut rng);
        assert_eq!(bot.stats().pages_fetched, 0);
        assert_eq!(bot.stats().defence_refusals, 1, "one refusal per burst");
    }
}
