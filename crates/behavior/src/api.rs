//! The application interface agents drive.
//!
//! Agents (legitimate or malicious) never touch the reservation system or
//! SMS gateway directly — they go through [`App`], which `fg-scenario`
//! implements as the defended application façade. The outcome of every call
//! tells the agent what a real client would learn from the HTTP response:
//! success, a specific domain failure, or a defence action — the feedback
//! loop that adaptive attackers (§IV-A) exploit.

use fg_core::ids::{BookingRef, ClientId, FlightId, PhoneNumber};
use fg_core::money::Money;
use fg_core::time::SimTime;
use fg_fingerprint::attributes::Fingerprint;
use fg_inventory::error::InventoryError;
use fg_inventory::flight::Availability;
use fg_inventory::passenger::Passenger;
use fg_mitigation::gating::TrustTier;
use fg_netsim::ip::IpAddress;
use rand::rngs::StdRng;
use std::fmt;

/// Everything a client presents with one request.
#[derive(Clone, Debug)]
pub struct ClientRequest {
    /// Ground-truth client identity (simulation bookkeeping; the defence
    /// never keys on it).
    pub client: ClientId,
    /// Source address (direct or proxy exit).
    pub ip: IpAddress,
    /// Presented browser fingerprint.
    pub fingerprint: Fingerprint,
    /// Account standing.
    pub tier: TrustTier,
    /// `true` for automated clients — used ONLY to route CAPTCHA solving
    /// through the solver-economics model, never as a detection input.
    pub is_bot: bool,
}

/// What one API call produced.
#[derive(Clone, Debug, PartialEq)]
pub enum ApiOutcome<T> {
    /// The application served the request.
    Ok(T),
    /// A block rule or verdict block refused it.
    Blocked,
    /// A rate limit refused it.
    RateLimited,
    /// The client's tier may not use this feature.
    TierDenied,
    /// A CAPTCHA was demanded and the client failed/abandoned it.
    ChallengeFailed,
    /// The application itself refused (sold out, party too large, …).
    Domain(InventoryError),
    /// The SMS could not be sent because the contracted quota is exhausted.
    QuotaExceeded,
}

impl<T> ApiOutcome<T> {
    /// `true` on success.
    pub fn is_ok(&self) -> bool {
        matches!(self, ApiOutcome::Ok(_))
    }

    /// `true` when the defence (not the domain) refused the request — the
    /// signal that makes adaptive attackers rotate.
    pub fn defence_refused(&self) -> bool {
        matches!(
            self,
            ApiOutcome::Blocked
                | ApiOutcome::RateLimited
                | ApiOutcome::TierDenied
                | ApiOutcome::ChallengeFailed
        )
    }

    /// Unwraps the success value.
    ///
    /// # Panics
    ///
    /// Panics if the outcome is not `Ok`.
    pub fn unwrap(self) -> T
    where
        T: fmt::Debug,
    {
        match self {
            ApiOutcome::Ok(v) => v,
            other => panic!("called unwrap on a non-Ok outcome: {other:?}"),
        }
    }

    /// The success value, if any.
    pub fn ok(self) -> Option<T> {
        match self {
            ApiOutcome::Ok(v) => Some(v),
            _ => None,
        }
    }
}

impl<T: fmt::Debug> fmt::Display for ApiOutcome<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiOutcome::Ok(v) => write!(f, "ok({v:?})"),
            ApiOutcome::Blocked => write!(f, "blocked"),
            ApiOutcome::RateLimited => write!(f, "rate-limited"),
            ApiOutcome::TierDenied => write!(f, "tier-denied"),
            ApiOutcome::ChallengeFailed => write!(f, "challenge-failed"),
            ApiOutcome::Domain(e) => write!(f, "domain-error({e})"),
            ApiOutcome::QuotaExceeded => write!(f, "quota-exceeded"),
        }
    }
}

/// The defended application, as seen by a client.
pub trait App {
    /// Browses / searches flights (GET traffic; feeds behaviour detection).
    fn search(&mut self, req: &ClientRequest, now: SimTime) -> ApiOutcome<()>;

    /// Places a seat hold.
    fn hold(
        &mut self,
        req: &ClientRequest,
        flight: FlightId,
        passengers: Vec<Passenger>,
        now: SimTime,
    ) -> ApiOutcome<BookingRef>;

    /// Pays for a held booking (also issues the e-ticket on success).
    fn pay(&mut self, req: &ClientRequest, booking: BookingRef, now: SimTime) -> ApiOutcome<()>;

    /// Requests an OTP SMS to `phone`.
    fn send_otp(&mut self, req: &ClientRequest, phone: PhoneNumber, now: SimTime)
        -> ApiOutcome<()>;

    /// Requests boarding-pass delivery via SMS for a ticketed booking.
    fn boarding_pass_sms(
        &mut self,
        req: &ClientRequest,
        booking: BookingRef,
        phone: PhoneNumber,
        now: SimTime,
    ) -> ApiOutcome<()>;

    /// Public seat availability for a flight (what any client can scrape).
    fn availability(&self, flight: FlightId) -> Option<Availability>;

    /// The flight's departure time (public schedule data).
    fn departure(&self, flight: FlightId) -> Option<SimTime>;

    /// The current fare quote per seat, when the application runs dynamic
    /// pricing. Defaults to `None` (fixed-fare applications).
    fn quote(&self, flight: FlightId, now: SimTime) -> Option<Money> {
        let _ = (flight, now);
        None
    }
}

/// A simulation agent: woken by the engine, drives the app, says when to be
/// woken next.
pub trait Agent {
    /// Performs this agent's actions at `now`; returns the next wake time,
    /// or `None` when the agent is finished.
    fn wake(&mut self, app: &mut dyn App, now: SimTime, rng: &mut StdRng) -> Option<SimTime>;

    /// A short label for progress reports.
    fn label(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        let ok: ApiOutcome<u32> = ApiOutcome::Ok(5);
        assert!(ok.is_ok());
        assert!(!ok.defence_refused());
        assert_eq!(ok.clone().ok(), Some(5));
        assert_eq!(ok.unwrap(), 5);

        for refused in [
            ApiOutcome::<u32>::Blocked,
            ApiOutcome::RateLimited,
            ApiOutcome::TierDenied,
            ApiOutcome::ChallengeFailed,
        ] {
            assert!(refused.defence_refused(), "{refused}");
            assert!(!refused.is_ok());
        }
        let domain: ApiOutcome<u32> = ApiOutcome::Domain(InventoryError::EmptyParty);
        assert!(
            !domain.defence_refused(),
            "domain errors are not defence actions"
        );
        assert_eq!(domain.ok(), None);
    }

    #[test]
    #[should_panic(expected = "non-Ok outcome")]
    fn unwrap_panics_on_refusal() {
        ApiOutcome::<u32>::Blocked.unwrap();
    }

    #[test]
    fn display_variants() {
        assert_eq!(ApiOutcome::<u32>::Blocked.to_string(), "blocked");
        assert_eq!(ApiOutcome::Ok(3u32).to_string(), "ok(3)");
        assert!(ApiOutcome::<u32>::Domain(InventoryError::EmptyParty)
            .to_string()
            .contains("domain-error"));
    }
}
