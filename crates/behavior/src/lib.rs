//! # fg-behavior
//!
//! Workload models for the FeatureGuard simulation: the legitimate traffic
//! the attacks hide inside, and the attackers themselves.
//!
//! * [`api`] — the [`api::App`] trait every agent drives, and the
//!   outcome type agents adapt to. The real application façade lives in
//!   `fg-scenario`; agents only see this trait.
//! * [`namegen`] — passenger-detail generators: realistic names for
//!   legitimate bookers, and the §IV-B attack signatures (gibberish,
//!   fixed-name + rotating birthdate, fixed-set permutations with
//!   misspellings).
//! * [`legit`] — the legitimate booker population: empirical NiP
//!   distribution (Fig. 1's "average week" bar), diurnal arrivals, a
//!   search→hold→pay funnel with abandonment, and cap-adaptation (groups
//!   larger than a new NiP cap split into multiple bookings, reproducing the
//!   post-mitigation rise at the cap).
//! * [`seat_spinner`] — the §IV-A automated Seat Spinning bot:
//!   reconnaissance, hold-expiry re-reservation loop, stealth NiP choice,
//!   fingerprint/proxy rotation on block, cap adaptation, and the
//!   stop-2-days-before-departure endgame.
//! * [`manual_spinner`] — the §IV-B manual attacker: a fixed name set
//!   permuted across bookings, occasional typos, human-like pacing, many
//!   IPs but a stable browser.
//! * [`sms_pumper`] — the §IV-C advanced SMS pumper: purchases a few
//!   tickets, then floods boarding-pass SMS across premium destinations via
//!   geo-matched residential proxies, rotating fingerprints continuously.
//! * [`fare_manipulator`] — the §II-A dynamic-pricing manipulator: holds
//!   inventory to suppress the booking pace, waits for the revenue-managed
//!   fare to capitulate, then buys at the bottom.
//! * [`scraper`] — the introduction's canonical *simple* functional abuse:
//!   a loud fare scraper, used as the contrast class that volume-based
//!   detection does catch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod fare_manipulator;
pub mod legit;
pub mod manual_spinner;
pub mod namegen;
pub mod scraper;
pub mod seat_spinner;
pub mod sms_pumper;

pub use api::{Agent, ApiOutcome, App, ClientRequest};
pub use fare_manipulator::{FareManipulator, FareManipulatorConfig};
pub use legit::{LegitConfig, LegitPopulation};
pub use manual_spinner::{ManualSpinner, ManualSpinnerConfig};
pub use scraper::{Scraper, ScraperConfig};
pub use seat_spinner::{NipStrategy, SeatSpinner, SeatSpinnerConfig};
pub use sms_pumper::{SmsPumper, SmsPumperConfig};
