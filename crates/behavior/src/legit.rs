//! The legitimate booker population.
//!
//! Generates the traffic Fig. 1's "average week" bar is made of: bookings
//! dominated by one- and two-passenger parties, diurnal arrivals, and a
//! realistic funnel (search → hold → pay) with abandonment — abandoned holds
//! simply lapse, exactly like the real feature. When a NiP cap is introduced,
//! larger groups *split* into multiple bookings at the cap, reproducing the
//! paper's observation that after the Airline A mitigation "there was a
//! significant rise in four-passenger reservations" from legitimate group
//! bookings too.

use crate::api::{Agent, App, ClientRequest};
use crate::namegen::legit_party;
use fg_core::event::EventQueue;
use fg_core::ids::{BookingRef, ClientId, CountryCode, FlightId, PhoneNumber};
use fg_core::stats::Categorical;
use fg_core::time::{SimDuration, SimTime};
use fg_fingerprint::population::PopulationModel;
use fg_inventory::error::InventoryError;
use fg_mitigation::gating::TrustTier;
use fg_netsim::geo::GeoDatabase;
use fg_netsim::ip::IpClass;
use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};

/// Configuration of the legitimate population.
#[derive(Clone, Debug)]
pub struct LegitConfig {
    /// Mean bookers arriving per day.
    pub arrivals_per_day: f64,
    /// NiP distribution as `(party_size, weight)` pairs.
    pub nip_weights: Vec<(usize, f64)>,
    /// Probability a held booking is paid (the rest lapse).
    pub pay_prob: f64,
    /// Payment delay range in minutes after the hold.
    pub pay_delay_mins: (i64, i64),
    /// Probability a booker triggers an OTP SMS at login.
    pub otp_prob: f64,
    /// Probability a paid booker requests a boarding pass via SMS.
    pub bp_sms_prob: f64,
    /// Flights the population books across.
    pub flights: Vec<FlightId>,
    /// No new arrivals after this instant (pending follow-ups still run).
    pub end_time: SimTime,
}

impl LegitConfig {
    /// The Fig. 1 "average week" configuration for an airline with the given
    /// flights.
    pub fn default_airline(flights: Vec<FlightId>, end_time: SimTime) -> Self {
        LegitConfig {
            arrivals_per_day: 400.0,
            nip_weights: vec![
                (1, 52.0),
                (2, 30.0),
                (3, 7.0),
                (4, 5.0),
                (5, 2.5),
                (6, 1.5),
                (7, 1.0),
                (8, 0.6),
                (9, 0.4),
            ],
            pay_prob: 0.72,
            pay_delay_mins: (2, 25),
            otp_prob: 0.35,
            bp_sms_prob: 0.45,
            flights,
            end_time,
        }
    }
}

/// Observable statistics of the legitimate population.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LegitStats {
    /// Bookers who arrived.
    pub arrivals: u64,
    /// Holds successfully placed.
    pub holds_placed: u64,
    /// Bookings paid.
    pub paid: u64,
    /// Extra bookings created because a party had to split under a NiP cap.
    pub cap_splits: u64,
    /// Bookers turned away by the defence (block/challenge/tier/limit).
    pub defence_friction: u64,
    /// Bookers turned away by sold-out inventory — the DoI harm metric.
    pub denied_by_stock: u64,
    /// OTP SMS requested.
    pub otp_sent: u64,
    /// Boarding-pass SMS requested.
    pub bp_sms_sent: u64,
}

#[derive(Clone, Debug)]
enum Pending {
    Pay {
        req: ClientRequest,
        booking: BookingRef,
        phone: PhoneNumber,
        want_bp_sms: bool,
    },
    BoardingPass {
        req: ClientRequest,
        booking: BookingRef,
        phone: PhoneNumber,
    },
}

/// The legitimate population agent.
#[derive(Debug)]
pub struct LegitPopulation {
    config: LegitConfig,
    geo: GeoDatabase,
    model: PopulationModel,
    nip: Categorical<usize>,
    home_countries: Categorical<CountryCode>,
    phone_countries: Categorical<CountryCode>,
    next_client: u64,
    next_arrival: SimTime,
    pending: EventQueue<Pending>,
    stats: LegitStats,
    label: String,
}

/// Mainstream-heavy country weights with a small but non-zero tail across
/// every modelled country (Table I needs defined baselines everywhere).
fn world_weights(geo: &GeoDatabase, mainstream_boost: f64) -> Categorical<CountryCode> {
    const MAINSTREAM: &[&str] = &["GB", "US", "FR", "DE", "ES", "IT", "CN", "TH", "SG", "JP"];
    let pairs: Vec<(CountryCode, f64)> = geo
        .countries()
        .iter()
        .map(|&c| {
            let w = if MAINSTREAM.contains(&c.as_str()) {
                mainstream_boost
            } else {
                1.0
            };
            (c, w)
        })
        .collect();
    Categorical::new(pairs).expect("static weights are valid")
}

impl LegitPopulation {
    /// Creates the population agent. `first_client_id` namespaces its ground
    /// truth client ids away from attacker ids.
    pub fn new(config: LegitConfig, geo: GeoDatabase, first_client_id: u64) -> Self {
        let nip = Categorical::new(config.nip_weights.clone()).expect("nip weights are valid");
        let home_countries = world_weights(&geo, 14.0);
        let phone_countries = world_weights(&geo, 20.0);
        LegitPopulation {
            config,
            geo,
            model: PopulationModel::default_web(),
            nip,
            home_countries,
            phone_countries,
            next_client: first_client_id,
            next_arrival: SimTime::ZERO,
            pending: EventQueue::new(),
            stats: LegitStats::default(),
            label: "legit-population".to_owned(),
        }
    }

    /// The population's observable statistics.
    pub fn stats(&self) -> LegitStats {
        self.stats
    }

    fn diurnal_factor(now: SimTime) -> f64 {
        // Peak mid-day, trough at night; never fully zero.
        let h = now.hour_of_day() as f64;
        0.4 + 0.6 * (1.0 - ((h - 14.0).abs() / 14.0))
    }

    fn next_interarrival(&self, now: SimTime, rng: &mut StdRng) -> SimDuration {
        let base_mean_secs = 86_400.0 / self.config.arrivals_per_day.max(1e-9);
        let exp = Exp::new(1.0 / base_mean_secs).expect("positive rate");
        let raw: f64 = exp.sample(rng);
        SimDuration::from_millis((raw / Self::diurnal_factor(now) * 1_000.0) as i64)
    }

    fn fresh_request(&mut self, rng: &mut StdRng) -> ClientRequest {
        let client = ClientId(self.next_client);
        self.next_client += 1;
        let home = *self.home_countries.sample(rng);
        let ip = self
            .geo
            .sample_ip(home, IpClass::Residential, rng)
            .expect("all configured countries have residential space");
        // Most airline bookers sign in with an existing account; a minority
        // checks out as guests.
        let tier = if rng.gen_bool(0.70) {
            TrustTier::Verified
        } else if rng.gen_bool(0.5) {
            TrustTier::Loyalty
        } else {
            TrustTier::Anonymous
        };
        ClientRequest {
            client,
            ip,
            fingerprint: self.model.sample_human(rng),
            tier,
            is_bot: false,
        }
    }

    fn run_booker(&mut self, app: &mut dyn App, now: SimTime, rng: &mut StdRng) {
        self.stats.arrivals += 1;
        let req = self.fresh_request(rng);
        let phone_country = *self.phone_countries.sample(rng);
        let phone = PhoneNumber::new(phone_country, 100_000_000 + req.client.as_u64());

        // Browse.
        let browses = rng.gen_range(1..=3);
        for i in 0..browses {
            let outcome = app.search(&req, now + SimDuration::from_secs(i * 20));
            if outcome.defence_refused() {
                self.stats.defence_friction += 1;
                return;
            }
        }

        // Optional OTP at login.
        if rng.gen_bool(self.config.otp_prob) {
            let o = app.send_otp(&req, phone, now + SimDuration::from_secs(70));
            if o.is_ok() {
                self.stats.otp_sent += 1;
            } else if o.defence_refused() {
                self.stats.defence_friction += 1;
                return;
            }
        }

        // Hold, splitting under a NiP cap if necessary.
        let flight = self.config.flights[rng.gen_range(0..self.config.flights.len())];
        let party_size = *self.nip.sample(rng);
        let t_hold = now + SimDuration::from_secs(90);
        let mut remaining = party_size;
        let mut bookings: Vec<BookingRef> = Vec::new();
        let mut attempt_size = party_size;
        while remaining > 0 {
            let party = legit_party(rng, attempt_size.min(remaining));
            match app.hold(&req, flight, party, t_hold) {
                crate::api::ApiOutcome::Ok(reference) => {
                    remaining -= attempt_size.min(remaining);
                    bookings.push(reference);
                    if bookings.len() > 1 {
                        self.stats.cap_splits += 1;
                    }
                }
                crate::api::ApiOutcome::Domain(InventoryError::PartyTooLarge { max, .. }) => {
                    // Adapt: rebook at the cap, as real groups do.
                    attempt_size = max as usize;
                    if attempt_size == 0 {
                        return;
                    }
                }
                crate::api::ApiOutcome::Domain(InventoryError::InsufficientSeats { .. }) => {
                    self.stats.denied_by_stock += 1;
                    return;
                }
                crate::api::ApiOutcome::Domain(_) => return,
                _refused => {
                    self.stats.defence_friction += 1;
                    return;
                }
            }
        }
        self.stats.holds_placed += bookings.len() as u64;

        // Decide payment per booker (all-or-nothing for the party).
        if rng.gen_bool(self.config.pay_prob) {
            let delay = rng.gen_range(self.config.pay_delay_mins.0..=self.config.pay_delay_mins.1);
            let want_bp = rng.gen_bool(self.config.bp_sms_prob);
            for booking in bookings {
                self.pending.schedule(
                    t_hold + SimDuration::from_mins(delay),
                    Pending::Pay {
                        req: req.clone(),
                        booking,
                        phone,
                        want_bp_sms: want_bp,
                    },
                );
            }
        }
        // Unpaid holds simply lapse via the inventory TTL.
    }

    fn run_pending(&mut self, app: &mut dyn App, action: Pending, now: SimTime, rng: &mut StdRng) {
        match action {
            Pending::Pay {
                req,
                booking,
                phone,
                want_bp_sms,
            } => {
                let outcome = app.pay(&req, booking, now);
                if outcome.is_ok() {
                    self.stats.paid += 1;
                    if want_bp_sms {
                        self.pending.schedule(
                            now + SimDuration::from_mins(rng.gen_range(10..240)),
                            Pending::BoardingPass {
                                req,
                                booking,
                                phone,
                            },
                        );
                    }
                } else if outcome.defence_refused() {
                    self.stats.defence_friction += 1;
                }
            }
            Pending::BoardingPass {
                req,
                booking,
                phone,
            } => {
                let outcome = app.boarding_pass_sms(&req, booking, phone, now);
                if outcome.is_ok() {
                    self.stats.bp_sms_sent += 1;
                } else if outcome.defence_refused() {
                    self.stats.defence_friction += 1;
                }
            }
        }
    }
}

impl Agent for LegitPopulation {
    fn wake(&mut self, app: &mut dyn App, now: SimTime, rng: &mut StdRng) -> Option<SimTime> {
        // Follow-up actions due now.
        while let Some((at, action)) = self.pending.pop_before(now) {
            self.run_pending(app, action, at.max(now), rng);
        }
        // New arrivals due now.
        while self.next_arrival <= now && self.next_arrival <= self.config.end_time {
            let arrival = self.next_arrival;
            self.next_arrival = arrival + self.next_interarrival(arrival, rng);
            self.run_booker(app, now, rng);
        }
        // Next wake: earliest of pending follow-up and next arrival.
        let mut next = None;
        if let Some(t) = self.pending.peek_time() {
            next = Some(t);
        }
        if self.next_arrival <= self.config.end_time {
            next = Some(next.map_or(self.next_arrival, |t: SimTime| t.min(self.next_arrival)));
        }
        next
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ApiOutcome;
    use fg_inventory::flight::Availability;
    use fg_inventory::passenger::Passenger;
    use rand::SeedableRng;

    /// A permissive fake app for unit-testing agents without the full
    /// scenario facade.
    struct FakeApp {
        holds: Vec<(FlightId, usize, SimTime)>,
        pays: u64,
        otps: u64,
        bps: u64,
        max_nip: u32,
        next_ref: u64,
    }

    impl FakeApp {
        fn new(max_nip: u32) -> Self {
            FakeApp {
                holds: Vec::new(),
                pays: 0,
                otps: 0,
                bps: 0,
                max_nip,
                next_ref: 0,
            }
        }
    }

    impl App for FakeApp {
        fn search(&mut self, _req: &ClientRequest, _now: SimTime) -> ApiOutcome<()> {
            ApiOutcome::Ok(())
        }
        fn hold(
            &mut self,
            _req: &ClientRequest,
            flight: FlightId,
            passengers: Vec<Passenger>,
            now: SimTime,
        ) -> ApiOutcome<BookingRef> {
            if passengers.len() as u32 > self.max_nip {
                return ApiOutcome::Domain(InventoryError::PartyTooLarge {
                    requested: passengers.len() as u32,
                    max: self.max_nip,
                });
            }
            self.holds.push((flight, passengers.len(), now));
            self.next_ref += 1;
            ApiOutcome::Ok(BookingRef::from_index(self.next_ref))
        }
        fn pay(
            &mut self,
            _req: &ClientRequest,
            _booking: BookingRef,
            _now: SimTime,
        ) -> ApiOutcome<()> {
            self.pays += 1;
            ApiOutcome::Ok(())
        }
        fn send_otp(
            &mut self,
            _req: &ClientRequest,
            _phone: PhoneNumber,
            _now: SimTime,
        ) -> ApiOutcome<()> {
            self.otps += 1;
            ApiOutcome::Ok(())
        }
        fn boarding_pass_sms(
            &mut self,
            _req: &ClientRequest,
            _booking: BookingRef,
            _phone: PhoneNumber,
            _now: SimTime,
        ) -> ApiOutcome<()> {
            self.bps += 1;
            ApiOutcome::Ok(())
        }
        fn availability(&self, _flight: FlightId) -> Option<Availability> {
            Some(Availability {
                available: 100,
                held: 0,
                sold: 0,
            })
        }
        fn departure(&self, _flight: FlightId) -> Option<SimTime> {
            Some(SimTime::from_days(30))
        }
    }

    fn drive(pop: &mut LegitPopulation, app: &mut FakeApp, until: SimTime, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now = SimTime::ZERO;
        while let Some(next) = pop.wake(app, now, &mut rng) {
            if next > until {
                break;
            }
            now = next;
        }
    }

    fn population(end_days: u64) -> LegitPopulation {
        LegitPopulation::new(
            LegitConfig::default_airline(
                vec![FlightId(1), FlightId(2)],
                SimTime::from_days(end_days),
            ),
            GeoDatabase::default_world(),
            1_000_000,
        )
    }

    #[test]
    fn generates_sensible_volume_over_a_week() {
        let mut pop = population(7);
        let mut app = FakeApp::new(9);
        drive(&mut pop, &mut app, SimTime::from_days(7), 1);
        let s = pop.stats();
        // ~400/day × 7 days, modulo diurnal + funnel losses.
        assert!(
            s.arrivals > 1_800 && s.arrivals < 4_500,
            "arrivals {}",
            s.arrivals
        );
        assert!(s.holds_placed > 1_500, "holds {}", s.holds_placed);
        // Payment rate ≈ pay_prob.
        let pay_rate = s.paid as f64 / s.holds_placed as f64;
        assert!((0.6..0.85).contains(&pay_rate), "pay rate {pay_rate}");
        assert!(s.otp_sent > 100);
        assert!(s.bp_sms_sent > 100);
        assert_eq!(s.cap_splits, 0, "no cap, no splits");
    }

    #[test]
    fn nip_distribution_matches_config() {
        let mut pop = population(7);
        let mut app = FakeApp::new(9);
        drive(&mut pop, &mut app, SimTime::from_days(7), 2);
        let total = app.holds.len() as f64;
        let ones = app.holds.iter().filter(|h| h.1 == 1).count() as f64;
        let twos = app.holds.iter().filter(|h| h.1 == 2).count() as f64;
        assert!(
            (ones / total - 0.52).abs() < 0.06,
            "NiP-1 share {}",
            ones / total
        );
        assert!(
            (twos / total - 0.30).abs() < 0.06,
            "NiP-2 share {}",
            twos / total
        );
    }

    #[test]
    fn groups_split_under_nip_cap() {
        let mut pop = population(7);
        let mut app = FakeApp::new(4); // the Airline A mitigation
        drive(&mut pop, &mut app, SimTime::from_days(7), 3);
        let s = pop.stats();
        assert!(s.cap_splits > 0, "large groups split");
        assert!(
            app.holds.iter().all(|h| h.1 <= 4),
            "no hold exceeds the cap"
        );
        // The Fig. 1 week-3 effect: a visible rise at the cap value.
        let at_cap = app.holds.iter().filter(|h| h.1 == 4).count() as f64;
        let share = at_cap / app.holds.len() as f64;
        assert!(share > 0.08, "NiP-4 share rose to {share}");
    }

    #[test]
    fn arrivals_stop_at_end_time_but_pending_completes() {
        let mut pop = population(1);
        let mut app = FakeApp::new(9);
        drive(&mut pop, &mut app, SimTime::from_days(3), 4);
        let s = pop.stats();
        assert!(
            s.arrivals < 700,
            "arrivals bounded by 1-day horizon: {}",
            s.arrivals
        );
        assert!(s.paid > 0, "pending payments ran after the horizon");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut pop = population(2);
            let mut app = FakeApp::new(9);
            drive(&mut pop, &mut app, SimTime::from_days(2), seed);
            (pop.stats(), app.holds.len(), app.pays)
        };
        assert_eq!(run(9), run(9));
    }
}
