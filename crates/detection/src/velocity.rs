//! Sliding-window velocity counters.
//!
//! The Airline D attack (§IV-C) "was detected only after the total number of
//! boarding pass requests via SMS triggered the rate limit for the targeted
//! path, as there were no SMS rate limits per user profile in place" — i.e.
//! which *key* you count by decides your detection latency. [`VelocityCounter`]
//! counts events per arbitrary key over a sliding window, so the same
//! machinery serves per-path, per-IP, per-fingerprint, and per-booking
//! velocity signals.

use fg_core::hash::FxHashMap;
use fg_core::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::hash::Hash;

/// Counts events per key over a sliding time window.
///
/// # Example
///
/// ```
/// use fg_detection::VelocityCounter;
/// use fg_core::time::{SimDuration, SimTime};
///
/// let mut v: VelocityCounter<&str> = VelocityCounter::new(SimDuration::from_mins(10));
/// v.record("booking-X", SimTime::from_mins(0));
/// v.record("booking-X", SimTime::from_mins(5));
/// assert_eq!(v.count(&"booking-X", SimTime::from_mins(5)), 2);
/// // The first event falls out of the window.
/// assert_eq!(v.count(&"booking-X", SimTime::from_mins(11)), 1);
/// ```
#[derive(Clone, Debug)]
pub struct VelocityCounter<K> {
    window: SimDuration,
    // Fx-hashed: keys are already-mixed integers (identity hashes, IPs), and
    // per-event hashing cost dominates at production rates.
    events: FxHashMap<K, VecDeque<SimTime>>,
}

impl<K: Eq + Hash + Clone> VelocityCounter<K> {
    /// Creates a counter with the given sliding window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is not positive.
    pub fn new(window: SimDuration) -> Self {
        assert!(window.as_millis() > 0, "velocity window must be positive");
        VelocityCounter {
            window,
            events: FxHashMap::default(),
        }
    }

    /// Records one event for `key` at `now`.
    pub fn record(&mut self, key: K, now: SimTime) {
        let q = self.events.entry(key).or_default();
        q.push_back(now);
        Self::evict(q, now, self.window);
    }

    fn evict(q: &mut VecDeque<SimTime>, now: SimTime, window: SimDuration) {
        while let Some(&front) = q.front() {
            if now - front > window {
                q.pop_front();
            } else {
                break;
            }
        }
    }

    /// Events for `key` inside the window ending at `now`.
    pub fn count(&mut self, key: &K, now: SimTime) -> u64 {
        match self.events.get_mut(key) {
            Some(q) => {
                Self::evict(q, now, self.window);
                q.len() as u64
            }
            None => 0,
        }
    }

    /// Records and returns the new in-window count in one step — a single
    /// map lookup, no key clone.
    pub fn record_and_count(&mut self, key: K, now: SimTime) -> u64 {
        let q = self.events.entry(key).or_default();
        q.push_back(now);
        Self::evict(q, now, self.window);
        q.len() as u64
    }

    /// Number of keys with any retained events (may include stale keys until
    /// queried; call [`VelocityCounter::compact`] to trim exactly).
    pub fn tracked_keys(&self) -> usize {
        self.events.len()
    }

    /// Drops every key whose events all fell out of the window by `now`.
    pub fn compact(&mut self, now: SimTime) {
        let window = self.window;
        self.events.retain(|_, q| {
            Self::evict(q, now, window);
            !q.is_empty()
        });
    }

    /// The configured window.
    pub fn window(&self) -> SimDuration {
        self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counts_within_window_only() {
        let mut v = VelocityCounter::new(SimDuration::from_secs(60));
        for s in [0u64, 10, 20, 30] {
            v.record("k", SimTime::from_secs(s));
        }
        assert_eq!(v.count(&"k", SimTime::from_secs(30)), 4);
        assert_eq!(v.count(&"k", SimTime::from_secs(70)), 3, "t=0 evicted");
        assert_eq!(v.count(&"k", SimTime::from_secs(300)), 0);
    }

    #[test]
    fn keys_are_independent() {
        let mut v = VelocityCounter::new(SimDuration::from_secs(60));
        v.record("a", SimTime::ZERO);
        v.record("b", SimTime::ZERO);
        v.record("b", SimTime::from_secs(1));
        assert_eq!(v.count(&"a", SimTime::from_secs(1)), 1);
        assert_eq!(v.count(&"b", SimTime::from_secs(1)), 2);
        assert_eq!(v.count(&"c", SimTime::from_secs(1)), 0);
    }

    #[test]
    fn window_boundary_inclusive() {
        let mut v = VelocityCounter::new(SimDuration::from_secs(10));
        v.record("k", SimTime::ZERO);
        assert_eq!(
            v.count(&"k", SimTime::from_secs(10)),
            1,
            "exactly window old stays"
        );
        assert_eq!(v.count(&"k", SimTime::from_millis(10_001)), 0);
    }

    #[test]
    fn record_and_count_is_atomic() {
        let mut v = VelocityCounter::new(SimDuration::from_secs(60));
        assert_eq!(v.record_and_count("k", SimTime::ZERO), 1);
        assert_eq!(v.record_and_count("k", SimTime::from_secs(1)), 2);
    }

    #[test]
    fn compact_drops_stale_keys() {
        let mut v = VelocityCounter::new(SimDuration::from_secs(10));
        v.record("old", SimTime::ZERO);
        v.record("new", SimTime::from_secs(100));
        v.compact(SimTime::from_secs(100));
        assert_eq!(v.tracked_keys(), 1);
        assert_eq!(v.count(&"new", SimTime::from_secs(100)), 1);
    }

    proptest! {
        /// Count never exceeds the number of recorded events and is exact
        /// for in-window events.
        #[test]
        fn prop_count_matches_manual(mut times in proptest::collection::vec(0u64..10_000, 0..100), probe in 0u64..12_000) {
            let window = SimDuration::from_secs(500);
            let mut v = VelocityCounter::new(window);
            // Simulation time is monotone; record in time order as real
            // callers do.
            times.sort_unstable();
            for &t in &times {
                v.record("k", SimTime::from_secs(t));
            }
            let probe = probe.max(times.iter().copied().max().unwrap_or(0));
            let now = SimTime::from_secs(probe);
            let expected = times
                .iter()
                .filter(|&&t| now - SimTime::from_secs(t) <= window)
                .count() as u64;
            prop_assert_eq!(v.count(&"k", now), expected);
        }
    }
}
