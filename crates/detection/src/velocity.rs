//! Sliding-window velocity counters.
//!
//! The Airline D attack (§IV-C) "was detected only after the total number of
//! boarding pass requests via SMS triggered the rate limit for the targeted
//! path, as there were no SMS rate limits per user profile in place" — i.e.
//! which *key* you count by decides your detection latency. [`VelocityCounter`]
//! counts events per arbitrary key over a sliding window, so the same
//! machinery serves per-path, per-IP, per-fingerprint, and per-booking
//! velocity signals.

use fg_core::hash::FxHashMap;
use fg_core::shard::ShardedStore;
use fg_core::time::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::hash::Hash;

/// One hash partition of a [`VelocityCounter`]: a flat map of per-key event
/// queues. Self-contained (it carries the window) so scoped threads can each
/// own one shard and record/compact without cross-shard coordination.
#[derive(Clone, Debug)]
pub struct VelocityShard<K> {
    window: SimDuration,
    // Fx-hashed: keys are already-mixed integers (identity hashes, IPs), and
    // per-event hashing cost dominates at production rates.
    events: FxHashMap<K, VecDeque<SimTime>>,
}

impl<K: Eq + Hash + Clone> VelocityShard<K> {
    fn new(window: SimDuration) -> Self {
        VelocityShard {
            window,
            events: FxHashMap::default(),
        }
    }

    fn evict(q: &mut VecDeque<SimTime>, now: SimTime, window: SimDuration) {
        while let Some(&front) = q.front() {
            if now - front > window {
                q.pop_front();
            } else {
                break;
            }
        }
    }

    /// Records one event for `key` at `now`.
    ///
    /// Correct only for keys this shard owns — the parent counter routes;
    /// parallel workers partition key streams with
    /// [`VelocityCounter::shard_index`] first.
    pub fn record(&mut self, key: K, now: SimTime) {
        let q = self.events.entry(key).or_default();
        q.push_back(now);
        Self::evict(q, now, self.window);
    }

    /// Records and returns the new in-window count in one step.
    pub fn record_and_count(&mut self, key: K, now: SimTime) -> u64 {
        let q = self.events.entry(key).or_default();
        q.push_back(now);
        Self::evict(q, now, self.window);
        q.len() as u64
    }

    /// Events for `key` inside the window ending at `now`.
    pub fn count(&mut self, key: &K, now: SimTime) -> u64 {
        match self.events.get_mut(key) {
            Some(q) => {
                Self::evict(q, now, self.window);
                q.len() as u64
            }
            None => 0,
        }
    }

    /// Drops every key in this shard whose events all expired by `now`.
    pub fn compact(&mut self, now: SimTime) {
        let window = self.window;
        self.events.retain(|_, q| {
            Self::evict(q, now, window);
            !q.is_empty()
        });
    }

    /// Keys with any retained events in this shard.
    pub fn tracked_keys(&self) -> usize {
        self.events.len()
    }
}

/// Counts events per key over a sliding time window.
///
/// Internally hash-partitioned into [`VelocityShard`]s (1 shard by default,
/// bit-identical to a flat map); [`VelocityCounter::compact`] stripes shard
/// by shard and aggregate reads sum over shards in index order.
///
/// # Example
///
/// ```
/// use fg_detection::VelocityCounter;
/// use fg_core::time::{SimDuration, SimTime};
///
/// let mut v: VelocityCounter<&str> = VelocityCounter::new(SimDuration::from_mins(10));
/// v.record("booking-X", SimTime::from_mins(0));
/// v.record("booking-X", SimTime::from_mins(5));
/// assert_eq!(v.count(&"booking-X", SimTime::from_mins(5)), 2);
/// // The first event falls out of the window.
/// assert_eq!(v.count(&"booking-X", SimTime::from_mins(11)), 1);
/// ```
#[derive(Clone, Debug)]
pub struct VelocityCounter<K> {
    shards: ShardedStore<K, VelocityShard<K>>,
}

impl<K: Eq + Hash + Clone> VelocityCounter<K> {
    /// Creates a single-shard counter with the given sliding window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is not positive.
    pub fn new(window: SimDuration) -> Self {
        Self::with_shards(window, 1)
    }

    /// Creates a counter hash-partitioned into `shards` partitions (rounded
    /// up to a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `window` is not positive.
    pub fn with_shards(window: SimDuration, shards: usize) -> Self {
        assert!(window.as_millis() > 0, "velocity window must be positive");
        VelocityCounter {
            shards: ShardedStore::new(shards, |_| VelocityShard::new(window)),
        }
    }

    /// Records one event for `key` at `now`.
    pub fn record(&mut self, key: K, now: SimTime) {
        self.shards.shard_mut(&key).record(key, now);
    }

    /// Events for `key` inside the window ending at `now`.
    pub fn count(&mut self, key: &K, now: SimTime) -> u64 {
        self.shards.shard_mut(key).count(key, now)
    }

    /// Records and returns the new in-window count in one step — a single
    /// map lookup, no key clone.
    pub fn record_and_count(&mut self, key: K, now: SimTime) -> u64 {
        self.shards.shard_mut(&key).record_and_count(key, now)
    }

    /// Number of keys with any retained events (may include stale keys until
    /// queried; call [`VelocityCounter::compact`] to trim exactly), summed
    /// over shards.
    pub fn tracked_keys(&self) -> usize {
        self.shards.fold(0, |acc, s| acc + s.tracked_keys())
    }

    /// Drops every key whose events all fell out of the window by `now`,
    /// striping the scan shard by shard.
    pub fn compact(&mut self, now: SimTime) {
        // fg-analyze: allow(shard-discipline): full-sweep maintenance — every shard is compacted in one pass
        for shard in self.shards.shards_mut() {
            shard.compact(now);
        }
    }

    /// The configured window.
    pub fn window(&self) -> SimDuration {
        self.shards.shards()[0].window
    }

    /// Number of shards (1 unless built via
    /// [`VelocityCounter::with_shards`]).
    pub fn shard_count(&self) -> usize {
        self.shards.shard_count()
    }

    /// The shard index owning `key` — parallel workers partition their key
    /// streams with this before taking shards from
    /// [`VelocityCounter::shards_mut`].
    pub fn shard_index(&self, key: &K) -> usize {
        self.shards.shard_index(key)
    }

    /// All shards, mutably, for coordination-free parallel recording: each
    /// scoped thread takes one `&mut VelocityShard` and records only the
    /// keys that [`VelocityCounter::shard_index`] routes to it.
    pub fn shards_mut(&mut self) -> &mut [VelocityShard<K>] {
        self.shards.shards_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counts_within_window_only() {
        let mut v = VelocityCounter::new(SimDuration::from_secs(60));
        for s in [0u64, 10, 20, 30] {
            v.record("k", SimTime::from_secs(s));
        }
        assert_eq!(v.count(&"k", SimTime::from_secs(30)), 4);
        assert_eq!(v.count(&"k", SimTime::from_secs(70)), 3, "t=0 evicted");
        assert_eq!(v.count(&"k", SimTime::from_secs(300)), 0);
    }

    #[test]
    fn keys_are_independent() {
        let mut v = VelocityCounter::new(SimDuration::from_secs(60));
        v.record("a", SimTime::ZERO);
        v.record("b", SimTime::ZERO);
        v.record("b", SimTime::from_secs(1));
        assert_eq!(v.count(&"a", SimTime::from_secs(1)), 1);
        assert_eq!(v.count(&"b", SimTime::from_secs(1)), 2);
        assert_eq!(v.count(&"c", SimTime::from_secs(1)), 0);
    }

    #[test]
    fn window_boundary_inclusive() {
        let mut v = VelocityCounter::new(SimDuration::from_secs(10));
        v.record("k", SimTime::ZERO);
        assert_eq!(
            v.count(&"k", SimTime::from_secs(10)),
            1,
            "exactly window old stays"
        );
        assert_eq!(v.count(&"k", SimTime::from_millis(10_001)), 0);
    }

    #[test]
    fn record_and_count_is_atomic() {
        let mut v = VelocityCounter::new(SimDuration::from_secs(60));
        assert_eq!(v.record_and_count("k", SimTime::ZERO), 1);
        assert_eq!(v.record_and_count("k", SimTime::from_secs(1)), 2);
    }

    #[test]
    fn compact_drops_stale_keys() {
        let mut v = VelocityCounter::new(SimDuration::from_secs(10));
        v.record("old", SimTime::ZERO);
        v.record("new", SimTime::from_secs(100));
        v.compact(SimTime::from_secs(100));
        assert_eq!(v.tracked_keys(), 1);
        assert_eq!(v.count(&"new", SimTime::from_secs(100)), 1);
    }

    #[test]
    fn sharded_counter_matches_single_shard() {
        let mut sharded: VelocityCounter<u32> =
            VelocityCounter::with_shards(SimDuration::from_secs(60), 4);
        let mut flat: VelocityCounter<u32> = VelocityCounter::new(SimDuration::from_secs(60));
        assert_eq!(sharded.shard_count(), 4);
        for step in 0..300u32 {
            let now = SimTime::from_secs(u64::from(step) * 3);
            let key = step % 13;
            assert_eq!(
                sharded.record_and_count(key, now),
                flat.record_and_count(key, now),
                "diverged at step {step}"
            );
            if step % 9 == 0 {
                sharded.compact(now);
                flat.compact(now);
            }
        }
        assert_eq!(sharded.tracked_keys(), flat.tracked_keys());
    }

    proptest! {
        /// Compacting (striped per-shard eviction) never changes any count a
        /// caller observes — the velocity-store analogue of the limiter's
        /// eviction-losslessness property.
        #[test]
        fn prop_compaction_preserves_counts(
            shards in 1usize..9,
            ops in proptest::collection::vec((0u8..12, 0u64..2_000, any::<bool>()), 1..200),
        ) {
            let window = SimDuration::from_secs(500);
            let mut compacted: VelocityCounter<u8> = VelocityCounter::with_shards(window, shards);
            let mut reference: VelocityCounter<u8> = VelocityCounter::new(window);
            let mut now = SimTime::ZERO;
            for (key, dt, compact) in ops {
                now += SimDuration::from_secs(dt as i64);
                if compact {
                    compacted.compact(now);
                }
                prop_assert_eq!(
                    compacted.record_and_count(key, now),
                    reference.record_and_count(key, now)
                );
            }
            // After a final compaction pass on both, live-key counts agree
            // too (compaction only drops keys with zero in-window events).
            compacted.compact(now);
            reference.compact(now);
            prop_assert_eq!(compacted.tracked_keys(), reference.tracked_keys());
        }

        /// Count never exceeds the number of recorded events and is exact
        /// for in-window events.
        #[test]
        fn prop_count_matches_manual(mut times in proptest::collection::vec(0u64..10_000, 0..100), probe in 0u64..12_000) {
            let window = SimDuration::from_secs(500);
            let mut v = VelocityCounter::new(window);
            // Simulation time is monotone; record in time order as real
            // callers do.
            times.sort_unstable();
            for &t in &times {
                v.record("k", SimTime::from_secs(t));
            }
            let probe = probe.max(times.iter().copied().max().unwrap_or(0));
            let now = SimTime::from_secs(probe);
            let expected = times
                .iter()
                .filter(|&&t| now - SimTime::from_secs(t) <= window)
                .count() as u64;
            prop_assert_eq!(v.count(&"k", now), expected);
        }
    }
}
