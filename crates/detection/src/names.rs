//! Passenger-name abuse heuristics — the §IV-B detectors.
//!
//! The case studies show four distinct name-level signatures:
//!
//! 1. **Gibberish names** — "entirely random entries (e.g., Name: affjgdui,
//!    Surname: ddfjrei)" → [`gibberish_score`].
//! 2. **Repeated names across bookings** → [`RepetitionTracker`].
//! 3. **Fixed name + systematically rotating birthdate** (Airline B,
//!    automated) → [`BirthdateRotationDetector`].
//! 4. **A fixed set of names permuted across bookings, with occasional
//!    misspellings** (Airline C, manual) → [`PermutationSetDetector`] and
//!    [`misspelling_clusters`].
//!
//! [`NameAbuseAnalyzer`] runs all of them over a booking stream and issues a
//! combined report distinguishing automated from manual abuse.

use fg_core::hash::{FxHashMap, FxHashSet};
use fg_inventory::passenger::Passenger;
use serde::{Deserialize, Serialize};

/// Common English/name letter bigrams used by the gibberish detector.
const COMMON_BIGRAMS: &[&str] = &[
    "th", "he", "in", "er", "an", "re", "nd", "at", "on", "nt", "ha", "es", "st", "en", "ed", "to",
    "it", "ou", "ea", "hi", "is", "or", "ti", "as", "te", "et", "ng", "of", "al", "de", "se", "le",
    "sa", "si", "ar", "ve", "ra", "ld", "ur", "li", "ri", "io", "ne", "ma", "el", "la", "ta", "ro",
    "ia", "ic", "ll", "na", "be", "ch", "am", "ca", "om", "ab", "da", "no", "ni", "us", "os", "ir",
    "ol", "ad", "lo", "do", "mi", "co", "me", "ac", "em", "um", "jo", "oh", "ja", "ju", "so", "su",
    "mo", "wi", "wa", "sh", "ke", "ko", "ki", "pa", "pe", "po", "ba", "bo", "bi", "du", "di", "ga",
    "go", "gi", "fa", "fe", "fr", "ge", "gr", "tr", "br", "ck", "ce", "ci", "ss", "tt", "nn", "mm",
    "ee", "oo", "ff", "ey", "ay", "oy", "ye", "ya", "yo", "va", "vi", "vo", "za", "ze", "zi", "ex",
    "ax", "ui", "ua", "ue", "af", "ev", "iv", "ov", "av", "ph", "gh", "wh", "qu", "ly", "ry", "ny",
    "my", "ty", "sy", "by", "dy", "we", "ei", "pr", "sc", "hm", "id", "dt", "mp", "ps", "ow", "ls",
    "sk", "nm", "rs", "ns", "hn", "aj", "fi", "ub", "oi", "uk", "yu", "iy",
];

/// `COMMON_BIGRAMS` as a 26×26 adjacency bitmask: bit `j` of `BIGRAM_BITS[i]`
/// is set when the bigram (letter `i`, letter `j`) is common. Built at
/// compile time so the per-bigram test is one shift-and-mask instead of a
/// linear scan over 170 strings.
const BIGRAM_BITS: [u32; 26] = {
    let mut bits = [0u32; 26];
    let mut k = 0;
    while k < COMMON_BIGRAMS.len() {
        let bg = COMMON_BIGRAMS[k].as_bytes();
        bits[(bg[0] - b'a') as usize] |= 1 << (bg[1] - b'a');
        k += 1;
    }
    bits
};

fn is_vowel(c: u8) -> bool {
    matches!(c, b'a' | b'e' | b'i' | b'o' | b'u' | b'y')
}

/// Scores how gibberish-like a single name is, in `0.0..=1.0`.
///
/// Combines three signals: the fraction of letter bigrams absent from a
/// common-bigram table, the longest consonant run, and deviation of the vowel
/// ratio from natural-language norms. Keyboard-mash strings score high;
/// real names across languages score low.
///
/// # Example
///
/// ```
/// use fg_detection::names::gibberish_score;
///
/// assert!(gibberish_score("ddfjrei") > 0.5);
/// assert!(gibberish_score("Martinez") < 0.5);
/// ```
pub fn gibberish_score(name: &str) -> f64 {
    // One allocation-free pass over the bytes. Multi-byte UTF-8 sequences
    // contain no ASCII-alphabetic bytes, so byte filtering matches the
    // char-level definition exactly.
    let mut len = 0usize;
    let mut vowels = 0usize;
    let mut rare = 0usize;
    let mut total = 0usize;
    let mut prev: Option<u8> = None;
    let mut run = 0usize;
    let mut max_run = 0usize;
    for &b in name.as_bytes() {
        if !b.is_ascii_alphabetic() {
            continue;
        }
        let c = b | 0x20; // ASCII lowercase
        len += 1;

        // Rare-bigram count via the compile-time adjacency mask.
        if let Some(p) = prev {
            total += 1;
            if BIGRAM_BITS[(p - b'a') as usize] >> (c - b'a') & 1 == 0 {
                rare += 1;
            }
        }
        prev = Some(c);

        // Longest consonant run. 'h' is neutral: it rides inside common
        // digraphs (ch/sh/th/schm-) without making a name unpronounceable.
        if is_vowel(c) {
            vowels += 1;
            run = 0;
        } else if c != b'h' {
            run += 1;
            max_run = max_run.max(run);
        }
    }
    if len < 4 {
        return 0.3; // too short to judge
    }

    let rare_frac = rare as f64 / total as f64;
    let run_penalty = ((max_run as f64 - 2.0) / 3.0).clamp(0.0, 1.0);
    let vowel_penalty = ((vowels as f64 / len as f64 - 0.4).abs() / 0.4).clamp(0.0, 1.0);

    (0.45 * rare_frac + 0.35 * run_penalty + 0.2 * vowel_penalty).clamp(0.0, 1.0)
}

/// Levenshtein edit distance between two strings.
///
/// # Example
///
/// ```
/// use fg_detection::names::levenshtein;
///
/// assert_eq!(levenshtein("SMITH", "SMYTH"), 1);
/// assert_eq!(levenshtein("", "ABC"), 3);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    if a.is_ascii() && b.is_ascii() {
        return levenshtein_units(a.as_bytes(), b.as_bytes());
    }
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_units(&a, &b)
}

/// Single-row DP over comparable units (bytes for ASCII, chars otherwise),
/// after trimming the common prefix and suffix. Distances stay small for
/// name-length inputs, so the row lives in a stack buffer.
fn levenshtein_units<'s, T: PartialEq + Copy>(mut a: &'s [T], mut b: &'s [T]) -> usize {
    let prefix = a.iter().zip(b).take_while(|(x, y)| x == y).count();
    a = &a[prefix..];
    b = &b[prefix..];
    let suffix = a
        .iter()
        .rev()
        .zip(b.iter().rev())
        .take_while(|(x, y)| x == y)
        .count();
    a = &a[..a.len() - suffix];
    b = &b[..b.len() - suffix];
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // The distance is symmetric; keep the DP row on the shorter side.
    if b.len() > a.len() {
        std::mem::swap(&mut a, &mut b);
    }

    const STACK_ROW: usize = 48;
    let mut stack = [0u32; STACK_ROW];
    let mut heap;
    let row: &mut [u32] = if b.len() < STACK_ROW {
        &mut stack[..=b.len()]
    } else {
        heap = vec![0u32; b.len() + 1];
        &mut heap
    };
    for (j, cell) in row.iter_mut().enumerate() {
        *cell = j as u32;
    }
    for (i, &ca) in a.iter().enumerate() {
        let mut diag = row[0];
        row[0] = i as u32 + 1;
        for (j, &cb) in b.iter().enumerate() {
            let above = row[j + 1];
            let cost = u32::from(ca != cb);
            row[j + 1] = (above + 1).min(row[j] + 1).min(diag + cost);
            diag = above;
        }
    }
    row[b.len()] as usize
}

/// Groups `names` into clusters of strings within `max_dist` edits of the
/// cluster's first member (greedy single-link). Returns only clusters with at
/// least two *distinct* spellings — the manual-misspelling signature.
pub fn misspelling_clusters(names: &[&str], max_dist: usize) -> Vec<Vec<String>> {
    // Hash-dedupe preserving first-appearance order (the old linear scan
    // made dedup itself quadratic on repetition-heavy booking streams).
    let mut seen: FxHashSet<&str> =
        FxHashSet::with_capacity_and_hasher(names.len(), Default::default());
    let mut distinct: Vec<&str> = Vec::new();
    for &n in names {
        if seen.insert(n) {
            distinct.push(n);
        }
    }
    // Length pruning: edit distance is at least the length difference, so
    // most pairs skip the DP entirely.
    let lens: Vec<usize> = distinct.iter().map(|s| s.chars().count()).collect();
    let mut assigned = vec![false; distinct.len()];
    let mut clusters = Vec::new();
    for i in 0..distinct.len() {
        if assigned[i] {
            continue;
        }
        let mut cluster = vec![distinct[i].to_owned()];
        assigned[i] = true;
        for j in (i + 1)..distinct.len() {
            if !assigned[j]
                && lens[i].abs_diff(lens[j]) <= max_dist
                && levenshtein(distinct[i], distinct[j]) <= max_dist
            {
                cluster.push(distinct[j].to_owned());
                assigned[j] = true;
            }
        }
        if cluster.len() >= 2 {
            clusters.push(cluster);
        }
    }
    clusters
}

/// Tracks how often each `"FIRST SURNAME"` key recurs across bookings.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RepetitionTracker {
    counts: FxHashMap<String, u32>,
}

impl RepetitionTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        RepetitionTracker::default()
    }

    /// Records every passenger of one booking.
    pub fn record(&mut self, passengers: &[Passenger]) {
        for p in passengers {
            *self.counts.entry(p.name_key()).or_insert(0) += 1;
        }
    }

    /// How often `key` has been seen.
    pub fn count(&self, key: &str) -> u32 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// The highest repetition count of any key (0 when empty).
    pub fn max_repetition(&self) -> u32 {
        self.counts.values().copied().max().unwrap_or(0)
    }

    /// Keys repeated at least `threshold` times, sorted.
    pub fn repeated_keys(&self, threshold: u32) -> Vec<String> {
        let mut keys: Vec<String> = self
            .counts
            .iter()
            .filter(|(_, &c)| c >= threshold)
            .map(|(k, _)| k.clone())
            .collect();
        keys.sort_unstable();
        keys
    }
}

/// Detects the Airline B signature: a fixed name with many distinct
/// birthdates across bookings.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BirthdateRotationDetector {
    birthdates: FxHashMap<String, FxHashSet<String>>,
}

impl BirthdateRotationDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        BirthdateRotationDetector::default()
    }

    /// Records every passenger of one booking.
    pub fn record(&mut self, passengers: &[Passenger]) {
        for p in passengers {
            if let Some(d) = p.birthdate {
                self.birthdates
                    .entry(p.name_key())
                    .or_default()
                    .insert(d.to_string());
            }
        }
    }

    /// Distinct birthdates seen for `key`.
    pub fn distinct_birthdates(&self, key: &str) -> usize {
        self.birthdates.get(key).map_or(0, FxHashSet::len)
    }

    /// Keys whose distinct-birthdate count reaches `threshold`, sorted.
    /// A human has one birthdate; 3+ across bookings is automation.
    pub fn rotating_keys(&self, threshold: usize) -> Vec<String> {
        let mut keys: Vec<String> = self
            .birthdates
            .iter()
            .filter(|(_, set)| set.len() >= threshold)
            .map(|(k, _)| k.clone())
            .collect();
        keys.sort_unstable();
        keys
    }
}

/// Detects the Airline C signature: the same *set* of passenger names
/// appearing across bookings in different orders.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PermutationSetDetector {
    // signature (sorted names joined) -> (bookings seen, distinct orderings)
    signatures: FxHashMap<String, (u32, FxHashSet<String>)>,
}

impl PermutationSetDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        PermutationSetDetector::default()
    }

    /// Records one booking's passenger list.
    pub fn record(&mut self, passengers: &[Passenger]) {
        if passengers.len() < 2 {
            return; // a singleton set cannot witness permutation
        }
        let ordered: Vec<String> = passengers.iter().map(Passenger::name_key).collect();
        let mut sorted = ordered.clone();
        sorted.sort_unstable();
        let signature = sorted.join("|");
        let order = ordered.join("|");
        let entry = self
            .signatures
            .entry(signature)
            .or_insert((0, FxHashSet::default()));
        entry.0 += 1;
        entry.1.insert(order);
    }

    /// Signatures seen in at least `min_bookings` bookings with at least
    /// `min_orders` distinct orderings — i.e. the same people shuffled
    /// around. Sorted for determinism.
    pub fn permuted_sets(&self, min_bookings: u32, min_orders: usize) -> Vec<String> {
        let mut sigs: Vec<String> = self
            .signatures
            .iter()
            .filter(|(_, (count, orders))| *count >= min_bookings && orders.len() >= min_orders)
            .map(|(s, _)| s.clone())
            .collect();
        sigs.sort_unstable();
        sigs
    }
}

/// A combined report over a booking stream.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NameAbuseReport {
    /// Fraction of passengers whose name scored gibberish (> 0.5).
    pub gibberish_fraction: f64,
    /// The most-repeated name key's count.
    pub max_repetition: u32,
    /// Name keys with rotating birthdates (automation signature).
    pub rotating_birthdate_keys: Vec<String>,
    /// Permuted fixed name-sets (manual signature).
    pub permuted_sets: Vec<String>,
    /// Misspelling clusters among surnames (manual signature).
    pub misspelling_cluster_count: usize,
}

impl NameAbuseReport {
    /// `true` when the stream bears the automated-abuse signature
    /// (gibberish flood or rotated birthdates).
    pub fn automated_suspected(&self) -> bool {
        self.gibberish_fraction > 0.5 || !self.rotating_birthdate_keys.is_empty()
    }

    /// `true` when the stream bears the manual-abuse signature (fixed
    /// name-set permutations, corroborated by misspellings or heavy
    /// repetition).
    pub fn manual_suspected(&self) -> bool {
        !self.permuted_sets.is_empty()
            && (self.misspelling_cluster_count > 0 || self.max_repetition >= 3)
    }
}

/// Runs every name heuristic over a stream of bookings.
#[derive(Clone, Debug, Default)]
pub struct NameAbuseAnalyzer {
    repetition: RepetitionTracker,
    birthdates: BirthdateRotationDetector,
    permutations: PermutationSetDetector,
    surnames: Vec<String>,
    passengers_seen: u64,
    gibberish_hits: u64,
}

impl NameAbuseAnalyzer {
    /// Creates an empty analyzer.
    pub fn new() -> Self {
        NameAbuseAnalyzer::default()
    }

    /// Feeds one booking's passenger list.
    pub fn record(&mut self, passengers: &[Passenger]) {
        self.repetition.record(passengers);
        self.birthdates.record(passengers);
        self.permutations.record(passengers);
        for p in passengers {
            self.passengers_seen += 1;
            let score = gibberish_score(&p.first_name).max(gibberish_score(&p.surname));
            if score > 0.5 {
                self.gibberish_hits += 1;
            }
            self.surnames.push(p.surname.clone());
        }
    }

    /// Produces the combined report.
    pub fn report(&self) -> NameAbuseReport {
        let surname_refs: Vec<&str> = self.surnames.iter().map(String::as_str).collect();
        NameAbuseReport {
            gibberish_fraction: if self.passengers_seen == 0 {
                0.0
            } else {
                self.gibberish_hits as f64 / self.passengers_seen as f64
            },
            max_repetition: self.repetition.max_repetition(),
            // Threshold 7: a genuine traveller has one birthdate; random
            // full-name collisions across a large population rarely reach
            // seven distinct dates, while the Airline B bot rotates dozens.
            rotating_birthdate_keys: self.birthdates.rotating_keys(7),
            permuted_sets: self.permutations.permuted_sets(3, 2),
            // Distance 2 catches adjacent-letter swaps (SMITH → SMIHT),
            // the dominant manual-typo class.
            misspelling_cluster_count: misspelling_clusters(&surname_refs, 2).len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_inventory::passenger::Date;

    #[test]
    fn gibberish_separates_random_from_real() {
        for fake in ["affjgdui", "ddfjrei", "xkcdqwrt", "zzgrxk"] {
            assert!(
                gibberish_score(fake) > 0.5,
                "{fake}: {}",
                gibberish_score(fake)
            );
        }
        for real in [
            "Elisabeth",
            "Martinez",
            "Chen",
            "Kowalski",
            "Thompson",
            "Garcia",
            "Johnson",
            "Dubois",
        ] {
            assert!(
                gibberish_score(real) < 0.5,
                "{real}: {}",
                gibberish_score(real)
            );
        }
    }

    #[test]
    fn gibberish_short_names_neutral() {
        assert!((gibberish_score("LI") - 0.3).abs() < 1e-12);
        assert!((gibberish_score("") - 0.3).abs() < 1e-12);
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("SMITH", "SMIHT"), 2);
    }

    #[test]
    fn misspelling_clusters_group_near_duplicates() {
        let names = ["GARCIA", "GARCIA", "GARCLA", "SMITH", "JONES"];
        let clusters = misspelling_clusters(&names, 1);
        assert_eq!(clusters.len(), 1);
        assert!(clusters[0].contains(&"GARCIA".to_owned()));
        assert!(clusters[0].contains(&"GARCLA".to_owned()));
    }

    #[test]
    fn repetition_tracker_counts() {
        let mut t = RepetitionTracker::new();
        for _ in 0..5 {
            t.record(&[Passenger::simple("John", "Doe")]);
        }
        t.record(&[Passenger::simple("Jane", "Roe")]);
        assert_eq!(t.count("JOHN DOE"), 5);
        assert_eq!(t.max_repetition(), 5);
        assert_eq!(t.repeated_keys(5), vec!["JOHN DOE".to_owned()]);
        assert!(t.repeated_keys(6).is_empty());
    }

    #[test]
    fn birthdate_rotation_flags_airline_b_pattern() {
        let mut d = BirthdateRotationDetector::new();
        // Same lead passenger, rotating birthdate — the Airline B automation.
        for day in 1..=6u8 {
            d.record(&[Passenger::full(
                "LEAD",
                "PAX",
                Date::new(1990, 1, day).unwrap(),
                "x@y.z",
            )]);
        }
        // A normal traveller books twice with one birthdate.
        for _ in 0..2 {
            d.record(&[Passenger::full(
                "NORMAL",
                "USER",
                Date::new(1985, 5, 5).unwrap(),
                "a@b.c",
            )]);
        }
        assert_eq!(d.distinct_birthdates("LEAD PAX"), 6);
        assert_eq!(d.rotating_keys(3), vec!["LEAD PAX".to_owned()]);
    }

    #[test]
    fn permutation_detector_flags_airline_c_pattern() {
        let mut det = PermutationSetDetector::new();
        let a = Passenger::simple("ANNA", "ONE");
        let b = Passenger::simple("BEN", "TWO");
        let c = Passenger::simple("CARA", "THREE");
        det.record(&[a.clone(), b.clone(), c.clone()]);
        det.record(&[c.clone(), a.clone(), b.clone()]);
        det.record(&[b.clone(), c.clone(), a.clone()]);
        let sets = det.permuted_sets(3, 2);
        assert_eq!(sets.len(), 1);
        assert!(sets[0].contains("ANNA ONE"));
        // A family booking the same trip twice in the same order is NOT
        // flagged (one ordering only).
        let mut family = PermutationSetDetector::new();
        for _ in 0..3 {
            family.record(&[a.clone(), b.clone()]);
        }
        assert!(family.permuted_sets(3, 2).is_empty());
    }

    #[test]
    fn analyzer_distinguishes_automated_and_manual() {
        // Automated stream: rotating birthdates.
        let mut auto = NameAbuseAnalyzer::new();
        for day in 1..=9u8 {
            auto.record(&[Passenger::full(
                "FIXED",
                "NAME",
                Date::new(1991, 3, day).unwrap(),
                "f@n.io",
            )]);
        }
        let r = auto.report();
        assert!(r.automated_suspected(), "{r:?}");
        assert!(!r.manual_suspected(), "{r:?}");

        // Manual stream: permuted fixed set with a misspelling.
        let mut manual = NameAbuseAnalyzer::new();
        let p1 = Passenger::simple("MARC", "DUPONT");
        let p2 = Passenger::simple("LISE", "MARTIN");
        let p3 = Passenger::simple("JEAN", "BERNARD");
        manual.record(&[p1.clone(), p2.clone(), p3.clone()]);
        manual.record(&[p3.clone(), p1.clone(), p2.clone()]);
        manual.record(&[p2.clone(), p3.clone(), p1.clone()]);
        // Typo variant of DUPONT in a further booking.
        manual.record(&[
            Passenger::simple("MARC", "DUPONT"),
            Passenger::simple("MARC", "DUPONR"),
        ]);
        let r = manual.report();
        assert!(r.manual_suspected(), "{r:?}");
        assert!(!r.automated_suspected(), "{r:?}");

        // Legit stream: diverse names, single bookings.
        let mut legit = NameAbuseAnalyzer::new();
        legit.record(&[Passenger::simple("ALICE", "MARTIN")]);
        legit.record(&[
            Passenger::simple("BRUNO", "ROSSI"),
            Passenger::simple("CARLA", "ROSSI"),
        ]);
        legit.record(&[Passenger::simple("DAVID", "CHEN")]);
        let r = legit.report();
        assert!(!r.automated_suspected(), "{r:?}");
        assert!(!r.manual_suspected(), "{r:?}");
    }

    #[test]
    fn analyzer_flags_gibberish_flood() {
        let mut a = NameAbuseAnalyzer::new();
        a.record(&[Passenger::simple("affjgdui", "ddfjrei")]);
        a.record(&[Passenger::simple("qwkjxzp", "vbnmtrw")]);
        let r = a.report();
        assert!(r.gibberish_fraction > 0.5);
        assert!(r.automated_suspected());
    }

    #[test]
    fn empty_analyzer_report_is_quiet() {
        let r = NameAbuseAnalyzer::new().report();
        assert_eq!(r.gibberish_fraction, 0.0);
        assert!(!r.automated_suspected());
        assert!(!r.manual_suspected());
    }
}
