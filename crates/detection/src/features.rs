//! Per-session behavioural features.
//!
//! The literature features (§III-A refs \[29\]–\[34\]): request volume, method
//! mix, inter-request timing, URL depth, trap-file hits. Plus the
//! domain-specific features that *do* move under functional abuse: the
//! hold/pay funnel ratio and SMS-request concentration. The experiments use
//! both sets to demonstrate why the first family fails on low-volume abuse.

use crate::log::{Endpoint, Method};
use crate::session::Session;
use serde::{Deserialize, Serialize};

/// The feature vector extracted from one session.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionFeatures {
    /// Total requests.
    pub volume: f64,
    /// GET count.
    pub gets: f64,
    /// POST count.
    pub posts: f64,
    /// Session wall-clock duration in seconds.
    pub duration_secs: f64,
    /// Mean inter-request gap in seconds (0 for single-request sessions).
    pub mean_gap_secs: f64,
    /// Coefficient of variation of inter-request gaps (0 when undefined).
    /// Scripted bots fire metronomically (cv → 0); humans are bursty.
    pub gap_cv: f64,
    /// Number of distinct endpoints touched.
    pub distinct_endpoints: f64,
    /// Mean URL depth of requests.
    pub mean_depth: f64,
    /// Search-page requests (exploration metric used for scraping detection).
    pub searches: f64,
    /// Trap-file hits (a classic crawler tell).
    pub trap_hits: f64,
    /// Hold / add-to-cart requests.
    pub holds: f64,
    /// Payment requests.
    pub pays: f64,
    /// SMS-triggering requests (OTP + boarding pass).
    pub sms_requests: f64,
    /// Fraction of requests rejected by the application.
    pub error_rate: f64,
}

impl SessionFeatures {
    /// Extracts features from a session.
    pub fn extract(session: &Session) -> Self {
        let records = session.records();
        let n = records.len() as f64;

        // One pass accumulates every per-record counter; distinct endpoints
        // become a bitmask (Endpoint has < 16 variants).
        let mut gets = 0u32;
        let mut searches = 0u32;
        let mut trap_hits = 0u32;
        let mut holds = 0u32;
        let mut pays = 0u32;
        let mut sms_requests = 0u32;
        let mut errors = 0u32;
        let mut depth_sum = 0u32;
        let mut endpoint_mask = 0u16;
        for r in records {
            if r.method == Method::Get {
                gets += 1;
            }
            if !r.ok {
                errors += 1;
            }
            depth_sum += r.endpoint.typical_depth();
            endpoint_mask |= 1 << (r.endpoint as u16);
            match r.endpoint {
                Endpoint::Search => searches += 1,
                Endpoint::TrapFile => trap_hits += 1,
                Endpoint::Hold => holds += 1,
                Endpoint::Pay => pays += 1,
                Endpoint::SendOtp | Endpoint::BoardingPass => sms_requests += 1,
                _ => {}
            }
        }

        // Inter-request gaps: two windowed passes (mean, then centred
        // variance) with no gap buffer. Centring keeps the metronomic-bot
        // case at exactly cv = 0.
        let gap_count = records.len().saturating_sub(1);
        let mut mean_gap = 0.0;
        let mut gap_cv = 0.0;
        if gap_count > 0 {
            let sum: f64 = records
                .windows(2)
                .map(|p| (p[1].at - p[0].at).as_secs_f64())
                .sum();
            mean_gap = sum / gap_count as f64;
            if gap_count >= 2 && mean_gap != 0.0 {
                let var = records
                    .windows(2)
                    .map(|p| {
                        let g = (p[1].at - p[0].at).as_secs_f64();
                        (g - mean_gap).powi(2)
                    })
                    .sum::<f64>()
                    / gap_count as f64;
                gap_cv = var.sqrt() / mean_gap;
            }
        }

        SessionFeatures {
            volume: n,
            gets: f64::from(gets),
            posts: n - f64::from(gets),
            duration_secs: session.duration().as_secs_f64(),
            mean_gap_secs: mean_gap,
            gap_cv,
            distinct_endpoints: f64::from(endpoint_mask.count_ones()),
            mean_depth: f64::from(depth_sum) / n,
            searches: f64::from(searches),
            trap_hits: f64::from(trap_hits),
            holds: f64::from(holds),
            pays: f64::from(pays),
            sms_requests: f64::from(sms_requests),
            error_rate: f64::from(errors) / n,
        }
    }

    /// The *volume-family* feature vector: the signals classical
    /// behaviour-based detectors rely on (§III-A). Used to show those
    /// detectors fail on low-volume functional abuse.
    pub fn volume_vector(&self) -> Vec<f64> {
        vec![
            self.volume,
            self.gets,
            self.posts,
            self.mean_gap_secs,
            self.distinct_endpoints,
            self.mean_depth,
            self.searches,
            self.trap_hits,
        ]
    }

    /// The *domain-family* feature vector: funnel and feature-abuse signals.
    pub fn domain_vector(&self) -> Vec<f64> {
        let hold_pay_gap = self.holds - self.pays;
        vec![
            hold_pay_gap,
            self.holds,
            self.pays,
            self.sms_requests,
            self.gap_cv,
            self.error_rate,
        ]
    }

    /// Both families concatenated.
    pub fn full_vector(&self) -> Vec<f64> {
        let mut v = self.volume_vector();
        v.extend(self.domain_vector());
        v
    }

    /// The abandonment signature of DoI: holds that never convert to pays.
    pub fn hold_abandonment(&self) -> f64 {
        if self.holds == 0.0 {
            0.0
        } else {
            (self.holds - self.pays).max(0.0) / self.holds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogRecord;
    use crate::session::sessionize;
    use fg_core::ids::ClientId;
    use fg_core::time::{SimDuration, SimTime};
    use fg_netsim::ip::IpAddress;

    fn rec(secs: u64, endpoint: Endpoint, method: Method, ok: bool) -> LogRecord {
        LogRecord {
            at: SimTime::from_secs(secs),
            ip: IpAddress::from_octets(10, 0, 0, 1),
            fingerprint: 1,
            truth_client: ClientId(1),
            method,
            endpoint,
            ok,
        }
    }

    fn single_session(records: Vec<LogRecord>) -> Session {
        let mut sessions = sessionize(records, SimDuration::from_days(1));
        assert_eq!(sessions.len(), 1);
        sessions.remove(0)
    }

    #[test]
    fn basic_counts() {
        let s = single_session(vec![
            rec(0, Endpoint::Home, Method::Get, true),
            rec(10, Endpoint::Search, Method::Get, true),
            rec(20, Endpoint::Hold, Method::Post, true),
            rec(30, Endpoint::Pay, Method::Post, false),
        ]);
        let f = SessionFeatures::extract(&s);
        assert_eq!(f.volume, 4.0);
        assert_eq!(f.gets, 2.0);
        assert_eq!(f.posts, 2.0);
        assert_eq!(f.holds, 1.0);
        assert_eq!(f.pays, 1.0);
        assert_eq!(f.distinct_endpoints, 4.0);
        assert!((f.error_rate - 0.25).abs() < 1e-12);
        assert_eq!(f.duration_secs, 30.0);
        assert_eq!(f.mean_gap_secs, 10.0);
    }

    #[test]
    fn metronomic_bot_has_zero_gap_cv() {
        let s = single_session(
            (0..10)
                .map(|i| rec(i * 5, Endpoint::Hold, Method::Post, true))
                .collect(),
        );
        let f = SessionFeatures::extract(&s);
        assert!(f.gap_cv < 1e-12, "constant gaps → cv 0, got {}", f.gap_cv);
    }

    #[test]
    fn bursty_human_has_positive_gap_cv() {
        let times = [0u64, 2, 4, 300, 302, 600];
        let s = single_session(
            times
                .iter()
                .map(|&t| rec(t, Endpoint::Search, Method::Get, true))
                .collect(),
        );
        let f = SessionFeatures::extract(&s);
        assert!(f.gap_cv > 0.5, "bursty gaps → high cv, got {}", f.gap_cv);
    }

    #[test]
    fn hold_abandonment_signature() {
        let doi = single_session(vec![
            rec(0, Endpoint::Hold, Method::Post, true),
            rec(10, Endpoint::Hold, Method::Post, true),
        ]);
        assert_eq!(SessionFeatures::extract(&doi).hold_abandonment(), 1.0);

        let legit = single_session(vec![
            rec(0, Endpoint::Hold, Method::Post, true),
            rec(10, Endpoint::Pay, Method::Post, true),
        ]);
        assert_eq!(SessionFeatures::extract(&legit).hold_abandonment(), 0.0);

        let browser = single_session(vec![rec(0, Endpoint::Search, Method::Get, true)]);
        assert_eq!(SessionFeatures::extract(&browser).hold_abandonment(), 0.0);
    }

    #[test]
    fn sms_requests_count_both_channels() {
        let s = single_session(vec![
            rec(0, Endpoint::SendOtp, Method::Post, true),
            rec(1, Endpoint::BoardingPass, Method::Post, true),
            rec(2, Endpoint::BoardingPass, Method::Post, true),
        ]);
        assert_eq!(SessionFeatures::extract(&s).sms_requests, 3.0);
    }

    #[test]
    fn vectors_have_fixed_arity() {
        let s = single_session(vec![rec(0, Endpoint::Home, Method::Get, true)]);
        let f = SessionFeatures::extract(&s);
        assert_eq!(f.volume_vector().len(), 8);
        assert_eq!(f.domain_vector().len(), 6);
        assert_eq!(f.full_vector().len(), 14);
    }

    #[test]
    fn single_request_session_is_safe() {
        let s = single_session(vec![rec(0, Endpoint::Home, Method::Get, true)]);
        let f = SessionFeatures::extract(&s);
        assert_eq!(f.mean_gap_secs, 0.0);
        assert_eq!(f.gap_cv, 0.0);
        assert_eq!(f.duration_secs, 0.0);
    }
}
