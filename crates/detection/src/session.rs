//! Gap-based sessionization.
//!
//! Logs are grouped into user sessions before feature extraction (§III-A).
//! We key sessions on the `(ip, fingerprint)` pair — what a real defender can
//! observe — and cut a session after a configurable inactivity gap.

use crate::log::LogRecord;
use fg_core::hash::FxHashMap;
use fg_core::ids::SessionId;
use fg_core::time::{SimDuration, SimTime};

/// A reconstructed user session.
#[derive(Clone, Debug, PartialEq)]
pub struct Session {
    id: SessionId,
    records: Vec<LogRecord>,
}

impl Session {
    /// The session identifier (assigned in discovery order).
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The session's records, time-ordered.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// First request instant.
    pub fn started_at(&self) -> SimTime {
        self.records.first().expect("sessions are non-empty").at
    }

    /// Last request instant.
    pub fn ended_at(&self) -> SimTime {
        self.records.last().expect("sessions are non-empty").at
    }

    /// Wall-clock span of the session.
    pub fn duration(&self) -> SimDuration {
        self.ended_at() - self.started_at()
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Sessions are non-empty by construction; provided for API symmetry.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The `(ip, fingerprint)` key the session was built on.
    pub fn key(&self) -> (fg_netsim::ip::IpAddress, u64) {
        let first = self.records.first().expect("sessions are non-empty");
        (first.ip, first.fingerprint)
    }
}

/// Groups `records` into sessions keyed by `(ip, fingerprint)`, cutting after
/// `gap` of inactivity.
///
/// Records need not be pre-sorted; they are sorted by time internally.
/// The output is ordered by session start time (ties broken by key), and the
/// partition is lossless: every input record appears in exactly one session.
///
/// # Example
///
/// ```
/// use fg_detection::{sessionize, log::{Endpoint, LogRecord, Method}};
/// use fg_core::ids::ClientId;
/// use fg_core::time::{SimDuration, SimTime};
/// use fg_netsim::ip::IpAddress;
///
/// let rec = |secs: u64| LogRecord {
///     at: SimTime::from_secs(secs),
///     ip: IpAddress::from_octets(10, 0, 0, 1),
///     fingerprint: 1,
///     truth_client: ClientId(1),
///     method: Method::Get,
///     endpoint: Endpoint::Search,
///     ok: true,
/// };
/// // Two bursts separated by two hours become two sessions.
/// let sessions = sessionize(vec![rec(0), rec(30), rec(7200)], SimDuration::from_mins(30));
/// assert_eq!(sessions.len(), 2);
/// assert_eq!(sessions[0].len(), 2);
/// ```
pub fn sessionize(mut records: Vec<LogRecord>, gap: SimDuration) -> Vec<Session> {
    records.sort_by_key(|r| r.at);
    let mut open: FxHashMap<(u32, u64), Vec<LogRecord>> = FxHashMap::default();
    let mut closed: Vec<Vec<LogRecord>> = Vec::new();

    for rec in records {
        let key = (rec.ip.as_u32(), rec.fingerprint);
        match open.get_mut(&key) {
            Some(bucket) => {
                let last = bucket.last().expect("open sessions are non-empty").at;
                if rec.at - last > gap {
                    closed.push(std::mem::take(bucket));
                }
                bucket.push(rec);
            }
            None => {
                open.insert(key, vec![rec]);
            }
        }
    }
    closed.extend(open.into_values().filter(|v| !v.is_empty()));

    // Deterministic ordering: by start time, then key.
    closed.sort_by_key(|v| {
        let first = v.first().expect("closed sessions are non-empty");
        (first.at, first.ip.as_u32(), first.fingerprint)
    });
    closed
        .into_iter()
        .enumerate()
        .map(|(i, records)| Session {
            id: SessionId(i as u64),
            records,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{Endpoint, Method};
    use fg_core::ids::ClientId;
    use fg_netsim::ip::IpAddress;
    use proptest::prelude::*;

    fn rec(secs: u64, ip_host: u8, fp: u64) -> LogRecord {
        LogRecord {
            at: SimTime::from_secs(secs),
            ip: IpAddress::from_octets(10, 0, 0, ip_host),
            fingerprint: fp,
            truth_client: ClientId(u64::from(ip_host)),
            method: Method::Get,
            endpoint: Endpoint::Search,
            ok: true,
        }
    }

    #[test]
    fn splits_on_gap() {
        let sessions = sessionize(
            vec![rec(0, 1, 1), rec(100, 1, 1), rec(10_000, 1, 1)],
            SimDuration::from_mins(30),
        );
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].len(), 2);
        assert_eq!(sessions[1].len(), 1);
    }

    #[test]
    fn separates_by_ip_and_fingerprint() {
        let sessions = sessionize(
            vec![rec(0, 1, 1), rec(1, 2, 1), rec(2, 1, 2)],
            SimDuration::from_mins(30),
        );
        assert_eq!(sessions.len(), 3, "distinct keys never merge");
    }

    #[test]
    fn unsorted_input_is_handled() {
        let sessions = sessionize(
            vec![rec(100, 1, 1), rec(0, 1, 1), rec(50, 1, 1)],
            SimDuration::from_mins(30),
        );
        assert_eq!(sessions.len(), 1);
        let times: Vec<u64> = sessions[0]
            .records()
            .iter()
            .map(|r| r.at.as_secs())
            .collect();
        assert_eq!(times, vec![0, 50, 100]);
    }

    #[test]
    fn session_metadata() {
        let sessions = sessionize(
            vec![rec(10, 1, 1), rec(70, 1, 1)],
            SimDuration::from_mins(30),
        );
        let s = &sessions[0];
        assert_eq!(s.started_at(), SimTime::from_secs(10));
        assert_eq!(s.ended_at(), SimTime::from_secs(70));
        assert_eq!(s.duration(), SimDuration::from_secs(60));
        assert_eq!(s.key(), (IpAddress::from_octets(10, 0, 0, 1), 1));
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_input_yields_no_sessions() {
        assert!(sessionize(vec![], SimDuration::from_mins(30)).is_empty());
    }

    #[test]
    fn gap_boundary_is_exclusive() {
        // Exactly `gap` apart stays in one session; gap + 1ms splits.
        let gap = SimDuration::from_secs(100);
        let one = sessionize(vec![rec(0, 1, 1), rec(100, 1, 1)], gap);
        assert_eq!(one.len(), 1);
        let mut late = rec(100, 1, 1);
        late.at = SimTime::from_millis(100_001);
        let two = sessionize(vec![rec(0, 1, 1), late], gap);
        assert_eq!(two.len(), 2);
    }

    proptest! {
        /// Sessionization is a lossless partition of the input records.
        #[test]
        fn prop_lossless_partition(
            raw in proptest::collection::vec((0u64..100_000, 1u8..5, 1u64..4), 0..200),
            gap_secs in 1i64..3_600,
        ) {
            let records: Vec<LogRecord> = raw.iter().map(|&(t, ip, fp)| rec(t, ip, fp)).collect();
            let sessions = sessionize(records.clone(), SimDuration::from_secs(gap_secs));
            let total: usize = sessions.iter().map(Session::len).sum();
            prop_assert_eq!(total, records.len());
            // Within each session: single key and non-decreasing times.
            for s in &sessions {
                let key = s.key();
                let mut last = SimTime::ZERO;
                for r in s.records() {
                    prop_assert_eq!((r.ip, r.fingerprint), key);
                    prop_assert!(r.at >= last);
                    last = r.at;
                }
            }
        }
    }
}
