//! Behavioural biometrics — mouse-trajectory analysis.
//!
//! §III-A and §V point to biometric signals ("mouse movement trajectories",
//! refs \[41\]–\[44\]) as the promising future direction for functional-abuse
//! detection, precisely because they survive fingerprint rotation: rotating
//! `navigator` properties is cheap, faking human motor control is not. This
//! module implements that direction end to end: a synthetic trajectory
//! generator for three motor profiles (human, scripted-linear,
//! scripted-jittered), kinematic feature extraction, and a scoring rule.
//!
//! The generator lives here rather than in `fg-behavior` because detector
//! and generator must agree on the trace representation, and the generator
//! doubles as the test harness for the detector.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One sampled pointer position (x, y in CSS px; t in milliseconds).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MouseSample {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
    /// Milliseconds since trace start.
    pub t: f64,
}

/// A pointer trajectory between two UI targets.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MouseTrace {
    samples: Vec<MouseSample>,
}

impl MouseTrace {
    /// Creates a trace from raw samples (must be time-ordered).
    pub fn new(samples: Vec<MouseSample>) -> Self {
        debug_assert!(
            samples.windows(2).all(|w| w[1].t >= w[0].t),
            "samples must be time-ordered"
        );
        MouseTrace { samples }
    }

    /// The samples.
    pub fn samples(&self) -> &[MouseSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples exist.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// The motor profile generating a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MotionProfile {
    /// Human motor control: curved path, bell-shaped speed, tremor,
    /// occasional micro-pause, slight endpoint overshoot.
    Human,
    /// A script calling `moveTo` along a straight line at constant speed.
    ScriptedLinear,
    /// A script adding uniform noise to a straight line — the naive
    /// "humanization" bolt-on.
    ScriptedJittered,
}

/// Synthesizes a trace from `(x0, y0)` to `(x1, y1)` under a profile.
///
/// # Example
///
/// ```
/// use fg_detection::biometrics::{synthesize, MotionProfile, MotionFeatures};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let human = synthesize(MotionProfile::Human, (0.0, 0.0), (400.0, 300.0), &mut rng);
/// let bot = synthesize(MotionProfile::ScriptedLinear, (0.0, 0.0), (400.0, 300.0), &mut rng);
/// let hf = MotionFeatures::extract(&human);
/// let bf = MotionFeatures::extract(&bot);
/// assert!(hf.bot_score() < bf.bot_score());
/// ```
pub fn synthesize<R: Rng + ?Sized>(
    profile: MotionProfile,
    from: (f64, f64),
    to: (f64, f64),
    rng: &mut R,
) -> MouseTrace {
    let (x0, y0) = from;
    let (x1, y1) = to;
    let dist = ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt().max(1.0);
    let steps = (dist / 8.0).clamp(20.0, 200.0) as usize;

    let mut samples = Vec::with_capacity(steps + 1);
    match profile {
        MotionProfile::Human => {
            // Quadratic Bézier with a lateral control offset, minimum-jerk
            // style speed profile, tremor, and a micro-pause.
            let mid_x = (x0 + x1) / 2.0;
            let mid_y = (y0 + y1) / 2.0;
            let (dx, dy) = (x1 - x0, y1 - y0);
            // Perpendicular offset: 5–20 % of distance, random side.
            let side = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let off = dist * rng.gen_range(0.05..0.2) * side;
            let (cx, cy) = (mid_x - dy / dist * off, mid_y + dx / dist * off);

            let total_ms = dist / rng.gen_range(0.4..0.9); // ≈0.4–0.9 px/ms
            let pause_at = rng.gen_range(0.3..0.7);
            let pause_ms = if rng.gen_bool(0.4) {
                rng.gen_range(40.0..160.0)
            } else {
                0.0
            };
            let mut t = 0.0;
            for i in 0..=steps {
                let u = i as f64 / steps as f64;
                // Minimum-jerk timing: position parameter eases in and out.
                let s = u * u * (3.0 - 2.0 * u);
                let bx = (1.0 - s) * (1.0 - s) * x0 + 2.0 * (1.0 - s) * s * cx + s * s * x1;
                let by = (1.0 - s) * (1.0 - s) * y0 + 2.0 * (1.0 - s) * s * cy + s * s * y1;
                // Physiological tremor: ~1 px high-frequency noise.
                let tremor_x = rng.gen_range(-0.8..0.8);
                let tremor_y = rng.gen_range(-0.8..0.8);
                // Non-uniform time: ease means mid-path covers more distance
                // per tick; emit wall time proportional to u plus the pause.
                t = u * total_ms + if u >= pause_at { pause_ms } else { 0.0 };
                samples.push(MouseSample {
                    x: bx + tremor_x,
                    y: by + tremor_y,
                    t,
                });
            }
            // Slight overshoot + correction.
            if rng.gen_bool(0.6) {
                let over = rng.gen_range(2.0..9.0);
                samples.push(MouseSample {
                    x: x1 + dx / dist * over,
                    y: y1 + dy / dist * over,
                    t: t + 30.0,
                });
                samples.push(MouseSample {
                    x: x1,
                    y: y1,
                    t: t + 70.0,
                });
            }
        }
        MotionProfile::ScriptedLinear => {
            let total_ms = dist / 1.0; // exactly 1 px/ms, metronomic
            for i in 0..=steps {
                let u = i as f64 / steps as f64;
                samples.push(MouseSample {
                    x: x0 + (x1 - x0) * u,
                    y: y0 + (y1 - y0) * u,
                    t: u * total_ms,
                });
            }
        }
        MotionProfile::ScriptedJittered => {
            let total_ms = dist / 1.0;
            for i in 0..=steps {
                let u = i as f64 / steps as f64;
                samples.push(MouseSample {
                    x: x0 + (x1 - x0) * u + rng.gen_range(-6.0..6.0),
                    y: y0 + (y1 - y0) * u + rng.gen_range(-6.0..6.0),
                    t: u * total_ms,
                });
            }
        }
    }
    MouseTrace::new(samples)
}

/// Kinematic features of a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MotionFeatures {
    /// Path length / straight-line distance (1.0 = perfectly straight).
    pub straightness: f64,
    /// Coefficient of variation of segment speeds.
    pub speed_cv: f64,
    /// Mean absolute heading change between consecutive segments (radians).
    pub roughness: f64,
    /// Fraction of inter-sample gaps ≥ 3× the median gap (micro-pauses).
    pub pause_fraction: f64,
}

impl MotionFeatures {
    /// Extracts features; returns default (all zeros) for traces with fewer
    /// than three samples.
    pub fn extract(trace: &MouseTrace) -> Self {
        let s = trace.samples();
        if s.len() < 3 {
            return MotionFeatures::default();
        }

        let mut path = 0.0;
        let mut speeds = Vec::with_capacity(s.len() - 1);
        let mut gaps = Vec::with_capacity(s.len() - 1);
        let mut headings = Vec::with_capacity(s.len() - 1);
        for w in s.windows(2) {
            let dx = w[1].x - w[0].x;
            let dy = w[1].y - w[0].y;
            let d = (dx * dx + dy * dy).sqrt();
            let dt = (w[1].t - w[0].t).max(1e-6);
            path += d;
            speeds.push(d / dt);
            gaps.push(dt);
            // Sub-2px segments carry no directional information (tremor at
            // rest); excluding them keeps heading statistics meaningful.
            if d >= 2.0 {
                headings.push(dy.atan2(dx));
            }
        }
        let direct = {
            let dx = s[s.len() - 1].x - s[0].x;
            let dy = s[s.len() - 1].y - s[0].y;
            (dx * dx + dy * dy).sqrt().max(1e-6)
        };

        let mean_speed = speeds.iter().sum::<f64>() / speeds.len() as f64;
        let speed_var =
            speeds.iter().map(|v| (v - mean_speed).powi(2)).sum::<f64>() / speeds.len() as f64;
        let speed_cv = if mean_speed > 1e-9 {
            speed_var.sqrt() / mean_speed
        } else {
            0.0
        };

        let mut turn_sum = 0.0;
        if headings.len() < 2 {
            headings.push(0.0);
            headings.push(0.0);
        }
        for w in headings.windows(2) {
            let mut dh = (w[1] - w[0]).abs();
            if dh > std::f64::consts::PI {
                dh = 2.0 * std::f64::consts::PI - dh;
            }
            turn_sum += dh;
        }
        let roughness = turn_sum / (headings.len() - 1).max(1) as f64;

        let mut sorted_gaps = gaps.clone();
        sorted_gaps.sort_by(f64::total_cmp);
        let median_gap = sorted_gaps[sorted_gaps.len() / 2];
        let pauses = gaps.iter().filter(|&&g| g >= 3.0 * median_gap).count();

        MotionFeatures {
            straightness: path / direct,
            speed_cv,
            roughness,
            pause_fraction: pauses as f64 / gaps.len() as f64,
        }
    }

    /// A bot-suspicion score in `0.0..=1.0`.
    ///
    /// Humans curve (straightness > ~1.03), vary speed (cv > ~0.15) and
    /// pause; scripts are straight and metronomic; naive jitter produces
    /// *pathological* roughness (heading flips every sample) that no human
    /// hand exhibits.
    pub fn bot_score(&self) -> f64 {
        let mut score: f64 = 0.0;
        if self.straightness < 1.005 {
            score += 0.4; // inhumanly straight
        }
        if self.speed_cv < 0.12 {
            score += 0.35; // metronomic
        }
        if self.roughness > 0.55 {
            score += 0.45; // jitter thrash, not motor tremor
        }
        if self.pause_fraction == 0.0 {
            score += 0.1;
        }
        score.min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn features(profile: MotionProfile, seed: u64) -> MotionFeatures {
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = synthesize(profile, (10.0, 700.0), (820.0, 90.0), &mut rng);
        MotionFeatures::extract(&trace)
    }

    #[test]
    fn human_traces_pass() {
        for seed in 0..40 {
            let f = features(MotionProfile::Human, seed);
            assert!(f.bot_score() < 0.5, "seed {seed}: {f:?}");
        }
    }

    #[test]
    fn linear_scripts_fail() {
        for seed in 0..40 {
            let f = features(MotionProfile::ScriptedLinear, seed);
            assert!(f.bot_score() >= 0.5, "seed {seed}: {f:?}");
            assert!(f.straightness < 1.001, "perfectly straight");
            assert!(f.speed_cv < 0.05, "metronomic");
        }
    }

    #[test]
    fn jittered_scripts_fail_differently() {
        for seed in 0..40 {
            let f = features(MotionProfile::ScriptedJittered, seed);
            assert!(f.bot_score() >= 0.45, "seed {seed}: {f:?}");
            assert!(f.roughness > 0.55, "jitter thrash visible: {f:?}");
        }
    }

    #[test]
    fn human_kinematics_are_humanlike() {
        let f = features(MotionProfile::Human, 7);
        assert!(f.straightness > 1.01, "{f:?}");
        assert!(f.speed_cv > 0.12, "{f:?}");
        assert!(f.roughness < 0.55, "tremor is not thrash: {f:?}");
    }

    #[test]
    fn short_traces_are_neutral() {
        let trace = MouseTrace::new(vec![
            MouseSample {
                x: 0.0,
                y: 0.0,
                t: 0.0,
            },
            MouseSample {
                x: 5.0,
                y: 5.0,
                t: 10.0,
            },
        ]);
        assert_eq!(MotionFeatures::extract(&trace), MotionFeatures::default());
        assert!(trace.len() == 2 && !trace.is_empty());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        assert_eq!(
            synthesize(MotionProfile::Human, (0.0, 0.0), (100.0, 50.0), &mut a),
            synthesize(MotionProfile::Human, (0.0, 0.0), (100.0, 50.0), &mut b),
        );
    }

    #[test]
    fn separation_is_strong_in_aggregate() {
        let mut human_scores = Vec::new();
        let mut bot_scores = Vec::new();
        for seed in 100..160 {
            human_scores.push(features(MotionProfile::Human, seed).bot_score());
            let profile = if seed % 2 == 0 {
                MotionProfile::ScriptedLinear
            } else {
                MotionProfile::ScriptedJittered
            };
            bot_scores.push(features(profile, seed).bot_score());
        }
        let h_mean: f64 = human_scores.iter().sum::<f64>() / human_scores.len() as f64;
        let b_mean: f64 = bot_scores.iter().sum::<f64>() / bot_scores.len() as f64;
        assert!(
            b_mean - h_mean > 0.4,
            "mean separation: human {h_mean:.2} vs bot {b_mean:.2}"
        );
    }
}
