//! Web-log records — the raw material of behaviour-based detection.

use fg_core::ids::ClientId;
use fg_core::time::SimTime;
use fg_netsim::ip::IpAddress;
use serde::{Deserialize, Serialize};
use std::fmt;

/// HTTP method of a logged request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Method {
    Get,
    Post,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
        })
    }
}

/// The application endpoint a request hit.
///
/// The granularity matters: behaviour-based detection aggregates over these,
/// and the paper's point is that *which* endpoints a session touches (hold
/// without pay, SMS re-request) is far more telling than *how many* requests
/// it makes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// Landing / home page.
    Home,
    /// Flight or product search.
    Search,
    /// Seat map / item detail view.
    Detail,
    /// Place a seat hold / add to cart.
    Hold,
    /// Payment submission.
    Pay,
    /// Login (OTP trigger).
    Login,
    /// Request a boarding pass (possibly via SMS).
    BoardingPass,
    /// Request an OTP SMS.
    SendOtp,
    /// Account / profile pages.
    Account,
    /// A trap URL invisible to humans (robots.txt-excluded honeylink).
    TrapFile,
}

impl Endpoint {
    /// All endpoints (for feature vectors and iteration).
    pub const ALL: [Endpoint; 10] = [
        Endpoint::Home,
        Endpoint::Search,
        Endpoint::Detail,
        Endpoint::Hold,
        Endpoint::Pay,
        Endpoint::Login,
        Endpoint::BoardingPass,
        Endpoint::SendOtp,
        Endpoint::Account,
        Endpoint::TrapFile,
    ];

    /// The position of this endpoint in [`Endpoint::ALL`]. Total by
    /// construction (`ALL` lists variants in declaration order), so lookup
    /// tables sized by `ALL.len()` can be indexed without a fallible search.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The URL path depth a request to this endpoint typically has.
    pub const fn typical_depth(self) -> u32 {
        match self {
            Endpoint::Home => 1,
            Endpoint::Search | Endpoint::Login | Endpoint::TrapFile => 2,
            Endpoint::Detail | Endpoint::Account => 3,
            Endpoint::Hold | Endpoint::Pay | Endpoint::BoardingPass | Endpoint::SendOtp => 4,
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Endpoint::Home => "/",
            Endpoint::Search => "/search",
            Endpoint::Detail => "/flights/detail",
            Endpoint::Hold => "/booking/hold",
            Endpoint::Pay => "/booking/pay",
            Endpoint::Login => "/login",
            Endpoint::BoardingPass => "/checkin/boarding-pass",
            Endpoint::SendOtp => "/auth/send-otp",
            Endpoint::Account => "/account/profile",
            Endpoint::TrapFile => "/static/.hidden",
        };
        f.write_str(s)
    }
}

/// One web-log line.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Request instant.
    pub at: SimTime,
    /// Source address.
    pub ip: IpAddress,
    /// Fingerprint identity hash presented by the client.
    pub fingerprint: u64,
    /// Ground-truth client id — available in simulation only, used for
    /// evaluating detector accuracy, never as a detection input.
    pub truth_client: ClientId,
    /// HTTP method.
    pub method: Method,
    /// Application endpoint.
    pub endpoint: Endpoint,
    /// Whether the application served the request successfully.
    pub ok: bool,
}

impl fmt::Display for LogRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} fp={:x} {}",
            self.at,
            self.ip,
            self.method,
            self.endpoint,
            self.fingerprint,
            if self.ok { "200" } else { "403" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_display_and_depth() {
        assert_eq!(Endpoint::Hold.to_string(), "/booking/hold");
        assert_eq!(Endpoint::Home.typical_depth(), 1);
        assert_eq!(Endpoint::Pay.typical_depth(), 4);
        assert_eq!(Endpoint::ALL.len(), 10);
    }

    #[test]
    fn record_display_contains_essentials() {
        let r = LogRecord {
            at: SimTime::from_secs(5),
            ip: IpAddress::from_octets(10, 0, 0, 1),
            fingerprint: 0xABC,
            truth_client: ClientId(1),
            method: Method::Post,
            endpoint: Endpoint::Hold,
            ok: true,
        };
        let s = r.to_string();
        assert!(s.contains("POST"));
        assert!(s.contains("/booking/hold"));
        assert!(s.contains("10.0.0.1"));
        assert!(s.contains("200"));
    }
}
