//! Distribution anomaly detection.
//!
//! §IV-A's attack was visible as a distortion of the *Number in Party*
//! distribution (Fig. 1): a spike at NiP 6 against a baseline dominated by
//! 1–2 passenger bookings. This module provides the drift statistics that
//! turn such distortions into alarms: Pearson chi-square against a baseline,
//! KL divergence, Poisson surge z-scores, and a ready-made
//! [`NipDistributionMonitor`].

use fg_core::stats::Histogram;
use serde::{Deserialize, Serialize};

/// Pearson chi-square statistic of `observed` counts against `expected`
/// *shares* (which must sum to ~1). Buckets with zero expectation contribute
/// `observed` (capped contribution via a small epsilon floor).
///
/// Returns 0 for an empty observation.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn chi_square(observed: &[u64], expected_shares: &[f64]) -> f64 {
    assert_eq!(
        observed.len(),
        expected_shares.len(),
        "bucket counts must align"
    );
    let total: u64 = observed.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    observed
        .iter()
        .zip(expected_shares)
        .map(|(&o, &p)| {
            let e = (p * total).max(1e-9);
            (o as f64 - e).powi(2) / e
        })
        .sum()
}

/// KL divergence `D(observed ‖ baseline)` between two share vectors, in nats.
/// Zero-probability buckets are smoothed with `eps`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn kl_divergence(observed_shares: &[f64], baseline_shares: &[f64], eps: f64) -> f64 {
    assert_eq!(
        observed_shares.len(),
        baseline_shares.len(),
        "share vectors must align"
    );
    observed_shares
        .iter()
        .zip(baseline_shares)
        .map(|(&p, &q)| {
            let p = p.max(eps);
            let q = q.max(eps);
            p * (p / q).ln()
        })
        .sum()
}

/// Poisson surge z-score: how many standard deviations `observed` sits above
/// a Poisson with mean `baseline`. Zero baseline with zero observation is 0;
/// zero baseline with any observation is `+inf`-like (returned as a large
/// finite value so downstream arithmetic stays clean).
pub fn poisson_z(observed: u64, baseline: f64) -> f64 {
    if baseline <= 0.0 {
        return if observed == 0 { 0.0 } else { 1e9 };
    }
    (observed as f64 - baseline) / baseline.sqrt()
}

/// A drift monitor for the NiP distribution.
///
/// Fit on a baseline window (the "average week"), then score observation
/// windows; the alarm fires when the chi-square statistic per booking exceeds
/// a threshold, and [`NipDistributionMonitor::most_inflated_bucket`] points
/// at the NiP value the attacker concentrated on.
///
/// # Example
///
/// ```
/// use fg_detection::anomaly::NipDistributionMonitor;
/// use fg_core::stats::Histogram;
///
/// let mut baseline = Histogram::new(9);
/// for _ in 0..60 { baseline.record(1); }
/// for _ in 0..30 { baseline.record(2); }
/// for _ in 0..10 { baseline.record(3); }
/// let monitor = NipDistributionMonitor::fit(&baseline, 2.0);
///
/// // Attack week: a flood of NiP-6 bookings on top of the same base.
/// let mut attack = Histogram::new(9);
/// for _ in 0..60 { attack.record(1); }
/// for _ in 0..30 { attack.record(2); }
/// for _ in 0..50 { attack.record(6); }
/// assert!(monitor.is_anomalous(&attack));
/// assert_eq!(monitor.most_inflated_bucket(&attack), Some(6));
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NipDistributionMonitor {
    baseline_shares: Vec<f64>,
    threshold_per_sample: f64,
}

impl NipDistributionMonitor {
    /// Fits the monitor on a baseline histogram.
    ///
    /// `threshold_per_sample` is the chi-square-per-booking level above which
    /// [`NipDistributionMonitor::is_anomalous`] fires; 2.0 is a robust
    /// default for weekly windows.
    ///
    /// # Panics
    ///
    /// Panics if the baseline is empty.
    pub fn fit(baseline: &Histogram, threshold_per_sample: f64) -> Self {
        assert!(baseline.total() > 0, "baseline must contain observations");
        NipDistributionMonitor {
            baseline_shares: baseline.shares(),
            threshold_per_sample,
        }
    }

    /// Chi-square of `observed` against the baseline, normalized per booking.
    ///
    /// # Panics
    ///
    /// Panics if domains differ.
    pub fn score(&self, observed: &Histogram) -> f64 {
        let total = observed.total();
        if total == 0 {
            return 0.0;
        }
        chi_square(observed.buckets(), &self.baseline_shares) / total as f64
    }

    /// `true` when the observation drifts beyond the threshold.
    pub fn is_anomalous(&self, observed: &Histogram) -> bool {
        self.score(observed) > self.threshold_per_sample
    }

    /// The bucket with the greatest share lift over baseline — where the
    /// attacker concentrated. `None` for empty observations.
    pub fn most_inflated_bucket(&self, observed: &Histogram) -> Option<usize> {
        if observed.total() == 0 {
            return None;
        }
        let shares = observed.shares();
        shares
            .iter()
            .zip(&self.baseline_shares)
            .enumerate()
            .max_by(|(_, (sa, ba)), (_, (sb, bb))| (*sa - *ba).total_cmp(&(*sb - *bb)))
            .map(|(i, _)| i)
    }

    /// The baseline share vector.
    pub fn baseline_shares(&self) -> &[f64] {
        &self.baseline_shares
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn baseline_hist() -> Histogram {
        let mut h = Histogram::new(9);
        h.record_n(1, 550);
        h.record_n(2, 300);
        h.record_n(3, 80);
        h.record_n(4, 70);
        h
    }

    #[test]
    fn chi_square_zero_for_matching_distribution() {
        let h = baseline_hist();
        let x = chi_square(h.buckets(), &h.shares());
        assert!(x < 1e-6, "self-comparison should be ~0, got {x}");
    }

    #[test]
    fn chi_square_grows_with_perturbation() {
        let base = baseline_hist();
        let mut mild = baseline_hist();
        mild.record_n(6, 50);
        let mut severe = baseline_hist();
        severe.record_n(6, 500);
        let x_mild = chi_square(mild.buckets(), &base.shares());
        let x_severe = chi_square(severe.buckets(), &base.shares());
        assert!(x_severe > x_mild);
        assert!(x_mild > 1.0);
    }

    #[test]
    fn kl_zero_for_identical_and_positive_otherwise() {
        let p = [0.5, 0.3, 0.2];
        assert!(kl_divergence(&p, &p, 1e-9).abs() < 1e-12);
        let q = [0.2, 0.3, 0.5];
        assert!(kl_divergence(&p, &q, 1e-9) > 0.0);
    }

    #[test]
    fn poisson_z_cases() {
        assert_eq!(poisson_z(0, 0.0), 0.0);
        assert!(poisson_z(5, 0.0) > 1e8);
        assert!((poisson_z(200, 100.0) - 10.0).abs() < 1e-9);
        assert!(poisson_z(90, 100.0) < 0.0);
    }

    #[test]
    fn monitor_fires_on_attack_not_on_baseline_noise() {
        let monitor = NipDistributionMonitor::fit(&baseline_hist(), 2.0);
        // A fresh sample from the same distribution: not anomalous.
        let mut normal = Histogram::new(9);
        normal.record_n(1, 54);
        normal.record_n(2, 31);
        normal.record_n(3, 9);
        normal.record_n(4, 6);
        assert!(
            !monitor.is_anomalous(&normal),
            "score {}",
            monitor.score(&normal)
        );

        // Attack week: NiP-6 spike.
        let mut attack = normal.clone();
        attack.record_n(6, 60);
        assert!(monitor.is_anomalous(&attack));
        assert_eq!(monitor.most_inflated_bucket(&attack), Some(6));
    }

    #[test]
    fn monitor_empty_observation_is_quiet() {
        let monitor = NipDistributionMonitor::fit(&baseline_hist(), 2.0);
        let empty = Histogram::new(9);
        assert_eq!(monitor.score(&empty), 0.0);
        assert!(!monitor.is_anomalous(&empty));
        assert_eq!(monitor.most_inflated_bucket(&empty), None);
    }

    #[test]
    #[should_panic(expected = "baseline must contain")]
    fn empty_baseline_rejected() {
        NipDistributionMonitor::fit(&Histogram::new(9), 2.0);
    }

    proptest! {
        /// Chi-square is non-negative for any inputs.
        #[test]
        fn prop_chi_square_nonnegative(obs in proptest::collection::vec(0u64..500, 10)) {
            let base = baseline_hist();
            prop_assert!(chi_square(&obs, &base.shares()) >= 0.0);
        }

        /// KL divergence is non-negative (Gibbs' inequality, up to smoothing).
        #[test]
        fn prop_kl_nonnegative(raw in proptest::collection::vec(1u32..100, 5)) {
            let total: u32 = raw.iter().sum();
            let p: Vec<f64> = raw.iter().map(|&x| f64::from(x) / f64::from(total)).collect();
            let q = vec![0.2; 5];
            prop_assert!(kl_divergence(&p, &q, 1e-12) >= -1e-9);
        }
    }
}
