//! The combined request-scoring engine.
//!
//! One request's evidence is assembled from every family the paper surveys:
//! fingerprint consistency (knowledge-based, §III-B), velocity over several
//! keys (behaviour-based, §III-A — including the per-booking SMS velocity
//! whose *absence* let the Airline D attack run), and IP reputation. Signals
//! combine noisy-OR style into a single suspicion score the mitigation
//! policy thresholds against.

use crate::log::Endpoint;
use crate::velocity::VelocityCounter;
use fg_core::ids::BookingRef;
use fg_core::time::{SimDuration, SimTime};
use fg_fingerprint::attributes::Fingerprint;
use fg_fingerprint::inconsistency::consistency_report;
use fg_netsim::ip::IpAddress;
use fg_netsim::reputation::ReputationLedger;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One contributing detection signal with its weight.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Signal {
    /// Fingerprint failed consistency checks (weight = suspicion).
    FingerprintInconsistent {
        /// The consistency suspicion, `0.0..=1.0`.
        suspicion: f64,
    },
    /// The source IP (or its /24) is over the reputation threshold.
    IpReputation,
    /// Too many requests from one IP in the window.
    IpVelocity {
        /// Requests observed in the window.
        count: u64,
    },
    /// Too many requests from one fingerprint identity in the window.
    FingerprintVelocity {
        /// Requests observed in the window.
        count: u64,
    },
    /// Too many SMS-triggering requests against one booking reference.
    BookingSmsVelocity {
        /// Requests observed in the window.
        count: u64,
    },
    /// The client touched a trap URL invisible to humans.
    TrapHit,
}

impl Signal {
    /// Stable kind labels for every signal family, for pre-registering
    /// per-signal metrics (the [`fmt::Display`] form embeds per-request
    /// values and is unsuitable as a metric label).
    pub const KINDS: [&'static str; 6] = [
        "fingerprint-inconsistent",
        "ip-reputation",
        "ip-velocity",
        "fp-velocity",
        "booking-sms-velocity",
        "trap-hit",
    ];

    /// This signal's stable kind label (one of [`Signal::KINDS`]).
    pub fn kind(&self) -> &'static str {
        match self {
            Signal::FingerprintInconsistent { .. } => "fingerprint-inconsistent",
            Signal::IpReputation => "ip-reputation",
            Signal::IpVelocity { .. } => "ip-velocity",
            Signal::FingerprintVelocity { .. } => "fp-velocity",
            Signal::BookingSmsVelocity { .. } => "booking-sms-velocity",
            Signal::TrapHit => "trap-hit",
        }
    }

    /// The signal's contribution weight in `0.0..=1.0`.
    pub fn weight(&self) -> f64 {
        match self {
            Signal::FingerprintInconsistent { suspicion } => *suspicion,
            Signal::IpReputation => 0.8,
            Signal::IpVelocity { count } => (0.1 * (*count as f64).ln_1p()).min(0.7),
            Signal::FingerprintVelocity { count } => (0.12 * (*count as f64).ln_1p()).min(0.75),
            Signal::BookingSmsVelocity { count } => (0.2 * (*count as f64).ln_1p()).min(0.95),
            Signal::TrapHit => 0.9,
        }
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Signal::FingerprintInconsistent { suspicion } => {
                write!(f, "fingerprint-inconsistent({suspicion:.2})")
            }
            Signal::IpReputation => write!(f, "ip-reputation"),
            Signal::IpVelocity { count } => write!(f, "ip-velocity({count})"),
            Signal::FingerprintVelocity { count } => write!(f, "fp-velocity({count})"),
            Signal::BookingSmsVelocity { count } => write!(f, "booking-sms-velocity({count})"),
            Signal::TrapHit => write!(f, "trap-hit"),
        }
    }
}

/// The engine's scored verdict on one request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// Combined suspicion, `0.0..=1.0` (noisy-OR over signal weights).
    pub score: f64,
    /// The contributing signals.
    pub signals: Vec<Signal>,
}

impl Verdict {
    /// A verdict with no signals.
    pub fn clean() -> Self {
        Verdict {
            score: 0.0,
            signals: Vec::new(),
        }
    }

    /// `true` when score reaches `threshold`.
    pub fn is_suspicious(&self, threshold: f64) -> bool {
        self.score >= threshold
    }
}

/// Tunable thresholds for the velocity signals.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Sliding window for all velocity counters.
    pub velocity_window: SimDuration,
    /// IP request count above which [`Signal::IpVelocity`] fires.
    pub ip_velocity_threshold: u64,
    /// Fingerprint request count above which [`Signal::FingerprintVelocity`]
    /// fires.
    pub fp_velocity_threshold: u64,
    /// Per-booking SMS request count above which
    /// [`Signal::BookingSmsVelocity`] fires.
    pub booking_sms_threshold: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            velocity_window: SimDuration::from_hours(1),
            ip_velocity_threshold: 120,
            fp_velocity_threshold: 100,
            booking_sms_threshold: 3,
        }
    }
}

/// Key-population counts of the engine's three velocity maps (see
/// [`DetectionEngine::tracked_keys`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackedKeys {
    /// Keys in the per-IP velocity map.
    pub ip: usize,
    /// Keys in the per-fingerprint velocity map.
    pub fingerprint: usize,
    /// Keys in the per-booking SMS velocity map.
    pub booking_sms: usize,
}

impl TrackedKeys {
    /// Total keys across all three maps.
    pub fn total(&self) -> usize {
        self.ip + self.fingerprint + self.booking_sms
    }
}

/// The stateful per-request scoring engine.
///
/// # Example
///
/// ```
/// use fg_detection::{DetectionEngine, log::Endpoint};
/// use fg_fingerprint::PopulationModel;
/// use fg_netsim::ip::IpAddress;
/// use fg_core::time::SimTime;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut engine = DetectionEngine::with_defaults();
/// let mut rng = StdRng::seed_from_u64(0);
/// let human_fp = PopulationModel::default_web().sample_human(&mut rng);
/// let verdict = engine.assess(
///     SimTime::ZERO,
///     IpAddress::from_octets(10, 0, 0, 1),
///     &human_fp,
///     Endpoint::Search,
///     None,
/// );
/// assert!(verdict.score < 0.3, "a quiet human browse is clean");
/// ```
#[derive(Debug)]
pub struct DetectionEngine {
    config: EngineConfig,
    ip_velocity: VelocityCounter<u32>,
    fp_velocity: VelocityCounter<u64>,
    booking_sms_velocity: VelocityCounter<BookingRef>,
    reputation: ReputationLedger,
    telemetry: Option<std::sync::Arc<fg_telemetry::Telemetry>>,
}

impl DetectionEngine {
    /// Creates an engine with the given config and a default reputation
    /// ledger (12 h half-life, thresholds 3 / 10).
    pub fn new(config: EngineConfig) -> Self {
        Self::with_shards(config, 1)
    }

    /// Creates an engine whose velocity maps and reputation ledger are
    /// hash-partitioned into `shards` partitions (rounded up to a power of
    /// two). Shard count changes memory layout and housekeeping striping
    /// only — verdicts and aggregates are identical at any count.
    pub fn with_shards(config: EngineConfig, shards: usize) -> Self {
        DetectionEngine {
            config,
            ip_velocity: VelocityCounter::with_shards(config.velocity_window, shards),
            fp_velocity: VelocityCounter::with_shards(config.velocity_window, shards),
            booking_sms_velocity: VelocityCounter::with_shards(config.velocity_window, shards),
            reputation: ReputationLedger::with_shards(
                SimDuration::from_hours(12),
                3.0,
                10.0,
                shards,
            ),
            telemetry: None,
        }
    }

    /// Attaches a telemetry hub; [`DetectionEngine::assess`] then profiles
    /// each signal family as a `detect.*` stage.
    pub fn attach_telemetry(&mut self, telemetry: std::sync::Arc<fg_telemetry::Telemetry>) {
        self.telemetry = Some(telemetry);
    }

    fn note_stage(&self, stage: &'static str, start: std::time::Instant) {
        if let Some(t) = &self.telemetry {
            t.record_stage(stage, start.elapsed());
        }
    }

    /// Creates an engine with [`EngineConfig::default`].
    pub fn with_defaults() -> Self {
        DetectionEngine::new(EngineConfig::default())
    }

    /// Drops every velocity key whose events all fell out of the window by
    /// `now`. Counts are window-scoped, so compaction never changes a
    /// verdict — it only stops the per-IP/per-fingerprint/per-booking maps
    /// from growing with every identity ever seen, which is exactly the
    /// leak an identity-rotating attacker (new fingerprint every ~5.3 h,
    /// fresh residential exits) would otherwise force on the defender.
    pub fn compact(&mut self, now: SimTime) {
        self.ip_velocity.compact(now);
        self.fp_velocity.compact(now);
        self.booking_sms_velocity.compact(now);
    }

    /// Keys currently tracked per velocity map, for `fg_tracked_keys`
    /// gauges and bounded-state assertions.
    pub fn tracked_keys(&self) -> TrackedKeys {
        TrackedKeys {
            ip: self.ip_velocity.tracked_keys(),
            fingerprint: self.fp_velocity.tracked_keys(),
            booking_sms: self.booking_sms_velocity.tracked_keys(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The defender's IP reputation ledger (for feeding confirmed abuse back).
    pub fn reputation_mut(&mut self) -> &mut ReputationLedger {
        &mut self.reputation
    }

    /// Replaces the reputation ledger — e.g. to run a long-memory blocklist
    /// instead of the default fast-decaying one.
    pub fn replace_reputation(&mut self, ledger: ReputationLedger) {
        self.reputation = ledger;
    }

    /// Scores one request.
    pub fn assess(
        &mut self,
        now: SimTime,
        ip: IpAddress,
        fingerprint: &Fingerprint,
        endpoint: Endpoint,
        booking: Option<BookingRef>,
    ) -> Verdict {
        let mut signals = Vec::new();

        let t = std::time::Instant::now(); // fg-analyze: allow(wall-clock): stage profiling only
        let report = consistency_report(fingerprint);
        if !report.is_clean() {
            signals.push(Signal::FingerprintInconsistent {
                suspicion: report.suspicion(),
            });
        }
        self.note_stage("detect.fingerprint-consistency", t);

        let t = std::time::Instant::now(); // fg-analyze: allow(wall-clock): stage profiling only
        if self.reputation.is_denied(ip, now) {
            signals.push(Signal::IpReputation);
        }
        self.note_stage("detect.ip-reputation", t);

        let t = std::time::Instant::now(); // fg-analyze: allow(wall-clock): stage profiling only
        let ip_count = self.ip_velocity.record_and_count(ip.as_u32(), now);
        if ip_count > self.config.ip_velocity_threshold {
            signals.push(Signal::IpVelocity { count: ip_count });
        }
        self.note_stage("detect.ip-velocity", t);

        let t = std::time::Instant::now(); // fg-analyze: allow(wall-clock): stage profiling only
        let fp_count = self
            .fp_velocity
            .record_and_count(fingerprint.identity_hash(), now);
        if fp_count > self.config.fp_velocity_threshold {
            signals.push(Signal::FingerprintVelocity { count: fp_count });
        }
        self.note_stage("detect.fp-velocity", t);

        let t = std::time::Instant::now(); // fg-analyze: allow(wall-clock): stage profiling only
        let sms_endpoint = matches!(endpoint, Endpoint::SendOtp | Endpoint::BoardingPass);
        if sms_endpoint {
            if let Some(reference) = booking {
                let c = self.booking_sms_velocity.record_and_count(reference, now);
                if c > self.config.booking_sms_threshold {
                    signals.push(Signal::BookingSmsVelocity { count: c });
                }
            }
        }
        self.note_stage("detect.booking-sms-velocity", t);

        if endpoint == Endpoint::TrapFile {
            signals.push(Signal::TrapHit);
        }

        let score = 1.0 - signals.iter().map(|s| 1.0 - s.weight()).product::<f64>();
        Verdict { score, signals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_fingerprint::PopulationModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn human_fp(seed: u64) -> Fingerprint {
        PopulationModel::default_web().sample_human(&mut StdRng::seed_from_u64(seed))
    }

    fn ip(host: u8) -> IpAddress {
        IpAddress::from_octets(10, 0, 0, host)
    }

    #[test]
    fn quiet_human_is_clean() {
        let mut e = DetectionEngine::with_defaults();
        let v = e.assess(SimTime::ZERO, ip(1), &human_fp(1), Endpoint::Search, None);
        assert_eq!(v, Verdict::clean());
        assert!(!v.is_suspicious(0.5));
    }

    #[test]
    fn webdriver_artifact_maxes_score() {
        let mut e = DetectionEngine::with_defaults();
        let mut fp = human_fp(2);
        fp.webdriver = true;
        let v = e.assess(SimTime::ZERO, ip(1), &fp, Endpoint::Search, None);
        assert!(v.score >= 0.99, "score {}", v.score);
        assert!(matches!(
            v.signals[0],
            Signal::FingerprintInconsistent { .. }
        ));
    }

    #[test]
    fn booking_sms_velocity_fires_fast() {
        let mut e = DetectionEngine::with_defaults();
        let fp = human_fp(3);
        let booking = BookingRef::from_index(7);
        let mut last = Verdict::clean();
        for i in 0..6 {
            last = e.assess(
                SimTime::from_mins(i),
                ip(1),
                &fp,
                Endpoint::BoardingPass,
                Some(booking),
            );
        }
        assert!(
            last.signals
                .iter()
                .any(|s| matches!(s, Signal::BookingSmsVelocity { .. })),
            "{last:?}"
        );
        assert!(last.score > 0.25);
    }

    #[test]
    fn sms_velocity_requires_booking_key() {
        // Without a booking key (the §IV-C gap), SMS velocity cannot fire.
        let mut e = DetectionEngine::with_defaults();
        let fp = human_fp(4);
        for i in 0..10 {
            let v = e.assess(
                SimTime::from_mins(i),
                ip(1),
                &fp,
                Endpoint::BoardingPass,
                None,
            );
            assert!(
                !v.signals
                    .iter()
                    .any(|s| matches!(s, Signal::BookingSmsVelocity { .. })),
                "no booking key, no velocity signal"
            );
        }
    }

    #[test]
    fn ip_velocity_fires_on_floods() {
        let mut e = DetectionEngine::with_defaults();
        let fp = human_fp(5);
        let mut flagged = false;
        for i in 0..200u64 {
            let v = e.assess(SimTime::from_secs(i), ip(9), &fp, Endpoint::Search, None);
            if v.signals
                .iter()
                .any(|s| matches!(s, Signal::IpVelocity { .. }))
            {
                flagged = true;
            }
        }
        assert!(flagged);
    }

    #[test]
    fn low_volume_bot_evades_velocity_signals() {
        // The paper's core claim: a DoI bot making one hold per 30 min
        // triggers nothing volume-based.
        let mut e = DetectionEngine::with_defaults();
        let fp = human_fp(6);
        for i in 0..48 {
            let v = e.assess(SimTime::from_mins(i * 30), ip(3), &fp, Endpoint::Hold, None);
            assert_eq!(v.score, 0.0, "low-volume mimicry bot stays invisible");
        }
    }

    #[test]
    fn trap_hit_is_near_certain() {
        let mut e = DetectionEngine::with_defaults();
        let v = e.assess(SimTime::ZERO, ip(1), &human_fp(7), Endpoint::TrapFile, None);
        assert!(v.score >= 0.9);
    }

    #[test]
    fn reputation_feedback_flags_future_requests() {
        let mut e = DetectionEngine::with_defaults();
        let bad_ip = ip(66);
        e.reputation_mut().report(bad_ip, 5.0, SimTime::ZERO);
        let v = e.assess(
            SimTime::from_mins(1),
            bad_ip,
            &human_fp(8),
            Endpoint::Search,
            None,
        );
        assert!(v.signals.contains(&Signal::IpReputation));
    }

    #[test]
    fn kinds_are_stable_labels() {
        let sigs = [
            Signal::FingerprintInconsistent { suspicion: 0.5 },
            Signal::IpReputation,
            Signal::IpVelocity { count: 1 },
            Signal::FingerprintVelocity { count: 1 },
            Signal::BookingSmsVelocity { count: 1 },
            Signal::TrapHit,
        ];
        for s in &sigs {
            assert!(Signal::KINDS.contains(&s.kind()), "{}", s.kind());
        }
        // Kinds carry no per-request values, unlike Display.
        assert_eq!(Signal::IpVelocity { count: 132 }.kind(), "ip-velocity");
    }

    #[test]
    fn attached_telemetry_profiles_each_signal_family() {
        let telemetry = fg_telemetry::Telemetry::shared();
        let mut e = DetectionEngine::with_defaults();
        e.attach_telemetry(telemetry.clone());
        e.assess(SimTime::ZERO, ip(1), &human_fp(1), Endpoint::Search, None);
        let stages: Vec<String> = telemetry
            .snapshot()
            .stages
            .iter()
            .map(|s| s.stage.clone())
            .collect();
        for expected in [
            "detect.fingerprint-consistency",
            "detect.ip-reputation",
            "detect.ip-velocity",
            "detect.fp-velocity",
            "detect.booking-sms-velocity",
        ] {
            assert!(stages.iter().any(|s| s == expected), "missing {expected}");
        }
    }

    #[test]
    fn compact_drops_expired_identities_without_changing_verdicts() {
        let mut e = DetectionEngine::with_defaults();
        // 40 one-shot identities, one request each, spread over 40 minutes.
        for i in 0..40u64 {
            e.assess(
                SimTime::from_mins(i),
                ip(i as u8),
                &human_fp(i),
                Endpoint::Search,
                None,
            );
        }
        assert_eq!(e.tracked_keys().ip, 40);
        assert_eq!(e.tracked_keys().fingerprint, 40);
        // Two hours later everything is outside the 1 h window.
        e.compact(SimTime::from_hours(2));
        assert_eq!(e.tracked_keys().total(), 0);
        // A returning identity scores exactly like a fresh engine would.
        let fp = human_fp(3);
        let v = e.assess(SimTime::from_hours(2), ip(3), &fp, Endpoint::Search, None);
        let v_fresh = DetectionEngine::with_defaults().assess(
            SimTime::from_hours(2),
            ip(3),
            &fp,
            Endpoint::Search,
            None,
        );
        assert_eq!(v, v_fresh);
    }

    #[test]
    fn noisy_or_combines_monotonically() {
        let a = Signal::IpVelocity { count: 200 };
        let b = Signal::TrapHit;
        let combined = 1.0 - (1.0 - a.weight()) * (1.0 - b.weight());
        assert!(combined > a.weight().max(b.weight()));
        assert!(combined <= 1.0);
    }
}
