//! Lloyd's k-means clustering.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A fitted k-means model.
///
/// Unsupervised bot detection (paper refs \[31\], \[32\], \[38\]) clusters sessions
/// and inspects cluster composition. [`KMeans::fit`] uses k-means++ style
/// seeding from a caller-provided RNG, so runs are reproducible.
///
/// # Example
///
/// ```
/// use fg_detection::classify::KMeans;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let xs = vec![vec![0.0], vec![0.1], vec![9.0], vec![9.1]];
/// let mut rng = StdRng::seed_from_u64(1);
/// let model = KMeans::fit(&xs, 2, 50, &mut rng);
/// assert_eq!(model.assign(&[0.05]), model.assign(&[0.02]));
/// assert_ne!(model.assign(&[0.05]), model.assign(&[9.05]));
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

impl KMeans {
    /// Fits `k` clusters with at most `max_iter` Lloyd iterations.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero, `xs` has fewer than `k` points, or rows have
    /// inconsistent dimensions.
    pub fn fit<R: Rng + ?Sized>(xs: &[Vec<f64>], k: usize, max_iter: usize, rng: &mut R) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(xs.len() >= k, "need at least k points");
        let dim = xs[0].len();
        assert!(xs.iter().all(|r| r.len() == dim), "inconsistent dimensions");

        // k-means++ seeding.
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        centroids.push(xs.choose(rng).expect("non-empty").clone());
        while centroids.len() < k {
            let dists: Vec<f64> = xs
                .iter()
                .map(|x| {
                    centroids
                        .iter()
                        .map(|c| sq_dist(x, c))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = dists.iter().sum();
            if total <= 0.0 {
                // All points identical to a centroid; duplicate one.
                centroids.push(centroids[0].clone());
                continue;
            }
            let mut pick = rng.gen_range(0.0..total);
            let mut chosen = xs.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                if pick < d {
                    chosen = i;
                    break;
                }
                pick -= d;
            }
            centroids.push(xs[chosen].clone());
        }

        let mut assignment = vec![0usize; xs.len()];
        for _ in 0..max_iter {
            let mut changed = false;
            for (i, x) in xs.iter().enumerate() {
                let best = (0..k)
                    .min_by(|&a, &b| {
                        sq_dist(x, &centroids[a])
                            .partial_cmp(&sq_dist(x, &centroids[b]))
                            .expect("distances are finite")
                    })
                    .expect("k > 0");
                if assignment[i] != best {
                    assignment[i] = best;
                    changed = true;
                }
            }
            // Recompute centroids.
            let mut sums = vec![vec![0.0; dim]; k];
            let mut counts = vec![0usize; k];
            for (x, &a) in xs.iter().zip(&assignment) {
                counts[a] += 1;
                for (s, &xi) in sums[a].iter_mut().zip(x) {
                    *s += xi;
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    for (ci, s) in centroids[c].iter_mut().zip(&sums[c]) {
                        *ci = s / counts[c] as f64;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        KMeans { centroids }
    }

    /// The nearest centroid's index for `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn assign(&self, x: &[f64]) -> usize {
        assert_eq!(x.len(), self.centroids[0].len(), "dimension mismatch");
        (0..self.centroids.len())
            .min_by(|&a, &b| {
                sq_dist(x, &self.centroids[a])
                    .partial_cmp(&sq_dist(x, &self.centroids[b]))
                    .expect("distances are finite")
            })
            .expect("at least one centroid")
    }

    /// The fitted centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Within-cluster sum of squares over a dataset — the fit-quality metric.
    pub fn inertia(&self, xs: &[Vec<f64>]) -> f64 {
        xs.iter()
            .map(|x| sq_dist(x, &self.centroids[self.assign(x)]))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(rng: &mut StdRng) -> Vec<Vec<f64>> {
        let mut xs = Vec::new();
        for &(cx, cy) in &[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)] {
            for _ in 0..50 {
                xs.push(vec![
                    cx + rng.gen_range(-1.0..1.0),
                    cy + rng.gen_range(-1.0..1.0),
                ]);
            }
        }
        xs
    }

    #[test]
    fn recovers_three_blobs() {
        let mut rng = StdRng::seed_from_u64(6);
        let xs = blobs(&mut rng);
        let model = KMeans::fit(&xs, 3, 100, &mut rng);
        // All points of a blob share a cluster, and blobs differ.
        let a = model.assign(&xs[10]);
        let b = model.assign(&xs[60]);
        let c = model.assign(&xs[110]);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
        for (i, x) in xs.iter().enumerate() {
            let expected = [a, b, c][i / 50];
            assert_eq!(model.assign(x), expected, "point {i}");
        }
    }

    #[test]
    fn inertia_decreases_with_k() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs = blobs(&mut rng);
        let k1 = KMeans::fit(&xs, 1, 100, &mut rng).inertia(&xs);
        let k3 = KMeans::fit(&xs, 3, 100, &mut rng).inertia(&xs);
        assert!(k3 < k1 / 4.0, "k=3 inertia {k3} vs k=1 {k1}");
    }

    #[test]
    fn deterministic_per_seed() {
        let xs = vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]];
        let m1 = KMeans::fit(&xs, 2, 50, &mut StdRng::seed_from_u64(8));
        let m2 = KMeans::fit(&xs, 2, 50, &mut StdRng::seed_from_u64(8));
        assert_eq!(m1, m2);
    }

    #[test]
    fn identical_points_do_not_loop_forever() {
        let xs = vec![vec![5.0]; 10];
        let mut rng = StdRng::seed_from_u64(9);
        let model = KMeans::fit(&xs, 3, 50, &mut rng);
        assert_eq!(model.centroids().len(), 3);
        assert_eq!(model.inertia(&xs), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least k")]
    fn too_few_points_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        KMeans::fit(&[vec![1.0]], 2, 10, &mut rng);
    }
}
