//! Binary logistic regression trained by mini-batch-free SGD.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A binary logistic-regression classifier with L2 regularization.
///
/// # Example
///
/// ```
/// use fg_detection::classify::LogisticRegression;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// // Separable 1-D data: negatives near 0, positives near 1.
/// let xs = vec![vec![0.0], vec![0.1], vec![0.9], vec![1.0]];
/// let ys = vec![false, false, true, true];
/// let mut rng = StdRng::seed_from_u64(0);
/// let model = LogisticRegression::train(&xs, &ys, 200, 0.5, 1e-4, &mut rng);
/// assert!(model.predict_proba(&[0.95]) > 0.5);
/// assert!(model.predict_proba(&[0.05]) < 0.5);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    /// Trains for `epochs` passes of SGD with learning rate `lr` and L2
    /// penalty `l2`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` differ in length, `xs` is empty, or rows have
    /// inconsistent dimensions.
    pub fn train<R: Rng + ?Sized>(
        xs: &[Vec<f64>],
        ys: &[bool],
        epochs: usize,
        lr: f64,
        l2: f64,
        rng: &mut R,
    ) -> Self {
        assert_eq!(xs.len(), ys.len(), "features and labels must align");
        assert!(!xs.is_empty(), "training set must be non-empty");
        let dim = xs[0].len();
        assert!(
            xs.iter().all(|r| r.len() == dim),
            "all rows must share one dimension"
        );

        let mut weights = vec![0.0; dim];
        let mut bias = 0.0;
        let mut order: Vec<usize> = (0..xs.len()).collect();

        for _ in 0..epochs {
            order.shuffle(rng);
            for &i in &order {
                let x = &xs[i];
                let y = if ys[i] { 1.0 } else { 0.0 };
                let z: f64 = bias + weights.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>();
                let err = sigmoid(z) - y;
                for (w, &xi) in weights.iter_mut().zip(x) {
                    *w -= lr * (err * xi + l2 * *w);
                }
                bias -= lr * err;
            }
        }
        LogisticRegression { weights, bias }
    }

    /// The probability that `x` is the positive class.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "dimension mismatch");
        let z: f64 = self.bias
            + self
                .weights
                .iter()
                .zip(x)
                .map(|(w, xi)| w * xi)
                .sum::<f64>();
        sigmoid(z)
    }

    /// Hard decision at threshold 0.5.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// The learned weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blob<R: Rng>(rng: &mut R, center: &[f64], n: usize, spread: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                center
                    .iter()
                    .map(|&c| c + rng.gen_range(-spread..spread))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn learns_separable_2d_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut xs = blob(&mut rng, &[0.0, 0.0], 100, 0.5);
        xs.extend(blob(&mut rng, &[4.0, 4.0], 100, 0.5));
        let ys: Vec<bool> = (0..200).map(|i| i >= 100).collect();
        let model = LogisticRegression::train(&xs, &ys, 100, 0.1, 1e-4, &mut rng);

        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| model.predict(x) == y)
            .count();
        assert!(correct >= 198, "accuracy {}/200", correct);
    }

    #[test]
    fn probabilities_are_calibrated_directionally() {
        let mut rng = StdRng::seed_from_u64(2);
        let xs = vec![vec![-2.0], vec![-1.0], vec![1.0], vec![2.0]];
        let ys = vec![false, false, true, true];
        let model = LogisticRegression::train(&xs, &ys, 500, 0.3, 0.0, &mut rng);
        assert!(model.predict_proba(&[3.0]) > model.predict_proba(&[0.0]));
        assert!(model.predict_proba(&[0.0]) > model.predict_proba(&[-3.0]));
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![false, true];
        let m1 = LogisticRegression::train(&xs, &ys, 50, 0.1, 0.0, &mut StdRng::seed_from_u64(9));
        let m2 = LogisticRegression::train(&xs, &ys, 50, 0.1, 0.0, &mut StdRng::seed_from_u64(9));
        assert_eq!(m1, m2);
    }

    #[test]
    fn l2_shrinks_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = vec![vec![-1.0], vec![1.0], vec![-1.1], vec![1.1]];
        let ys = vec![false, true, false, true];
        let free = LogisticRegression::train(&xs, &ys, 300, 0.3, 0.0, &mut rng);
        let penalized = LogisticRegression::train(&xs, &ys, 300, 0.3, 0.5, &mut rng);
        assert!(penalized.weights()[0].abs() < free.weights()[0].abs());
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        LogisticRegression::train(&[vec![0.0]], &[true, false], 1, 0.1, 0.0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_rejected_at_predict() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = LogisticRegression::train(
            &[vec![0.0], vec![1.0]],
            &[false, true],
            1,
            0.1,
            0.0,
            &mut rng,
        );
        m.predict(&[0.0, 1.0]);
    }
}
