//! From-scratch classifiers over session feature vectors.
//!
//! Three standard models cover the behaviour-based detection families the
//! paper surveys (§III-A): a supervised linear model
//! ([`LogisticRegression`]), a generative model ([`GaussianNaiveBayes`]), and
//! an unsupervised clusterer ([`KMeans`] — the unsupervised-learning approach
//! of refs \[31\], \[32\], \[38\]). [`metrics`] computes the precision/recall/F1
//! the experiments report.

pub mod kmeans;
pub mod logreg;
pub mod metrics;
pub mod naive_bayes;

pub use kmeans::KMeans;
pub use logreg::LogisticRegression;
pub use metrics::ConfusionMatrix;
pub use naive_bayes::GaussianNaiveBayes;

/// Standardizes columns of a feature matrix to zero mean / unit variance,
/// returning `(standardized, means, stds)`. Constant columns keep std 1 so
/// they standardize to zero rather than NaN.
pub fn standardize(rows: &[Vec<f64>]) -> (Vec<Vec<f64>>, Vec<f64>, Vec<f64>) {
    if rows.is_empty() {
        return (Vec::new(), Vec::new(), Vec::new());
    }
    let dim = rows[0].len();
    let n = rows.len() as f64;
    let mut means = vec![0.0; dim];
    for row in rows {
        for (m, &x) in means.iter_mut().zip(row) {
            *m += x / n;
        }
    }
    let mut stds = vec![0.0; dim];
    for row in rows {
        for ((s, &m), &x) in stds.iter_mut().zip(&means).zip(row) {
            *s += (x - m).powi(2) / n;
        }
    }
    for s in &mut stds {
        *s = s.sqrt();
        if *s < 1e-12 {
            *s = 1.0;
        }
    }
    let standardized = rows
        .iter()
        .map(|row| {
            row.iter()
                .zip(&means)
                .zip(&stds)
                .map(|((&x, &m), &s)| (x - m) / s)
                .collect()
        })
        .collect();
    (standardized, means, stds)
}

/// Applies a previously computed standardization to one row.
pub fn apply_standardization(row: &[f64], means: &[f64], stds: &[f64]) -> Vec<f64> {
    row.iter()
        .zip(means)
        .zip(stds)
        .map(|((&x, &m), &s)| (x - m) / s)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardize_zero_mean_unit_var() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]];
        let (std_rows, means, stds) = standardize(&rows);
        assert!((means[0] - 3.0).abs() < 1e-12);
        assert_eq!(means[1], 10.0);
        // Constant column: std forced to 1, values standardize to 0.
        assert_eq!(stds[1], 1.0);
        for r in &std_rows {
            assert_eq!(r[1], 0.0);
        }
        let col0_mean: f64 = std_rows.iter().map(|r| r[0]).sum::<f64>() / 3.0;
        assert!(col0_mean.abs() < 1e-12);
    }

    #[test]
    fn apply_matches_fit() {
        let rows = vec![vec![2.0], vec![4.0]];
        let (std_rows, means, stds) = standardize(&rows);
        assert_eq!(apply_standardization(&rows[0], &means, &stds), std_rows[0]);
    }

    #[test]
    fn empty_input_is_safe() {
        let (a, b, c) = standardize(&[]);
        assert!(a.is_empty() && b.is_empty() && c.is_empty());
    }
}
