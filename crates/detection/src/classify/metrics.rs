//! Binary classification metrics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A binary confusion matrix with derived metrics.
///
/// # Example
///
/// ```
/// use fg_detection::classify::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new();
/// cm.record(true, true);   // TP
/// cm.record(false, false); // TN
/// cm.record(false, true);  // FP
/// assert_eq!(cm.precision(), 0.5);
/// assert_eq!(cm.recall(), 1.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// True negatives.
    pub tn: u64,
    /// False negatives.
    pub fn_: u64,
}

impl ConfusionMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        ConfusionMatrix::default()
    }

    /// Records one `(truth, predicted)` outcome.
    pub fn record(&mut self, truth: bool, predicted: bool) {
        match (truth, predicted) {
            (true, true) => self.tp += 1,
            (true, false) => self.fn_ += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Builds a matrix from parallel truth/prediction slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn from_pairs(truths: &[bool], predictions: &[bool]) -> Self {
        assert_eq!(truths.len(), predictions.len(), "slices must align");
        let mut cm = ConfusionMatrix::new();
        for (&t, &p) in truths.iter().zip(predictions) {
            cm.record(t, p);
        }
        cm
    }

    /// Total outcomes recorded.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Precision: TP / (TP + FP); 1.0 when nothing was predicted positive
    /// (vacuously precise).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall: TP / (TP + FN); 1.0 when no positives exist.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1: the harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy over all outcomes (1.0 on an empty matrix).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// False-positive rate: FP / (FP + TN) — the "legitimate customers
    /// blocked" rate, which §V's usability/security balance is about.
    pub fn false_positive_rate(&self) -> f64 {
        if self.fp + self.tn == 0 {
            0.0
        } else {
            self.fp as f64 / (self.fp + self.tn) as f64
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tp={} fp={} tn={} fn={} | P={:.3} R={:.3} F1={:.3}",
            self.tp,
            self.fp,
            self.tn,
            self.fn_,
            self.precision(),
            self.recall(),
            self.f1()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_classifier() {
        let cm = ConfusionMatrix::from_pairs(&[true, false, true], &[true, false, true]);
        assert_eq!(cm.precision(), 1.0);
        assert_eq!(cm.recall(), 1.0);
        assert_eq!(cm.f1(), 1.0);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.false_positive_rate(), 0.0);
    }

    #[test]
    fn always_positive_classifier() {
        let cm = ConfusionMatrix::from_pairs(&[true, false, false, false], &[true; 4]);
        assert_eq!(cm.recall(), 1.0);
        assert_eq!(cm.precision(), 0.25);
        assert_eq!(cm.false_positive_rate(), 1.0);
    }

    #[test]
    fn degenerate_cases() {
        let empty = ConfusionMatrix::new();
        assert_eq!(empty.accuracy(), 1.0);
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
        assert_eq!(empty.f1(), 1.0);

        let never_fires = ConfusionMatrix::from_pairs(&[true, true], &[false, false]);
        assert_eq!(never_fires.precision(), 1.0, "vacuous precision");
        assert_eq!(never_fires.recall(), 0.0);
        assert_eq!(never_fires.f1(), 0.0);
    }

    #[test]
    fn display_contains_metrics() {
        let cm = ConfusionMatrix::from_pairs(&[true, false], &[true, true]);
        let s = cm.to_string();
        assert!(s.contains("tp=1"));
        assert!(s.contains("fp=1"));
    }

    proptest! {
        /// All metrics stay within [0, 1] and totals add up.
        #[test]
        fn prop_metrics_bounded(pairs in proptest::collection::vec((any::<bool>(), any::<bool>()), 0..200)) {
            let truths: Vec<bool> = pairs.iter().map(|p| p.0).collect();
            let preds: Vec<bool> = pairs.iter().map(|p| p.1).collect();
            let cm = ConfusionMatrix::from_pairs(&truths, &preds);
            prop_assert_eq!(cm.total() as usize, pairs.len());
            for m in [cm.precision(), cm.recall(), cm.f1(), cm.accuracy(), cm.false_positive_rate()] {
                prop_assert!((0.0..=1.0).contains(&m));
            }
        }
    }
}
