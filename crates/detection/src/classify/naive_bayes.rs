//! Gaussian naive Bayes.

use serde::{Deserialize, Serialize};

/// A two-class Gaussian naive Bayes classifier.
///
/// Each feature is modelled as an independent Gaussian per class; a variance
/// floor keeps degenerate (constant) features from producing infinities.
///
/// # Example
///
/// ```
/// use fg_detection::classify::GaussianNaiveBayes;
///
/// let xs = vec![vec![0.0], vec![0.2], vec![5.0], vec![5.2]];
/// let ys = vec![false, false, true, true];
/// let model = GaussianNaiveBayes::train(&xs, &ys);
/// assert!(model.predict(&[5.1]));
/// assert!(!model.predict(&[0.1]));
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaussianNaiveBayes {
    means: [Vec<f64>; 2],
    vars: [Vec<f64>; 2],
    priors: [f64; 2],
}

const VAR_FLOOR: f64 = 1e-6;

impl GaussianNaiveBayes {
    /// Fits per-class feature Gaussians.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty, misaligned, or either class is absent.
    pub fn train(xs: &[Vec<f64>], ys: &[bool]) -> Self {
        assert_eq!(xs.len(), ys.len(), "features and labels must align");
        assert!(!xs.is_empty(), "training set must be non-empty");
        let dim = xs[0].len();
        assert!(xs.iter().all(|r| r.len() == dim), "inconsistent dimensions");

        let mut counts = [0usize; 2];
        let mut means = [vec![0.0; dim], vec![0.0; dim]];
        for (x, &y) in xs.iter().zip(ys) {
            let c = usize::from(y);
            counts[c] += 1;
            for (m, &xi) in means[c].iter_mut().zip(x) {
                *m += xi;
            }
        }
        assert!(
            counts[0] > 0 && counts[1] > 0,
            "both classes must be present in training data"
        );
        for c in 0..2 {
            for m in &mut means[c] {
                *m /= counts[c] as f64;
            }
        }

        let mut vars = [vec![0.0; dim], vec![0.0; dim]];
        for (x, &y) in xs.iter().zip(ys) {
            let c = usize::from(y);
            for ((v, &m), &xi) in vars[c].iter_mut().zip(&means[c]).zip(x) {
                *v += (xi - m).powi(2);
            }
        }
        for c in 0..2 {
            for v in &mut vars[c] {
                *v = (*v / counts[c] as f64).max(VAR_FLOOR);
            }
        }

        let n = xs.len() as f64;
        GaussianNaiveBayes {
            means,
            vars,
            priors: [counts[0] as f64 / n, counts[1] as f64 / n],
        }
    }

    fn log_likelihood(&self, x: &[f64], class: usize) -> f64 {
        let mut ll = self.priors[class].ln();
        for ((&m, &v), &xi) in self.means[class].iter().zip(&self.vars[class]).zip(x) {
            ll += -0.5 * ((xi - m).powi(2) / v + v.ln() + (2.0 * std::f64::consts::PI).ln());
        }
        ll
    }

    /// The posterior probability of the positive class.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.means[0].len(), "dimension mismatch");
        let l0 = self.log_likelihood(x, 0);
        let l1 = self.log_likelihood(x, 1);
        // Log-sum-exp for numerical stability.
        let m = l0.max(l1);
        let p1 = (l1 - m).exp();
        p1 / ((l0 - m).exp() + p1)
    }

    /// Hard decision at posterior 0.5.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn separates_gaussian_blobs() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut xs: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                let c = if i < 100 { 0.0 } else { 6.0 };
                vec![c + rng.gen_range(-1.0..1.0), c + rng.gen_range(-1.0..1.0)]
            })
            .collect();
        let ys: Vec<bool> = (0..200).map(|i| i >= 100).collect();
        let model = GaussianNaiveBayes::train(&xs, &ys);
        let correct = xs
            .iter_mut()
            .zip(&ys)
            .filter(|(x, &y)| model.predict(x) == y)
            .count();
        assert!(correct >= 198, "accuracy {correct}/200");
    }

    #[test]
    fn posterior_respects_priors() {
        // 90% negatives: an ambiguous midpoint leans negative.
        let mut xs = vec![vec![0.0]; 90];
        xs.extend(vec![vec![1.0]; 10]);
        let mut ys = vec![false; 90];
        ys.extend(vec![true; 10]);
        let model = GaussianNaiveBayes::train(&xs, &ys);
        assert!(model.predict_proba(&[0.5]) < 0.5);
    }

    #[test]
    fn constant_feature_does_not_nan() {
        let xs = vec![
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 4.0],
            vec![1.0, 5.0],
        ];
        let ys = vec![false, false, true, true];
        let model = GaussianNaiveBayes::train(&xs, &ys);
        let p = model.predict_proba(&[1.0, 4.5]);
        assert!(p.is_finite());
        assert!(p > 0.5);
    }

    #[test]
    fn probabilities_bounded() {
        let xs = vec![vec![0.0], vec![10.0]];
        let ys = vec![false, true];
        let model = GaussianNaiveBayes::train(&xs, &ys);
        for x in [-100.0, 0.0, 5.0, 100.0] {
            let p = model.predict_proba(&[x]);
            assert!((0.0..=1.0).contains(&p), "p={p} at x={x}");
        }
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_rejected() {
        GaussianNaiveBayes::train(&[vec![0.0], vec![1.0]], &[true, true]);
    }
}
