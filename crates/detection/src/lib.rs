//! # fg-detection
//!
//! The detection layer of the FeatureGuard framework.
//!
//! §III of the paper surveys the two classical detection families and their
//! failure mode against functional abuse:
//!
//! * **Behaviour-based** (§III-A): web logs → sessions → navigational
//!   features → classifier. Fails on DoI / SMS pumping because "these bots do
//!   not require a high request volume within a single session".
//! * **Knowledge-based** (§III-B): browser fingerprinting. Fails against
//!   rotation and mimicry.
//!
//! This crate implements both families *and* the domain-specific heuristics
//! the case studies show actually work:
//!
//! * [`log`] / [`session`] — web-log records and gap-based sessionization.
//! * [`features`] — per-session behavioural feature vectors (volume metrics
//!   the literature uses, plus the domain metrics — hold/pay ratio, SMS per
//!   booking — that functional abuse actually moves).
//! * [`classify`] — from-scratch logistic regression, Gaussian naive Bayes,
//!   and k-means, trained on session features.
//! * [`anomaly`] — distribution drift tests (chi-square, KL divergence,
//!   Poisson z-score) powering NiP-distribution and volume anomaly alarms.
//! * [`names`] — passenger-name heuristics from §IV-B: gibberish detection,
//!   cross-booking repetition, birthdate rotation, fixed-set permutations,
//!   misspelling clusters.
//! * [`velocity`] — sliding-window velocity counters keyed by arbitrary
//!   dimensions (IP, fingerprint, booking reference, path).
//! * [`biometrics`] — the future-work direction §III-A/§V call for: mouse
//!   trajectory synthesis and kinematic bot scoring (refs \[41\]–\[44\]).
//! * [`engine`] — the combined [`DetectionEngine`] producing a scored
//!   [`Verdict`] per request from every signal above.
//!
//! # Example
//!
//! ```
//! use fg_detection::names::gibberish_score;
//!
//! // §IV-B: "entirely random entries (e.g., Name: affjgdui, Surname: ddfjrei)"
//! assert!(gibberish_score("affjgdui") > 0.5);
//! assert!(gibberish_score("Elisabeth") < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anomaly;
pub mod biometrics;
pub mod classify;
pub mod engine;
pub mod features;
pub mod log;
pub mod names;
pub mod session;
pub mod velocity;

pub use engine::{DetectionEngine, Signal, Verdict};
pub use features::SessionFeatures;
pub use log::{Endpoint, LogRecord, Method};
pub use session::{sessionize, Session};
pub use velocity::VelocityCounter;
