//! Residential proxy pools.
//!
//! Commercial residential proxy services rent out exit IPs harvested from
//! consumer devices (paper refs \[5\], \[23\]). For the attacker they provide
//! (1) country targeting — §IV-C's pumpers matched exit country to the SMS
//! destination country — and (2) rotation. For the defender they are painful
//! because blocking a residential /24 risks blocking real customers.
//!
//! [`ProxyPool`] models a finite per-country inventory of exits with churn
//! (exits leave, new ones join) and per-request pricing, feeding the §V
//! economics model.

use crate::geo::GeoDatabase;
use crate::ip::{IpAddress, IpClass};
use fg_core::ids::CountryCode;
use fg_core::money::Money;
use fg_core::time::SimTime;
use rand::Rng;
use std::collections::HashMap;

/// A rented proxy exit: the address plus rental metadata.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProxyLease {
    ip: IpAddress,
    country: CountryCode,
    rented_at: SimTime,
    price: Money,
}

impl ProxyLease {
    /// The exit address.
    pub fn ip(&self) -> IpAddress {
        self.ip
    }

    /// The exit country.
    pub fn country(&self) -> CountryCode {
        self.country
    }

    /// When the lease started.
    pub fn rented_at(&self) -> SimTime {
        self.rented_at
    }

    /// What the lease cost the attacker.
    pub fn price(&self) -> Money {
        self.price
    }
}

/// A finite pool of proxy exits, organized per country.
///
/// # Example
///
/// ```
/// use fg_netsim::{GeoDatabase, proxy::ProxyPool};
/// use fg_core::ids::CountryCode;
/// use fg_core::time::SimTime;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let geo = GeoDatabase::default_world();
/// let mut pool = ProxyPool::residential(&geo, 32);
/// let mut rng = StdRng::seed_from_u64(0);
/// let lease = pool.rent(CountryCode::new("NG"), SimTime::ZERO, &mut rng).unwrap();
/// assert!(pool.total_spend() >= lease.price());
/// ```
#[derive(Clone, Debug)]
pub struct ProxyPool {
    exits: HashMap<CountryCode, Vec<IpAddress>>,
    class: IpClass,
    price_per_lease: Money,
    total_spend: Money,
    leases_granted: u64,
}

impl ProxyPool {
    /// Builds a residential pool with `exits_per_country` exits in every
    /// country of `geo`, at the default residential price point
    /// ($0.60/lease — in the ballpark of per-IP pricing of commercial
    /// residential providers).
    pub fn residential(geo: &GeoDatabase, exits_per_country: usize) -> Self {
        Self::with_class(
            geo,
            exits_per_country,
            IpClass::Residential,
            Money::from_cents(60),
        )
    }

    /// Builds a datacenter pool: effectively unlimited cheap exits
    /// ($0.02/lease) that the defender can detect by class.
    pub fn datacenter(geo: &GeoDatabase, exits_per_country: usize) -> Self {
        Self::with_class(
            geo,
            exits_per_country,
            IpClass::Datacenter,
            Money::from_cents(2),
        )
    }

    /// Builds a pool of `class` exits with a custom price.
    pub fn with_class(
        geo: &GeoDatabase,
        exits_per_country: usize,
        class: IpClass,
        price_per_lease: Money,
    ) -> Self {
        // Deterministic exit inventory, strided across each block: real
        // residential exits are scattered consumer devices, so consecutive
        // addresses (which would all share one /24 and die to a single
        // subnet block) would misrepresent the threat model entirely.
        let mut exits = HashMap::new();
        for &country in geo.countries() {
            let mut ips = Vec::with_capacity(exits_per_country);
            for range in geo.ranges(country, class) {
                let stride = (range.len() / exits_per_country as u32).max(1);
                for i in 0..exits_per_country as u32 {
                    if ips.len() >= exits_per_country {
                        break;
                    }
                    let off = (i * stride) % range.len();
                    ips.push(range.nth(off).expect("offset bounded by range length"));
                }
            }
            exits.insert(country, ips);
        }
        ProxyPool {
            exits,
            class,
            price_per_lease,
            total_spend: Money::ZERO,
            leases_granted: 0,
        }
    }

    /// The egress class this pool provides.
    pub fn class(&self) -> IpClass {
        self.class
    }

    /// Rents a random exit in `country`. Returns `None` if the pool has no
    /// inventory there.
    pub fn rent<R: Rng + ?Sized>(
        &mut self,
        country: CountryCode,
        now: SimTime,
        rng: &mut R,
    ) -> Option<ProxyLease> {
        let ips = self.exits.get(&country)?;
        if ips.is_empty() {
            return None;
        }
        let ip = ips[rng.gen_range(0..ips.len())];
        self.total_spend += self.price_per_lease;
        self.leases_granted += 1;
        Some(ProxyLease {
            ip,
            country,
            rented_at: now,
            price: self.price_per_lease,
        })
    }

    /// Rents an exit in any country (uniform over countries with inventory).
    pub fn rent_any<R: Rng + ?Sized>(&mut self, now: SimTime, rng: &mut R) -> Option<ProxyLease> {
        let countries: Vec<CountryCode> = self
            .exits
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(c, _)| *c)
            .collect();
        if countries.is_empty() {
            return None;
        }
        // HashMap iteration order is non-deterministic; sort for determinism.
        let mut countries = countries;
        countries.sort_unstable();
        let country = countries[rng.gen_range(0..countries.len())];
        self.rent(country, now, rng)
    }

    /// Simulates churn: a fraction of each country's exits is replaced by
    /// fresh addresses drawn from the same blocks. Models consumer devices
    /// going offline — and silently invalidates defender IP block-lists.
    pub fn churn<R: Rng + ?Sized>(&mut self, geo: &GeoDatabase, fraction: f64, rng: &mut R) {
        let fraction = fraction.clamp(0.0, 1.0);
        let mut countries: Vec<CountryCode> = self.exits.keys().copied().collect();
        countries.sort_unstable();
        for country in countries {
            let ips = self.exits.get_mut(&country).expect("key from same map");
            let replace = ((ips.len() as f64) * fraction).round() as usize;
            for _ in 0..replace {
                if ips.is_empty() {
                    break;
                }
                let victim = rng.gen_range(0..ips.len());
                if let Some(fresh) = geo.sample_ip(country, self.class, rng) {
                    ips[victim] = fresh;
                }
            }
        }
    }

    /// Exits currently available in `country`.
    pub fn inventory(&self, country: CountryCode) -> usize {
        self.exits.get(&country).map_or(0, Vec::len)
    }

    /// Total money spent on leases so far.
    pub fn total_spend(&self) -> Money {
        self.total_spend
    }

    /// Total leases granted so far.
    pub fn leases_granted(&self) -> u64 {
        self.leases_granted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (GeoDatabase, ProxyPool, StdRng) {
        let geo = GeoDatabase::default_world();
        let pool = ProxyPool::residential(&geo, 16);
        (geo, pool, StdRng::seed_from_u64(3))
    }

    #[test]
    fn rented_exit_matches_country_and_class() {
        let (geo, mut pool, mut rng) = setup();
        for code in ["UZ", "IR", "TH"] {
            let c = CountryCode::new(code);
            let lease = pool.rent(c, SimTime::ZERO, &mut rng).unwrap();
            assert_eq!(geo.country_of(lease.ip()), Some(c));
            assert_eq!(geo.class_of(lease.ip()), Some(IpClass::Residential));
            assert_eq!(lease.country(), c);
        }
    }

    #[test]
    fn spend_accumulates_per_lease() {
        let (_, mut pool, mut rng) = setup();
        let c = CountryCode::new("GB");
        for _ in 0..10 {
            pool.rent(c, SimTime::ZERO, &mut rng).unwrap();
        }
        assert_eq!(pool.leases_granted(), 10);
        assert_eq!(pool.total_spend(), Money::from_cents(600));
    }

    #[test]
    fn unknown_country_has_no_inventory() {
        let (_, mut pool, mut rng) = setup();
        assert!(pool
            .rent(CountryCode::new("ZZ"), SimTime::ZERO, &mut rng)
            .is_none());
        assert_eq!(pool.inventory(CountryCode::new("ZZ")), 0);
    }

    #[test]
    fn rent_any_is_deterministic_per_seed() {
        let geo = GeoDatabase::default_world();
        let lease_with_seed = |seed| {
            let mut pool = ProxyPool::residential(&geo, 8);
            let mut rng = StdRng::seed_from_u64(seed);
            pool.rent_any(SimTime::ZERO, &mut rng).unwrap()
        };
        assert_eq!(lease_with_seed(7), lease_with_seed(7));
    }

    #[test]
    fn churn_replaces_exits_within_country() {
        let (geo, mut pool, mut rng) = setup();
        let c = CountryCode::new("CN");
        let before: Vec<IpAddress> = pool.exits[&c].clone();
        pool.churn(&geo, 1.0, &mut rng);
        let after = &pool.exits[&c];
        assert_eq!(after.len(), before.len(), "churn preserves pool size");
        assert_ne!(*after, before, "full churn changes the inventory");
        for &ip in after {
            assert_eq!(geo.country_of(ip), Some(c), "churned exits stay in-country");
        }
    }

    #[test]
    fn datacenter_pool_is_cheaper_but_flagged() {
        let geo = GeoDatabase::default_world();
        let mut dc = ProxyPool::datacenter(&geo, 8);
        let mut rng = StdRng::seed_from_u64(5);
        let lease = dc
            .rent(CountryCode::new("US"), SimTime::ZERO, &mut rng)
            .unwrap();
        assert_eq!(geo.class_of(lease.ip()), Some(IpClass::Datacenter));
        assert!(lease.price() < Money::from_cents(60));
    }

    #[test]
    fn rotation_draws_many_distinct_ips() {
        let (_, mut pool, mut rng) = setup();
        let c = CountryCode::new("JO");
        let distinct: std::collections::HashSet<IpAddress> = (0..200)
            .filter_map(|_| pool.rent(c, SimTime::ZERO, &mut rng).map(|l| l.ip()))
            .collect();
        assert!(
            distinct.len() >= 10,
            "got {} distinct exits",
            distinct.len()
        );
    }
}
