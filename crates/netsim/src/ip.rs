//! Compact IPv4-style address model.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 32-bit network address.
///
/// # Example
///
/// ```
/// use fg_netsim::ip::IpAddress;
///
/// let ip = IpAddress::from_octets(192, 168, 1, 7);
/// assert_eq!(ip.to_string(), "192.168.1.7");
/// assert_eq!(ip.subnet24(), IpAddress::from_octets(192, 168, 1, 0));
/// ```
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct IpAddress(pub u32);

impl IpAddress {
    /// Builds an address from dotted-quad octets.
    pub const fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Self {
        IpAddress(u32::from_be_bytes([a, b, c, d]))
    }

    /// The raw 32-bit value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The containing /24 subnet's network address.
    pub const fn subnet24(self) -> IpAddress {
        IpAddress(self.0 & 0xFFFF_FF00)
    }

    /// The containing /16 subnet's network address.
    pub const fn subnet16(self) -> IpAddress {
        IpAddress(self.0 & 0xFFFF_0000)
    }
}

impl From<u32> for IpAddress {
    fn from(v: u32) -> Self {
        IpAddress(v)
    }
}

impl fmt::Display for IpAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.0.to_be_bytes();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// Broad egress classification — the primary signal commercial anti-bot
/// vendors attach to an IP.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IpClass {
    /// Consumer broadband egress. Blocking these risks real customers.
    Residential,
    /// Cloud / hosting egress. Cheap to block wholesale.
    Datacenter,
    /// Cellular carrier-grade NAT egress. Many users per IP.
    Mobile,
}

impl fmt::Display for IpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IpClass::Residential => "residential",
            IpClass::Datacenter => "datacenter",
            IpClass::Mobile => "mobile",
        };
        f.write_str(s)
    }
}

/// A contiguous, half-open address range `[start, start + len)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IpRange {
    start: IpAddress,
    len: u32,
}

impl IpRange {
    /// Creates a range of `len` addresses starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if the range would wrap past the end of the address space or
    /// `len` is zero.
    pub fn new(start: IpAddress, len: u32) -> Self {
        assert!(len > 0, "ip range must be non-empty");
        assert!(
            start.0.checked_add(len - 1).is_some(),
            "ip range wraps the address space"
        );
        IpRange { start, len }
    }

    /// The first address in the range.
    pub const fn start(self) -> IpAddress {
        self.start
    }

    /// Number of addresses covered.
    pub const fn len(self) -> u32 {
        self.len
    }

    /// `false` always — ranges are non-empty by construction — but offered
    /// for API symmetry with collection types.
    pub const fn is_empty(self) -> bool {
        false
    }

    /// `true` if `ip` falls inside the range.
    pub const fn contains(self, ip: IpAddress) -> bool {
        ip.0 >= self.start.0 && (ip.0 - self.start.0) < self.len
    }

    /// The address at `offset` from the start.
    ///
    /// Returns `None` if `offset` is outside the range.
    pub const fn nth(self, offset: u32) -> Option<IpAddress> {
        if offset < self.len {
            Some(IpAddress(self.start.0 + offset))
        } else {
            None
        }
    }

    /// `true` if `self` and `other` share any address.
    pub const fn overlaps(self, other: IpRange) -> bool {
        self.start.0 < other.start.0 + other.len && other.start.0 < self.start.0 + self.len
    }
}

impl fmt::Display for IpRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}", self.start, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn octet_roundtrip_and_display() {
        let ip = IpAddress::from_octets(10, 0, 0, 255);
        assert_eq!(ip.to_string(), "10.0.0.255");
        assert_eq!(ip.as_u32(), 0x0A0000FF);
    }

    #[test]
    fn subnet_masks() {
        let ip = IpAddress::from_octets(203, 0, 113, 77);
        assert_eq!(ip.subnet24(), IpAddress::from_octets(203, 0, 113, 0));
        assert_eq!(ip.subnet16(), IpAddress::from_octets(203, 0, 0, 0));
    }

    #[test]
    fn range_contains_and_nth() {
        let r = IpRange::new(IpAddress::from_octets(10, 0, 0, 0), 256);
        assert!(r.contains(IpAddress::from_octets(10, 0, 0, 0)));
        assert!(r.contains(IpAddress::from_octets(10, 0, 0, 255)));
        assert!(!r.contains(IpAddress::from_octets(10, 0, 1, 0)));
        assert_eq!(r.nth(255), Some(IpAddress::from_octets(10, 0, 0, 255)));
        assert_eq!(r.nth(256), None);
    }

    #[test]
    fn overlap_detection() {
        let a = IpRange::new(IpAddress(100), 50);
        let b = IpRange::new(IpAddress(149), 10);
        let c = IpRange::new(IpAddress(150), 10);
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c));
        assert!(b.overlaps(a));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_rejected() {
        IpRange::new(IpAddress(0), 0);
    }

    #[test]
    #[should_panic(expected = "wraps")]
    fn wrapping_range_rejected() {
        IpRange::new(IpAddress(u32::MAX), 2);
    }

    proptest! {
        /// nth() stays inside the range and contains() agrees.
        #[test]
        fn prop_nth_in_range(start in 0u32..u32::MAX / 2, len in 1u32..10_000, off in 0u32..10_000) {
            let r = IpRange::new(IpAddress(start), len);
            match r.nth(off) {
                Some(ip) => prop_assert!(r.contains(ip)),
                None => prop_assert!(off >= len),
            }
        }

        /// A range always overlaps itself and contains its own start.
        #[test]
        fn prop_self_overlap(start in 0u32..u32::MAX / 2, len in 1u32..1_000_000) {
            let r = IpRange::new(IpAddress(start), len);
            prop_assert!(r.overlaps(r));
            prop_assert!(r.contains(r.start()));
        }
    }
}
