//! Deterministic geolocation database.
//!
//! Real GeoIP feeds map address blocks to countries; we synthesize an
//! equivalent allocation: every modelled country owns residential, mobile,
//! and datacenter blocks laid out deterministically, so lookups are exact and
//! runs are reproducible. The country set covers the paper's Table I top-10
//! plus enough others to exercise the "42 different countries" breadth of the
//! §IV-C SMS-pumping case study.

use crate::ip::{IpAddress, IpClass, IpRange};
use fg_core::ids::CountryCode;
use rand::Rng;

/// Country codes built into [`GeoDatabase::default_world`], Table I countries
/// first (Uzbekistan, Iran, Kyrgyzstan, Jordan, Nigeria, Cambodia, Singapore,
/// United Kingdom, China, Thailand).
pub const WORLD_COUNTRIES: [&str; 48] = [
    "UZ", "IR", "KG", "JO", "NG", "KH", "SG", "GB", "CN", "TH", // Table I top-10
    "US", "FR", "DE", "ES", "IT", "BR", "IN", "ID", "PK", "BD", //
    "RU", "JP", "KR", "VN", "PH", "MY", "TR", "EG", "SA", "AE", //
    "MX", "AR", "CO", "CL", "PE", "ZA", "KE", "GH", "MA", "DZ", //
    "PL", "NL", "BE", "SE", "NO", "PT", "GR", "CA",
];

/// One allocated block: a range, its owner country, and its egress class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Allocation {
    range: IpRange,
    country: CountryCode,
    class: IpClass,
}

/// An exact, deterministic block → (country, class) database.
#[derive(Clone, Debug)]
pub struct GeoDatabase {
    // Sorted by range start for binary-search lookup.
    allocations: Vec<Allocation>,
    countries: Vec<CountryCode>,
}

/// Addresses per residential block in the default world.
const RESIDENTIAL_BLOCK: u32 = 1 << 16;
/// Addresses per mobile block in the default world.
const MOBILE_BLOCK: u32 = 1 << 14;
/// Addresses per datacenter block in the default world.
const DATACENTER_BLOCK: u32 = 1 << 12;

impl GeoDatabase {
    /// Builds the default world: every [`WORLD_COUNTRIES`] entry receives one
    /// residential, one mobile, and one datacenter block, packed
    /// contiguously from `1.0.0.0` upward.
    pub fn default_world() -> Self {
        let mut allocations = Vec::new();
        let mut countries = Vec::new();
        let mut cursor: u32 = 1 << 24; // start at 1.0.0.0
        for code in WORLD_COUNTRIES {
            let country = CountryCode::new(code);
            countries.push(country);
            for (class, len) in [
                (IpClass::Residential, RESIDENTIAL_BLOCK),
                (IpClass::Mobile, MOBILE_BLOCK),
                (IpClass::Datacenter, DATACENTER_BLOCK),
            ] {
                allocations.push(Allocation {
                    range: IpRange::new(IpAddress(cursor), len),
                    country,
                    class,
                });
                cursor += len;
            }
        }
        GeoDatabase {
            allocations,
            countries,
        }
    }

    fn lookup(&self, ip: IpAddress) -> Option<&Allocation> {
        // partition_point: first allocation whose start is > ip, minus one.
        let idx = self.allocations.partition_point(|a| a.range.start() <= ip);
        let candidate = self.allocations.get(idx.checked_sub(1)?)?;
        candidate.range.contains(ip).then_some(candidate)
    }

    /// The country owning `ip`, if allocated.
    pub fn country_of(&self, ip: IpAddress) -> Option<CountryCode> {
        self.lookup(ip).map(|a| a.country)
    }

    /// The egress class of `ip`, if allocated.
    pub fn class_of(&self, ip: IpAddress) -> Option<IpClass> {
        self.lookup(ip).map(|a| a.class)
    }

    /// Every modelled country, Table I countries first.
    pub fn countries(&self) -> &[CountryCode] {
        &self.countries
    }

    /// The blocks a country owns for a given class.
    pub fn ranges(&self, country: CountryCode, class: IpClass) -> Vec<IpRange> {
        self.allocations
            .iter()
            .filter(|a| a.country == country && a.class == class)
            .map(|a| a.range)
            .collect()
    }

    /// Draws a uniform address from a country's blocks of the given class.
    ///
    /// Returns `None` for unknown countries.
    pub fn sample_ip<R: Rng + ?Sized>(
        &self,
        country: CountryCode,
        class: IpClass,
        rng: &mut R,
    ) -> Option<IpAddress> {
        let ranges = self.ranges(country, class);
        if ranges.is_empty() {
            return None;
        }
        let total: u64 = ranges.iter().map(|r| u64::from(r.len())).sum();
        let mut pick = rng.gen_range(0..total);
        for r in ranges {
            if pick < u64::from(r.len()) {
                return r.nth(pick as u32);
            }
            pick -= u64::from(r.len());
        }
        unreachable!("pick was drawn within the total block size")
    }
}

impl Default for GeoDatabase {
    fn default() -> Self {
        GeoDatabase::default_world()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn world_has_48_countries_table1_first() {
        let geo = GeoDatabase::default_world();
        assert_eq!(geo.countries().len(), 48);
        assert_eq!(geo.countries()[0], CountryCode::new("UZ"));
        assert_eq!(geo.countries()[9], CountryCode::new("TH"));
    }

    #[test]
    fn lookup_roundtrip_for_all_classes() {
        let geo = GeoDatabase::default_world();
        let mut rng = StdRng::seed_from_u64(1);
        for &code in &["UZ", "GB", "CA"] {
            let country = CountryCode::new(code);
            for class in [IpClass::Residential, IpClass::Mobile, IpClass::Datacenter] {
                let ip = geo.sample_ip(country, class, &mut rng).unwrap();
                assert_eq!(geo.country_of(ip), Some(country), "{code} {class}");
                assert_eq!(geo.class_of(ip), Some(class), "{code} {class}");
            }
        }
    }

    #[test]
    fn unallocated_space_is_none() {
        let geo = GeoDatabase::default_world();
        assert_eq!(geo.country_of(IpAddress::from_octets(0, 0, 0, 1)), None);
        assert_eq!(geo.country_of(IpAddress::from_octets(250, 0, 0, 1)), None);
        assert_eq!(geo.class_of(IpAddress::from_octets(250, 0, 0, 1)), None);
    }

    #[test]
    fn sample_unknown_country_is_none() {
        let geo = GeoDatabase::default_world();
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(
            geo.sample_ip(CountryCode::new("XX"), IpClass::Residential, &mut rng),
            None
        );
    }

    #[test]
    fn allocations_do_not_overlap() {
        let geo = GeoDatabase::default_world();
        for pair in geo.allocations.windows(2) {
            assert!(!pair[0].range.overlaps(pair[1].range));
            assert!(pair[0].range.start() < pair[1].range.start());
        }
    }

    #[test]
    fn boundary_addresses_resolve_to_their_own_block() {
        let geo = GeoDatabase::default_world();
        for a in &geo.allocations {
            assert_eq!(geo.country_of(a.range.start()), Some(a.country));
            let last = a.range.nth(a.range.len() - 1).unwrap();
            assert_eq!(geo.country_of(last), Some(a.country));
            assert_eq!(geo.class_of(last), Some(a.class));
        }
    }

    #[test]
    fn residential_blocks_are_larger_than_datacenter() {
        let geo = GeoDatabase::default_world();
        let uz = CountryCode::new("UZ");
        let res: u64 = geo
            .ranges(uz, IpClass::Residential)
            .iter()
            .map(|r| u64::from(r.len()))
            .sum();
        let dc: u64 = geo
            .ranges(uz, IpClass::Datacenter)
            .iter()
            .map(|r| u64::from(r.len()))
            .sum();
        assert!(res > dc);
    }
}
