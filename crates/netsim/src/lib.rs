//! # fg-netsim
//!
//! Network substrate for the FeatureGuard workspace.
//!
//! The attacks the paper studies hide behind **residential proxies**: §IV-C's
//! SMS pumpers "leveraged residential proxies to rotate their bots' IP
//! addresses *while matching the countries associated with the mobile
//! numbers*", and §IV-B's manual spinners used "a broad range of IP addresses
//! to hide their location". Defenders, in turn, score IP reputation and block
//! ranges — which is cheap against datacenter egress and nearly useless
//! against residential pools. This crate models that terrain:
//!
//! * [`ip`] — a compact IPv4-style address space with [`IpClass`]
//!   (residential / datacenter / mobile) and range arithmetic.
//! * [`geo`] — deterministic address-block → country allocation and lookup.
//! * [`proxy`] — per-country residential proxy pools with finite exits,
//!   churn, rotation, and per-request pricing (the attacker's cost driver in
//!   the §V economics argument).
//! * [`reputation`] — the defender's IP reputation ledger with score decay,
//!   block thresholds, and /24-style subnet aggregation.
//!
//! # Example
//!
//! ```
//! use fg_netsim::geo::GeoDatabase;
//! use fg_netsim::proxy::ProxyPool;
//! use fg_core::ids::CountryCode;
//! use fg_core::time::SimTime;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let geo = GeoDatabase::default_world();
//! let mut pool = ProxyPool::residential(&geo, 64);
//! let mut rng = StdRng::seed_from_u64(1);
//! let uz = CountryCode::new("UZ");
//! let exit = pool.rent(uz, SimTime::ZERO, &mut rng).expect("UZ has exits");
//! assert_eq!(geo.country_of(exit.ip()), Some(uz));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod geo;
pub mod ip;
pub mod proxy;
pub mod reputation;

pub use geo::GeoDatabase;
pub use ip::{IpAddress, IpClass, IpRange};
pub use proxy::{ProxyLease, ProxyPool};
pub use reputation::ReputationLedger;
