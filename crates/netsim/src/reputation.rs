//! Defender-side IP reputation ledger.
//!
//! The classic mitigation loop in §IV-A — "we introduced blocking measures
//! based on fingerprinting patterns … attackers rotated" — applies equally to
//! IP addresses. [`ReputationLedger`] accumulates per-IP abuse evidence with
//! exponential time decay, supports /24 subnet aggregation (to catch proxy
//! pools concentrated in a block), and answers block decisions. Its
//! fundamental limitation against residential pools — each exit is used a
//! handful of times, then churned — is precisely what the experiments show.

use crate::ip::IpAddress;
use fg_core::hash::FxHashMap;
use fg_core::time::{SimDuration, SimTime};

/// Per-address abuse evidence with exponential decay.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Evidence {
    score: f64,
    updated: SimTime,
}

/// Accumulates abuse reports per IP, decays them over time, and decides
/// blocks at address and /24 granularity.
///
/// # Example
///
/// ```
/// use fg_netsim::{ReputationLedger, ip::IpAddress};
/// use fg_core::time::{SimDuration, SimTime};
///
/// let mut ledger = ReputationLedger::new(SimDuration::from_hours(12), 3.0, 10.0);
/// let ip = IpAddress::from_octets(10, 0, 0, 1);
/// ledger.report(ip, 2.0, SimTime::ZERO);
/// assert!(!ledger.is_blocked(ip, SimTime::ZERO));
/// ledger.report(ip, 2.0, SimTime::from_mins(5));
/// assert!(ledger.is_blocked(ip, SimTime::from_mins(5)));
/// ```
#[derive(Clone, Debug)]
pub struct ReputationLedger {
    // Fx-hashed: consulted once per request on the detection path.
    evidence: FxHashMap<IpAddress, Evidence>,
    // Exact per-/24 aggregates: exponential decay is linear, so maintaining
    // the sum with the same decay-then-add update yields exactly
    // Σ decayed(individual) at O(1) per query instead of a full scan.
    subnet_evidence: FxHashMap<IpAddress, Evidence>,
    half_life: SimDuration,
    ip_threshold: f64,
    subnet_threshold: f64,
}

impl ReputationLedger {
    /// Creates a ledger.
    ///
    /// * `half_life` — evidence halves every such interval.
    /// * `ip_threshold` — decayed score at which a single IP is blocked.
    /// * `subnet_threshold` — decayed aggregate score at which a whole /24
    ///   is blocked.
    ///
    /// # Panics
    ///
    /// Panics if `half_life` is not positive or thresholds are not positive.
    pub fn new(half_life: SimDuration, ip_threshold: f64, subnet_threshold: f64) -> Self {
        assert!(half_life.as_millis() > 0, "half life must be positive");
        assert!(
            ip_threshold > 0.0 && subnet_threshold > 0.0,
            "thresholds must be positive"
        );
        ReputationLedger {
            evidence: FxHashMap::default(),
            subnet_evidence: FxHashMap::default(),
            half_life,
            ip_threshold,
            subnet_threshold,
        }
    }

    fn decayed(&self, e: Evidence, now: SimTime) -> f64 {
        let elapsed = now.saturating_since(e.updated).as_millis() as f64;
        let half_life = self.half_life.as_millis() as f64;
        e.score * 0.5_f64.powf(elapsed / half_life)
    }

    /// Records `weight` units of abuse evidence against `ip` at `now`.
    pub fn report(&mut self, ip: IpAddress, weight: f64, now: SimTime) {
        let half_life = self.half_life.as_millis() as f64;
        let bump = |map: &mut FxHashMap<IpAddress, Evidence>, key: IpAddress| {
            let entry = map.entry(key).or_insert(Evidence {
                score: 0.0,
                updated: now,
            });
            let elapsed = now.saturating_since(entry.updated).as_millis() as f64;
            entry.score = entry.score * 0.5_f64.powf(elapsed / half_life) + weight.max(0.0);
            entry.updated = now;
        };
        bump(&mut self.evidence, ip);
        bump(&mut self.subnet_evidence, ip.subnet24());
    }

    /// The decayed abuse score of `ip` at `now`.
    pub fn score(&self, ip: IpAddress, now: SimTime) -> f64 {
        self.evidence
            .get(&ip)
            .map_or(0.0, |&e| self.decayed(e, now))
    }

    /// The decayed aggregate score of the /24 containing `ip` at `now`.
    pub fn subnet_score(&self, ip: IpAddress, now: SimTime) -> f64 {
        self.subnet_evidence
            .get(&ip.subnet24())
            .map_or(0.0, |&e| self.decayed(e, now))
    }

    /// `true` if `ip` is individually over threshold at `now`.
    pub fn is_blocked(&self, ip: IpAddress, now: SimTime) -> bool {
        self.score(ip, now) >= self.ip_threshold
    }

    /// `true` if `ip`'s whole /24 is over the aggregate threshold at `now`.
    pub fn is_subnet_blocked(&self, ip: IpAddress, now: SimTime) -> bool {
        self.subnet_score(ip, now) >= self.subnet_threshold
    }

    /// `true` if either the address or its /24 is blocked.
    pub fn is_denied(&self, ip: IpAddress, now: SimTime) -> bool {
        self.is_blocked(ip, now) || self.is_subnet_blocked(ip, now)
    }

    /// Number of addresses carrying any evidence.
    pub fn tracked(&self) -> usize {
        self.evidence.len()
    }

    /// Removes per-IP entries whose decayed score at `now` fell below
    /// `floor` (subnet aggregates are kept — they remain exact). Returns how
    /// many were purged.
    pub fn purge_below(&mut self, floor: f64, now: SimTime) -> usize {
        let before = self.evidence.len();
        let half_life = self.half_life.as_millis() as f64;
        self.evidence.retain(|_, e| {
            let elapsed = now.saturating_since(e.updated).as_millis() as f64;
            e.score * 0.5_f64.powf(elapsed / half_life) >= floor
        });
        before - self.evidence.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> ReputationLedger {
        ReputationLedger::new(SimDuration::from_hours(12), 3.0, 10.0)
    }

    #[test]
    fn evidence_accumulates_to_block() {
        let mut l = ledger();
        let ip = IpAddress::from_octets(10, 1, 1, 1);
        l.report(ip, 1.0, SimTime::ZERO);
        l.report(ip, 1.0, SimTime::from_mins(1));
        assert!(!l.is_blocked(ip, SimTime::from_mins(1)));
        l.report(ip, 1.5, SimTime::from_mins(2));
        assert!(l.is_blocked(ip, SimTime::from_mins(2)));
    }

    #[test]
    fn evidence_decays_with_half_life() {
        let mut l = ledger();
        let ip = IpAddress::from_octets(10, 1, 1, 2);
        l.report(ip, 4.0, SimTime::ZERO);
        assert!(l.is_blocked(ip, SimTime::ZERO));
        let after_one_half_life = SimTime::ZERO + SimDuration::from_hours(12);
        assert!((l.score(ip, after_one_half_life) - 2.0).abs() < 1e-9);
        assert!(!l.is_blocked(ip, after_one_half_life));
    }

    #[test]
    fn subnet_aggregation_catches_spread_abuse() {
        let mut l = ledger();
        // 11 different exits in one /24, each individually under threshold.
        for host in 1..=11u8 {
            let ip = IpAddress::from_octets(10, 2, 3, host);
            l.report(ip, 1.0, SimTime::ZERO);
            assert!(!l.is_blocked(ip, SimTime::ZERO));
        }
        let probe = IpAddress::from_octets(10, 2, 3, 200);
        assert!(l.is_subnet_blocked(probe, SimTime::ZERO));
        assert!(l.is_denied(probe, SimTime::ZERO));
        // A different /24 is unaffected.
        assert!(!l.is_subnet_blocked(IpAddress::from_octets(10, 2, 4, 1), SimTime::ZERO));
    }

    #[test]
    fn negative_weights_ignored() {
        let mut l = ledger();
        let ip = IpAddress::from_octets(10, 9, 9, 9);
        l.report(ip, -5.0, SimTime::ZERO);
        assert_eq!(l.score(ip, SimTime::ZERO), 0.0);
    }

    #[test]
    fn purge_removes_stale_entries() {
        let mut l = ledger();
        let a = IpAddress::from_octets(10, 0, 0, 1);
        let b = IpAddress::from_octets(10, 0, 0, 2);
        l.report(a, 0.1, SimTime::ZERO);
        l.report(b, 8.0, SimTime::ZERO);
        let purged = l.purge_below(0.5, SimTime::ZERO + SimDuration::from_hours(24));
        assert_eq!(purged, 1);
        assert_eq!(l.tracked(), 1);
        assert!(l.score(b, SimTime::from_hours(24)) > 0.5);
    }

    #[test]
    fn report_compounds_decay_correctly() {
        // Report 4 at t0; at one half-life report 4 more: score should be 6,
        // not 8 (the first report must decay before compounding).
        let mut l = ledger();
        let ip = IpAddress::from_octets(10, 5, 5, 5);
        l.report(ip, 4.0, SimTime::ZERO);
        let t1 = SimTime::ZERO + SimDuration::from_hours(12);
        l.report(ip, 4.0, t1);
        assert!((l.score(ip, t1) - 6.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "half life")]
    fn zero_half_life_rejected() {
        ReputationLedger::new(SimDuration::ZERO, 1.0, 1.0);
    }
}
