//! Defender-side IP reputation ledger.
//!
//! The classic mitigation loop in §IV-A — "we introduced blocking measures
//! based on fingerprinting patterns … attackers rotated" — applies equally to
//! IP addresses. [`ReputationLedger`] accumulates per-IP abuse evidence with
//! exponential time decay, supports /24 subnet aggregation (to catch proxy
//! pools concentrated in a block), and answers block decisions. Its
//! fundamental limitation against residential pools — each exit is used a
//! handful of times, then churned — is precisely what the experiments show.

use crate::ip::IpAddress;
use fg_core::hash::FxHashMap;
use fg_core::shard::ShardedStore;
use fg_core::time::{SimDuration, SimTime};

/// Per-address abuse evidence with exponential decay.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Evidence {
    score: f64,
    updated: SimTime,
}

/// One hash partition of the ledger: a flat evidence map. Per-IP shards key
/// by address; subnet shards key by the /24 network address, so a whole /24
/// lives in one shard and its aggregate stays exact.
type EvidenceShard = FxHashMap<IpAddress, Evidence>;

/// Accumulates abuse reports per IP, decays them over time, and decides
/// blocks at address and /24 granularity.
///
/// Internally hash-partitioned into shards (1 by default, bit-identical to
/// flat maps): per-IP evidence by address, /24 aggregates by subnet key —
/// separate partitions so subnet sums never straddle shards.
///
/// Scores below the *purge floor* (the largest floor ever passed to
/// [`ReputationLedger::purge_below`]) read as exactly zero, and reports
/// compound from that floored prior. This quantization is what makes purging
/// lossless: an entry whose decayed score fell under the floor behaves
/// identically to an absent entry — same score, same block decisions, same
/// compounding on the next report — so dropping it from the map cannot treat
/// a returning IP more generously *or* more harshly than one never purged.
///
/// # Example
///
/// ```
/// use fg_netsim::{ReputationLedger, ip::IpAddress};
/// use fg_core::time::{SimDuration, SimTime};
///
/// let mut ledger = ReputationLedger::new(SimDuration::from_hours(12), 3.0, 10.0);
/// let ip = IpAddress::from_octets(10, 0, 0, 1);
/// ledger.report(ip, 2.0, SimTime::ZERO);
/// assert!(!ledger.is_blocked(ip, SimTime::ZERO));
/// ledger.report(ip, 2.0, SimTime::from_mins(5));
/// assert!(ledger.is_blocked(ip, SimTime::from_mins(5)));
/// ```
#[derive(Clone, Debug)]
pub struct ReputationLedger {
    // Fx-hashed: consulted once per request on the detection path.
    evidence: ShardedStore<IpAddress, EvidenceShard>,
    // Exact per-/24 aggregates: exponential decay is linear, so maintaining
    // the sum with the same decay-then-add update yields exactly
    // Σ decayed(individual) at O(1) per query instead of a full scan.
    subnet_evidence: ShardedStore<IpAddress, EvidenceShard>,
    half_life: SimDuration,
    ip_threshold: f64,
    subnet_threshold: f64,
    // Largest floor ever purged at; per-IP scores under it read as zero.
    score_floor: f64,
}

impl ReputationLedger {
    /// Creates a single-shard ledger.
    ///
    /// * `half_life` — evidence halves every such interval.
    /// * `ip_threshold` — decayed score at which a single IP is blocked.
    /// * `subnet_threshold` — decayed aggregate score at which a whole /24
    ///   is blocked.
    ///
    /// # Panics
    ///
    /// Panics if `half_life` is not positive or thresholds are not positive.
    pub fn new(half_life: SimDuration, ip_threshold: f64, subnet_threshold: f64) -> Self {
        Self::with_shards(half_life, ip_threshold, subnet_threshold, 1)
    }

    /// Creates a ledger hash-partitioned into `shards` partitions (rounded
    /// up to a power of two).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ReputationLedger::new`].
    pub fn with_shards(
        half_life: SimDuration,
        ip_threshold: f64,
        subnet_threshold: f64,
        shards: usize,
    ) -> Self {
        assert!(half_life.as_millis() > 0, "half life must be positive");
        assert!(
            ip_threshold > 0.0 && subnet_threshold > 0.0,
            "thresholds must be positive"
        );
        ReputationLedger {
            evidence: ShardedStore::new(shards, |_| EvidenceShard::default()),
            subnet_evidence: ShardedStore::new(shards, |_| EvidenceShard::default()),
            half_life,
            ip_threshold,
            subnet_threshold,
            score_floor: 0.0,
        }
    }

    fn decayed(&self, e: Evidence, now: SimTime) -> f64 {
        let elapsed = now.saturating_since(e.updated).as_millis() as f64;
        let half_life = self.half_life.as_millis() as f64;
        e.score * 0.5_f64.powf(elapsed / half_life)
    }

    /// Per-IP scores are quantized at the purge floor so purged and
    /// merely-sub-floor entries are indistinguishable.
    fn quantize(&self, score: f64) -> f64 {
        if score < self.score_floor {
            0.0
        } else {
            score
        }
    }

    /// Records `weight` units of abuse evidence against `ip` at `now`.
    pub fn report(&mut self, ip: IpAddress, weight: f64, now: SimTime) {
        let half_life = self.half_life.as_millis() as f64;
        let floor = self.score_floor;
        let bump = |map: &mut EvidenceShard, key: IpAddress, quantize: bool| {
            let entry = map.entry(key).or_insert(Evidence {
                score: 0.0,
                updated: now,
            });
            let elapsed = now.saturating_since(entry.updated).as_millis() as f64;
            let mut prior = entry.score * 0.5_f64.powf(elapsed / half_life);
            // Compound from the floored prior so a sub-floor residual
            // contributes exactly what a purged (absent) entry would: zero.
            if quantize && prior < floor {
                prior = 0.0;
            }
            entry.score = prior + weight.max(0.0);
            entry.updated = now;
        };
        bump(self.evidence.shard_mut(&ip), ip, true);
        let subnet = ip.subnet24();
        bump(self.subnet_evidence.shard_mut(&subnet), subnet, false);
    }

    /// The decayed abuse score of `ip` at `now` (zero below the purge
    /// floor).
    pub fn score(&self, ip: IpAddress, now: SimTime) -> f64 {
        let raw = self
            .evidence
            .shard(&ip)
            .get(&ip)
            .map_or(0.0, |&e| self.decayed(e, now));
        self.quantize(raw)
    }

    /// The decayed aggregate score of the /24 containing `ip` at `now`.
    /// Subnet aggregates stay exact — the purge floor applies per IP only.
    pub fn subnet_score(&self, ip: IpAddress, now: SimTime) -> f64 {
        let subnet = ip.subnet24();
        self.subnet_evidence
            .shard(&subnet)
            .get(&subnet)
            .map_or(0.0, |&e| self.decayed(e, now))
    }

    /// `true` if `ip` is individually over threshold at `now`.
    pub fn is_blocked(&self, ip: IpAddress, now: SimTime) -> bool {
        self.score(ip, now) >= self.ip_threshold
    }

    /// `true` if `ip`'s whole /24 is over the aggregate threshold at `now`.
    pub fn is_subnet_blocked(&self, ip: IpAddress, now: SimTime) -> bool {
        self.subnet_score(ip, now) >= self.subnet_threshold
    }

    /// `true` if either the address or its /24 is blocked.
    pub fn is_denied(&self, ip: IpAddress, now: SimTime) -> bool {
        self.is_blocked(ip, now) || self.is_subnet_blocked(ip, now)
    }

    /// Number of addresses carrying any evidence, summed over shards.
    pub fn tracked(&self) -> usize {
        self.evidence.fold(0, |acc, s| acc + s.len())
    }

    /// Number of shards (1 unless built via
    /// [`ReputationLedger::with_shards`]).
    pub fn shard_count(&self) -> usize {
        self.evidence.shard_count()
    }

    /// Removes per-IP entries whose decayed score at `now` fell below
    /// `floor` (subnet aggregates are kept — they remain exact), striping
    /// the scan shard by shard. Returns how many were purged.
    ///
    /// Raises the ledger's purge floor to `floor`: from here on, per-IP
    /// scores under the floor read as zero and reports compound from zero,
    /// which is exactly the state a purged entry leaves behind — so purging
    /// never changes any score, block decision, or future compounding
    /// relative to a ledger that kept every entry (see the eviction
    /// losslessness proptest below).
    pub fn purge_below(&mut self, floor: f64, now: SimTime) -> usize {
        self.score_floor = self.score_floor.max(floor);
        let half_life = self.half_life.as_millis() as f64;
        let mut purged = 0;
        // fg-analyze: allow(shard-discipline): full-sweep maintenance — decay-and-purge walks every shard
        for shard in self.evidence.shards_mut() {
            let before = shard.len();
            shard.retain(|_, e| {
                let elapsed = now.saturating_since(e.updated).as_millis() as f64;
                e.score * 0.5_f64.powf(elapsed / half_life) >= floor
            });
            purged += before - shard.len();
        }
        purged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ledger() -> ReputationLedger {
        ReputationLedger::new(SimDuration::from_hours(12), 3.0, 10.0)
    }

    #[test]
    fn evidence_accumulates_to_block() {
        let mut l = ledger();
        let ip = IpAddress::from_octets(10, 1, 1, 1);
        l.report(ip, 1.0, SimTime::ZERO);
        l.report(ip, 1.0, SimTime::from_mins(1));
        assert!(!l.is_blocked(ip, SimTime::from_mins(1)));
        l.report(ip, 1.5, SimTime::from_mins(2));
        assert!(l.is_blocked(ip, SimTime::from_mins(2)));
    }

    #[test]
    fn evidence_decays_with_half_life() {
        let mut l = ledger();
        let ip = IpAddress::from_octets(10, 1, 1, 2);
        l.report(ip, 4.0, SimTime::ZERO);
        assert!(l.is_blocked(ip, SimTime::ZERO));
        let after_one_half_life = SimTime::ZERO + SimDuration::from_hours(12);
        assert!((l.score(ip, after_one_half_life) - 2.0).abs() < 1e-9);
        assert!(!l.is_blocked(ip, after_one_half_life));
    }

    #[test]
    fn subnet_aggregation_catches_spread_abuse() {
        let mut l = ledger();
        // 11 different exits in one /24, each individually under threshold.
        for host in 1..=11u8 {
            let ip = IpAddress::from_octets(10, 2, 3, host);
            l.report(ip, 1.0, SimTime::ZERO);
            assert!(!l.is_blocked(ip, SimTime::ZERO));
        }
        let probe = IpAddress::from_octets(10, 2, 3, 200);
        assert!(l.is_subnet_blocked(probe, SimTime::ZERO));
        assert!(l.is_denied(probe, SimTime::ZERO));
        // A different /24 is unaffected.
        assert!(!l.is_subnet_blocked(IpAddress::from_octets(10, 2, 4, 1), SimTime::ZERO));
    }

    #[test]
    fn negative_weights_ignored() {
        let mut l = ledger();
        let ip = IpAddress::from_octets(10, 9, 9, 9);
        l.report(ip, -5.0, SimTime::ZERO);
        assert_eq!(l.score(ip, SimTime::ZERO), 0.0);
    }

    #[test]
    fn purge_removes_stale_entries() {
        let mut l = ledger();
        let a = IpAddress::from_octets(10, 0, 0, 1);
        let b = IpAddress::from_octets(10, 0, 0, 2);
        l.report(a, 0.1, SimTime::ZERO);
        l.report(b, 8.0, SimTime::ZERO);
        let purged = l.purge_below(0.5, SimTime::ZERO + SimDuration::from_hours(24));
        assert_eq!(purged, 1);
        assert_eq!(l.tracked(), 1);
        assert!(l.score(b, SimTime::from_hours(24)) > 0.5);
    }

    #[test]
    fn report_compounds_decay_correctly() {
        // Report 4 at t0; at one half-life report 4 more: score should be 6,
        // not 8 (the first report must decay before compounding).
        let mut l = ledger();
        let ip = IpAddress::from_octets(10, 5, 5, 5);
        l.report(ip, 4.0, SimTime::ZERO);
        let t1 = SimTime::ZERO + SimDuration::from_hours(12);
        l.report(ip, 4.0, t1);
        assert!((l.score(ip, t1) - 6.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "half life")]
    fn zero_half_life_rejected() {
        ReputationLedger::new(SimDuration::ZERO, 1.0, 1.0);
    }

    #[test]
    fn sharded_ledger_matches_single_shard() {
        let mut sharded = ReputationLedger::with_shards(SimDuration::from_hours(12), 3.0, 10.0, 4);
        let mut flat = ledger();
        assert_eq!(sharded.shard_count(), 4);
        for step in 0..200u64 {
            let now = SimTime::from_mins(step * 7);
            let ip =
                IpAddress::from_octets(10, (step % 3) as u8, (step % 5) as u8, (step % 23) as u8);
            sharded.report(ip, 0.8, now);
            flat.report(ip, 0.8, now);
            assert_eq!(
                sharded.score(ip, now).to_bits(),
                flat.score(ip, now).to_bits()
            );
            assert_eq!(
                sharded.subnet_score(ip, now).to_bits(),
                flat.subnet_score(ip, now).to_bits()
            );
            assert_eq!(sharded.is_denied(ip, now), flat.is_denied(ip, now));
        }
        assert_eq!(sharded.tracked(), flat.tracked());
    }

    #[test]
    fn purged_ip_is_not_treated_more_generously_than_a_kept_one() {
        // The PR-2 eviction-losslessness property, extended to reputation:
        // an IP whose stale entry was purged must score exactly like an IP
        // whose entry was kept, once both report again. The purge floor
        // guarantees this by flooring sub-floor residuals to zero on both
        // paths.
        let mut purged = ledger();
        let mut kept = ledger();
        // Prime the floor on `kept` without dropping anything: an empty
        // ledger has nothing to purge, but the floor still latches.
        kept.purge_below(0.5, SimTime::ZERO);
        let ip = IpAddress::from_octets(10, 7, 7, 7);
        purged.report(ip, 2.0, SimTime::ZERO);
        kept.report(ip, 2.0, SimTime::ZERO);
        // Two half-lives later the residual (0.5) sits exactly at the
        // floor; three later (0.25) it is below.
        let stale = SimTime::ZERO + SimDuration::from_hours(36);
        assert_eq!(purged.purge_below(0.5, stale), 1);
        assert_eq!(purged.tracked(), 0);
        assert_eq!(kept.tracked(), 1);
        // Both read zero now…
        assert_eq!(
            purged.score(ip, stale).to_bits(),
            kept.score(ip, stale).to_bits()
        );
        // …and both compound the next report from zero, not from the
        // residual the purge threw away.
        let back = stale + SimDuration::from_hours(1);
        purged.report(ip, 1.0, back);
        kept.report(ip, 1.0, back);
        assert_eq!(
            purged.score(ip, back).to_bits(),
            kept.score(ip, back).to_bits()
        );
        assert_eq!(purged.is_denied(ip, back), kept.is_denied(ip, back));
    }

    proptest! {
        /// Purging never changes any observable score or block decision, no
        /// matter where purge ticks land in the report stream or how many
        /// shards the ledger has — the reputation-store analogue of the
        /// limiter's eviction-losslessness property.
        #[test]
        fn prop_purge_preserves_outcomes(
            shards in 1usize..9,
            ops in proptest::collection::vec(
                (0u8..8, 0u8..4, 0.0f64..3.0, 0u64..3_000, any::<bool>()),
                1..150,
            ),
        ) {
            const FLOOR: f64 = 0.5;
            let half_life = SimDuration::from_hours(12);
            let mut purging = ReputationLedger::with_shards(half_life, 3.0, 10.0, shards);
            let mut reference = ReputationLedger::new(half_life, 3.0, 10.0);
            // Latch the same floor on both while empty (nothing is dropped):
            // the property under test is that *purging entries* changes
            // nothing, given the same configured floor.
            purging.purge_below(FLOOR, SimTime::ZERO);
            reference.purge_below(FLOOR, SimTime::ZERO);
            let mut now = SimTime::ZERO;
            for (host, subnet, weight, dt, purge) in ops {
                now += SimDuration::from_mins(dt as i64);
                if purge {
                    purging.purge_below(FLOOR, now);
                }
                let ip = IpAddress::from_octets(10, 0, subnet, host);
                purging.report(ip, weight, now);
                reference.report(ip, weight, now);
                prop_assert_eq!(
                    purging.score(ip, now).to_bits(),
                    reference.score(ip, now).to_bits()
                );
                prop_assert_eq!(
                    purging.subnet_score(ip, now).to_bits(),
                    reference.subnet_score(ip, now).to_bits()
                );
                prop_assert_eq!(purging.is_denied(ip, now), reference.is_denied(ip, now));
            }
            prop_assert!(purging.tracked() <= reference.tracked());
        }
    }
}
