//! The defended application façade.

use fg_behavior::api::{ApiOutcome, App, ClientRequest};
use fg_core::ids::{BookingRef, ClientId, FlightId, PhoneNumber};
use fg_core::money::Money;
use fg_core::rng::SeedFork;
use fg_core::shard::{ConcurrencyMode, ShardedStore};
use fg_core::time::{SimDuration, SimTime};
use fg_detection::engine::DetectionEngine;
use fg_detection::engine::Signal;
use fg_detection::log::{Endpoint, LogRecord, Method};
use fg_fingerprint::attributes::Fingerprint;
use fg_inventory::flight::{Availability, Flight};
use fg_inventory::passenger::Passenger;
use fg_inventory::system::ReservationSystem;
use fg_mitigation::captcha::CaptchaPolicy;
use fg_mitigation::economics::DefenderLedger;
use fg_mitigation::honeypot::Honeypot;
use fg_mitigation::policy::{Decision, PolicyConfig, PolicyEngine, RequestContext};
use fg_sentinel::{AlertPolicy, Sentinel, SentinelReport};
use fg_smsgw::gateway::Gateway;
use fg_smsgw::message::{SmsKind, SmsMessage};
use fg_telemetry::audit::{AuditRecord, SignalScore};
use fg_telemetry::metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use fg_telemetry::{RequestTrace, Telemetry};
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Application-level configuration.
#[derive(Clone, Debug)]
pub struct AppConfig {
    /// Seat-hold TTL ("30 minutes to several hours depending on the domain").
    pub hold_ttl: SimDuration,
    /// Maximum Number in Party at launch.
    pub max_nip: u32,
    /// The defensive posture.
    pub policy: PolicyConfig,
    /// CAPTCHA behaviour (used when the policy issues challenges).
    pub captcha: CaptchaPolicy,
    /// Average ticket revenue per seat, for lost-sales accounting.
    pub seat_revenue: Money,
    /// Detection verdict score above which the source IP is reported to the
    /// reputation ledger.
    pub reputation_feedback_threshold: f64,
    /// Revenue-management pricing; `None` = fixed fare (`seat_revenue`).
    pub pricing: Option<fg_inventory::pricing::DynamicPricer>,
    /// How the defence-state stores are partitioned.
    /// [`ConcurrencyMode::Deterministic`] (the default) is the single-shard
    /// experiment path; [`ConcurrencyMode::Sharded`] hash-partitions every
    /// keyed store so housekeeping stripes per shard. Replayed
    /// single-threaded, both modes produce byte-identical artifacts (see
    /// `tests/shard_independence.rs`).
    pub concurrency: ConcurrencyMode,
}

impl AppConfig {
    /// An Airline-A-style domain with the given defensive posture.
    pub fn airline(policy: PolicyConfig) -> Self {
        AppConfig {
            hold_ttl: SimDuration::from_mins(30),
            max_nip: 9,
            policy,
            captcha: CaptchaPolicy::default(),
            seat_revenue: Money::from_units(120),
            reputation_feedback_threshold: 0.8,
            pricing: None,
            concurrency: ConcurrencyMode::Deterministic,
        }
    }

    /// Returns the config with its [`ConcurrencyMode`] replaced — the
    /// experiment modules use this to thread the harness's `--shards`
    /// setting into the app without disturbing the rest of the posture.
    pub fn with_concurrency(mut self, concurrency: ConcurrencyMode) -> Self {
        self.concurrency = concurrency;
        self
    }
}

/// The defended application: reservation system + SMS gateway behind the
/// detection/mitigation pipeline.
///
/// # Example
///
/// ```
/// use fg_scenario::app::{AppConfig, DefendedApp};
/// use fg_mitigation::policy::PolicyConfig;
/// use fg_inventory::Flight;
/// use fg_core::ids::FlightId;
/// use fg_core::time::SimTime;
///
/// let mut app = DefendedApp::new(AppConfig::airline(PolicyConfig::recommended()), 42);
/// app.add_flight(Flight::new(FlightId(1), 180, SimTime::from_days(30)));
/// assert_eq!(app.reservations().flight_ids(), vec![FlightId(1)]);
/// ```
#[derive(Debug)]
pub struct DefendedApp {
    config: AppConfig,
    reservations: ReservationSystem,
    gateway: Gateway,
    detection: DetectionEngine,
    policy: PolicyEngine,
    honeypot: Honeypot,
    logs: Vec<LogRecord>,
    fingerprints_seen: ShardedStore<u64, HashMap<u64, Fingerprint>>,
    solver_spend: HashMap<ClientId, Money>,
    defender: DefenderLedger,
    captcha_rng: StdRng,
    human_abandons: u64,
    ticket_revenue: Money,
    telemetry: Arc<Telemetry>,
    metrics: AppMetrics,
    sentinel: Option<Sentinel>,
    /// Monotone per-app request counter; with the client id it derives the
    /// deterministic `trace_id` stamped on audit records and span traces.
    request_seq: u64,
    /// When recording, every gated request is appended here as a
    /// [`WireRequest`](crate::workload::WireRequest) — the replayable workload the serving layer's load
    /// generator and parity tests feed back through `/v1/decide`.
    recorder: Option<Vec<crate::workload::WireRequest>>,
}

/// The wire-visible outcome of one trip through the defence pipeline: what
/// `/v1/decide` returns and what the audit trail records. Produced by
/// [`DefendedApp::decide_request`] and, internally, by the simulator's gate —
/// both paths share one implementation, which is what makes wire/sim
/// decision parity hold by construction.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GateDecision {
    /// Deterministic trace id (`hash::trace_id(client, request_seq)`).
    pub trace_id: u64,
    /// The policy decision.
    pub decision: Decision,
    /// The reason chain, in evaluation order.
    pub reasons: Vec<String>,
    /// The detection verdict score (0.0 for sticky honeypot sessions, which
    /// never reach detection).
    pub score: f64,
    /// Scored detection signals behind `score`.
    pub signals: Vec<SignalScore>,
}

/// Pre-registered handles for everything the gate increments per request,
/// so the hot path never touches the registry mutex.
#[derive(Debug)]
struct AppMetrics {
    /// One counter per endpoint, in [`Endpoint::ALL`] order.
    requests: Vec<Counter>,
    /// One counter per signal kind, in [`Signal::KINDS`] order.
    signals: Vec<Counter>,
    honeypot_diversions: Counter,
    challenges_solved: Counter,
    challenges_failed: Counter,
    human_abandons: Counter,
    detection_score: Histogram,
    /// Number-in-Party distribution of *accepted* real holds — the sentinel's
    /// drift rules compare this against the Fig. 1 baseline shape.
    nip_hold: Histogram,
    ticket_revenue: Gauge,
    solver_spend: Gauge,
    /// One gauge per defence-state map, in [`TRACKED_MAPS`] order: current
    /// key population after housekeeping.
    tracked_keys: Vec<Gauge>,
}

/// The per-key defence-state maps whose populations are exported as
/// `fg_tracked_keys{map="..."}` and bounded by the housekeeping tick.
pub const TRACKED_MAPS: [&str; 5] = [
    "ip-velocity",
    "fp-velocity",
    "booking-sms-velocity",
    "booking-sms-limiter",
    "client-hold-limiter",
];

impl AppMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        for (name, help) in [
            (
                "fg_requests_total",
                "Requests reaching the gate, by endpoint",
            ),
            (
                "fg_signals_total",
                "Detection signals raised, by signal kind",
            ),
            (
                "fg_honeypot_diversions_total",
                "Sessions newly diverted into the decoy environment",
            ),
            (
                "fg_challenges_total",
                "CAPTCHA challenges issued, by outcome",
            ),
            (
                "fg_human_abandons_total",
                "Humans who abandoned at a CAPTCHA (friction cost)",
            ),
            (
                "fg_detection_score",
                "Detection verdict score per gated request",
            ),
            ("fg_nip_hold", "Number in Party of accepted real seat holds"),
            (
                "fg_ticket_revenue_units",
                "Cumulative ticket revenue collected, in currency units",
            ),
            (
                "fg_solver_spend_units",
                "Cumulative CAPTCHA-solver fees paid by bots, in currency units",
            ),
            (
                "fg_tracked_keys",
                "Live key population per defence-state map after housekeeping",
            ),
        ] {
            registry.set_help(name, help);
        }
        AppMetrics {
            requests: Endpoint::ALL
                .iter()
                .map(|e| {
                    let path = e.to_string();
                    registry.counter_with("fg_requests_total", &[("endpoint", path.as_str())])
                })
                .collect(),
            signals: Signal::KINDS
                .iter()
                .map(|kind| registry.counter_with("fg_signals_total", &[("signal", kind)]))
                .collect(),
            honeypot_diversions: registry.counter("fg_honeypot_diversions_total"),
            challenges_solved: registry
                .counter_with("fg_challenges_total", &[("outcome", "solved")]),
            challenges_failed: registry
                .counter_with("fg_challenges_total", &[("outcome", "failed")]),
            human_abandons: registry.counter("fg_human_abandons_total"),
            detection_score: registry.histogram(
                "fg_detection_score",
                &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
            ),
            nip_hold: registry.histogram(
                "fg_nip_hold",
                &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            ),
            ticket_revenue: registry.gauge("fg_ticket_revenue_units"),
            solver_spend: registry.gauge("fg_solver_spend_units"),
            tracked_keys: TRACKED_MAPS
                .iter()
                .map(|map| registry.gauge_with("fg_tracked_keys", &[("map", map)]))
                .collect(),
        }
    }

    fn endpoint_counter(&self, endpoint: Endpoint) -> &Counter {
        &self.requests[endpoint.index()]
    }

    fn signal_counter(&self, kind: &str) -> Option<&Counter> {
        Signal::KINDS
            .iter()
            .position(|k| *k == kind)
            .map(|i| &self.signals[i])
    }
}

impl DefendedApp {
    /// Creates the app with the given config and master seed (the seed only
    /// drives CAPTCHA outcome randomness). A fresh telemetry hub is created;
    /// use [`DefendedApp::with_telemetry`] to share one.
    pub fn new(config: AppConfig, seed: u64) -> Self {
        DefendedApp::with_telemetry(config, seed, Telemetry::shared())
    }

    /// Creates the app wired to an existing telemetry hub, so callers (e.g.
    /// the `experiments --telemetry` runner) keep access to metrics, audit
    /// trail, and stage profiles after the run.
    pub fn with_telemetry(config: AppConfig, seed: u64, telemetry: Arc<Telemetry>) -> Self {
        let shards = config.concurrency.shard_count();
        let mut detection =
            DetectionEngine::with_shards(fg_detection::engine::EngineConfig::default(), shards);
        detection.attach_telemetry(telemetry.clone());
        let policy = PolicyEngine::with_shards(config.policy.clone(), shards);
        policy.decision_counters().register_in(telemetry.metrics());
        let mut gateway = Gateway::default_network();
        gateway.attach_telemetry(telemetry.clone());
        let metrics = AppMetrics::register(telemetry.metrics());
        DefendedApp {
            reservations: ReservationSystem::new(config.hold_ttl, config.max_nip),
            gateway,
            detection,
            policy,
            honeypot: Honeypot::new(),
            logs: Vec::new(),
            fingerprints_seen: ShardedStore::new(shards, |_| HashMap::new()),
            solver_spend: HashMap::new(),
            defender: DefenderLedger::new(),
            captcha_rng: SeedFork::new(seed).rng("captcha"),
            human_abandons: 0,
            ticket_revenue: Money::ZERO,
            telemetry,
            metrics,
            sentinel: None,
            request_seq: 0,
            recorder: None,
            config,
        }
    }

    /// Starts recording every gated request as a replayable
    /// [`WireRequest`](crate::workload::WireRequest) stream. Recording is pure observation: it never
    /// changes decisions or any other artifact.
    pub fn record_workload(&mut self) {
        self.recorder = Some(Vec::new());
    }

    /// Takes the recorded request stream (empty when recording was never
    /// enabled) and stops recording.
    pub fn take_workload(&mut self) -> Vec<crate::workload::WireRequest> {
        self.recorder.take().unwrap_or_default()
    }

    /// Swaps the policy config in place, preserving decision-counter
    /// continuity (the rebuilt engine keeps incrementing the same
    /// `fg_decisions_total` cells). Block rules and limiter buckets reset —
    /// a hot-swap is a posture change, and stale per-key debt under the old
    /// posture must not leak into the new one. Callers are expected to have
    /// validated `policy` (see `fg_analyze::validate_serve_policy`);
    /// in debug builds an invalid config panics at engine construction.
    pub fn replace_policy(&mut self, policy: PolicyConfig) {
        let shards = self.config.concurrency.shard_count();
        let mut engine = PolicyEngine::with_shards(policy.clone(), shards);
        engine.adopt_counters(self.policy.decision_counters().clone());
        self.policy = engine;
        self.config.policy = policy;
    }

    /// The telemetry hub this app reports into.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Attaches an online alerting sentinel evaluating `policy` against this
    /// app's metrics on every housekeeping tick. Observation is read-only:
    /// attaching a sentinel never changes simulation behaviour.
    ///
    /// When the policy names an attacker client, that session is pinned in
    /// the tracer so its traces bypass allow-sampling — the incident's
    /// exemplar trace ids then always resolve in the exported trace file.
    pub fn attach_sentinel(&mut self, policy: AlertPolicy) {
        if let Some(attacker) = policy.attacker_client {
            self.telemetry.tracer().pin_session(attacker);
        }
        self.sentinel = Some(Sentinel::new(policy, self.telemetry.metrics()));
    }

    /// The attached sentinel, if any.
    pub fn sentinel(&self) -> Option<&Sentinel> {
        self.sentinel.as_ref()
    }

    /// Final sentinel report (alert events, time-to-detection, incident
    /// timeline correlated with the decision audit trail) as of `end`.
    pub fn sentinel_report(&self, end: SimTime) -> Option<SentinelReport> {
        let audit = self.telemetry.audit().snapshot();
        // When tracing ran, scope exemplar ids to the traces the tracer
        // actually retained so every cited id resolves in the export.
        let retained = self
            .telemetry
            .tracing_enabled()
            .then(|| self.telemetry.tracer().retained_ids());
        self.sentinel
            .as_ref()
            .map(|s| s.report_with_traces(end, &audit, retained.as_ref()))
    }

    /// Registers a flight.
    pub fn add_flight(&mut self, flight: Flight) {
        self.reservations.add_flight(flight);
    }

    /// The reservation core (read access).
    pub fn reservations(&self) -> &ReservationSystem {
        &self.reservations
    }

    /// The reservation core (mutable, for defender interventions such as
    /// changing the NiP cap mid-incident).
    pub fn reservations_mut(&mut self) -> &mut ReservationSystem {
        &mut self.reservations
    }

    /// The SMS gateway (read access — owner cost, surge tables, …).
    pub fn gateway(&self) -> &Gateway {
        &self.gateway
    }

    /// The SMS gateway (mutable, for quota / operator interventions).
    pub fn gateway_mut(&mut self) -> &mut Gateway {
        &mut self.gateway
    }

    /// The policy engine (mutable, for deploying block rules).
    pub fn policy_mut(&mut self) -> &mut PolicyEngine {
        &mut self.policy
    }

    /// The policy engine (read access).
    pub fn policy(&self) -> &PolicyEngine {
        &self.policy
    }

    /// The detection engine (read access — velocity key populations, …).
    pub fn detection(&self) -> &DetectionEngine {
        &self.detection
    }

    /// The detection engine (mutable, e.g. to feed reputation).
    pub fn detection_mut(&mut self) -> &mut DetectionEngine {
        &mut self.detection
    }

    /// The honeypot.
    pub fn honeypot(&self) -> &Honeypot {
        &self.honeypot
    }

    /// Everything logged so far.
    pub fn logs(&self) -> &[LogRecord] {
        &self.logs
    }

    /// The full fingerprint last seen for an identity hash, if any.
    pub fn fingerprint_by_hash(&self, hash: u64) -> Option<&Fingerprint> {
        self.fingerprints_seen.shard(&hash).get(&hash)
    }

    /// CAPTCHA-solver fees charged to a client so far.
    pub fn solver_spend(&self, client: ClientId) -> Money {
        self.solver_spend
            .get(&client)
            .copied()
            .unwrap_or(Money::ZERO)
    }

    /// Total CAPTCHA-solver fees across all clients.
    pub fn total_solver_spend(&self) -> Money {
        self.solver_spend.values().copied().sum()
    }

    /// Humans who abandoned at a CAPTCHA — §V's usability cost.
    pub fn human_abandons(&self) -> u64 {
        self.human_abandons
    }

    /// Ticket revenue collected so far (quoted fare × seats at payment).
    pub fn ticket_revenue(&self) -> Money {
        self.ticket_revenue
    }

    /// The fare a seat on `flight` costs at `now` (dynamic when configured,
    /// else the fixed `seat_revenue`).
    pub fn fare(&self, flight: FlightId, now: SimTime) -> Option<Money> {
        let availability = self.reservations.availability(flight)?;
        let departure = self.reservations.flight(flight)?.departure();
        Some(match self.config.pricing {
            Some(pricer) => pricer.quote(availability, now, SimTime::ZERO, departure),
            None => self.config.seat_revenue,
        })
    }

    /// The defender's loss ledger (SMS costs are folded in on read).
    pub fn defender_ledger(&self) -> DefenderLedger {
        let mut d = self.defender;
        d.sms_cost = self.gateway.owner_cost();
        d
    }

    /// Advances application housekeeping to `now`: hold expiry, velocity-map
    /// compaction, and idle-limiter eviction. The latter two are what keep
    /// defence state bounded by the *live* identity population under the
    /// paper's rotating-fingerprint/proxy workloads — without them every
    /// identity ever seen would leave a map entry behind forever. The
    /// resulting key populations are exported as `fg_tracked_keys` gauges.
    pub fn tick(&mut self, now: SimTime) {
        self.reservations.expire_due(now);
        self.detection.compact(now);
        self.policy.evict_idle(now);
        let velocity = self.detection.tracked_keys();
        let (booking_sms, client_hold) = self.policy.limiter_tracked_keys();
        for (gauge, keys) in self.metrics.tracked_keys.iter().zip([
            velocity.ip,
            velocity.fingerprint,
            velocity.booking_sms,
            booking_sms,
            client_hold,
        ]) {
            gauge.set(keys as f64);
        }
        if let Some(sentinel) = &mut self.sentinel {
            let snap = self.telemetry.metrics().snapshot();
            let events_before = sentinel.events().len();
            sentinel.observe(now, &snap);
            if self.telemetry.tracing_enabled() {
                // Aux span: one sentinel rule-evaluation pass per tick,
                // outside any request trace (session lane 0).
                let id = fg_core::hash::trace_id(u64::MAX, now.as_millis());
                let transitions = sentinel.events().len() - events_before;
                self.telemetry
                    .tracer()
                    .record_aux(fg_telemetry::SpanRecord {
                        trace_id: id,
                        span_id: id,
                        parent_id: 0,
                        name: "sentinel.evaluate".to_owned(),
                        session: 0,
                        start_us: now.as_millis() * 1_000,
                        dur_us: 1,
                        attrs: vec![("transitions".to_owned(), transitions.to_string())],
                    });
            }
        }
    }

    fn log(
        &mut self,
        req: &ClientRequest,
        endpoint: Endpoint,
        method: Method,
        ok: bool,
        now: SimTime,
    ) {
        self.logs.push(LogRecord {
            at: now,
            ip: req.ip,
            fingerprint: req.fingerprint.identity_hash(),
            truth_client: req.client,
            method,
            endpoint,
            ok,
        });
        let fp_hash = req.fingerprint.identity_hash();
        self.fingerprints_seen
            .shard_mut(&fp_hash)
            .entry(fp_hash)
            .or_insert_with(|| req.fingerprint.clone());
    }

    /// The decision pipeline shared by the simulator gate and the serving
    /// layer: honeypot stickiness → detection → reputation feedback →
    /// policy → audit record, plus honeypot diversion when that is the
    /// decision. Returns the wire-visible [`GateDecision`] and the
    /// still-open span trace (`None` when tracing is off or the sticky
    /// honeypot path already finished it). CAPTCHA resolution is *not* part
    /// of this: it consumes randomness and belongs to the simulator's
    /// behaviour model, not the decision — which is why the audit record is
    /// written here, before any challenge is resolved.
    fn decide_inner(
        &mut self,
        req: &ClientRequest,
        endpoint: Endpoint,
        booking: Option<BookingRef>,
        now: SimTime,
    ) -> (GateDecision, Option<RequestTrace>) {
        self.metrics.endpoint_counter(endpoint).inc();
        if let Some(rec) = self.recorder.as_mut() {
            rec.push(crate::workload::WireRequest::from_parts(
                req, endpoint, booking, now,
            ));
        }
        self.request_seq += 1;
        let trace_id = fg_core::hash::trace_id(req.client.as_u64(), self.request_seq);
        // Span tracing is pure observation over sim-time: building the
        // trace never touches simulation state, so behaviour (and every
        // non-trace artifact) is byte-identical with tracing on or off.
        let mut span_trace = self
            .telemetry
            .tracing_enabled()
            .then(|| RequestTrace::new(trace_id, req.client.as_u64(), &endpoint.to_string(), now));

        // Already-diverted clients stay in the decoy.
        let t = Instant::now(); // fg-analyze: allow(wall-clock): stage profiling only
        let diverted = self.honeypot.is_diverted(req.client);
        self.telemetry
            .record_stage("mitigation.honeypot-check", t.elapsed());
        if let Some(tr) = span_trace.as_mut() {
            let check = tr.stage("mitigation.honeypot-check");
            tr.attr(check, "diverted", diverted);
        }
        if diverted {
            self.telemetry.record_audit(AuditRecord {
                at: now,
                endpoint: endpoint.to_string(),
                client: req.client.as_u64(),
                fingerprint: req.fingerprint.identity_hash(),
                ip: req.ip.to_string(),
                score: 0.0,
                signals: Vec::new(),
                decision: Decision::Honeypot.to_string(),
                reasons: vec!["honeypot:session-diverted".to_owned()],
                trace_id,
            });
            if let Some(mut tr) = span_trace.take() {
                tr.finish(&Decision::Honeypot.to_string());
                self.telemetry.record_trace(tr);
            }
            return (
                GateDecision {
                    trace_id,
                    decision: Decision::Honeypot,
                    reasons: vec!["honeypot:session-diverted".to_owned()],
                    score: 0.0,
                    signals: Vec::new(),
                },
                None,
            );
        }

        let t = Instant::now(); // fg-analyze: allow(wall-clock): stage profiling only
        let verdict = self
            .detection
            .assess(now, req.ip, &req.fingerprint, endpoint, booking);
        self.telemetry.record_stage("detect.assess", t.elapsed());
        self.metrics.detection_score.record(verdict.score);
        if let Some(tr) = span_trace.as_mut() {
            let assess = tr.stage("detect.assess");
            tr.attr(assess, "score", format!("{:.3}", verdict.score));
            for signal in &verdict.signals {
                let child = tr.child(assess, &format!("detect.{}", signal.kind()));
                tr.attr(child, "signal", signal.to_string());
                tr.attr(child, "weight", format!("{:.3}", signal.weight()));
            }
        }
        for signal in &verdict.signals {
            if let Some(counter) = self.metrics.signal_counter(signal.kind()) {
                counter.inc();
            }
        }
        if verdict.score >= self.config.reputation_feedback_threshold {
            self.detection
                .reputation_mut()
                .report(req.ip, verdict.score, now);
        }

        let t = Instant::now(); // fg-analyze: allow(wall-clock): stage profiling only
        let trace = self.policy.decide_traced(&RequestContext {
            now,
            ip: req.ip,
            fingerprint: &req.fingerprint,
            endpoint,
            booking,
            tier: req.tier,
            client_key: req.client.as_u64(),
            verdict: &verdict,
        });
        self.telemetry.record_stage("policy.decide", t.elapsed());
        let decision = trace.decision;
        if let Some(tr) = span_trace.as_mut() {
            let decide = tr.stage("policy.decide");
            tr.attr(decide, "decision", decision.to_string());
            tr.attr(decide, "reasons", trace.reason_strings().join(" → "));
            tr.attr(decide, "client_key", req.client.as_u64());
            if let Some(booking) = booking {
                tr.attr(decide, "limiter_booking", booking);
            }
        }
        let signal_scores: Vec<SignalScore> = verdict
            .signals
            .iter()
            .map(|s| SignalScore {
                signal: s.to_string(),
                weight: s.weight(),
            })
            .collect();
        self.telemetry.record_audit(AuditRecord {
            at: now,
            endpoint: endpoint.to_string(),
            client: req.client.as_u64(),
            fingerprint: req.fingerprint.identity_hash(),
            ip: req.ip.to_string(),
            score: verdict.score,
            signals: signal_scores.clone(),
            decision: decision.to_string(),
            reasons: trace.reason_strings(),
            trace_id,
        });

        // Honeypot diversion is part of the decision's effect on defence
        // state (the session turns sticky), so it is applied here — on the
        // wire path as much as in the simulator.
        if decision == Decision::Honeypot {
            self.honeypot.divert(req.client, now);
            self.metrics.honeypot_diversions.inc();
            if let Some(tr) = span_trace.as_mut() {
                let divert = tr.stage("mitigation.honeypot-divert");
                tr.attr(divert, "sticky", true);
            }
        }

        (
            GateDecision {
                trace_id,
                decision,
                reasons: trace.reason_strings(),
                score: verdict.score,
                signals: signal_scores,
            },
            span_trace,
        )
    }

    /// Runs the decision pipeline for one wire request and returns the
    /// outcome the serving layer puts on the wire. Identical decision, audit
    /// record, and reason chain to the simulator path under the same
    /// request stream, config, seed, and shard count — the parity the
    /// `decision_parity` integration test asserts.
    pub fn decide_request(
        &mut self,
        req: &ClientRequest,
        endpoint: Endpoint,
        booking: Option<BookingRef>,
        now: SimTime,
    ) -> GateDecision {
        let (gated, span_trace) = self.decide_request_traced(req, endpoint, booking, now);
        if let Some(tr) = span_trace {
            self.telemetry.record_trace(tr);
        }
        gated
    }

    /// Like [`DefendedApp::decide_request`], but hands the finished (not yet
    /// submitted) trace back to the caller, so a serving layer can append
    /// its own transport spans — wire trace correlation, response status,
    /// measured latency — and pin slow requests before submission. The
    /// decision itself is identical to [`DefendedApp::decide_request`].
    pub fn decide_request_traced(
        &mut self,
        req: &ClientRequest,
        endpoint: Endpoint,
        booking: Option<BookingRef>,
        now: SimTime,
    ) -> (GateDecision, Option<RequestTrace>) {
        let (gated, mut span_trace) = self.decide_inner(req, endpoint, booking, now);
        if let Some(tr) = span_trace.as_mut() {
            tr.finish(&gated.decision.to_string());
        }
        (gated, span_trace)
    }

    /// Runs the defence pipeline. `Ok(true)` means "proceed against the real
    /// application", `Ok(false)` means "the honeypot serves this request",
    /// `Err(outcome)` is the refusal to surface to the client.
    fn gate<T>(
        &mut self,
        req: &ClientRequest,
        endpoint: Endpoint,
        booking: Option<BookingRef>,
        now: SimTime,
    ) -> Result<bool, ApiOutcome<T>> {
        let (gated, mut span_trace) = self.decide_inner(req, endpoint, booking, now);
        let decision = gated.decision;
        let result = match decision {
            Decision::Allow => Ok(true),
            Decision::Challenge => {
                let t = Instant::now(); // fg-analyze: allow(wall-clock): stage profiling only
                let result = if req.is_bot {
                    let outcome = self.config.captcha.challenge_bot(&mut self.captcha_rng);
                    *self.solver_spend.entry(req.client).or_insert(Money::ZERO) +=
                        self.config.captcha.solver_price;
                    self.metrics
                        .solver_spend
                        .add(self.config.captcha.solver_price.as_f64());
                    if outcome.solved() {
                        Ok(true)
                    } else {
                        Err(ApiOutcome::ChallengeFailed)
                    }
                } else {
                    let outcome = self.config.captcha.challenge_human(&mut self.captcha_rng);
                    if outcome.solved() {
                        Ok(true)
                    } else {
                        self.human_abandons += 1;
                        self.metrics.human_abandons.inc();
                        self.defender.friction_losses += self.config.seat_revenue.mul_f64(0.1);
                        Err(ApiOutcome::ChallengeFailed)
                    }
                };
                match &result {
                    Ok(_) => self.metrics.challenges_solved.inc(),
                    Err(_) => self.metrics.challenges_failed.inc(),
                }
                self.telemetry
                    .record_stage("mitigation.captcha", t.elapsed());
                if let Some(tr) = span_trace.as_mut() {
                    let captcha = tr.stage("mitigation.captcha");
                    tr.attr(captcha, "solver", req.is_bot);
                    tr.attr(
                        captcha,
                        "outcome",
                        if result.is_ok() { "solved" } else { "failed" },
                    );
                }
                result
            }
            // Diversion itself already happened in `decide_inner`; the
            // sticky-session outcome is all that is left to surface.
            Decision::Honeypot => Ok(false),
            Decision::RateLimited => Err(ApiOutcome::RateLimited),
            Decision::TierDenied => Err(ApiOutcome::TierDenied),
            Decision::Block => Err(ApiOutcome::Blocked),
        };
        if let Some(mut tr) = span_trace.take() {
            tr.finish(&decision.to_string());
            self.telemetry.record_trace(tr);
        }
        result
    }
}

impl App for DefendedApp {
    fn search(&mut self, req: &ClientRequest, now: SimTime) -> ApiOutcome<()> {
        match self.gate::<()>(req, Endpoint::Search, None, now) {
            Ok(_) => {
                self.log(req, Endpoint::Search, Method::Get, true, now);
                ApiOutcome::Ok(())
            }
            Err(refusal) => {
                self.log(req, Endpoint::Search, Method::Get, false, now);
                refusal
            }
        }
    }

    fn hold(
        &mut self,
        req: &ClientRequest,
        flight: FlightId,
        passengers: Vec<Passenger>,
        now: SimTime,
    ) -> ApiOutcome<BookingRef> {
        let nip = passengers.len() as f64;
        match self.gate::<BookingRef>(req, Endpoint::Hold, None, now) {
            Ok(true) => match self.reservations.hold(flight, passengers, now) {
                Ok(reference) => {
                    self.metrics.nip_hold.record(nip);
                    self.log(req, Endpoint::Hold, Method::Post, true, now);
                    ApiOutcome::Ok(reference)
                }
                Err(e) => {
                    self.log(req, Endpoint::Hold, Method::Post, false, now);
                    ApiOutcome::Domain(e)
                }
            },
            Ok(false) => {
                // The decoy accepts the hold against fake inventory.
                let seats = passengers.len() as u32;
                let fake = self.honeypot.absorb_hold(req.client, seats, now);
                self.log(req, Endpoint::Hold, Method::Post, true, now);
                ApiOutcome::Ok(fake)
            }
            Err(refusal) => {
                self.log(req, Endpoint::Hold, Method::Post, false, now);
                refusal
            }
        }
    }

    fn pay(&mut self, req: &ClientRequest, booking: BookingRef, now: SimTime) -> ApiOutcome<()> {
        match self.gate::<()>(req, Endpoint::Pay, Some(booking), now) {
            Ok(true) => {
                // Quote before the sale: paying moves seats from held to
                // sold, and the buyer pays the fare displayed at checkout.
                let (fare, nip) = match self.reservations.booking(booking) {
                    Some(b) => (self.fare(b.flight(), now), b.nip()),
                    None => (None, 0),
                };
                let result = self
                    .reservations
                    .pay(booking, now)
                    .and_then(|()| self.reservations.ticket(booking));
                match result {
                    Ok(()) => {
                        if let Some(fare) = fare {
                            self.ticket_revenue += fare * u64::from(nip);
                            self.metrics
                                .ticket_revenue
                                .set(self.ticket_revenue.as_f64());
                        }
                        self.log(req, Endpoint::Pay, Method::Post, true, now);
                        ApiOutcome::Ok(())
                    }
                    Err(e) => {
                        self.log(req, Endpoint::Pay, Method::Post, false, now);
                        ApiOutcome::Domain(e)
                    }
                }
            }
            Ok(false) => {
                // Fake success inside the decoy.
                self.log(req, Endpoint::Pay, Method::Post, true, now);
                ApiOutcome::Ok(())
            }
            Err(refusal) => {
                self.log(req, Endpoint::Pay, Method::Post, false, now);
                refusal
            }
        }
    }

    fn send_otp(
        &mut self,
        req: &ClientRequest,
        phone: PhoneNumber,
        now: SimTime,
    ) -> ApiOutcome<()> {
        match self.gate::<()>(req, Endpoint::SendOtp, None, now) {
            Ok(true) => {
                let receipt = self.gateway.send(SmsMessage::new(phone, SmsKind::Otp), now);
                let ok = receipt.delivered;
                self.log(req, Endpoint::SendOtp, Method::Post, ok, now);
                if receipt.quota_exceeded {
                    ApiOutcome::QuotaExceeded
                } else {
                    ApiOutcome::Ok(())
                }
            }
            Ok(false) => {
                self.honeypot.absorb_sms(req.client, now);
                self.log(req, Endpoint::SendOtp, Method::Post, true, now);
                ApiOutcome::Ok(())
            }
            Err(refusal) => {
                self.log(req, Endpoint::SendOtp, Method::Post, false, now);
                refusal
            }
        }
    }

    fn boarding_pass_sms(
        &mut self,
        req: &ClientRequest,
        booking: BookingRef,
        phone: PhoneNumber,
        now: SimTime,
    ) -> ApiOutcome<()> {
        match self.gate::<()>(req, Endpoint::BoardingPass, Some(booking), now) {
            Ok(true) => match self.reservations.issue_boarding_pass(booking) {
                Ok(_seq) => {
                    let receipt = self
                        .gateway
                        .send(SmsMessage::new(phone, SmsKind::BoardingPass(booking)), now);
                    self.log(
                        req,
                        Endpoint::BoardingPass,
                        Method::Post,
                        receipt.delivered,
                        now,
                    );
                    if receipt.quota_exceeded {
                        ApiOutcome::QuotaExceeded
                    } else {
                        ApiOutcome::Ok(())
                    }
                }
                Err(e) => {
                    self.log(req, Endpoint::BoardingPass, Method::Post, false, now);
                    ApiOutcome::Domain(e)
                }
            },
            Ok(false) => {
                self.honeypot.absorb_sms(req.client, now);
                self.log(req, Endpoint::BoardingPass, Method::Post, true, now);
                ApiOutcome::Ok(())
            }
            Err(refusal) => {
                self.log(req, Endpoint::BoardingPass, Method::Post, false, now);
                refusal
            }
        }
    }

    fn availability(&self, flight: FlightId) -> Option<Availability> {
        self.reservations.availability(flight)
    }

    fn departure(&self, flight: FlightId) -> Option<SimTime> {
        self.reservations.flight(flight).map(|f| f.departure())
    }

    fn quote(&self, flight: FlightId, now: SimTime) -> Option<Money> {
        self.fare(flight, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_fingerprint::population::PopulationModel;
    use fg_mitigation::gating::TrustTier;
    use fg_netsim::geo::GeoDatabase;
    use fg_netsim::ip::IpClass;
    use rand::SeedableRng;

    fn human_req(seed: u64, tier: TrustTier) -> ClientRequest {
        let mut rng = StdRng::seed_from_u64(seed);
        let geo = GeoDatabase::default_world();
        ClientRequest {
            client: ClientId(seed),
            ip: geo
                .sample_ip(
                    fg_core::ids::CountryCode::new("GB"),
                    IpClass::Residential,
                    &mut rng,
                )
                .unwrap(),
            fingerprint: PopulationModel::default_web().sample_human(&mut rng),
            tier,
            is_bot: false,
        }
    }

    fn app(policy: PolicyConfig) -> DefendedApp {
        let mut app = DefendedApp::new(AppConfig::airline(policy), 7);
        app.add_flight(Flight::new(FlightId(1), 180, SimTime::from_days(30)));
        app
    }

    fn pax(n: usize) -> Vec<Passenger> {
        (0..n)
            .map(|i| Passenger::simple(&format!("P{i}"), "TEST"))
            .collect()
    }

    #[test]
    fn full_happy_path_for_a_human() {
        let mut a = app(PolicyConfig::recommended());
        let req = human_req(1, TrustTier::Verified);
        assert!(a.search(&req, SimTime::ZERO).is_ok());
        let booking = a
            .hold(&req, FlightId(1), pax(2), SimTime::from_mins(1))
            .unwrap();
        assert!(a.pay(&req, booking, SimTime::from_mins(5)).is_ok());
        let phone = PhoneNumber::new(fg_core::ids::CountryCode::new("GB"), 7_700_900_001);
        assert!(a
            .boarding_pass_sms(&req, booking, phone, SimTime::from_mins(10))
            .is_ok());
        assert_eq!(a.gateway().sent_total(), 1);
        assert_eq!(a.logs().len(), 4);
        assert!(a.logs().iter().all(|l| l.ok));
    }

    #[test]
    fn unprotected_app_never_refuses() {
        let mut a = app(PolicyConfig::unprotected());
        let req = human_req(2, TrustTier::Anonymous);
        let booking = a.hold(&req, FlightId(1), pax(1), SimTime::ZERO).unwrap();
        a.pay(&req, booking, SimTime::from_mins(1)).unwrap();
        let phone = PhoneNumber::new(fg_core::ids::CountryCode::new("UZ"), 99_000_001);
        // 500 boarding-pass SMS against one booking sail through (§IV-C).
        for i in 0..500u64 {
            assert!(a
                .boarding_pass_sms(&req, booking, phone, SimTime::from_mins(2 + i))
                .is_ok());
        }
        assert_eq!(a.gateway().sent_total(), 500);
    }

    #[test]
    fn recommended_app_limits_per_booking_sms() {
        let mut a = app(PolicyConfig::recommended());
        let req = human_req(3, TrustTier::Verified);
        let booking = a.hold(&req, FlightId(1), pax(1), SimTime::ZERO).unwrap();
        a.pay(&req, booking, SimTime::from_mins(1)).unwrap();
        let phone = PhoneNumber::new(fg_core::ids::CountryCode::new("UZ"), 99_000_002);
        let mut sent = 0;
        for i in 0..10u64 {
            if a.boarding_pass_sms(&req, booking, phone, SimTime::from_mins(5 + i))
                .is_ok()
            {
                sent += 1;
            }
        }
        assert!(sent <= 3, "per-booking SMS cap enforced: {sent}");
    }

    #[test]
    fn tier_gate_refuses_anonymous_holds() {
        let mut a = app(PolicyConfig::recommended());
        let req = human_req(4, TrustTier::Anonymous);
        assert_eq!(
            a.hold(&req, FlightId(1), pax(1), SimTime::ZERO),
            ApiOutcome::TierDenied
        );
    }

    #[test]
    fn honeypot_diversion_fakes_success_and_spares_inventory() {
        let mut a = app(PolicyConfig::recommended());
        // A blatant bot: webdriver artifact → score 1.0 → honeypot.
        let mut req = human_req(5, TrustTier::Verified);
        req.fingerprint.webdriver = true;
        req.is_bot = true;
        let fake = a.hold(&req, FlightId(1), pax(6), SimTime::ZERO);
        assert!(fake.is_ok(), "the decoy accepts the hold: {fake:?}");
        let avail = a.availability(FlightId(1)).unwrap();
        assert_eq!(avail.held, 0, "real inventory untouched");
        assert_eq!(a.honeypot().stats().seats_absorbed, 6);
        // Subsequent requests stay in the decoy — even innocuous ones.
        assert!(a.search(&req, SimTime::from_mins(1)).is_ok());
        assert!(a.pay(&req, fake.unwrap(), SimTime::from_mins(2)).is_ok());
    }

    #[test]
    fn challenged_bot_pays_solver_fees() {
        let mut cfg = PolicyConfig::traditional_antibot();
        cfg.challenge_threshold = 0.0; // challenge everything
        let mut a = app(cfg);
        let mut req = human_req(6, TrustTier::Verified);
        req.is_bot = true;
        for i in 0..20u64 {
            let _ = a.search(&req, SimTime::from_secs(i));
        }
        assert!(a.solver_spend(req.client) > Money::ZERO);
        assert_eq!(a.total_solver_spend(), a.solver_spend(req.client));
    }

    #[test]
    fn challenged_humans_sometimes_abandon() {
        let mut cfg = PolicyConfig::traditional_antibot();
        cfg.challenge_threshold = 0.0;
        let mut a = app(cfg);
        for i in 0..300u64 {
            let req = human_req(100 + i, TrustTier::Verified);
            let _ = a.search(&req, SimTime::from_secs(i));
        }
        assert!(a.human_abandons() > 0, "friction surfaces");
        assert!(a.defender_ledger().friction_losses > Money::ZERO);
    }

    #[test]
    fn defender_ledger_includes_sms_cost() {
        let mut a = app(PolicyConfig::unprotected());
        let req = human_req(7, TrustTier::Verified);
        let phone = PhoneNumber::new(fg_core::ids::CountryCode::new("GB"), 7_700_900_009);
        a.send_otp(&req, phone, SimTime::ZERO).unwrap();
        assert_eq!(a.defender_ledger().sms_cost, Money::from_cents(4));
    }

    #[test]
    fn logs_capture_fingerprint_registry() {
        let mut a = app(PolicyConfig::unprotected());
        let req = human_req(8, TrustTier::Verified);
        a.search(&req, SimTime::ZERO).unwrap();
        let hash = req.fingerprint.identity_hash();
        assert_eq!(a.fingerprint_by_hash(hash), Some(&req.fingerprint));
    }

    #[test]
    fn audit_trail_explains_honeypot_routings() {
        let mut a = app(PolicyConfig::recommended());
        let mut req = human_req(9, TrustTier::Verified);
        req.fingerprint.webdriver = true;
        req.is_bot = true;
        let _ = a.hold(&req, FlightId(1), pax(1), SimTime::ZERO);
        // Second request rides the sticky diversion.
        let _ = a.search(&req, SimTime::from_mins(1));

        let telemetry = a.telemetry().clone();
        let audit = telemetry.audit();
        let routings: Vec<_> = audit.with_decision("honeypot").collect();
        assert_eq!(routings.len(), 2);
        // The first routing names the signal that triggered it …
        let first = routings[0];
        assert_eq!(
            first.triggering_signal().unwrap().signal,
            "fingerprint-inconsistent(1.00)"
        );
        assert!(
            first
                .reasons
                .iter()
                .any(|r| r.starts_with("score-block:triggered")),
            "{:?}",
            first.reasons
        );
        // … the second records the sticky session.
        assert_eq!(routings[1].reasons, vec!["honeypot:session-diverted"]);
        assert_eq!(routings[1].endpoint, "/search");
    }

    #[test]
    fn tick_compacts_defence_state_and_exports_gauges() {
        let mut a = app(PolicyConfig::recommended());
        // 30 distinct one-shot identities touch the app within one hour.
        for i in 0..30u64 {
            let req = human_req(500 + i, TrustTier::Verified);
            let _ = a.search(&req, SimTime::from_mins(i));
        }
        a.tick(SimTime::from_hours(1));
        assert!(a.detection().tracked_keys().total() > 0);
        // Three hours later all events are outside the velocity window.
        a.tick(SimTime::from_hours(3));
        assert_eq!(a.detection().tracked_keys().total(), 0);
        assert_eq!(a.policy().limiter_tracked_keys(), (0, 0));
        let snap = a.telemetry().snapshot();
        for map in TRACKED_MAPS {
            assert_eq!(
                snap.metrics.gauge_value("fg_tracked_keys", &[("map", map)]),
                Some(0.0),
                "gauge for {map}"
            );
        }
    }

    #[test]
    fn gate_metrics_and_stages_accumulate() {
        let mut a = app(PolicyConfig::recommended());
        let req = human_req(10, TrustTier::Verified);
        a.search(&req, SimTime::ZERO).unwrap();
        let booking = a
            .hold(&req, FlightId(1), pax(2), SimTime::from_mins(1))
            .unwrap();
        a.pay(&req, booking, SimTime::from_mins(5)).unwrap();

        let snap = a.telemetry().snapshot();
        assert_eq!(
            snap.metrics
                .counter_value("fg_requests_total", &[("endpoint", "/search")]),
            Some(1)
        );
        assert_eq!(
            snap.metrics
                .counter_value("fg_requests_total", &[("endpoint", "/booking/hold")]),
            Some(1)
        );
        assert_eq!(
            snap.metrics
                .counter_value("fg_decisions_total", &[("decision", "allow")]),
            Some(3)
        );
        // Revenue gauge follows the sale (2 pax × £120).
        let revenue = snap
            .metrics
            .gauge_value("fg_ticket_revenue_units", &[])
            .unwrap();
        assert!((revenue - a.ticket_revenue().as_f64()).abs() < 1e-9);
        // Stage profiles cover detection, policy, and the honeypot check.
        let stages: Vec<&str> = snap.stages.iter().map(|s| s.stage.as_str()).collect();
        for expected in [
            "mitigation.honeypot-check",
            "detect.assess",
            "policy.decide",
        ] {
            assert!(stages.contains(&expected), "missing stage {expected}");
        }
        // Detection-score histogram saw all three requests.
        let hist = snap
            .metrics
            .histograms
            .iter()
            .find(|h| h.name.name == "fg_detection_score")
            .expect("score histogram registered");
        assert_eq!(hist.count, 3);
    }
}
