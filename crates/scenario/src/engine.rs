//! The deterministic simulation driver.

use crate::app::DefendedApp;
use crate::team::{SecurityTeam, TeamConfig};
use fg_behavior::api::Agent;
use fg_core::event::EventQueue;
use fg_core::rng::SeedFork;
use fg_core::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use std::cell::RefCell;
use std::rc::Rc;

enum Tick {
    Agent(usize),
    Review,
    Intervention(usize),
}

/// A shareable agent handle: the simulation drives it, the caller keeps a
/// clone to read statistics after the run.
pub type SharedAgent = Rc<RefCell<dyn Agent>>;

/// A one-shot defender intervention (e.g. "cap NiP at day 14").
type Intervention = Box<dyn FnOnce(&mut DefendedApp, SimTime)>;

/// Wraps a concrete agent into a [`SharedAgent`] plus a typed handle.
///
/// # Example
///
/// ```no_run
/// # use fg_scenario::engine::share;
/// # use fg_behavior::{SeatSpinner, SeatSpinnerConfig};
/// # use fg_netsim::geo::GeoDatabase;
/// # use fg_core::ids::{ClientId, FlightId};
/// # use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(0);
/// let bot = SeatSpinner::new(
///     SeatSpinnerConfig::airline_a(FlightId(1)), ClientId(1),
///     GeoDatabase::default_world(), &mut rng,
/// );
/// let (handle, agent) = share(bot);
/// // sim.add_agent(agent, ...); later: handle.borrow().stats()
/// # let _ = (handle, agent);
/// ```
pub fn share<A: Agent + 'static>(agent: A) -> (Rc<RefCell<A>>, SharedAgent) {
    let typed = Rc::new(RefCell::new(agent));
    let dynamic: SharedAgent = typed.clone();
    (typed, dynamic)
}

/// Drives agents, the periodic security-team review, and one-shot
/// interventions over a [`DefendedApp`], in deterministic event order.
///
/// # Example
///
/// ```
/// use fg_scenario::{app::{AppConfig, DefendedApp}, engine::Simulation};
/// use fg_mitigation::policy::PolicyConfig;
/// use fg_inventory::Flight;
/// use fg_core::ids::FlightId;
/// use fg_core::time::SimTime;
///
/// let mut app = DefendedApp::new(AppConfig::airline(PolicyConfig::unprotected()), 1);
/// app.add_flight(Flight::new(FlightId(1), 180, SimTime::from_days(30)));
/// let mut sim = Simulation::new(app, 1);
/// // (agents would be added here)
/// let app = sim.run(SimTime::from_days(1));
/// assert_eq!(app.logs().len(), 0);
/// ```
pub struct Simulation {
    app: DefendedApp,
    agents: Vec<SharedAgent>,
    agent_rngs: Vec<StdRng>,
    interventions: Vec<Option<Intervention>>,
    team: Option<(SecurityTeam, SimDuration)>,
    queue: EventQueue<Tick>,
    seeds: SeedFork,
    housekeeping: SimDuration,
    /// Agents returning `next <= now` are clamped forward by 1 ms; counted
    /// here (exported as `fg_agent_wake_clamped_total`) so misbehaving
    /// agents are visible without debug/release divergence.
    wake_clamps: fg_telemetry::Counter,
}

impl Simulation {
    /// Creates a simulation over `app` with the given master seed.
    pub fn new(app: DefendedApp, seed: u64) -> Self {
        let registry = app.telemetry().metrics();
        registry.set_help(
            "fg_agent_wake_clamped_total",
            "Agent wake-ups clamped forward to keep sim time monotone",
        );
        let wake_clamps = registry.counter("fg_agent_wake_clamped_total");
        Simulation {
            app,
            wake_clamps,
            agents: Vec::new(),
            agent_rngs: Vec::new(),
            interventions: Vec::new(),
            team: None,
            queue: EventQueue::new(),
            seeds: SeedFork::new(seed),
            housekeeping: SimDuration::from_mins(5),
        }
    }

    /// Adds an agent, waking first at `start`. Each agent gets its own
    /// seed-forked RNG stream, so adding one agent never perturbs another.
    /// Keep a clone of the handle (see [`share`]) to read the agent's
    /// statistics after [`Simulation::run`].
    pub fn add_agent(&mut self, agent: SharedAgent, start: SimTime) {
        let idx = self.agents.len();
        self.agent_rngs
            .push(self.seeds.rng_indexed("agent", idx as u64));
        self.agents.push(agent);
        self.queue.schedule(start, Tick::Agent(idx));
    }

    /// Installs the periodic security-team review.
    pub fn with_team(&mut self, config: TeamConfig, interval: SimDuration, first: SimTime) {
        self.team = Some((SecurityTeam::new(config), interval));
        self.queue.schedule(first, Tick::Review);
    }

    /// Schedules a one-shot intervention (e.g. "introduce the NiP cap on
    /// day 14") at `at`.
    pub fn schedule(&mut self, at: SimTime, f: impl FnOnce(&mut DefendedApp, SimTime) + 'static) {
        let idx = self.interventions.len();
        self.interventions.push(Some(Box::new(f)));
        self.queue.schedule(at, Tick::Intervention(idx));
    }

    /// Read access to the app mid-setup.
    pub fn app(&self) -> &DefendedApp {
        &self.app
    }

    /// Mutable access to the app mid-setup.
    pub fn app_mut(&mut self) -> &mut DefendedApp {
        &mut self.app
    }

    /// The security team, if installed (e.g. to read review counts after a
    /// run — take it before calling [`Simulation::run`]).
    pub fn team(&self) -> Option<&SecurityTeam> {
        self.team.as_ref().map(|(t, _)| t)
    }

    /// Runs until `until` (inclusive of events at that instant), returning
    /// the finished app for inspection.
    pub fn run(mut self, until: SimTime) -> DefendedApp {
        let mut last_housekeeping = SimTime::ZERO;
        while let Some((now, tick)) = self.queue.pop_before(until) {
            if now.saturating_since(last_housekeeping) >= self.housekeeping {
                self.app.tick(now);
                last_housekeeping = now;
            }
            match tick {
                Tick::Agent(idx) => {
                    let rng = &mut self.agent_rngs[idx];
                    if let Some(next) = self.agents[idx].borrow_mut().wake(&mut self.app, now, rng)
                    {
                        // Clamp identically in debug and release: an agent
                        // returning `next <= now` is rescheduled 1 ms ahead
                        // and counted, never panicked on.
                        let next = if next <= now {
                            self.wake_clamps.inc();
                            now + SimDuration::from_millis(1)
                        } else {
                            next
                        };
                        self.queue.schedule(next, Tick::Agent(idx));
                    }
                }
                Tick::Review => {
                    if let Some((team, interval)) = &mut self.team {
                        let started = std::time::Instant::now(); // fg-analyze: allow(wall-clock): stage profiling only
                        team.review(&mut self.app, now);
                        let telemetry = self.app.telemetry();
                        telemetry.record_stage("team.review", started.elapsed());
                        if telemetry.tracing_enabled() {
                            // Aux span: reviews run outside any request
                            // trace, on session lane 0.
                            let id = fg_core::hash::trace_id(u64::MAX - 1, now.as_millis());
                            telemetry.tracer().record_aux(fg_telemetry::SpanRecord {
                                trace_id: id,
                                span_id: id,
                                parent_id: 0,
                                name: "team.review".to_owned(),
                                session: 0,
                                start_us: now.as_millis() * 1_000,
                                dur_us: 1,
                                attrs: Vec::new(),
                            });
                        }
                        let interval = *interval;
                        self.queue.schedule(now + interval, Tick::Review);
                    }
                }
                Tick::Intervention(idx) => {
                    if let Some(f) = self.interventions[idx].take() {
                        f(&mut self.app, now);
                    }
                }
            }
        }
        self.app.tick(until);
        self.app
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppConfig;
    use fg_behavior::api::App;
    use fg_behavior::{LegitConfig, LegitPopulation};
    use fg_core::ids::FlightId;
    use fg_inventory::flight::Flight;
    use fg_mitigation::policy::PolicyConfig;
    use fg_netsim::geo::GeoDatabase;

    fn base_app(policy: PolicyConfig) -> DefendedApp {
        let mut app = DefendedApp::new(AppConfig::airline(policy), 11);
        for f in 1..=3 {
            app.add_flight(Flight::new(FlightId(f), 5_000, SimTime::from_days(40)));
        }
        app
    }

    fn legit(end_days: u64) -> SharedAgent {
        let (_, agent) = share(LegitPopulation::new(
            LegitConfig::default_airline(
                vec![FlightId(1), FlightId(2), FlightId(3)],
                SimTime::from_days(end_days),
            ),
            GeoDatabase::default_world(),
            1_000_000,
        ));
        agent
    }

    #[test]
    fn runs_a_legit_week_end_to_end() {
        let mut sim = Simulation::new(base_app(PolicyConfig::unprotected()), 5);
        sim.add_agent(legit(7), SimTime::ZERO);
        let app = sim.run(SimTime::from_weeks(1));
        assert!(app.reservations().booking_count() > 1_000);
        assert!(app.gateway().sent_total() > 500);
        assert!(!app.logs().is_empty());
        // Most traffic is allowed under no protection.
        assert_eq!(app.policy().counts().block, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut sim = Simulation::new(base_app(PolicyConfig::recommended()), seed);
            sim.add_agent(legit(3), SimTime::ZERO);
            let app = sim.run(SimTime::from_days(3));
            (
                app.reservations().booking_count(),
                app.gateway().sent_total(),
                app.logs().len(),
            )
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds diverge");
    }

    #[test]
    fn interventions_fire_once_at_their_time() {
        let mut sim = Simulation::new(base_app(PolicyConfig::unprotected()), 6);
        sim.add_agent(legit(14), SimTime::ZERO);
        sim.schedule(SimTime::from_days(2), |app, _now| {
            app.reservations_mut().set_max_nip(4);
        });
        let app = sim.run(SimTime::from_days(4));
        assert_eq!(app.reservations().max_nip(), 4);
        // Bookings after day 2 never exceed the cap.
        let violations = app
            .reservations()
            .bookings()
            .filter(|b| b.created_at() >= SimTime::from_days(2) && b.nip() > 4)
            .count();
        assert_eq!(violations, 0);
    }

    #[test]
    fn team_reviews_run_periodically() {
        let mut sim = Simulation::new(base_app(PolicyConfig::traditional_antibot()), 7);
        sim.add_agent(legit(2), SimTime::ZERO);
        sim.with_team(
            TeamConfig::default(),
            SimDuration::from_hours(6),
            SimTime::from_hours(6),
        );
        // Run with the team installed; verify it reviewed by observing that
        // the run completes and the app is intact (team state is consumed).
        let app = sim.run(SimTime::from_days(2));
        assert!(app.reservations().booking_count() > 100);
    }

    #[test]
    fn housekeeping_expires_holds() {
        let mut sim = Simulation::new(base_app(PolicyConfig::unprotected()), 8);
        sim.add_agent(legit(2), SimTime::ZERO);
        let app = sim.run(SimTime::from_days(3));
        // A day after the horizon every unpaid hold has lapsed.
        for f in app.reservations().flight_ids() {
            assert_eq!(app.availability(f).unwrap().held, 0, "{f}");
        }
    }
}
