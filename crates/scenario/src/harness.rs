//! The parallel multi-seed experiment harness.
//!
//! Turns the one-shot experiment runners under [`crate::experiments`] into
//! replicated, wall-clock-parallel measurements:
//!
//! * [`ExperimentSpec`] — a registry entry per experiment: name, default
//!   seed, and a plain-`fn` run hook (trivially `Send`, so cells can run on
//!   any worker thread; the `Rc`-based [`crate::engine::Simulation`] is
//!   constructed *inside* the cell, never crossing threads).
//! * [`run_matrix`] — a work-stealing-lite executor over
//!   [`std::thread::scope`]: every (experiment × seed) cell goes into one
//!   shared queue drained by `jobs` workers via an atomic cursor, so a slow
//!   experiment never leaves the other cores idle behind a static
//!   partition.
//! * [`ExperimentRun`] — per-experiment replicate results plus cross-seed
//!   aggregation (mean/stddev/min–max per scalar metric, merged telemetry).
//!
//! # Determinism
//!
//! A cell's output is a pure function of `(experiment, seed, smoke,
//! telemetry)` — the executor only decides *where and when* a cell runs,
//! never what it computes — so report JSON is byte-identical regardless of
//! `jobs`, and `--seeds 1` with a seed offset reproduces any single cell of
//! a larger sweep. Replicate 0 always runs the experiment's historical
//! default seed, so existing single-run artifacts stay reproducible.

use crate::report::{render_aggregate_table, AggregateRow};
use fg_core::rng::SeedFork;
use fg_core::stats::Summary;
use fg_sentinel::{AlertPolicy, SentinelReport};
use fg_telemetry::{TelemetrySnapshot, TraceSnapshot};
use serde::Serialize;
use serde_json::Value;
use std::fmt::Display;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Per-cell inputs handed to an experiment's run hook.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentParams {
    /// Master seed for this replicate (see [`replicate_seed`]).
    pub seed: u64,
    /// Use the experiment's shrunken smoke config (CI-sized).
    pub smoke: bool,
    /// Capture a telemetry snapshot where the experiment supports it.
    pub telemetry: bool,
    /// Capture the sentinel's alert report (TTD, incident timeline). The
    /// sentinel always observes; this only controls result capture.
    pub alerts: bool,
    /// Enable span tracing and capture a trace snapshot where the
    /// experiment supports it. Tracing is pure observation: enabling it
    /// never changes any other artifact.
    pub traces: bool,
    /// Shard count for the defended app's keyed stores (1 = the
    /// single-shard deterministic layout). Replayed single-threaded, any
    /// shard count produces byte-identical artifacts — see
    /// `tests/shard_independence.rs`.
    pub shards: usize,
}

impl ExperimentParams {
    /// The [`fg_core::shard::ConcurrencyMode`] implied by
    /// [`ExperimentParams::shards`], for handing to `AppConfig`.
    pub fn concurrency(&self) -> fg_core::shard::ConcurrencyMode {
        fg_core::shard::ConcurrencyMode::from_shards(self.shards)
    }
}

/// What one experiment run hands back to the harness.
#[derive(Clone, Debug)]
pub struct CellOutput {
    /// The human-readable report (`Display` form).
    pub display: String,
    /// The report as a JSON tree (scalar leaves become aggregate metrics).
    pub report: Value,
    /// Telemetry snapshot, when requested and supported.
    pub telemetry: Option<TelemetrySnapshot>,
    /// Sentinel alert report, when requested and supported.
    pub alerts: Option<SentinelReport>,
    /// Span-trace snapshot, when requested and supported.
    pub traces: Option<TraceSnapshot>,
}

impl CellOutput {
    /// Packages a typed report (its `Display` text plus JSON tree).
    pub fn of<R: Display + Serialize>(report: &R) -> CellOutput {
        CellOutput {
            display: report.to_string(),
            report: serde_json::to_value(report).expect("reports serialize cleanly"),
            telemetry: None,
            alerts: None,
            traces: None,
        }
    }

    /// Attaches a telemetry snapshot.
    pub fn with_telemetry(mut self, snapshot: TelemetrySnapshot) -> CellOutput {
        self.telemetry = Some(snapshot);
        self
    }

    /// Attaches a sentinel report.
    pub fn with_alerts(mut self, report: Option<SentinelReport>) -> CellOutput {
        self.alerts = report;
        self
    }

    /// Attaches a span-trace snapshot.
    pub fn with_traces(mut self, snapshot: Option<TraceSnapshot>) -> CellOutput {
        self.traces = snapshot;
        self
    }
}

/// A registry entry for one experiment: everything the harness needs to run
/// it under any seed.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentSpec {
    /// CLI name, e.g. `"ablation"`.
    pub name: &'static str,
    /// The module's historical default seed (replicate 0 runs exactly this).
    pub default_seed: u64,
    /// Whether the run hook can capture telemetry.
    pub telemetry_capable: bool,
    /// Runs one cell. A plain `fn` pointer keeps the spec `Send + Sync`
    /// without any `Send` bound on the simulation itself.
    pub run: fn(&ExperimentParams) -> CellOutput,
    /// The defence deployments this experiment exercises, as declarative
    /// profiles for `fg-analyze`'s config pass (policy + scenario facts +
    /// waivers for paper-accurate misconfigurations). A plain `fn` pointer
    /// keeps the spec `Copy`.
    pub profiles: fn() -> Vec<fg_mitigation::profile::DefenceProfile>,
    /// The alert policy the experiment's designated sentinel cell enforces
    /// (also consumed declaratively by `fg-analyze`'s alert lints). A plain
    /// `fn` pointer keeps the spec `Copy`; experiments without a sentinel
    /// declare [`AlertPolicy::none`].
    pub alerts: fn() -> AlertPolicy,
}

/// One completed (experiment × seed) cell.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Experiment name.
    pub name: &'static str,
    /// Replicate index within the sweep (0 = default seed).
    pub replicate: usize,
    /// The seed this cell ran under.
    pub seed: u64,
    /// Human-readable report.
    pub display: String,
    /// Pretty-printed report JSON — the per-cell artifact, byte-identical
    /// across thread counts.
    pub json: String,
    /// Flattened numeric leaves of the report (key → value).
    pub metrics: Vec<(String, f64)>,
    /// Telemetry snapshot, when captured.
    pub telemetry: Option<TelemetrySnapshot>,
    /// Sentinel alert report, when captured.
    pub alerts: Option<SentinelReport>,
    /// Span-trace snapshot, when captured.
    pub traces: Option<TraceSnapshot>,
}

/// All replicates of one experiment plus cross-seed aggregation.
#[derive(Clone, Debug)]
pub struct ExperimentRun {
    /// Experiment name.
    pub name: &'static str,
    /// Per-replicate results, in replicate order.
    pub cells: Vec<CellResult>,
    /// Cross-seed aggregate per scalar metric, in first-seen key order.
    pub aggregate: Vec<AggregateRow>,
    /// All replicates' telemetry merged (see [`TelemetrySnapshot::merge`]).
    pub merged_telemetry: Option<TelemetrySnapshot>,
}

impl ExperimentRun {
    /// Renders the cross-seed aggregate as a `mean ± stddev` table.
    pub fn render_aggregate(&self) -> String {
        render_aggregate_table(&self.aggregate)
    }

    /// The aggregate artifact (`results/<name>.agg.json`) as pretty JSON:
    /// the experiment name, the seeds aggregated, and one row per metric.
    pub fn aggregate_json(&self) -> String {
        let artifact = Value::Object(vec![
            ("experiment".to_owned(), Value::String(self.name.to_owned())),
            (
                "seeds".to_owned(),
                Value::Array(self.cells.iter().map(|c| Value::UInt(c.seed)).collect()),
            ),
            (
                "metrics".to_owned(),
                serde_json::to_value(&self.aggregate).expect("aggregates serialize cleanly"),
            ),
        ]);
        serde_json::to_string_pretty(&artifact).expect("aggregates serialize cleanly")
    }

    /// The alerts artifact (`results/<name>.alerts.json`) as pretty JSON:
    /// per-seed time-to-detection, a cross-seed TTD summary, and replicate
    /// 0's full sentinel report (alert events + incident timeline). `None`
    /// when no replicate captured a sentinel report.
    pub fn alerts_json(&self) -> Option<String> {
        let first = self.cells.iter().find_map(|c| c.alerts.as_ref())?;
        let ttd_mins =
            |r: &SentinelReport| r.time_to_detection.map(|d| d.as_millis() as f64 / 60_000.0);
        let replicates: Vec<Value> = self
            .cells
            .iter()
            .filter_map(|c| {
                let report = c.alerts.as_ref()?;
                Some(Value::Object(vec![
                    ("seed".to_owned(), Value::UInt(c.seed)),
                    (
                        "alerts_fired".to_owned(),
                        Value::UInt(report.events.len() as u64),
                    ),
                    (
                        "detected".to_owned(),
                        Value::Bool(report.first_firing.is_some()),
                    ),
                    (
                        "time_to_detection_mins".to_owned(),
                        match ttd_mins(report) {
                            Some(m) => Value::Float(m),
                            None => Value::Null,
                        },
                    ),
                ]))
            })
            .collect();
        let ttds: Summary = self
            .cells
            .iter()
            .filter_map(|c| c.alerts.as_ref().and_then(&ttd_mins))
            .collect();
        let summary = Value::Object(vec![
            (
                "replicates_detected".to_owned(),
                Value::UInt(ttds.count() as u64),
            ),
            (
                "replicates_total".to_owned(),
                Value::UInt(replicates.len() as u64),
            ),
            ("ttd_mean_mins".to_owned(), Value::Float(ttds.mean())),
            ("ttd_std_dev_mins".to_owned(), Value::Float(ttds.std_dev())),
            (
                "ttd_min_mins".to_owned(),
                Value::Float(ttds.min().unwrap_or(0.0)),
            ),
            (
                "ttd_max_mins".to_owned(),
                Value::Float(ttds.max().unwrap_or(0.0)),
            ),
        ]);
        let artifact = Value::Object(vec![
            ("experiment".to_owned(), Value::String(self.name.to_owned())),
            (
                "policy".to_owned(),
                Value::String(first.policy.name.clone()),
            ),
            (
                "expect_detection".to_owned(),
                Value::Bool(first.policy.expect_detection),
            ),
            ("replicates".to_owned(), Value::Array(replicates)),
            ("time_to_detection".to_owned(), summary),
            (
                "report".to_owned(),
                serde_json::to_value(first).expect("sentinel reports serialize cleanly"),
            ),
        ]);
        Some(serde_json::to_string_pretty(&artifact).expect("alert artifacts serialize cleanly"))
    }

    /// The trace artifact (`results/<name>.traces.json`) as pretty JSON in
    /// Chrome trace-event form (Perfetto-loadable): replicate 0's span
    /// export plus provenance in `otherData`. `None` when no replicate
    /// captured traces.
    pub fn traces_json(&self) -> Option<String> {
        let cell = self.cells.iter().find(|c| c.traces.is_some())?;
        let snapshot = cell.traces.as_ref()?;
        let value = snapshot.to_chrome_trace(&[
            ("experiment", Value::String(self.name.to_owned())),
            ("seed", Value::UInt(cell.seed)),
        ]);
        Some(serde_json::to_string_pretty(&value).expect("trace artifacts serialize cleanly"))
    }

    /// `true` when replicate 0 captured both a sentinel incident and a trace
    /// snapshot, but some incident exemplar `trace_id` does not resolve to
    /// an exported request span — the `--traces` CI gate condition.
    pub fn exemplars_unresolved(&self) -> bool {
        let Some(cell) = self.cells.iter().find(|c| c.traces.is_some()) else {
            return false;
        };
        let (Some(snapshot), Some(alerts)) = (cell.traces.as_ref(), cell.alerts.as_ref()) else {
            return false;
        };
        let exported = snapshot.request_trace_ids();
        alerts
            .incident
            .exemplar_trace_ids
            .iter()
            .any(|id| !exported.contains(id))
    }

    /// `true` when this experiment's alert policy expects detection but some
    /// captured replicate never saw a firing alert — the CI gate condition.
    pub fn detection_missing(&self) -> bool {
        let captured: Vec<&SentinelReport> = self
            .cells
            .iter()
            .filter_map(|c| c.alerts.as_ref())
            .collect();
        match captured.first() {
            Some(first) => {
                first.policy.expect_detection
                    && captured.iter().any(|r| r.time_to_detection.is_none())
            }
            None => false,
        }
    }
}

/// Sweep-wide knobs for [`run_matrix`].
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Replicates per experiment.
    pub seeds: usize,
    /// First replicate index (`--seed-offset`): `seeds: 1, seed_offset: i`
    /// reproduces exactly cell `i` of a `seeds: N` sweep.
    pub seed_offset: usize,
    /// Worker threads; cells queue when there are more cells than workers.
    pub jobs: usize,
    /// Run every experiment's smoke config.
    pub smoke: bool,
    /// Capture telemetry where supported.
    pub telemetry: bool,
    /// Capture sentinel alert reports where supported.
    pub alerts: bool,
    /// Enable span tracing on replicate 0 (the cell whose incident
    /// timeline [`ExperimentRun::alerts_json`] exports) and capture its
    /// trace snapshot.
    pub traces: bool,
    /// Shard count for every cell's defended-app keyed stores (`--shards`;
    /// 1 = deterministic single-shard layout).
    pub shards: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            seeds: 1,
            seed_offset: 0,
            jobs: 1,
            smoke: false,
            telemetry: false,
            alerts: false,
            traces: false,
            shards: 1,
        }
    }
}

/// The seed for replicate `replicate` of an experiment whose default seed is
/// `default_seed`.
///
/// Replicate 0 is the default seed itself (keeping historical single-run
/// artifacts byte-identical); later replicates fork deterministically via
/// [`SeedFork`], so the set of seeds for `N` replicates is a prefix of the
/// set for `M > N` replicates.
pub fn replicate_seed(default_seed: u64, replicate: usize) -> u64 {
    if replicate == 0 {
        default_seed
    } else {
        SeedFork::new(default_seed).seed_indexed("replicate", replicate as u64)
    }
}

/// Runs the full (experiment × seed) matrix across `config.jobs` worker
/// threads and aggregates each experiment's replicates.
///
/// Cells are drained from a single shared queue via an atomic cursor —
/// work-stealing-lite: no worker idles while cells remain, whatever the mix
/// of fast and slow experiments. Results land in per-cell slots, so output
/// order (and content — see the module docs) is independent of scheduling.
pub fn run_matrix(specs: &[ExperimentSpec], config: &HarnessConfig) -> Vec<ExperimentRun> {
    let seeds = config.seeds.max(1);
    let cells: Vec<(usize, usize)> = (0..specs.len())
        .flat_map(|s| (0..seeds).map(move |r| (s, config.seed_offset + r)))
        .collect();
    let slots: Vec<Mutex<Option<CellResult>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let workers = config.jobs.max(1).min(cells.len().max(1));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&(spec_idx, replicate)) = cells.get(i) else {
                    break;
                };
                let spec = &specs[spec_idx];
                let params = ExperimentParams {
                    seed: replicate_seed(spec.default_seed, replicate),
                    smoke: config.smoke,
                    telemetry: config.telemetry && spec.telemetry_capable,
                    alerts: config.alerts,
                    // Trace replicate 0 only: the artifact is one exemplar
                    // trace per experiment (the replicate whose incident
                    // timeline `alerts_json` exports), not a per-seed sweep.
                    traces: config.traces && replicate == 0,
                    shards: config.shards.max(1),
                };
                let out = (spec.run)(&params);
                *slots[i].lock().expect("no panics while holding slot") = Some(CellResult {
                    name: spec.name,
                    replicate,
                    seed: params.seed,
                    json: serde_json::to_string_pretty(&out.report)
                        .expect("reports serialize cleanly"),
                    metrics: scalar_metrics(&out.report),
                    display: out.display,
                    telemetry: out.telemetry,
                    alerts: out.alerts,
                    traces: out.traces,
                });
            });
        }
    });

    let mut results: Vec<Option<CellResult>> = slots
        .into_iter()
        .map(|s| s.into_inner().expect("workers finished cleanly"))
        .collect();
    specs
        .iter()
        .enumerate()
        .map(|(spec_idx, spec)| {
            let cells: Vec<CellResult> = (0..seeds)
                .map(|r| {
                    results[spec_idx * seeds + r]
                        .take()
                        .expect("every cell ran")
                })
                .collect();
            let merged_telemetry =
                TelemetrySnapshot::merged(cells.iter().filter_map(|c| c.telemetry.clone()));
            ExperimentRun {
                name: spec.name,
                aggregate: aggregate_metrics(&cells),
                merged_telemetry,
                cells,
            }
        })
        .collect()
}

/// Flattens a report's JSON tree into dotted scalar-metric keys.
///
/// Objects contribute their field names; array elements are labelled by
/// their string-valued fields when present (`cells.recommended.pumping.…`
/// instead of `cells.3.…`), falling back to the index, with `#i` appended on
/// a label collision. Booleans, strings, and nulls are not metrics and are
/// skipped.
pub fn scalar_metrics(report: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    flatten(report, "", &mut out);
    out
}

fn flatten(value: &Value, prefix: &str, out: &mut Vec<(String, f64)>) {
    let join = |field: &str| {
        if prefix.is_empty() {
            field.to_owned()
        } else {
            format!("{prefix}.{field}")
        }
    };
    match value {
        Value::Int(i) => out.push((prefix.to_owned(), *i as f64)),
        Value::UInt(u) => out.push((prefix.to_owned(), *u as f64)),
        Value::Float(f) => out.push((prefix.to_owned(), *f)),
        Value::Object(pairs) => {
            for (field, v) in pairs {
                flatten(v, &join(field), out);
            }
        }
        Value::Array(items) => {
            let mut seen: Vec<String> = Vec::with_capacity(items.len());
            for (i, v) in items.iter().enumerate() {
                let mut label = element_label(v, i);
                if seen.contains(&label) {
                    label = format!("{label}#{i}");
                }
                flatten(v, &join(&label), out);
                seen.push(label);
            }
        }
        Value::Null | Value::Bool(_) | Value::String(_) => {}
    }
}

/// A stable, human-readable label for one array element: its string-valued
/// fields joined by `.` (lowercased), or the element index.
fn element_label(v: &Value, index: usize) -> String {
    if let Value::Object(pairs) = v {
        let strings: Vec<String> = pairs
            .iter()
            .filter_map(|(_, v)| match v {
                Value::String(s) => Some(s.to_lowercase().replace(' ', "_")),
                _ => None,
            })
            .collect();
        if !strings.is_empty() {
            return strings.join(".");
        }
    }
    index.to_string()
}

/// Cross-seed aggregation: one [`AggregateRow`] per metric key, keys in
/// first-seen order across replicates.
fn aggregate_metrics(cells: &[CellResult]) -> Vec<AggregateRow> {
    let mut keys: Vec<&str> = Vec::new();
    for cell in cells {
        for (k, _) in &cell.metrics {
            if !keys.contains(&k.as_str()) {
                keys.push(k);
            }
        }
    }
    keys.iter()
        .map(|key| {
            let summary: Summary = cells
                .iter()
                .flat_map(|c| c.metrics.iter().filter(|(k, _)| k == key).map(|(_, v)| *v))
                .collect();
            AggregateRow {
                metric: (*key).to_owned(),
                mean: summary.mean(),
                std_dev: summary.std_dev(),
                min: summary.min().unwrap_or(0.0),
                max: summary.max().unwrap_or(0.0),
                n: summary.count(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn toy_spec() -> ExperimentSpec {
        #[derive(Serialize)]
        struct ToyReport {
            seed: u64,
            doubled: u64,
        }
        impl Display for ToyReport {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "toy seed={} doubled={}", self.seed, self.doubled)
            }
        }
        ExperimentSpec {
            name: "toy",
            default_seed: 7,
            telemetry_capable: false,
            run: |p| {
                CellOutput::of(&ToyReport {
                    seed: p.seed,
                    doubled: p.seed.wrapping_mul(2),
                })
            },
            profiles: Vec::new,
            alerts: AlertPolicy::none,
        }
    }

    #[test]
    fn replicate_zero_is_the_default_seed() {
        assert_eq!(replicate_seed(0xAB1A, 0), 0xAB1A);
        assert_ne!(replicate_seed(0xAB1A, 1), 0xAB1A);
        // Replicates are distinct and deterministic.
        assert_ne!(replicate_seed(0xAB1A, 1), replicate_seed(0xAB1A, 2));
        assert_eq!(replicate_seed(0xAB1A, 3), replicate_seed(0xAB1A, 3));
    }

    #[test]
    fn cell_json_is_thread_count_independent() {
        let specs = [toy_spec()];
        let run = |jobs| {
            run_matrix(
                &specs,
                &HarnessConfig {
                    seeds: 4,
                    jobs,
                    ..HarnessConfig::default()
                },
            )
        };
        let sequential = run(1);
        let parallel = run(4);
        for (s, p) in sequential[0].cells.iter().zip(&parallel[0].cells) {
            assert_eq!(s.seed, p.seed);
            assert_eq!(s.json, p.json, "replicate {} diverged", s.replicate);
        }
    }

    #[test]
    fn seed_offset_reproduces_a_single_cell_of_a_sweep() {
        let specs = [toy_spec()];
        let sweep = run_matrix(
            &specs,
            &HarnessConfig {
                seeds: 4,
                jobs: 2,
                ..HarnessConfig::default()
            },
        );
        let lone = run_matrix(
            &specs,
            &HarnessConfig {
                seeds: 1,
                seed_offset: 2,
                ..HarnessConfig::default()
            },
        );
        assert_eq!(lone[0].cells[0].seed, sweep[0].cells[2].seed);
        assert_eq!(lone[0].cells[0].json, sweep[0].cells[2].json);
    }

    #[test]
    fn all_cells_run_even_with_more_cells_than_workers() {
        static RUNS: AtomicU64 = AtomicU64::new(0);
        #[derive(Serialize)]
        struct Noop;
        impl Display for Noop {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("noop")
            }
        }
        let spec = ExperimentSpec {
            name: "noop",
            default_seed: 1,
            telemetry_capable: false,
            run: |_| {
                RUNS.fetch_add(1, Ordering::Relaxed);
                CellOutput::of(&Noop)
            },
            profiles: Vec::new,
            alerts: AlertPolicy::none,
        };
        let specs = [spec; 3];
        let runs = run_matrix(
            &specs,
            &HarnessConfig {
                seeds: 5,
                jobs: 2,
                ..HarnessConfig::default()
            },
        );
        assert_eq!(runs.len(), 3);
        assert!(runs.iter().all(|r| r.cells.len() == 5));
        assert_eq!(RUNS.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn aggregates_summarize_across_seeds() {
        let specs = [toy_spec()];
        let runs = run_matrix(
            &specs,
            &HarnessConfig {
                seeds: 3,
                jobs: 3,
                ..HarnessConfig::default()
            },
        );
        let agg = &runs[0].aggregate;
        let doubled = agg.iter().find(|r| r.metric == "doubled").unwrap();
        assert_eq!(doubled.n, 3);
        assert!(doubled.min <= doubled.mean && doubled.mean <= doubled.max);
        let expected: f64 = runs[0]
            .cells
            .iter()
            .map(|c| (c.seed.wrapping_mul(2)) as f64)
            .sum::<f64>()
            / 3.0;
        assert!((doubled.mean - expected).abs() < 1e-6);
    }

    #[test]
    fn scalar_metrics_flatten_nested_reports() {
        let value = serde_json::to_value(
            &serde_json::from_str::<Value>(
                r#"{
                "total": 10,
                "cells": [
                    {"posture": "Recommended", "attack": "Pumping", "effect": 0.5},
                    {"posture": "Recommended", "attack": "DoI hold", "effect": 0.25}
                ],
                "note": "strings are not metrics"
            }"#,
            )
            .unwrap(),
        )
        .unwrap();
        let metrics = scalar_metrics(&value);
        assert_eq!(
            metrics,
            vec![
                ("total".to_owned(), 10.0),
                ("cells.recommended.pumping.effect".to_owned(), 0.5),
                ("cells.recommended.doi_hold.effect".to_owned(), 0.25),
            ]
        );
    }

    #[test]
    fn colliding_array_labels_get_index_suffixes() {
        let value =
            serde_json::from_str::<Value>(r#"[{"k": "same", "v": 1}, {"k": "same", "v": 2}]"#)
                .unwrap();
        let metrics = scalar_metrics(&value);
        assert_eq!(
            metrics,
            vec![("same.v".to_owned(), 1.0), ("same#1.v".to_owned(), 2.0)]
        );
    }
}
