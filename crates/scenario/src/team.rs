//! The security team's incident-response loop.
//!
//! §IV-A describes the human side of the defence: engineers inspect
//! reservation requests, identify the attack's fingerprint patterns, and
//! deploy blocking rules — which the attacker then evades by rotation,
//! "typically … within an average of 5.3 hours", forcing the next rule.
//! [`SecurityTeam::review`] runs that loop on a cadence: it scans the recent
//! log window for hold-heavy, never-paying fingerprints and passenger-name
//! abuse, deploys block rules, and feeds IP reputation.

use crate::app::DefendedApp;
use fg_core::time::{SimDuration, SimTime};
use fg_detection::log::Endpoint;
use fg_detection::names::NameAbuseAnalyzer;
use fg_inventory::booking::BookingStatus;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Review-loop configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TeamConfig {
    /// How far back each review looks.
    pub window: SimDuration,
    /// Holds per fingerprint in the window above which, with zero payments,
    /// the fingerprint is deemed an attack identity.
    pub hold_threshold: u64,
    /// Whether name-pattern analysis may also trigger blocks.
    pub use_name_heuristics: bool,
    /// Respond with IP-reputation reports only, never fingerprint rules —
    /// the posture of a defender whose only lever is the network edge (used
    /// by the §III-B proxy ablation).
    pub report_ips_only: bool,
}

impl Default for TeamConfig {
    fn default() -> Self {
        TeamConfig {
            window: SimDuration::from_hours(6),
            hold_threshold: 6,
            use_name_heuristics: true,
            report_ips_only: false,
        }
    }
}

/// Outcome of one review pass.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReviewOutcome {
    /// Fingerprint identities newly blocked this pass.
    pub fingerprints_blocked: usize,
    /// IPs reported to reputation this pass.
    pub ips_reported: usize,
    /// Whether name heuristics flagged automated abuse in the window.
    pub automated_names_flagged: bool,
    /// Whether name heuristics flagged manual abuse in the window.
    pub manual_names_flagged: bool,
}

/// The periodic reviewer.
#[derive(Clone, Debug, Default)]
pub struct SecurityTeam {
    config: TeamConfig,
    already_blocked: std::collections::HashSet<u64>,
    reviews: u64,
}

impl SecurityTeam {
    /// Creates a team with the given review parameters.
    pub fn new(config: TeamConfig) -> Self {
        SecurityTeam {
            config,
            already_blocked: std::collections::HashSet::new(),
            reviews: 0,
        }
    }

    /// Number of review passes run.
    pub fn reviews(&self) -> u64 {
        self.reviews
    }

    /// Runs one review pass over `app` at `now`.
    pub fn review(&mut self, app: &mut DefendedApp, now: SimTime) -> ReviewOutcome {
        self.reviews += 1;
        let from = now - self.config.window;
        let mut outcome = ReviewOutcome::default();

        // 1. Funnel analysis per fingerprint hash: many holds, zero pays.
        let mut holds: HashMap<u64, u64> = HashMap::new();
        let mut pays: HashMap<u64, u64> = HashMap::new();
        let mut ips_used: HashMap<u64, std::collections::BTreeSet<fg_netsim::ip::IpAddress>> =
            HashMap::new();
        for rec in app.logs().iter().rev() {
            if rec.at < from {
                break; // logs are append-ordered; everything earlier is out of window
            }
            match rec.endpoint {
                Endpoint::Hold if rec.ok => {
                    *holds.entry(rec.fingerprint).or_insert(0) += 1;
                    ips_used.entry(rec.fingerprint).or_default().insert(rec.ip);
                }
                Endpoint::Pay if rec.ok => {
                    *pays.entry(rec.fingerprint).or_insert(0) += 1;
                }
                _ => {}
            }
        }

        let mut suspects: Vec<u64> = holds
            .iter()
            .filter(|(hash, &h)| {
                h >= self.config.hold_threshold
                    && pays.get(*hash).copied().unwrap_or(0) == 0
                    && !self.already_blocked.contains(*hash)
            })
            .map(|(&hash, _)| hash)
            .collect();
        suspects.sort_unstable(); // deterministic rule deployment order

        // 2. Name heuristics over recent bookings (corroboration + the
        //    manual-attack path that fingerprint analysis cannot see).
        if self.config.use_name_heuristics {
            let mut analyzer = NameAbuseAnalyzer::new();
            for booking in app.reservations().bookings() {
                if booking.created_at() >= from && booking.status() != BookingStatus::Cancelled {
                    analyzer.record(booking.passengers());
                }
            }
            let report = analyzer.report();
            outcome.automated_names_flagged = report.automated_suspected();
            outcome.manual_names_flagged = report.manual_suspected();
        }

        // 3. Deploy rules (or, in IP-only mode, just burn the exits). A real
        //    team blocks every exit the flagged identity used in the window.
        if self.config.report_ips_only {
            for hash in suspects {
                for &ip in ips_used.get(&hash).into_iter().flatten() {
                    // A manually confirmed attack exit carries heavy evidence
                    // (enough to trip the subnet aggregate on its own).
                    app.detection_mut().reputation_mut().report(ip, 12.0, now);
                    outcome.ips_reported += 1;
                }
            }
            return outcome;
        }
        for hash in suspects {
            if app.fingerprint_by_hash(hash).is_some() {
                // Identity-scoped rules only: attribute-combo rules match a
                // sizeable share of the genuine population (mimicry bots use
                // common configurations by design) and would lock real
                // customers out — the §V usability/security balance.
                app.policy_mut().rules_mut().add_rule(
                    fg_mitigation::blocklist::BlockRule::FingerprintIdentity(hash),
                    now,
                );
                self.already_blocked.insert(hash);
                outcome.fingerprints_blocked += 1;
                for &ip in ips_used.get(&hash).into_iter().flatten() {
                    app.detection_mut().reputation_mut().report(ip, 5.0, now);
                    outcome.ips_reported += 1;
                }
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppConfig;
    use fg_behavior::api::{App, ClientRequest};
    use fg_core::ids::{ClientId, CountryCode, FlightId};
    use fg_fingerprint::population::PopulationModel;
    use fg_inventory::flight::Flight;
    use fg_inventory::passenger::Passenger;
    use fg_mitigation::gating::TrustTier;
    use fg_mitigation::policy::PolicyConfig;
    use fg_netsim::geo::GeoDatabase;
    use fg_netsim::ip::IpClass;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn request(seed: u64, is_bot: bool) -> ClientRequest {
        let mut rng = StdRng::seed_from_u64(seed);
        ClientRequest {
            client: ClientId(seed),
            ip: GeoDatabase::default_world()
                .sample_ip(CountryCode::new("US"), IpClass::Residential, &mut rng)
                .unwrap(),
            fingerprint: PopulationModel::default_web().sample_human(&mut rng),
            tier: TrustTier::Verified,
            is_bot,
        }
    }

    fn app() -> DefendedApp {
        let mut a = DefendedApp::new(AppConfig::airline(PolicyConfig::traditional_antibot()), 3);
        a.add_flight(Flight::new(FlightId(1), 300, SimTime::from_days(30)));
        a
    }

    fn pax(tag: u64) -> Vec<Passenger> {
        vec![Passenger::simple(&format!("BOT{tag}"), "SPIN")]
    }

    #[test]
    fn blocks_hold_heavy_never_paying_fingerprints() {
        let mut a = app();
        let bot = request(1, true);
        // Ten holds, zero payments in the window.
        for i in 0..10u64 {
            a.hold(&bot, FlightId(1), pax(i), SimTime::from_mins(i * 31))
                .unwrap();
        }
        // Control: a human who holds once and pays.
        let human = request(2, false);
        let b = a
            .hold(&human, FlightId(1), pax(99), SimTime::from_mins(1))
            .unwrap();
        a.pay(&human, b, SimTime::from_mins(3)).unwrap();

        let mut team = SecurityTeam::new(TeamConfig::default());
        let outcome = team.review(&mut a, SimTime::from_hours(6));
        assert_eq!(outcome.fingerprints_blocked, 1, "{outcome:?}");
        assert_eq!(outcome.ips_reported, 1);

        // The bot's next request is blocked; the human's is not.
        assert!(a
            .hold(&bot, FlightId(1), pax(20), SimTime::from_hours(7))
            .defence_refused());
        assert!(a.search(&human, SimTime::from_hours(7)).is_ok());
    }

    #[test]
    fn does_not_reblock_the_same_identity() {
        let mut a = app();
        let bot = request(3, true);
        for i in 0..10u64 {
            a.hold(&bot, FlightId(1), pax(i), SimTime::from_mins(i * 31))
                .unwrap();
        }
        let mut team = SecurityTeam::new(TeamConfig::default());
        assert_eq!(
            team.review(&mut a, SimTime::from_hours(6))
                .fingerprints_blocked,
            1
        );
        assert_eq!(
            team.review(&mut a, SimTime::from_hours(6))
                .fingerprints_blocked,
            0
        );
        assert_eq!(team.reviews(), 2);
    }

    #[test]
    fn paying_clients_are_never_flagged() {
        let mut a = app();
        let frequent = request(4, false);
        for i in 0..10u64 {
            let b = a
                .hold(&frequent, FlightId(1), pax(i), SimTime::from_mins(i * 40))
                .unwrap();
            a.pay(&frequent, b, SimTime::from_mins(i * 40 + 5)).unwrap();
        }
        let mut team = SecurityTeam::new(TeamConfig::default());
        let outcome = team.review(&mut a, SimTime::from_hours(8));
        assert_eq!(outcome.fingerprints_blocked, 0, "{outcome:?}");
    }

    #[test]
    fn window_excludes_old_activity() {
        let mut a = app();
        let bot = request(5, true);
        for i in 0..10u64 {
            a.hold(&bot, FlightId(1), pax(i), SimTime::from_mins(i * 31))
                .unwrap();
        }
        let mut team = SecurityTeam::new(TeamConfig::default());
        // Review two days later: the activity is out of the 6 h window.
        let outcome = team.review(&mut a, SimTime::from_days(2));
        assert_eq!(outcome.fingerprints_blocked, 0);
    }
}
