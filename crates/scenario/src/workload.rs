//! Recorded wire workloads: the bridge between the deterministic simulator
//! and the online decision service.
//!
//! A [`Workload`] is a schema-versioned, replayable stream of
//! [`WireRequest`]s — exactly the requests the simulator's agents pushed
//! through [`DefendedApp`]'s gate, in order. `fg-loadgen` replays them over
//! HTTP against `fg-serve`, and the decision-parity test replays them both
//! in-process and over the wire to assert identical decisions. Because
//! decisions are a pure function of (request stream, config, seed, shard
//! count), a recorded workload pins the whole serving contract.

use crate::app::{AppConfig, DefendedApp};
use crate::engine::{share, Simulation};
use fg_behavior::api::ClientRequest;
use fg_behavior::legit::{LegitConfig, LegitPopulation};
use fg_behavior::seat_spinner::{SeatSpinner, SeatSpinnerConfig};
use fg_behavior::sms_pumper::{SmsPumper, SmsPumperConfig};
use fg_core::ids::{BookingRef, ClientId, FlightId};
use fg_core::rng::SeedFork;
use fg_core::time::SimTime;
use fg_detection::log::Endpoint;
use fg_fingerprint::attributes::Fingerprint;
use fg_inventory::flight::Flight;
use fg_mitigation::gating::TrustTier;
use fg_mitigation::policy::PolicyConfig;
use fg_netsim::geo::GeoDatabase;
use serde::{Deserialize, Serialize};

/// Version stamp on the serialized workload format.
pub const WORKLOAD_SCHEMA: u32 = 1;

/// One gated request, flattened to its wire-visible parts. This is also the
/// request body of the decision service's `POST /v1/decide`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WireRequest {
    /// Session clock for the request, in sim-time milliseconds.
    pub now_ms: u64,
    /// The endpoint the client hit.
    pub endpoint: Endpoint,
    /// Client identity (as sessionized upstream).
    pub client: ClientId,
    /// Source IP.
    pub ip: fg_netsim::ip::IpAddress,
    /// Browser/device fingerprint.
    pub fingerprint: Fingerprint,
    /// Trust standing at request time.
    pub tier: TrustTier,
    /// Booking reference, for booking-scoped endpoints.
    pub booking: Option<BookingRef>,
    /// Ground truth (never an input to any decision — kept for evaluation).
    pub is_bot: bool,
}

impl WireRequest {
    /// Flattens a gate call into its wire form.
    pub fn from_parts(
        req: &ClientRequest,
        endpoint: Endpoint,
        booking: Option<BookingRef>,
        now: SimTime,
    ) -> Self {
        WireRequest {
            now_ms: now.as_millis(),
            endpoint,
            client: req.client,
            ip: req.ip,
            fingerprint: req.fingerprint.clone(),
            tier: req.tier,
            booking,
            is_bot: req.is_bot,
        }
    }

    /// Reassembles the behaviour-layer request.
    pub fn client_request(&self) -> ClientRequest {
        ClientRequest {
            client: self.client,
            ip: self.ip,
            fingerprint: self.fingerprint.clone(),
            tier: self.tier,
            is_bot: self.is_bot,
        }
    }

    /// The request's session clock.
    pub fn now(&self) -> SimTime {
        SimTime::from_millis(self.now_ms)
    }
}

/// A replayable request stream plus the seed that produced it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Serialization format version ([`WORKLOAD_SCHEMA`]).
    pub schema: u32,
    /// Master seed the generating simulation ran under.
    pub seed: u64,
    /// The requests, in gate order.
    pub requests: Vec<WireRequest>,
}

impl Workload {
    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("workload serializes")
    }

    /// Parses a serialized workload, rejecting unknown schema versions.
    pub fn from_json(s: &str) -> Result<Workload, String> {
        let w: Workload = serde_json::from_str(s).map_err(|e| e.to_string())?;
        if w.schema != WORKLOAD_SCHEMA {
            return Err(format!(
                "unsupported workload schema {} (expected {WORKLOAD_SCHEMA})",
                w.schema
            ));
        }
        Ok(w)
    }
}

/// Parameters for [`generate`].
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Master seed; equal seeds produce byte-identical workloads.
    pub seed: u64,
    /// Simulated horizon in hours.
    pub horizon_hours: u64,
    /// Mean legitimate bookers arriving per day.
    pub arrivals_per_day: f64,
    /// Include a seat-spinning bot session (Case A traffic shape).
    pub seat_spinner: bool,
    /// Include an SMS-pumping bot session (Case C/D traffic shape).
    pub sms_pumper: bool,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 42,
            horizon_hours: 24,
            arrivals_per_day: 400.0,
            seat_spinner: true,
            sms_pumper: true,
        }
    }
}

/// Runs a team-free simulation with recording enabled and returns the
/// captured request stream.
///
/// Deliberately team-free: a [`crate::team::SecurityTeam`] deploys block
/// rules mid-run, which would make the recorded stream's decisions depend on
/// state a wire replay does not reconstruct. Without a team, decisions are a
/// pure function of the stream itself, so any replayer (in-process or over
/// HTTP) reproduces them exactly.
pub fn generate(config: &WorkloadConfig) -> Workload {
    let fork = SeedFork::new(config.seed);
    let geo = GeoDatabase::default_world();
    let end = SimTime::from_hours(config.horizon_hours);

    let mut app = DefendedApp::new(
        AppConfig::airline(PolicyConfig::recommended()),
        fork.seed("app"),
    );
    let flights: Vec<FlightId> = (1..=4).map(FlightId).collect();
    let departure = SimTime::from_hours(config.horizon_hours + 21 * 24);
    for &f in &flights {
        app.add_flight(Flight::new(f, 180, departure));
    }
    app.record_workload();

    let mut sim = Simulation::new(app, fork.seed("sim"));
    let mut legit_cfg = LegitConfig::default_airline(flights.clone(), end);
    legit_cfg.arrivals_per_day = config.arrivals_per_day;
    let (_legit, legit_agent) = share(LegitPopulation::new(legit_cfg, geo.clone(), 1_000_000));
    sim.add_agent(legit_agent, SimTime::ZERO);

    let mut attacker_rng = fork.rng("attacker");
    if config.seat_spinner {
        let (_s, agent) = share(SeatSpinner::new(
            SeatSpinnerConfig::airline_a(flights[0]),
            ClientId(1),
            geo.clone(),
            &mut attacker_rng,
        ));
        sim.add_agent(agent, SimTime::from_mins(30));
    }
    if config.sms_pumper {
        let rates = fg_smsgw::rates::RateTable::default_world();
        let (_p, agent) = share(SmsPumper::new(
            SmsPumperConfig::airline_d(flights[1], end),
            ClientId(2),
            geo,
            &rates,
            &mut attacker_rng,
        ));
        sim.add_agent(agent, SimTime::from_mins(60));
    }

    let mut app = sim.run(end);
    Workload {
        schema: WORKLOAD_SCHEMA,
        seed: config.seed,
        requests: app.take_workload(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WorkloadConfig {
        WorkloadConfig {
            seed: 7,
            horizon_hours: 2,
            arrivals_per_day: 120.0,
            seat_spinner: true,
            sms_pumper: true,
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a, b);
        assert!(!a.requests.is_empty(), "workload captured no requests");
    }

    #[test]
    fn json_round_trips() {
        let w = generate(&WorkloadConfig {
            horizon_hours: 1,
            ..small()
        });
        let parsed = Workload::from_json(&w.to_json()).expect("parses");
        assert_eq!(parsed, w);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let mut w = generate(&WorkloadConfig {
            horizon_hours: 1,
            sms_pumper: false,
            seat_spinner: false,
            ..small()
        });
        w.schema = 99;
        let err = Workload::from_json(&w.to_json()).unwrap_err();
        assert!(err.contains("schema"), "unexpected error: {err}");
    }

    #[test]
    fn recorded_stream_replays_to_identical_decisions_in_process() {
        let workload = generate(&small());
        // Fresh app, same posture & seed: replaying the stream through
        // `decide_request` must reproduce the audit trail the generating
        // run wrote. (The generating run consumed CAPTCHA randomness the
        // replay does not, which is fine — decisions never depend on it.)
        let fork = SeedFork::new(small().seed);
        let mut app = DefendedApp::new(
            AppConfig::airline(PolicyConfig::recommended()),
            fork.seed("app"),
        );
        let mut decisions = Vec::new();
        for req in &workload.requests {
            let d = app.decide_request(&req.client_request(), req.endpoint, req.booking, req.now());
            decisions.push((d.decision, d.reasons));
        }
        let audit = app.telemetry().audit().snapshot();
        assert_eq!(audit.records.len(), decisions.len());
        for (rec, (decision, reasons)) in audit.records.iter().zip(&decisions) {
            assert_eq!(&rec.decision, &decision.to_string());
            assert_eq!(&rec.reasons, reasons);
        }
    }
}
