//! Plain-text table rendering and JSON export for experiment reports.

use fg_telemetry::StageSnapshot;
use serde::Serialize;
use std::fmt::Write as _;

/// Display width of a cell in characters (formatting widths in Rust pad by
/// character, so byte length would misalign any non-ASCII cell).
fn cell_width(s: &str) -> usize {
    s.chars().count()
}

/// Renders a sentinel report as a console block: the alert-event stream's
/// verdict line, time-to-detection, and the correlated incident timeline.
pub fn render_sentinel_report(report: &fg_sentinel::SentinelReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "sentinel '{}': {} observations, {} rule evaluations, {} alert events",
        report.policy.name,
        report.observations,
        report.evaluations,
        report.events.len()
    );
    match (report.time_to_detection, report.policy.expect_detection) {
        (Some(ttd), _) => {
            let _ = writeln!(
                out,
                "time to detection: {:.1} min (first firing at {})",
                ttd.as_secs_f64() / 60.0,
                report.first_firing.expect("detection implies a firing"),
            );
        }
        (None, false) => {
            let _ = writeln!(
                out,
                "no detection — expected: this policy documents a monitoring blind spot"
            );
        }
        (None, true) => {
            let _ = writeln!(
                out,
                "NO DETECTION (policy expected the attack to be caught)"
            );
        }
    }
    let rows: Vec<Vec<String>> = report
        .incident
        .entries
        .iter()
        .map(|e| vec![e.at.to_string(), e.kind.clone(), e.detail.clone()])
        .collect();
    let _ = write!(out, "{}", render_table(&["When", "Event", "Detail"], &rows));
    if report.incident.ongoing_at_end {
        let _ = writeln!(out, "incident still ongoing at end of run");
    }
    out
}

/// Renders rows as a fixed-width ASCII table.
///
/// Rows shorter than the header are padded with empty cells; rows *longer*
/// than the header get extra unnamed columns so no cell is ever silently
/// dropped.
///
/// # Example
///
/// ```
/// use fg_scenario::report::render_table;
///
/// let s = render_table(
///     &["Country", "Increase"],
///     &[vec!["Uzbekistan".into(), "160,209%".into()]],
/// );
/// assert!(s.contains("Uzbekistan"));
/// assert!(s.contains("| Increase"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers
        .len()
        .max(rows.iter().map(Vec::len).max().unwrap_or(0));
    let mut widths = vec![0usize; cols];
    for (i, h) in headers.iter().enumerate() {
        widths[i] = cell_width(h);
    }
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell_width(cell));
        }
    }
    let mut out = String::new();
    let rule = |out: &mut String| {
        for &w in &widths {
            let _ = write!(out, "+-{}-", "-".repeat(w));
        }
        out.push_str("+\n");
    };
    rule(&mut out);
    for (i, &width) in widths.iter().enumerate() {
        let h = headers.get(i).copied().unwrap_or("");
        let _ = write!(out, "| {h:<width$} ");
    }
    out.push_str("|\n");
    rule(&mut out);
    for row in rows {
        for (i, &width) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = row.get(i).unwrap_or(&empty);
            let _ = write!(out, "| {cell:<width$} ");
        }
        out.push_str("|\n");
    }
    rule(&mut out);
    out
}

/// Renders per-stage latency profiles (from
/// [`fg_telemetry::StageProfiler::snapshot`]) as an ASCII table.
pub fn render_stage_table(stages: &[StageSnapshot]) -> String {
    let rows: Vec<Vec<String>> = stages
        .iter()
        .map(|s| {
            vec![
                s.stage.clone(),
                s.count.to_string(),
                format!("{:.2}", s.total_ms),
                format!("{:.1}", s.mean_us),
                format!("{:.1}", s.p50_us),
                format!("{:.1}", s.p95_us),
                format!("{:.1}", s.p99_us),
                format!("{:.1}", s.max_us),
            ]
        })
        .collect();
    render_table(
        &[
            "Stage", "Calls", "Total ms", "Mean µs", "p50 µs", "p95 µs", "p99 µs", "Max µs",
        ],
        &rows,
    )
}

/// One scalar metric's cross-seed aggregate, as produced by the multi-seed
/// harness and rendered by [`render_aggregate_table`].
#[derive(Clone, Debug, PartialEq, Serialize, serde::Deserialize)]
pub struct AggregateRow {
    /// Metric key, e.g. `recommended.pumping.attack_effect`.
    pub metric: String,
    /// Mean across seeds.
    pub mean: f64,
    /// Population standard deviation across seeds.
    pub std_dev: f64,
    /// Smallest per-seed value.
    pub min: f64,
    /// Largest per-seed value.
    pub max: f64,
    /// Number of seeds aggregated.
    pub n: usize,
}

/// Renders cross-seed aggregates as a `mean ± stddev [min, max]` table.
pub fn render_aggregate_table(rows: &[AggregateRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.metric.clone(),
                format!("{} ± {}", format_metric(r.mean), format_metric(r.std_dev)),
                format_metric(r.min),
                format_metric(r.max),
                r.n.to_string(),
            ]
        })
        .collect();
    render_table(&["Metric", "Mean ± σ", "Min", "Max", "Seeds"], &body)
}

/// Compact numeric cell: integers lose the decimal point, everything else
/// keeps four decimals (enough to tell seeds apart without drowning the
/// table).
fn format_metric(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

/// Formats a percentage with thousands separators, Table-I style
/// (`160209.3` → `"160,209%"`).
pub fn format_pct(pct: f64) -> String {
    let rounded = pct.round() as i64;
    let mut digits = rounded.abs().to_string();
    let mut grouped = String::new();
    while digits.len() > 3 {
        let split = digits.len() - 3;
        grouped = format!(",{}{}", &digits[split..], grouped);
        digits.truncate(split);
    }
    format!(
        "{}{}{}%",
        if rounded < 0 { "-" } else { "" },
        digits,
        grouped
    )
}

/// Serializes any report to pretty JSON (for machine-readable artifacts).
pub fn to_json<T: Serialize>(report: &T) -> String {
    serde_json::to_string_pretty(report).expect("reports serialize cleanly")
}

/// Renders a share histogram as an ASCII stacked-bar-like block (one bar per
/// bucket) — the textual analogue of the paper's Fig. 1.
pub fn render_share_bars(label: &str, shares: &[f64], max_width: usize) -> String {
    let mut out = format!("{label}\n");
    for (value, &share) in shares.iter().enumerate() {
        if value == 0 {
            continue; // NiP 0 does not exist
        }
        let bar = "#".repeat((share * max_width as f64).round() as usize);
        let _ = writeln!(out, "  NiP {value}: {bar} {:.1}%", share * 100.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let s = render_table(
            &["A", "Longer"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyy".into(), "22".into()],
            ],
        );
        assert!(s.contains("| A    | Longer |"));
        assert!(s.contains("| yyyy | 22     |"));
        let widths: Vec<usize> = s.lines().map(str::len).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "all lines equal width"
        );
    }

    #[test]
    fn ragged_rows_keep_every_cell() {
        // A row wider than the header grows the table instead of silently
        // dropping its tail; a narrower row is padded with blanks.
        let s = render_table(
            &["A", "B"],
            &[
                vec!["1".into(), "2".into(), "overflow".into()],
                vec!["3".into()],
            ],
        );
        assert!(s.contains("overflow"), "{s}");
        let widths: Vec<usize> = s.lines().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    fn empty_rows_render_a_headers_only_table() {
        let s = render_table(&["Only", "Headers"], &[]);
        assert!(s.contains("| Only | Headers |"));
        assert_eq!(s.lines().count(), 4, "{s}"); // rule, header, rule, rule
    }

    #[test]
    fn unicode_cells_align_by_character_count() {
        let s = render_table(
            &["Stage", "p95 µs"],
            &[
                vec!["détect.assess".into(), "12.5".into()],
                vec!["policy".into(), "3.0".into()],
            ],
        );
        let widths: Vec<usize> = s.lines().map(|l| l.chars().count()).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "columns misaligned:\n{s}"
        );
    }

    #[test]
    fn stage_table_renders_latency_columns() {
        use fg_telemetry::StageProfiler;
        use std::time::Duration;

        let mut p = StageProfiler::new();
        let id = p.stage("detect.assess");
        for us in [10, 20, 30] {
            p.record(id, Duration::from_micros(us));
        }
        let s = render_stage_table(&p.snapshot());
        assert!(s.contains("detect.assess"), "{s}");
        assert!(s.contains("| Calls"), "{s}");
        assert!(s.contains("p95 µs"), "{s}");
        // All three samples counted.
        assert!(s.contains("| 3 "), "{s}");
    }

    #[test]
    fn aggregate_table_renders_mean_plus_minus_sigma() {
        let rows = vec![
            AggregateRow {
                metric: "bookings".into(),
                mean: 1234.0,
                std_dev: 12.5,
                min: 1220.0,
                max: 1250.0,
                n: 4,
            },
            AggregateRow {
                metric: "sms_cost".into(),
                mean: 0.52,
                std_dev: 0.0,
                min: 0.52,
                max: 0.52,
                n: 4,
            },
        ];
        let s = render_aggregate_table(&rows);
        assert!(s.contains("Mean ± σ"), "{s}");
        assert!(s.contains("1234 ± 12.5000"), "{s}");
        assert!(s.contains("0.5200 ± 0"), "{s}");
        assert!(s.contains("| 4 "), "{s}");
    }

    #[test]
    fn pct_formatting_matches_table_one_style() {
        assert_eq!(format_pct(160_209.0), "160,209%");
        assert_eq!(format_pct(66_095.4), "66,095%");
        assert_eq!(format_pct(67.0), "67%");
        assert_eq!(format_pct(19.4), "19%");
        assert_eq!(format_pct(-12.6), "-13%");
        assert_eq!(format_pct(1_234_567.0), "1,234,567%");
    }

    #[test]
    fn share_bars_skip_bucket_zero() {
        let s = render_share_bars("week", &[0.5, 0.25, 0.25], 20);
        assert!(!s.contains("NiP 0"));
        assert!(s.contains("NiP 1"));
        assert!(s.contains("25.0%"));
    }

    #[test]
    fn json_roundtrip() {
        #[derive(serde::Serialize)]
        struct R {
            x: u32,
        }
        let s = to_json(&R { x: 7 });
        assert!(s.contains("\"x\": 7"));
    }
}
