//! Experiment runners — one per paper artifact.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig1`] | Fig. 1 — NiP distribution: average week / attack week / capped week |
//! | [`table1`] | Table I — top-10 country SMS surge during the pumping attack |
//! | [`case_a`] | §IV-A in-text — fingerprint rotation ≈ 5.3 h, cap adaptation, endgame |
//! | [`case_b`] | §IV-B in-text — automated vs manual name-pattern detection |
//! | [`case_c`] | §IV-C in-text — ≈ +25 % boarding passes, 42 countries, detection latency |
//! | [`ablation`] | §V — mitigation grid over both attacks |
//! | [`honeypot_econ`] | §V — honeypot vs blocking economics |
//! | [`detectors`] | §III-A claim — volume features fail on low-volume abuse |
//! | [`pricing`] | §II-A — DoI against dynamic pricing: forced fare drops |
//! | [`proxies`] | §III-B — residential vs datacenter exits against IP blocking |
//!
//! Every runner takes a small config (with a seeded default), runs a full
//! deterministic simulation, and returns a typed report implementing
//! `Display` (the table/figure the paper shows) and `Serialize` (a JSON
//! artifact).

pub mod ablation;
pub mod case_a;
pub mod case_b;
pub mod case_c;
pub mod detectors;
pub mod fig1;
pub mod honeypot_econ;
pub mod pricing;
pub mod proxies;
pub mod table1;

use crate::harness::ExperimentSpec;
use fg_sentinel::DriftBaseline;

/// The average-week NiP shape (Fig. 1, mirrored in
/// [`fg_mitigation::profile::AIRLINE_NIP_WEIGHTS`]) as a static drift
/// baseline over the `fg_nip_hold` histogram buckets. Used by experiments
/// whose attack starts at `t = 0`, leaving no clean week to learn from.
pub(crate) fn nip_baseline() -> DriftBaseline {
    DriftBaseline::Static(
        fg_mitigation::profile::AIRLINE_NIP_WEIGHTS
            .iter()
            .map(|&(_, w)| w)
            .collect(),
    )
}

/// Every experiment's harness registry entry, in the paper's artifact order
/// (the order the `experiments` binary runs them in).
pub fn all_specs() -> Vec<ExperimentSpec> {
    vec![
        fig1::spec(),
        table1::spec(),
        case_a::spec(),
        case_b::spec(),
        case_c::spec(),
        ablation::spec(),
        honeypot_econ::spec(),
        detectors::spec(),
        pricing::spec(),
        proxies::spec(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_complete() {
        let specs = all_specs();
        assert_eq!(specs.len(), 10);
        let mut names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10, "duplicate experiment name in registry");
        assert!(specs.iter().filter(|s| s.telemetry_capable).count() == 2);
    }

    /// `fg-mitigation` cannot depend on `fg-behavior`, so the airline NiP
    /// distribution the config linter judges caps against is a mirrored
    /// constant — keep it identical to the behavioural ground truth.
    #[test]
    fn profile_nip_weights_mirror_the_legit_population() {
        let legit = fg_behavior::LegitConfig::default_airline(vec![], fg_core::time::SimTime::ZERO);
        let mirrored: Vec<(usize, f64)> = fg_mitigation::profile::AIRLINE_NIP_WEIGHTS
            .iter()
            .map(|&(size, w)| (size as usize, w))
            .collect();
        assert_eq!(legit.nip_weights, mirrored);
    }

    /// Every registered experiment declares at least one analyzable defence
    /// deployment, and each declared policy passes constructor validation.
    #[test]
    fn every_spec_declares_valid_defence_profiles() {
        for spec in all_specs() {
            let profiles = (spec.profiles)();
            assert!(!profiles.is_empty(), "{} has no profiles", spec.name);
            for profile in profiles {
                profile
                    .policy
                    .validate()
                    .unwrap_or_else(|e| panic!("{}/{}: {e:?}", spec.name, profile.name));
            }
        }
    }
}
