//! Experiment runners — one per paper artifact.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig1`] | Fig. 1 — NiP distribution: average week / attack week / capped week |
//! | [`table1`] | Table I — top-10 country SMS surge during the pumping attack |
//! | [`case_a`] | §IV-A in-text — fingerprint rotation ≈ 5.3 h, cap adaptation, endgame |
//! | [`case_b`] | §IV-B in-text — automated vs manual name-pattern detection |
//! | [`case_c`] | §IV-C in-text — ≈ +25 % boarding passes, 42 countries, detection latency |
//! | [`ablation`] | §V — mitigation grid over both attacks |
//! | [`honeypot_econ`] | §V — honeypot vs blocking economics |
//! | [`detectors`] | §III-A claim — volume features fail on low-volume abuse |
//! | [`pricing`] | §II-A — DoI against dynamic pricing: forced fare drops |
//! | [`proxies`] | §III-B — residential vs datacenter exits against IP blocking |
//!
//! Every runner takes a small config (with a seeded default), runs a full
//! deterministic simulation, and returns a typed report implementing
//! `Display` (the table/figure the paper shows) and `Serialize` (a JSON
//! artifact).

pub mod ablation;
pub mod case_a;
pub mod case_b;
pub mod case_c;
pub mod detectors;
pub mod fig1;
pub mod honeypot_econ;
pub mod pricing;
pub mod proxies;
pub mod table1;
