//! **§IV-C in-text** — advanced SMS pumping against boarding-pass issuance.
//!
//! Three defensive postures face the same pumper:
//!
//! 1. **No limits** (the real December-2022 configuration before the path
//!    limit existed) — the attack is never detected.
//! 2. **Path-level limit only** (what Airline D actually had): the attack is
//!    detected "only after the total number of boarding pass requests via
//!    SMS triggered the rate limit for the targeted path" — days late, after
//!    most of the SMS bill.
//! 3. **Per-booking limit** (the obvious missing control): detection within
//!    minutes, bill near zero.
//!
//! The report also reproduces the two in-text statistics: the global
//! boarding-pass increase (~25 %) and the number of destination countries
//! (42).

use crate::app::{AppConfig, DefendedApp};
use crate::engine::{share, Simulation};
use fg_behavior::{LegitConfig, LegitPopulation, SmsPumper, SmsPumperConfig};
use fg_core::ids::{ClientId, FlightId};
use fg_core::money::Money;
use fg_core::rng::SeedFork;
use fg_core::shard::ConcurrencyMode;
use fg_core::time::SimTime;
use fg_inventory::flight::Flight;
use fg_mitigation::policy::PolicyConfig;
use fg_netsim::geo::GeoDatabase;
use fg_sentinel::{AlertPolicy, AlertRule, SentinelReport};
use serde::Serialize;
use std::fmt;

/// The three §IV-C postures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum SmsPosture {
    /// No SMS limits at all.
    NoLimits,
    /// Only a path-wide daily limit.
    PathLimitOnly,
    /// A tight per-booking limit (plus the path limit).
    PerBookingLimit,
}

impl fmt::Display for SmsPosture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SmsPosture::NoLimits => "no limits",
            SmsPosture::PathLimitOnly => "path limit only",
            SmsPosture::PerBookingLimit => "per-booking limit",
        };
        f.write_str(s)
    }
}

/// Case C configuration.
#[derive(Clone, Debug)]
pub struct CaseCConfig {
    /// Master seed.
    pub seed: u64,
    /// Simulated weeks (attack starts at week 1).
    pub weeks: u64,
    /// Legitimate bookers per day.
    pub arrivals_per_day: f64,
    /// Attacker SMS per hour.
    pub pump_per_hour: f64,
    /// Path-wide daily SMS limit as a multiple of normal daily volume.
    pub path_limit_headroom: f64,
    /// Defence-state partitioning (see [`ConcurrencyMode`]); the report is
    /// identical in every mode when replayed single-threaded.
    pub concurrency: ConcurrencyMode,
}

impl Default for CaseCConfig {
    fn default() -> Self {
        CaseCConfig {
            seed: 0xCA5EC,
            weeks: 3,
            arrivals_per_day: 400.0,
            pump_per_hour: 3.0,
            path_limit_headroom: 1.02,
            concurrency: ConcurrencyMode::Deterministic,
        }
    }
}

/// A CI-sized config: two weeks, lighter traffic.
pub fn smoke_config() -> CaseCConfig {
    CaseCConfig {
        weeks: 2,
        arrivals_per_day: 60.0,
        ..CaseCConfig::default()
    }
}

/// The defence deployments this experiment exercises, for `fg-analyze`'s
/// config pass: the three §IV-C SMS postures, with the same path-limit
/// calibration `run_posture` uses (theoretical baseline x headroom).
pub fn defence_profiles() -> Vec<fg_mitigation::profile::DefenceProfile> {
    use fg_mitigation::profile::DefenceProfile;
    let config = CaseCConfig::default();
    let horizon = fg_core::time::SimDuration::from_days(config.weeks as i64 * 7);
    let legit_sms_daily = config.arrivals_per_day * (0.35 + 0.45 * 0.72);
    let path_daily = legit_sms_daily * config.path_limit_headroom;
    let bookings = (config.arrivals_per_day * config.weeks as f64 * 7.0) as u64;

    let mut path_only = PolicyConfig::unprotected();
    path_only.path_sms_limit = Some((path_daily, path_daily));
    let mut per_booking = path_only.clone();
    per_booking.booking_sms_limit = Some((3.0, 1.0));

    let base = |name: &str, policy: PolicyConfig| {
        DefenceProfile::airline(name, policy)
            .horizon(horizon)
            .sms(legit_sms_daily, config.pump_per_hour * 24.0)
            .expected_bookings(bookings)
    };
    const WHY: &str =
        "Case C's airline ran rate limits without any scoring pipeline; the missing stages are the finding";
    vec![
        base("no-limits", PolicyConfig::unprotected()),
        base("path-limit", path_only).waive("nonfinite-threshold", WHY),
        base("per-booking", per_booking).waive("nonfinite-threshold", WHY),
    ]
}

/// The alert policy the sentinel evaluates online during this experiment:
/// the owner's SMS spend burning above its first-week baseline rate. The
/// low-and-slow pump (3 SMS/h) defeats every volume rule, but premium-route
/// pricing makes the *cost* signal stand out — the paper's point that the
/// airline only noticed on the invoice, weeks later, while a spend monitor
/// raises the same signal within a day.
pub fn alert_policy() -> AlertPolicy {
    use fg_core::time::SimDuration;
    AlertPolicy::named("case-c-spend-burn")
        .rule(AlertRule::burn_rate(
            "sms-burn-rate",
            SimDuration::from_hours(24),
            SimDuration::from_days(7),
            2.0,
            3.0,
        ))
        .campaign(SimTime::from_weeks(1), 1)
}

/// Registry entry for the multi-seed harness.
pub fn spec() -> crate::harness::ExperimentSpec {
    crate::harness::ExperimentSpec {
        name: "case_c",
        default_seed: CaseCConfig::default().seed,
        telemetry_capable: false,
        run: |p| {
            let mut config = if p.smoke {
                smoke_config()
            } else {
                CaseCConfig::default()
            };
            config.seed = p.seed;
            config.concurrency = p.concurrency();
            if p.traces {
                let (report, alerts, traces) = run_traced(config);
                crate::harness::CellOutput::of(&report)
                    .with_alerts(p.alerts.then_some(alerts))
                    .with_traces(Some(traces))
            } else {
                let (report, alerts) = run_instrumented(config);
                crate::harness::CellOutput::of(&report).with_alerts(p.alerts.then_some(alerts))
            }
        },
        profiles: defence_profiles,
        alerts: alert_policy,
    }
}

/// Per-posture outcome.
#[derive(Clone, Debug, Serialize)]
pub struct PostureOutcome {
    /// The posture.
    pub posture: SmsPosture,
    /// Hours from attack start until the attacker first saw a rate limit
    /// (`None` = never detected).
    pub detection_latency_hours: Option<f64>,
    /// Attack-window SMS the attacker got through.
    pub attack_sms_delivered: u64,
    /// The owner's total SMS bill.
    pub owner_sms_cost: Money,
    /// Global boarding-pass increase, attack week over baseline week (%).
    pub bp_increase_pct: f64,
    /// Distinct destination countries in the attack window.
    pub countries: usize,
    /// Legitimate SMS requests refused as collateral (quota / limit).
    pub legit_refused: u64,
    /// Measured baseline-week SMS per day (all kinds).
    pub baseline_sms_daily: f64,
}

/// The Case C report.
#[derive(Clone, Debug, Serialize)]
pub struct CaseCReport {
    /// One outcome per posture.
    pub outcomes: Vec<PostureOutcome>,
}

impl fmt::Display for CaseCReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Case C — advanced SMS pumping (Airline D), posture comparison"
        )?;
        let rows: Vec<Vec<String>> = self
            .outcomes
            .iter()
            .map(|o| {
                vec![
                    o.posture.to_string(),
                    o.detection_latency_hours
                        .map_or("never".to_owned(), |h| format!("{h:.1} h")),
                    o.attack_sms_delivered.to_string(),
                    o.owner_sms_cost.to_string(),
                    format!("{:+.1}%", o.bp_increase_pct),
                    o.countries.to_string(),
                    o.legit_refused.to_string(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            crate::report::render_table(
                &[
                    "Posture",
                    "Detected after",
                    "Attack SMS",
                    "Owner cost",
                    "Global BP",
                    "Countries",
                    "Legit refused",
                ],
                &rows
            )
        )
    }
}

fn run_posture(
    config: &CaseCConfig,
    posture: SmsPosture,
    measured_baseline_daily: Option<f64>,
    traces: bool,
) -> (
    PostureOutcome,
    SentinelReport,
    Option<fg_telemetry::TraceSnapshot>,
) {
    let fork = SeedFork::new(config.seed);
    let geo = GeoDatabase::default_world();
    let end = SimTime::from_weeks(config.weeks);

    // Real operators calibrate the path limit from observed traffic; we do
    // the same, using the measured baseline from the no-limits run (a small
    // theoretical estimate is used only when none is available yet).
    let legit_sms_daily =
        measured_baseline_daily.unwrap_or(config.arrivals_per_day * (0.35 + 0.45 * 0.72));
    let path_daily = legit_sms_daily * config.path_limit_headroom;

    let mut policy = PolicyConfig::unprotected();
    match posture {
        SmsPosture::NoLimits => {}
        SmsPosture::PathLimitOnly => {
            policy.path_sms_limit = Some((path_daily, path_daily));
        }
        SmsPosture::PerBookingLimit => {
            policy.path_sms_limit = Some((path_daily, path_daily));
            policy.booking_sms_limit = Some((3.0, 1.0));
        }
    }

    let mut app = DefendedApp::new(
        AppConfig::airline(policy).with_concurrency(config.concurrency),
        config.seed,
    );
    app.attach_sentinel(alert_policy());
    if traces {
        app.telemetry()
            .enable_tracing(fg_telemetry::TraceConfig::default());
    }
    let flight = FlightId(1);
    let capacity = (config.arrivals_per_day * config.weeks as f64 * 7.0 * 2.0 * 1.5) as u32;
    app.add_flight(Flight::new(flight, capacity, SimTime::from_days(60)));

    let mut sim = Simulation::new(app, fork.seed("sim"));

    let mut legit_cfg = LegitConfig::default_airline(vec![flight], end);
    legit_cfg.arrivals_per_day = config.arrivals_per_day;
    let (legit, legit_agent) = share(LegitPopulation::new(legit_cfg, geo.clone(), 1_000_000));
    sim.add_agent(legit_agent, SimTime::ZERO);

    let mut pump_cfg = SmsPumperConfig::airline_d(flight, end);
    pump_cfg.sms_per_hour = config.pump_per_hour;
    let rates = fg_smsgw::rates::RateTable::default_world();
    let mut pumper_rng = fork.rng("pumper");
    let (pumper, pumper_agent) = share(SmsPumper::new(
        pump_cfg,
        ClientId(1),
        geo,
        &rates,
        &mut pumper_rng,
    ));
    let attack_start = SimTime::from_weeks(1);
    sim.add_agent(pumper_agent, attack_start);

    let app = sim.run(end);
    let alerts = app.sentinel_report(end).expect("sentinel attached above");

    // Detection latency: the first rate-limit refusal logged against the
    // boarding-pass path after the attack started.
    let first_refusal = app
        .logs()
        .iter()
        .find(|l| {
            l.at >= attack_start && l.endpoint == fg_detection::log::Endpoint::BoardingPass && !l.ok
        })
        .map(|l| (l.at - attack_start).as_hours_f64());

    // Global boarding-pass increase, normalized to weekly rates (the attack
    // window spans more than one week).
    let bp_kind = fg_smsgw::message::SmsKind::BoardingPass(fg_core::ids::BookingRef::from_index(0));
    let baseline_weeks = 1.0;
    let attack_weeks = (config.weeks - 1) as f64;
    let baseline_bp = app
        .gateway()
        .sent_kind_between(bp_kind, SimTime::ZERO, attack_start);
    let attack_bp = app.gateway().sent_kind_between(bp_kind, attack_start, end);
    let bp_increase = if baseline_bp == 0 {
        0.0
    } else {
        let base_rate = baseline_bp as f64 / baseline_weeks;
        let attack_rate = attack_bp as f64 / attack_weeks;
        (attack_rate - base_rate) / base_rate * 100.0
    };

    let baseline_sms_daily = app.gateway().sent_kind_between(
        fg_smsgw::message::SmsKind::Otp,
        SimTime::ZERO,
        attack_start,
    ) as f64
        / 7.0
        + baseline_bp as f64 / 7.0;
    let pumper_stats = pumper.borrow().stats();
    let legit_stats = legit.borrow().stats();
    let outcome = PostureOutcome {
        posture,
        detection_latency_hours: first_refusal,
        attack_sms_delivered: pumper_stats.sms_sent,
        owner_sms_cost: app.gateway().owner_cost(),
        bp_increase_pct: bp_increase,
        countries: pumper_stats.countries_used as usize,
        legit_refused: legit_stats.defence_friction,
        baseline_sms_daily,
    };
    let trace_snapshot = traces.then(|| app.telemetry().trace_snapshot());
    (outcome, alerts, trace_snapshot)
}

/// Runs all three postures. The no-limits run doubles as the traffic
/// measurement from which the other postures' path limit is calibrated.
pub fn run(config: CaseCConfig) -> CaseCReport {
    run_instrumented(config).0
}

/// Runs all three postures, also returning the sentinel outcome for the
/// no-limits posture — the configuration whose era defences never detect
/// the pump, making it the cell where online spend alerting matters.
pub fn run_instrumented(config: CaseCConfig) -> (CaseCReport, SentinelReport) {
    let (report, alerts, _) = run_inner(config, false);
    (report, alerts)
}

/// Like [`run_instrumented`], with span tracing enabled on the no-limits
/// posture, additionally returning that run's trace export. Tracing is
/// read-only, so the report is unchanged.
pub fn run_traced(
    config: CaseCConfig,
) -> (CaseCReport, SentinelReport, fg_telemetry::TraceSnapshot) {
    let (report, alerts, traces) = run_inner(config, true);
    (report, alerts, traces.expect("tracing was enabled"))
}

fn run_inner(
    config: CaseCConfig,
    traces: bool,
) -> (
    CaseCReport,
    SentinelReport,
    Option<fg_telemetry::TraceSnapshot>,
) {
    let (no_limits, alerts, trace_snapshot) =
        run_posture(&config, SmsPosture::NoLimits, None, traces);
    let measured = Some(no_limits.baseline_sms_daily);
    let (path, _, _) = run_posture(&config, SmsPosture::PathLimitOnly, measured, false);
    let (booking, _, _) = run_posture(&config, SmsPosture::PerBookingLimit, measured, false);
    let report = CaseCReport {
        outcomes: vec![no_limits, path, booking],
    };
    (report, alerts, trace_snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CaseCConfig {
        CaseCConfig::default()
    }

    #[test]
    fn detection_latency_ordering_matches_the_paper() {
        let report = run(small());
        let [none, path, booking] = &report.outcomes[..] else {
            panic!("three outcomes expected");
        };

        assert_eq!(
            none.detection_latency_hours, None,
            "no limits → never detected"
        );
        let path_h = path
            .detection_latency_hours
            .expect("path limit eventually trips");
        let booking_h = booking
            .detection_latency_hours
            .expect("per-booking limit trips");
        assert!(
            path_h > 24.0,
            "path-level detection is days late: {path_h:.1} h"
        );
        assert!(
            booking_h < 24.0,
            "per-booking detection lands within hours: {booking_h:.1} h"
        );
        assert!(booking_h * 4.0 < path_h);
    }

    #[test]
    fn sms_cost_shrinks_with_tighter_keys() {
        let report = run(small());
        let [none, path, booking] = &report.outcomes[..] else {
            panic!("three outcomes expected");
        };
        assert!(none.attack_sms_delivered >= path.attack_sms_delivered);
        assert!(
            booking.attack_sms_delivered * 3 < none.attack_sms_delivered,
            "per-booking limit slashes delivered SMS: {} vs {}",
            booking.attack_sms_delivered,
            none.attack_sms_delivered
        );
        assert!(booking.owner_sms_cost < none.owner_sms_cost);
    }

    #[test]
    fn global_bp_increase_is_moderate_while_targeted_harm_is_large() {
        let report = run(small());
        let none = &report.outcomes[0];
        // The §IV-C shape: a visible but not overwhelming global increase
        // (the paper reports ≈ +25 %).
        // The paper reports ≈ +25 %; we accept the same order of magnitude
        // (a global increase well below the per-country surges of Table I).
        assert!(
            none.bp_increase_pct > 10.0 && none.bp_increase_pct < 120.0,
            "global BP increase {:.1}%",
            none.bp_increase_pct
        );
        assert!(none.countries >= 25, "countries {}", none.countries);
    }

    #[test]
    fn report_renders() {
        let s = run(small()).to_string();
        assert!(s.contains("per-booking limit"));
        assert!(s.contains("never"));
    }
}
