//! **§II-A price manipulation** — DoI against dynamic pricing.
//!
//! "Others manipulate supply and demand … attackers strategically hold
//! reservations and items at lower fares without an investment to force
//! price drops before making a legitimate purchase." Two arms on the same
//! dynamically-priced flight: undisturbed (legitimate demand keeps the fare
//! near base) and manipulated (a fare manipulator suppresses the booking
//! pace, waits for the capitulation, and buys at the bottom).

use crate::app::{AppConfig, DefendedApp};
use crate::engine::{share, Simulation};
use fg_behavior::{FareManipulator, FareManipulatorConfig, LegitConfig, LegitPopulation};
use fg_core::ids::{ClientId, FlightId};
use fg_core::money::Money;
use fg_core::rng::SeedFork;
use fg_core::shard::ConcurrencyMode;
use fg_core::time::SimTime;
use fg_inventory::flight::Flight;
use fg_inventory::pricing::DynamicPricer;
use fg_mitigation::policy::PolicyConfig;
use fg_netsim::geo::GeoDatabase;
use fg_sentinel::{AlertPolicy, AlertRule, MetricSelector, SentinelReport};
use serde::Serialize;
use std::fmt;

/// Price-manipulation experiment configuration.
#[derive(Clone, Debug)]
pub struct PricingConfig {
    /// Master seed.
    pub seed: u64,
    /// Departure day of the target flight.
    pub departure_day: u64,
    /// Legitimate bookers per day (split across two flights).
    pub arrivals_per_day: f64,
    /// Base fare of the target flight.
    pub base_fare: Money,
    /// Suppression holds maintained concurrently.
    pub concurrent_holds: u32,
    /// Defence-state partitioning (see [`ConcurrencyMode`]); the report is
    /// identical in every mode when replayed single-threaded.
    pub concurrency: ConcurrencyMode,
}

impl Default for PricingConfig {
    fn default() -> Self {
        PricingConfig {
            seed: 0xFA2E,
            departure_day: 30,
            arrivals_per_day: 14.0,
            base_fare: Money::from_units(100),
            concurrent_holds: 20,
            concurrency: ConcurrencyMode::Deterministic,
        }
    }
}

/// A CI-sized config: a shorter booking window.
pub fn smoke_config() -> PricingConfig {
    PricingConfig {
        departure_day: 10,
        ..PricingConfig::default()
    }
}

/// The defence deployments this experiment exercises, for `fg-analyze`'s
/// config pass.
pub fn defence_profiles() -> Vec<fg_mitigation::profile::DefenceProfile> {
    use fg_mitigation::profile::DefenceProfile;
    let config = PricingConfig::default();
    // The griefer keeps `concurrent_holds` seats locked, re-placing each as
    // its 30-minute TTL expires (48 cycles/day).
    vec![
        DefenceProfile::airline("unprotected", PolicyConfig::unprotected())
            .horizon(fg_core::time::SimDuration::from_days(
                config.departure_day as i64,
            ))
            .holds(
                config.arrivals_per_day,
                config.concurrent_holds as f64 * 48.0,
            )
            .expected_bookings((config.arrivals_per_day * config.departure_day as f64) as u64),
    ]
}

/// The alert policy the sentinel evaluates online during this experiment:
/// the suppression campaign's hold-request volume on a thin-demand flight
/// (≈ 14 legitimate arrivals/day vs ≈ 40 griefer holds/hour) trips a plain
/// volume threshold on the hold path within the first hour.
pub fn alert_policy() -> AlertPolicy {
    use fg_core::time::SimDuration;
    AlertPolicy::named("pricing-hold-volume")
        .rule(AlertRule::threshold(
            "hold-volume",
            MetricSelector::exact("fg_requests_total", &[("endpoint", "/booking/hold")]),
            SimDuration::from_hours(6),
            40.0,
        ))
        .campaign(SimTime::ZERO, 1)
}

/// Registry entry for the multi-seed harness.
pub fn spec() -> crate::harness::ExperimentSpec {
    crate::harness::ExperimentSpec {
        name: "pricing",
        default_seed: PricingConfig::default().seed,
        telemetry_capable: false,
        run: |p| {
            let mut config = if p.smoke {
                smoke_config()
            } else {
                PricingConfig::default()
            };
            config.seed = p.seed;
            config.concurrency = p.concurrency();
            if p.traces {
                let (report, alerts, traces) = run_traced(config);
                crate::harness::CellOutput::of(&report)
                    .with_alerts(p.alerts.then_some(alerts))
                    .with_traces(Some(traces))
            } else {
                let (report, alerts) = run_instrumented(config);
                crate::harness::CellOutput::of(&report).with_alerts(p.alerts.then_some(alerts))
            }
        },
        profiles: defence_profiles,
        alerts: alert_policy,
    }
}

/// One arm's outcome.
#[derive(Clone, Debug, Serialize)]
pub struct PricingArm {
    /// `true` when the manipulator ran.
    pub manipulated: bool,
    /// The fare quoted near the purchase deadline.
    pub fare_at_deadline: Money,
    /// The airline's total ticket revenue on the target flight's app.
    pub ticket_revenue: Money,
    /// Legit bookers denied by held/sold-out stock.
    pub legit_denied: u64,
}

/// The price-manipulation report.
#[derive(Clone, Debug, Serialize)]
pub struct PricingReport {
    /// Undisturbed arm.
    pub healthy: PricingArm,
    /// Manipulated arm.
    pub attacked: PricingArm,
    /// The fare the manipulator opened against.
    pub opening_fare: Option<Money>,
    /// The fare the manipulator actually paid.
    pub bought_at: Option<Money>,
    /// The manipulator's net campaign profit (savings − costs).
    pub attacker_profit: Money,
}

impl fmt::Display for PricingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Price manipulation — dynamic pricing under DoI suppression"
        )?;
        let row = |a: &PricingArm| {
            vec![
                if a.manipulated {
                    "manipulated"
                } else {
                    "healthy"
                }
                .to_owned(),
                a.fare_at_deadline.to_string(),
                a.ticket_revenue.to_string(),
                a.legit_denied.to_string(),
            ]
        };
        write!(
            f,
            "{}",
            crate::report::render_table(
                &["Arm", "Fare at deadline", "Ticket revenue", "Legit denied"],
                &[row(&self.healthy), row(&self.attacked)]
            )
        )?;
        let fmt_fare = |m: Option<Money>| m.map_or("n/a".to_owned(), |m| m.to_string());
        writeln!(
            f,
            "manipulator: opened at {}, bought at {}, net profit {}",
            fmt_fare(self.opening_fare),
            fmt_fare(self.bought_at),
            self.attacker_profit
        )
    }
}

#[allow(clippy::type_complexity)]
fn run_arm(
    config: &PricingConfig,
    manipulated: bool,
    traces: bool,
) -> (
    PricingArm,
    Option<PricingReport>,
    SentinelReport,
    Option<fg_telemetry::TraceSnapshot>,
) {
    let fork = SeedFork::new(config.seed);
    let geo = GeoDatabase::default_world();
    let departure = SimTime::from_days(config.departure_day);

    let mut app_config =
        AppConfig::airline(PolicyConfig::unprotected()).with_concurrency(config.concurrency);
    app_config.pricing = Some(DynamicPricer::airline(config.base_fare));
    let mut app = DefendedApp::new(app_config, config.seed);
    app.attach_sentinel(alert_policy());
    if traces {
        app.telemetry()
            .enable_tracing(fg_telemetry::TraceConfig::default());
    }
    let target = FlightId(1);
    app.add_flight(Flight::new(target, 180, departure));
    app.add_flight(Flight::new(
        FlightId(2),
        10_000,
        SimTime::from_days(config.departure_day + 20),
    ));

    let mut sim = Simulation::new(app, fork.seed("sim"));

    let mut legit_cfg = LegitConfig::default_airline(vec![target, FlightId(2)], departure);
    legit_cfg.arrivals_per_day = config.arrivals_per_day;
    let (legit, legit_agent) = share(LegitPopulation::new(legit_cfg, geo.clone(), 1_000_000));
    sim.add_agent(legit_agent, SimTime::ZERO);

    let mut bot_rng = fork.rng("manipulator");
    let bot = if manipulated {
        let mut cfg = FareManipulatorConfig::typical(target);
        cfg.concurrent_holds = config.concurrent_holds;
        let (handle, agent) = share(FareManipulator::new(cfg, ClientId(1), geo, &mut bot_rng));
        sim.add_agent(agent, SimTime::ZERO);
        Some(handle)
    } else {
        None
    };

    let deadline = departure - fg_core::time::SimDuration::from_days(3);
    let app = sim.run(departure);
    let alerts = app
        .sentinel_report(departure)
        .expect("sentinel attached above");

    let arm = PricingArm {
        manipulated,
        fare_at_deadline: app.fare(target, deadline).expect("flight exists"),
        ticket_revenue: app.ticket_revenue(),
        legit_denied: legit.borrow().stats().denied_by_stock,
    };
    let extras = bot.map(|handle| {
        let bot = handle.borrow();
        let stats = bot.stats();
        PricingReport {
            healthy: arm.clone(),  // placeholder, replaced by caller
            attacked: arm.clone(), // placeholder, replaced by caller
            opening_fare: stats.opening_fare,
            bought_at: stats.bought_at,
            attacker_profit: bot.ledger().profit(),
        }
    });
    let trace_snapshot = traces.then(|| app.telemetry().trace_snapshot());
    (arm, extras, alerts, trace_snapshot)
}

/// Runs both arms.
pub fn run(config: PricingConfig) -> PricingReport {
    run_instrumented(config).0
}

/// Runs both arms, also returning the sentinel outcome for the manipulated
/// arm — the cell whose hold-volume alert marks the suppression campaign.
pub fn run_instrumented(config: PricingConfig) -> (PricingReport, SentinelReport) {
    let (report, alerts, _) = run_inner(config, false);
    (report, alerts)
}

/// Like [`run_instrumented`], with span tracing enabled on the manipulated
/// arm, additionally returning that arm's trace export. Tracing is
/// read-only, so the report is unchanged.
pub fn run_traced(
    config: PricingConfig,
) -> (PricingReport, SentinelReport, fg_telemetry::TraceSnapshot) {
    let (report, alerts, traces) = run_inner(config, true);
    (report, alerts, traces.expect("tracing was enabled"))
}

fn run_inner(
    config: PricingConfig,
    traces: bool,
) -> (
    PricingReport,
    SentinelReport,
    Option<fg_telemetry::TraceSnapshot>,
) {
    let (healthy, _, _, _) = run_arm(&config, false, false);
    let (attacked, extras, alerts, trace_snapshot) = run_arm(&config, true, traces);
    let extras = extras.expect("manipulated arm produced manipulator stats");
    let report = PricingReport {
        healthy,
        attacked,
        ..extras
    };
    (report, alerts, trace_snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> PricingReport {
        run(PricingConfig::default())
    }

    #[test]
    fn suppression_crashes_the_fare_and_revenue() {
        let r = report();
        assert!(
            r.attacked.fare_at_deadline < r.healthy.fare_at_deadline,
            "manipulated fare {} vs healthy {}",
            r.attacked.fare_at_deadline,
            r.healthy.fare_at_deadline
        );
        // The bot buys the moment its trigger fires, then releases its
        // holds, so the *purchase* price is the harm metric — the deadline
        // quote partially recovers after the squeeze ends.
        let bought = r.bought_at.expect("purchase completed");
        assert!(
            bought <= Money::from_units(76),
            "squeezed fare reached: {bought}"
        );
        assert!(
            r.attacked.ticket_revenue < r.healthy.ticket_revenue,
            "airline revenue suffers: {} vs {}",
            r.attacked.ticket_revenue,
            r.healthy.ticket_revenue
        );
        assert!(r.attacked.legit_denied > r.healthy.legit_denied);
    }

    #[test]
    fn manipulator_buys_cheap_and_profits() {
        let r = report();
        let open = r.opening_fare.expect("opening fare seen");
        let bought = r.bought_at.expect("purchase completed");
        assert!(bought < open, "bought {bought} below opening {open}");
        // Savings may or may not exceed proxy costs depending on scale, but
        // the *per-seat* discount is real.
        assert!(bought <= open.mul_f64(0.8));
    }

    #[test]
    fn report_renders() {
        let s = report().to_string();
        assert!(s.contains("manipulated"));
        assert!(s.contains("Fare at deadline"));
    }
}
