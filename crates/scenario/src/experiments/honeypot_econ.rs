//! **§V honeypot economics** — diversion vs hard blocking.
//!
//! §V's hypothesis: redirecting a confirmed DoI attacker into a decoy makes
//! it "waste resources believing to hold items in a false environment while
//! legitimate users remain unaffected. By keeping attackers engaged with a
//! controlled replica, their need to rotate fingerprints or adjust tactics
//! diminishes." The experiment runs the same seat spinner against the same
//! recommended stack twice — once blocking, once diverting — and compares
//! rotations, real inventory damage, absorbed effort, and money.

use crate::app::{AppConfig, DefendedApp};
use crate::engine::{share, Simulation};
use crate::monitor::HoldMonitor;
use crate::team::TeamConfig;
use fg_behavior::{LegitConfig, LegitPopulation, SeatSpinner, SeatSpinnerConfig};
use fg_core::ids::{ClientId, FlightId};
use fg_core::money::Money;
use fg_core::rng::SeedFork;
use fg_core::shard::ConcurrencyMode;
use fg_core::time::{SimDuration, SimTime};
use fg_inventory::flight::Flight;
use fg_mitigation::policy::PolicyConfig;
use fg_netsim::geo::GeoDatabase;
use fg_sentinel::{AlertPolicy, AlertRule, DriftStat, MetricSelector, SentinelReport};
use serde::Serialize;
use std::fmt;

/// Honeypot-economics configuration.
#[derive(Clone, Debug)]
pub struct HoneypotConfig {
    /// Master seed.
    pub seed: u64,
    /// Days simulated.
    pub days: u64,
    /// Legitimate bookers per day.
    pub arrivals_per_day: f64,
    /// Defence-state partitioning (see [`ConcurrencyMode`]); the report is
    /// identical in every mode when replayed single-threaded.
    pub concurrency: ConcurrencyMode,
}

impl Default for HoneypotConfig {
    fn default() -> Self {
        HoneypotConfig {
            seed: 0x40E1,
            days: 7,
            arrivals_per_day: 200.0,
            concurrency: ConcurrencyMode::Deterministic,
        }
    }
}

/// A CI-sized config: two days, lighter traffic.
pub fn smoke_config() -> HoneypotConfig {
    HoneypotConfig {
        days: 2,
        arrivals_per_day: 50.0,
        ..HoneypotConfig::default()
    }
}

/// The defence deployments this experiment exercises, for `fg-analyze`'s
/// config pass: both arms share the deliberately opened hold path.
pub fn defence_profiles() -> Vec<fg_mitigation::profile::DefenceProfile> {
    use fg_mitigation::profile::DefenceProfile;
    let config = HoneypotConfig::default();
    [false, true]
        .iter()
        .map(|&honeypot| {
            let mut policy = PolicyConfig::recommended();
            policy.honeypot_instead_of_block = honeypot;
            policy.gate.clear(fg_detection::log::Endpoint::Hold);
            policy.client_hold_limit = None;
            DefenceProfile::airline(if honeypot { "honeypot" } else { "blocking" }, policy)
                .horizon(fg_core::time::SimDuration::from_days(config.days as i64))
                .holds(config.arrivals_per_day, 576.0)
                .expected_bookings((config.arrivals_per_day * config.days as f64) as u64)
                .waive(
                    "unguarded-channel",
                    "the hold path is deliberately opened for both arms to measure decoy economics",
                )
        })
        .collect()
}

/// The alert policy the sentinel evaluates online during this experiment:
/// any honeypot diversion is direct evidence of a confirmed bot (legit users
/// never cross the diversion threshold), backed by NiP drift over the real
/// holds placed before the decoy swallows the attacker.
pub fn alert_policy() -> AlertPolicy {
    AlertPolicy::named("honeypot-engagement")
        .rule(AlertRule::threshold(
            "honeypot-diversion",
            MetricSelector::exact("fg_honeypot_diversions_total", &[]),
            SimDuration::from_hours(24),
            1.0,
        ))
        .rule(AlertRule::drift(
            "nip-distribution-drift",
            MetricSelector::exact("fg_nip_hold", &[]),
            SimDuration::from_hours(12),
            25,
            super::nip_baseline(),
            DriftStat::ChiSquarePerSample,
            0.5,
        ))
        .campaign(SimTime::ZERO, 1)
}

/// Registry entry for the multi-seed harness.
pub fn spec() -> crate::harness::ExperimentSpec {
    crate::harness::ExperimentSpec {
        name: "honeypot",
        default_seed: HoneypotConfig::default().seed,
        telemetry_capable: false,
        run: |p| {
            let mut config = if p.smoke {
                smoke_config()
            } else {
                HoneypotConfig::default()
            };
            config.seed = p.seed;
            config.concurrency = p.concurrency();
            if p.traces {
                let (report, alerts, traces) = run_traced(config);
                crate::harness::CellOutput::of(&report)
                    .with_alerts(p.alerts.then_some(alerts))
                    .with_traces(Some(traces))
            } else {
                let (report, alerts) = run_instrumented(config);
                crate::harness::CellOutput::of(&report).with_alerts(p.alerts.then_some(alerts))
            }
        },
        profiles: defence_profiles,
        alerts: alert_policy,
    }
}

/// Outcome of one arm (blocking or honeypot).
#[derive(Clone, Debug, Serialize)]
pub struct ArmOutcome {
    /// `true` for the honeypot arm.
    pub honeypot: bool,
    /// Fingerprint rotations the attacker performed.
    pub rotations: u64,
    /// Mean hold ratio on the real target flight during the attack.
    pub real_hold_ratio: f64,
    /// Fake holds the decoy absorbed (0 in the blocking arm).
    pub absorbed_holds: u64,
    /// The attacker's total spend (proxies and solver fees).
    pub attacker_spend: Money,
    /// Legit bookers denied by sold-out/held stock.
    pub legit_denied_by_stock: u64,
}

/// The honeypot-economics report.
#[derive(Clone, Debug, Serialize)]
pub struct HoneypotReport {
    /// The blocking arm.
    pub blocking: ArmOutcome,
    /// The honeypot arm.
    pub honeypot: ArmOutcome,
}

impl fmt::Display for HoneypotReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Honeypot economics — blocking vs diversion (same attacker)"
        )?;
        let row = |o: &ArmOutcome| {
            vec![
                if o.honeypot { "honeypot" } else { "blocking" }.to_owned(),
                o.rotations.to_string(),
                format!("{:.1}%", o.real_hold_ratio * 100.0),
                o.absorbed_holds.to_string(),
                o.attacker_spend.to_string(),
                o.legit_denied_by_stock.to_string(),
            ]
        };
        write!(
            f,
            "{}",
            crate::report::render_table(
                &[
                    "Arm",
                    "Rotations",
                    "Real hold ratio",
                    "Absorbed holds",
                    "Attacker spend",
                    "Legit denied",
                ],
                &[row(&self.blocking), row(&self.honeypot)]
            )
        )
    }
}

fn run_arm(
    config: &HoneypotConfig,
    honeypot: bool,
    traces: bool,
) -> (
    ArmOutcome,
    SentinelReport,
    Option<fg_telemetry::TraceSnapshot>,
) {
    let fork = SeedFork::new(config.seed);
    let geo = GeoDatabase::default_world();
    let end = SimTime::from_days(config.days);

    let mut policy = PolicyConfig::recommended();
    policy.honeypot_instead_of_block = honeypot;
    // The recommended trust gate would stop the anonymous bot outright and
    // hide the dynamics under study; open the hold endpoint for both arms.
    policy.gate.clear(fg_detection::log::Endpoint::Hold);
    policy.client_hold_limit = None;

    let mut app = DefendedApp::new(
        AppConfig::airline(policy).with_concurrency(config.concurrency),
        fork.seed("app"),
    );
    app.attach_sentinel(alert_policy());
    if traces {
        app.telemetry()
            .enable_tracing(fg_telemetry::TraceConfig::default());
    }
    let target = FlightId(1);
    app.add_flight(Flight::new(
        target,
        180,
        SimTime::from_days(config.days + 3),
    ));
    app.add_flight(Flight::new(
        FlightId(2),
        (config.arrivals_per_day * config.days as f64 * 2.0) as u32,
        SimTime::from_days(40),
    ));

    let mut sim = Simulation::new(app, fork.seed("sim"));
    sim.with_team(
        TeamConfig::default(),
        SimDuration::from_hours(2),
        SimTime::from_hours(2),
    );

    let mut legit_cfg = LegitConfig::default_airline(vec![target, FlightId(2)], end);
    legit_cfg.arrivals_per_day = config.arrivals_per_day;
    let (legit, legit_agent) = share(LegitPopulation::new(legit_cfg, geo.clone(), 1_000_000));
    sim.add_agent(legit_agent, SimTime::ZERO);

    let (mon, mon_agent) = share(HoldMonitor::new(target, SimDuration::from_mins(30), end));
    sim.add_agent(mon_agent, SimTime::ZERO);

    let mut spinner_rng = fork.rng("spinner");
    let mut spinner_cfg = SeatSpinnerConfig::airline_a(target);
    spinner_cfg.rotation_schedule = fg_fingerprint::rotation::RotationSchedule::OnBlock {
        reaction: SimDuration::from_hours(2),
    };
    let (spinner, spinner_agent) = share(SeatSpinner::new(
        spinner_cfg,
        ClientId(1),
        geo,
        &mut spinner_rng,
    ));
    sim.add_agent(spinner_agent, SimTime::ZERO);

    let app = sim.run(end);
    let alerts = app.sentinel_report(end).expect("sentinel attached above");

    let spinner = spinner.borrow();
    let ledger = spinner.ledger();
    let real_hold_ratio = mon
        .borrow()
        .mean_hold_ratio_between(SimTime::from_hours(12), end);
    let legit_denied_by_stock = legit.borrow().stats().denied_by_stock;
    let outcome = ArmOutcome {
        honeypot,
        rotations: spinner.rotation_times().len() as u64,
        real_hold_ratio,
        absorbed_holds: app.honeypot().stats().holds_absorbed,
        attacker_spend: ledger.total_cost() + app.solver_spend(ClientId(1)),
        legit_denied_by_stock,
    };
    let trace_snapshot = traces.then(|| app.telemetry().trace_snapshot());
    (outcome, alerts, trace_snapshot)
}

/// Runs both arms.
pub fn run(config: HoneypotConfig) -> HoneypotReport {
    run_instrumented(config).0
}

/// Runs both arms, also returning the sentinel outcome for the honeypot
/// arm — the cell where mitigation engagement (diversion) is itself the
/// alertable event.
pub fn run_instrumented(config: HoneypotConfig) -> (HoneypotReport, SentinelReport) {
    let (report, alerts, _) = run_inner(config, false);
    (report, alerts)
}

/// Like [`run_instrumented`], with span tracing enabled on the honeypot
/// arm, additionally returning that arm's trace export. Tracing is
/// read-only, so the report is unchanged.
pub fn run_traced(
    config: HoneypotConfig,
) -> (HoneypotReport, SentinelReport, fg_telemetry::TraceSnapshot) {
    let (report, alerts, traces) = run_inner(config, true);
    (report, alerts, traces.expect("tracing was enabled"))
}

fn run_inner(
    config: HoneypotConfig,
    traces: bool,
) -> (
    HoneypotReport,
    SentinelReport,
    Option<fg_telemetry::TraceSnapshot>,
) {
    let (blocking, _, _) = run_arm(&config, false, false);
    let (honeypot, alerts, trace_snapshot) = run_arm(&config, true, traces);
    (
        HoneypotReport { blocking, honeypot },
        alerts,
        trace_snapshot,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> HoneypotReport {
        run(HoneypotConfig {
            days: 5,
            arrivals_per_day: 120.0,
            ..HoneypotConfig::default()
        })
    }

    #[test]
    fn diversion_pacifies_rotation() {
        let r = report();
        // Blocking provokes the arms race; the decoy never tells the
        // attacker anything is wrong.
        assert!(
            r.honeypot.rotations < r.blocking.rotations,
            "honeypot {} rotations vs blocking {}",
            r.honeypot.rotations,
            r.blocking.rotations
        );
        assert!(r.blocking.rotations >= 1, "{r}");
    }

    #[test]
    fn decoy_absorbs_holds_and_protects_inventory() {
        let r = report();
        assert_eq!(r.blocking.absorbed_holds, 0);
        assert!(r.honeypot.absorbed_holds > 10, "{r}");
        assert!(
            r.honeypot.real_hold_ratio < 0.2,
            "real inventory protected: {:.3}",
            r.honeypot.real_hold_ratio
        );
    }

    #[test]
    fn attacker_keeps_spending_inside_the_decoy() {
        let r = report();
        assert!(r.honeypot.attacker_spend > Money::ZERO);
    }

    #[test]
    fn report_renders() {
        let s = report().to_string();
        assert!(s.contains("honeypot"));
        assert!(s.contains("Rotations"));
    }
}
