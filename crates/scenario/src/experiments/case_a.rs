//! **§IV-A in-text** — the fingerprint-rotation arms race.
//!
//! The security team reviews hourly and deploys block rules against
//! hold-heavy, never-paying fingerprints; the attacker reacts to each block
//! by presenting a fresh identity after its reaction delay — "typically
//! rotating their technical features within an average of 5.3 hours" of each
//! new rule. The experiment measures: (1) the mean rule-to-rotation delay,
//! (2) the attack's persistence past the NiP cap, and (3) the endgame —
//! holding ceases two days before departure.

use crate::app::{AppConfig, DefendedApp};
use crate::engine::{share, Simulation};
use crate::monitor::HoldMonitor;
use crate::team::TeamConfig;
use fg_behavior::{LegitConfig, LegitPopulation, SeatSpinner, SeatSpinnerConfig};
use fg_core::ids::{ClientId, FlightId};
use fg_core::rng::SeedFork;
use fg_core::shard::ConcurrencyMode;
use fg_core::time::{SimDuration, SimTime};
use fg_inventory::flight::Flight;
use fg_mitigation::policy::PolicyConfig;
use fg_netsim::geo::GeoDatabase;
use fg_sentinel::{AlertPolicy, AlertRule, DriftStat, MetricSelector, SentinelReport};
use fg_telemetry::Telemetry;
use serde::Serialize;
use std::fmt;
use std::sync::Arc;

/// Case A configuration.
#[derive(Clone, Debug)]
pub struct CaseAConfig {
    /// Master seed.
    pub seed: u64,
    /// Departure day of the target flight.
    pub departure_day: u64,
    /// The attacker's reaction delay from block to new identity.
    pub reaction_hours: f64,
    /// Day on which the NiP cap (4) is introduced.
    pub cap_day: u64,
    /// Legitimate bookers per day.
    pub arrivals_per_day: f64,
    /// Defence-state partitioning (see [`ConcurrencyMode`]); the report is
    /// identical in every mode when replayed single-threaded.
    pub concurrency: ConcurrencyMode,
}

impl Default for CaseAConfig {
    fn default() -> Self {
        CaseAConfig {
            seed: 0xCA5EA,
            departure_day: 14,
            reaction_hours: 5.3,
            cap_day: 4,
            arrivals_per_day: 300.0,
            concurrency: ConcurrencyMode::Deterministic,
        }
    }
}

/// A CI-sized config: a shorter booking window, lighter traffic.
pub fn smoke_config() -> CaseAConfig {
    CaseAConfig {
        departure_day: 6,
        cap_day: 2,
        arrivals_per_day: 60.0,
        ..CaseAConfig::default()
    }
}

/// The defence deployments this experiment exercises, for `fg-analyze`'s
/// config pass.
pub fn defence_profiles() -> Vec<fg_mitigation::profile::DefenceProfile> {
    use fg_core::time::SimDuration;
    use fg_mitigation::profile::DefenceProfile;
    let config = CaseAConfig::default();
    // The spinner holds 12 seats and re-places each as its 30-minute TTL
    // expires (576 holds/day against the target flight).
    vec![
        DefenceProfile::airline("traditional+nip-cap", PolicyConfig::traditional_antibot())
            .horizon(SimDuration::from_days(config.departure_day as i64))
            .max_nip(4)
            .holds(config.arrivals_per_day, 576.0)
            .expected_bookings((config.arrivals_per_day * config.departure_day as f64) as u64)
            .waive(
                "unguarded-channel",
                "era posture under study: Case A's airline had no hold limiter, which is the point",
            ),
    ]
}

/// The alert policy the sentinel evaluates online during this experiment:
/// the NiP distribution of successful holds drifting away from the airline's
/// known average-week shape (the attack starts at `t = 0`, so there is no
/// clean week to learn a baseline from).
pub fn alert_policy() -> AlertPolicy {
    AlertPolicy::named("case-a-nip-drift")
        .rule(AlertRule::drift(
            "nip-distribution-drift",
            MetricSelector::exact("fg_nip_hold", &[]),
            SimDuration::from_hours(6),
            40,
            super::nip_baseline(),
            DriftStat::ChiSquarePerSample,
            0.5,
        ))
        .campaign(SimTime::ZERO, 1)
}

/// Registry entry for the multi-seed harness.
pub fn spec() -> crate::harness::ExperimentSpec {
    crate::harness::ExperimentSpec {
        name: "case_a",
        default_seed: CaseAConfig::default().seed,
        telemetry_capable: true,
        run: |p| {
            let mut config = if p.smoke {
                smoke_config()
            } else {
                CaseAConfig::default()
            };
            config.seed = p.seed;
            config.concurrency = p.concurrency();
            let (report, telemetry, alerts) = if p.traces {
                run_traced(config)
            } else {
                run_full(config)
            };
            let mut out =
                crate::harness::CellOutput::of(&report).with_alerts(p.alerts.then_some(alerts));
            if p.telemetry {
                out = out.with_telemetry(telemetry.snapshot());
            }
            if p.traces {
                out = out.with_traces(Some(telemetry.trace_snapshot()));
            }
            out
        },
        profiles: defence_profiles,
        alerts: alert_policy,
    }
}

/// The Case A report.
#[derive(Clone, Debug, Serialize)]
pub struct CaseAReport {
    /// Mean hours from a block-rule deployment to the attacker's next
    /// rotation (the paper's 5.3 h statistic).
    pub mean_rule_to_rotation_hours: Option<f64>,
    /// Fingerprint rotations the attacker performed.
    pub rotations: u64,
    /// Block rules the team deployed.
    pub rules_deployed: usize,
    /// The attacker's NiP before the cap.
    pub nip_before_cap: u32,
    /// The attacker's NiP after the cap (persistence at the cap).
    pub nip_after_cap: u32,
    /// When holding activity ceased.
    pub attack_stopped_at_day: f64,
    /// Departure day (for the "two days before" check).
    pub departure_day: f64,
    /// Mean fraction of the target flight locked in holds while the attack
    /// ran.
    pub mean_hold_ratio_during_attack: f64,
    /// Requests the policy engine hard-blocked over the whole run.
    pub blocked_requests: u64,
}

impl fmt::Display for CaseAReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Case A — Seat Spinning arms race (Airline A)")?;
        writeln!(
            f,
            "  rules deployed: {}; attacker rotations: {}",
            self.rules_deployed, self.rotations
        )?;
        match self.mean_rule_to_rotation_hours {
            Some(h) => writeln!(f, "  mean rule→rotation delay: {h:.1} h (paper: 5.3 h)")?,
            None => writeln!(f, "  mean rule→rotation delay: n/a (no rotations)")?,
        }
        writeln!(
            f,
            "  NiP before cap: {}; after cap: {} (attack persists at the cap)",
            self.nip_before_cap, self.nip_after_cap
        )?;
        writeln!(
            f,
            "  attack stopped day {:.1}; departure day {:.0} (stop margin {:.1} d)",
            self.attack_stopped_at_day,
            self.departure_day,
            self.departure_day - self.attack_stopped_at_day
        )?;
        writeln!(
            f,
            "  mean hold ratio on target flight during attack: {:.1}%",
            self.mean_hold_ratio_during_attack * 100.0
        )?;
        writeln!(f, "  requests hard-blocked: {}", self.blocked_requests)
    }
}

/// Runs the Case A scenario.
pub fn run(config: CaseAConfig) -> CaseAReport {
    run_with_telemetry(config).0
}

/// Runs the Case A scenario against a fresh [`Telemetry`] sink and returns
/// it alongside the report, so callers can export metrics, the decision
/// audit trail, and per-stage latency profiles for the run.
pub fn run_with_telemetry(config: CaseAConfig) -> (CaseAReport, Arc<Telemetry>) {
    let (report, telemetry, _) = run_full(config);
    (report, telemetry)
}

/// Runs the Case A scenario with both the telemetry sink and the sentinel
/// attached. Sentinel observation is read-only, so the report is identical
/// to [`run`]'s.
pub fn run_full(config: CaseAConfig) -> (CaseAReport, Arc<Telemetry>, SentinelReport) {
    run_inner(config, false)
}

/// Like [`run_full`], with span tracing enabled on the telemetry sink; read
/// the export via [`Telemetry::trace_snapshot`]. Tracing is read-only, so
/// the report is still identical to [`run`]'s.
pub fn run_traced(config: CaseAConfig) -> (CaseAReport, Arc<Telemetry>, SentinelReport) {
    run_inner(config, true)
}

fn run_inner(config: CaseAConfig, traces: bool) -> (CaseAReport, Arc<Telemetry>, SentinelReport) {
    let telemetry = Telemetry::shared();
    let fork = SeedFork::new(config.seed);
    let geo = GeoDatabase::default_world();
    let departure = SimTime::from_days(config.departure_day);
    let end = departure;

    let mut app = DefendedApp::with_telemetry(
        AppConfig::airline(PolicyConfig::traditional_antibot())
            .with_concurrency(config.concurrency),
        config.seed,
        telemetry.clone(),
    );
    app.attach_sentinel(alert_policy());
    if traces {
        app.telemetry()
            .enable_tracing(fg_telemetry::TraceConfig::default());
    }
    let target = FlightId(1);
    app.add_flight(Flight::new(target, 180, departure));
    // Background flights so the legit population has somewhere to book.
    for f in 2..=4 {
        app.add_flight(Flight::new(
            FlightId(f),
            (config.arrivals_per_day * config.departure_day as f64) as u32,
            SimTime::from_days(config.departure_day + 20),
        ));
    }

    let mut sim = Simulation::new(app, fork.seed("sim"));
    sim.with_team(
        TeamConfig {
            window: SimDuration::from_hours(6),
            hold_threshold: 6,
            use_name_heuristics: true,
            report_ips_only: false,
        },
        SimDuration::from_hours(1),
        SimTime::from_hours(1),
    );

    let flights: Vec<FlightId> = (1..=4).map(FlightId).collect();
    let mut legit_cfg = LegitConfig::default_airline(flights, end);
    legit_cfg.arrivals_per_day = config.arrivals_per_day;
    let (_legit, legit_agent) = share(LegitPopulation::new(legit_cfg, geo.clone(), 1_000_000));
    sim.add_agent(legit_agent, SimTime::ZERO);

    let mut spinner_cfg = SeatSpinnerConfig::airline_a(target);
    spinner_cfg.rotation_schedule = fg_fingerprint::rotation::RotationSchedule::OnBlock {
        reaction: SimDuration::from_hours_f64(config.reaction_hours),
    };
    let mut spinner_rng = fork.rng("spinner");
    let (spinner, spinner_agent) = share(SeatSpinner::new(
        spinner_cfg,
        ClientId(1),
        geo,
        &mut spinner_rng,
    ));
    sim.add_agent(spinner_agent, SimTime::ZERO);

    let (mon, mon_agent) = share(HoldMonitor::new(target, SimDuration::from_mins(30), end));
    sim.add_agent(mon_agent, SimTime::ZERO);

    // Record the attacker's NiP just before the cap lands, then cap.
    let cap_at = SimTime::from_days(config.cap_day);
    sim.schedule(cap_at, move |app, _now| {
        app.reservations_mut().set_max_nip(4);
    });

    let app = sim.run(end);
    let alerts = app.sentinel_report(end).expect("sentinel attached above");

    let spinner = spinner.borrow();
    let stats = spinner.stats();

    // Mean rule→rotation delay: for each rule deployment, the first rotation
    // after it.
    let rotation_times = spinner.rotation_times();
    let mut deltas = Vec::new();
    for rule in app.policy().rules().stats() {
        if let Some(&rot) = rotation_times.iter().find(|&&t| t > rule.created_at) {
            deltas.push((rot - rule.created_at).as_hours_f64());
        }
    }
    // Rules come in pairs (identity + combo) per incident; deduplicate by
    // creation time.
    deltas.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

    let mean_hold_ratio_during_attack = mon
        .borrow()
        .mean_hold_ratio_between(SimTime::ZERO, departure - SimDuration::from_days(2));
    let report = CaseAReport {
        mean_rule_to_rotation_hours: if deltas.is_empty() {
            None
        } else {
            Some(deltas.iter().sum::<f64>() / deltas.len() as f64)
        },
        rotations: rotation_times.len() as u64,
        rules_deployed: app.policy().rules().len(),
        nip_before_cap: 6,
        nip_after_cap: spinner.chosen_nip(),
        attack_stopped_at_day: stats.stopped_at.map_or(config.departure_day as f64, |t| {
            t.as_millis() as f64 / 86_400_000.0
        }),
        departure_day: config.departure_day as f64,
        mean_hold_ratio_during_attack,
        blocked_requests: app.policy().counts().block,
    };
    (report, telemetry, alerts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_arms_race() {
        let report = run(CaseAConfig::default());

        // The team deployed rules and the attacker rotated in response.
        assert!(report.rules_deployed >= 2, "{report}");
        assert!(report.rotations >= 1, "{report}");

        // Rule→rotation delay ≈ the configured 5.3 h reaction.
        let mean = report
            .mean_rule_to_rotation_hours
            .expect("rotations happened");
        assert!(
            (4.0..8.0).contains(&mean),
            "mean rule→rotation {mean:.1} h, expected ≈5.3 h"
        );

        // Persistence at the cap.
        assert_eq!(report.nip_after_cap, 4, "{report}");

        // Endgame: stopped ≈ 2 days before departure.
        let margin = report.departure_day - report.attack_stopped_at_day;
        assert!(
            (1.8..2.5).contains(&margin),
            "stop margin {margin:.2} d, expected ≈2 d"
        );

        // The attack kept coming back after every block: seats were locked
        // whenever the current identity was unblocked. With a 5.3 h reaction
        // the duty cycle is low, but never zero until the endgame.
        assert!(
            report.mean_hold_ratio_during_attack > 0.005,
            "hold ratio {:.4}",
            report.mean_hold_ratio_during_attack
        );
    }

    #[test]
    fn faster_reaction_shortens_the_measured_delay() {
        let fast = run(CaseAConfig {
            reaction_hours: 1.0,
            seed: 0xCA5EB,
            ..CaseAConfig::default()
        });
        let slow = run(CaseAConfig::default());
        if let (Some(f), Some(s)) = (
            fast.mean_rule_to_rotation_hours,
            slow.mean_rule_to_rotation_hours,
        ) {
            assert!(f < s, "fast {f:.1} h vs slow {s:.1} h");
        }
    }

    #[test]
    fn report_renders() {
        let report = run(CaseAConfig::default());
        let s = report.to_string();
        assert!(s.contains("rule→rotation"));
        assert!(s.contains("stop margin"));
    }
}
