//! **§IV-B in-text** — automated vs manual Seat Spinning, detected through
//! passenger-name patterns.
//!
//! Three traffic sources share one airline: the legitimate population, an
//! Airline-B-style automated spinner (fixed lead name, rotating birthdate),
//! and an Airline-C-style manual spinner (fixed name set permuted across
//! bookings, occasional typos). The name-heuristic analyzer then classifies
//! every booking; the report gives stream-level verdicts and per-booking
//! precision/recall — including the paper's key point that the *manual*
//! attack triggers no automation signal yet is still caught by repetition
//! heuristics.

use crate::app::{AppConfig, DefendedApp};
use crate::engine::{share, Simulation};
use fg_behavior::seat_spinner::NameStyle;
use fg_behavior::{
    LegitConfig, LegitPopulation, ManualSpinner, ManualSpinnerConfig, SeatSpinner,
    SeatSpinnerConfig,
};
use fg_core::ids::{ClientId, FlightId};
use fg_core::rng::SeedFork;
use fg_core::shard::ConcurrencyMode;
use fg_core::time::SimTime;
use fg_detection::classify::ConfusionMatrix;
use fg_detection::names::{gibberish_score, NameAbuseAnalyzer};
use fg_inventory::flight::Flight;
use fg_mitigation::policy::PolicyConfig;
use fg_netsim::geo::GeoDatabase;
use fg_sentinel::{AlertPolicy, AlertRule, DriftStat, MetricSelector, SentinelReport};
use fg_telemetry::Telemetry;
use serde::Serialize;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// Case B configuration.
#[derive(Clone, Debug)]
pub struct CaseBConfig {
    /// Master seed.
    pub seed: u64,
    /// Days simulated.
    pub days: u64,
    /// Legitimate bookers per day.
    pub arrivals_per_day: f64,
    /// Defence-state partitioning (see [`ConcurrencyMode`]); the report is
    /// identical in every mode when replayed single-threaded.
    pub concurrency: ConcurrencyMode,
}

impl Default for CaseBConfig {
    fn default() -> Self {
        CaseBConfig {
            seed: 0xCA5EB2,
            days: 5,
            arrivals_per_day: 300.0,
            concurrency: ConcurrencyMode::Deterministic,
        }
    }
}

/// A CI-sized config: two days, lighter traffic.
pub fn smoke_config() -> CaseBConfig {
    CaseBConfig {
        days: 2,
        arrivals_per_day: 60.0,
        ..CaseBConfig::default()
    }
}

/// The defence deployments this experiment exercises, for `fg-analyze`'s
/// config pass.
pub fn defence_profiles() -> Vec<fg_mitigation::profile::DefenceProfile> {
    use fg_mitigation::profile::DefenceProfile;
    let config = CaseBConfig::default();
    vec![
        DefenceProfile::airline("unprotected", PolicyConfig::unprotected())
            .horizon(fg_core::time::SimDuration::from_days(config.days as i64))
            .expected_bookings((config.arrivals_per_day * config.days as f64) as u64),
    ]
}

/// The alert policy the sentinel evaluates online during this experiment:
/// the combined NiP load of the two spinners (fixed NiP 3 automated, manual
/// permutations) drifting away from the airline's average-week shape.
pub fn alert_policy() -> AlertPolicy {
    AlertPolicy::named("case-b-nip-drift")
        .rule(AlertRule::drift(
            "nip-distribution-drift",
            MetricSelector::exact("fg_nip_hold", &[]),
            fg_core::time::SimDuration::from_hours(6),
            40,
            super::nip_baseline(),
            DriftStat::ChiSquarePerSample,
            0.5,
        ))
        .campaign(SimTime::ZERO, 1)
}

/// Registry entry for the multi-seed harness.
pub fn spec() -> crate::harness::ExperimentSpec {
    crate::harness::ExperimentSpec {
        name: "case_b",
        default_seed: CaseBConfig::default().seed,
        telemetry_capable: true,
        run: |p| {
            let mut config = if p.smoke {
                smoke_config()
            } else {
                CaseBConfig::default()
            };
            config.seed = p.seed;
            config.concurrency = p.concurrency();
            let (report, telemetry, alerts) = if p.traces {
                run_traced(config)
            } else {
                run_full(config)
            };
            let mut out =
                crate::harness::CellOutput::of(&report).with_alerts(p.alerts.then_some(alerts));
            if p.telemetry {
                out = out.with_telemetry(telemetry.snapshot());
            }
            if p.traces {
                out = out.with_traces(Some(telemetry.trace_snapshot()));
            }
            out
        },
        profiles: defence_profiles,
        alerts: alert_policy,
    }
}

/// The Case B report.
#[derive(Clone, Debug, Serialize)]
pub struct CaseBReport {
    /// Did the analyzer flag automated abuse in the stream?
    pub automated_flagged: bool,
    /// Did the analyzer flag manual abuse in the stream?
    pub manual_flagged: bool,
    /// Per-booking confusion matrix of the combined name detector.
    pub confusion: ConfusionMatrix,
    /// Precision of per-booking flagging.
    pub precision: f64,
    /// Recall of per-booking flagging.
    pub recall: f64,
    /// Bookings created by each source (legit, automated, manual).
    pub bookings_by_source: [u64; 3],
}

impl fmt::Display for CaseBReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Case B — automated vs manual Seat Spinning (name heuristics)"
        )?;
        writeln!(
            f,
            "  stream verdicts: automated={} manual={}",
            self.automated_flagged, self.manual_flagged
        )?;
        writeln!(
            f,
            "  bookings: legit={} automated={} manual={}",
            self.bookings_by_source[0], self.bookings_by_source[1], self.bookings_by_source[2]
        )?;
        writeln!(
            f,
            "  per-booking detector: precision={:.3} recall={:.3} ({})",
            self.precision, self.recall, self.confusion
        )
    }
}

/// Runs the Case B scenario.
pub fn run(config: CaseBConfig) -> CaseBReport {
    run_with_telemetry(config).0
}

/// Runs the Case B scenario against a fresh [`Telemetry`] sink and returns
/// it alongside the report, for metric/audit/latency export.
pub fn run_with_telemetry(config: CaseBConfig) -> (CaseBReport, Arc<Telemetry>) {
    let (report, telemetry, _) = run_full(config);
    (report, telemetry)
}

/// Runs the Case B scenario with both the telemetry sink and the sentinel
/// attached. Sentinel observation is read-only, so the report is identical
/// to [`run`]'s.
pub fn run_full(config: CaseBConfig) -> (CaseBReport, Arc<Telemetry>, SentinelReport) {
    run_inner(config, false)
}

/// Like [`run_full`], with span tracing enabled on the telemetry sink; read
/// the export via [`Telemetry::trace_snapshot`]. Tracing is read-only, so
/// the report is still identical to [`run`]'s.
pub fn run_traced(config: CaseBConfig) -> (CaseBReport, Arc<Telemetry>, SentinelReport) {
    run_inner(config, true)
}

fn run_inner(config: CaseBConfig, traces: bool) -> (CaseBReport, Arc<Telemetry>, SentinelReport) {
    let telemetry = Telemetry::shared();
    let fork = SeedFork::new(config.seed);
    let geo = GeoDatabase::default_world();
    let end = SimTime::from_days(config.days);

    let mut app = DefendedApp::with_telemetry(
        AppConfig::airline(PolicyConfig::unprotected()).with_concurrency(config.concurrency),
        config.seed,
        telemetry.clone(),
    );
    app.attach_sentinel(alert_policy());
    if traces {
        app.telemetry()
            .enable_tracing(fg_telemetry::TraceConfig::default());
    }
    let capacity = (config.arrivals_per_day * config.days as f64 * 3.0) as u32;
    for f in 1..=3 {
        app.add_flight(Flight::new(FlightId(f), capacity, SimTime::from_days(40)));
    }

    let mut sim = Simulation::new(app, fork.seed("sim"));

    let flights: Vec<FlightId> = (1..=3).map(FlightId).collect();
    let mut legit_cfg = LegitConfig::default_airline(flights, end);
    legit_cfg.arrivals_per_day = config.arrivals_per_day;
    let (_legit, legit_agent) = share(LegitPopulation::new(legit_cfg, geo.clone(), 1_000_000));
    sim.add_agent(legit_agent, SimTime::ZERO);

    // Airline B: automated spinner with the rotating-birthdate signature.
    const AUTOMATED_CLIENT: ClientId = ClientId(1);
    let mut auto_cfg = SeatSpinnerConfig::airline_a(FlightId(2));
    auto_cfg.name_style = NameStyle::RotatingBirthdate;
    auto_cfg.nip_strategy = fg_behavior::NipStrategy::Fixed(3);
    auto_cfg.concurrent_holds = 4;
    let mut auto_rng = fork.rng("auto");
    let (_auto, auto_agent) = share(SeatSpinner::new(
        auto_cfg,
        AUTOMATED_CLIENT,
        geo.clone(),
        &mut auto_rng,
    ));
    sim.add_agent(auto_agent, SimTime::ZERO);

    // Airline C: manual spinner.
    const MANUAL_CLIENT: ClientId = ClientId(2);
    let mut manual_rng = fork.rng("manual");
    let (_manual, manual_agent) = share(ManualSpinner::new(
        ManualSpinnerConfig::airline_c(FlightId(3), end),
        MANUAL_CLIENT,
        geo,
        &mut manual_rng,
    ));
    sim.add_agent(manual_agent, SimTime::ZERO);

    let app = sim.run(end);
    let alerts = app.sentinel_report(end).expect("sentinel attached above");

    // Analysis: feed every booking to the analyzer, then flag per booking.
    let mut analyzer = NameAbuseAnalyzer::new();
    for booking in app.reservations().bookings() {
        analyzer.record(booking.passengers());
    }
    let report = analyzer.report();

    let flagged_keys: HashSet<&str> = report
        .rotating_birthdate_keys
        .iter()
        .map(String::as_str)
        .chain(report.permuted_sets.iter().flat_map(|sig| sig.split('|')))
        .collect();

    let mut confusion = ConfusionMatrix::new();
    let mut by_source = [0u64; 3];
    // Map bookings back to their source via the app's ground-truth logs:
    // booking creation is 1:1 with successful Hold log records per client,
    // but the simplest truthful join is via passenger patterns being owned
    // by the attack clients; we instead use the hold logs' truth_client per
    // fingerprint. The reservation system doesn't store the client, so we
    // reconstruct from log order: bookings and successful hold logs are both
    // creation-ordered.
    let mut hold_clients: Vec<(SimTime, ClientId)> = app
        .logs()
        .iter()
        .filter(|l| l.endpoint == fg_detection::log::Endpoint::Hold && l.ok)
        .map(|l| (l.at, l.truth_client))
        .collect();
    hold_clients.sort_by_key(|&(t, _)| t);
    let mut bookings: Vec<&fg_inventory::booking::Booking> =
        app.reservations().bookings().collect();
    bookings.sort_by_key(|b| b.created_at());

    for (booking, &(_, client)) in bookings.iter().zip(&hold_clients) {
        let truth_is_attack = client == AUTOMATED_CLIENT || client == MANUAL_CLIENT;
        by_source[if client == AUTOMATED_CLIENT {
            1
        } else if client == MANUAL_CLIENT {
            2
        } else {
            0
        }] += 1;

        let predicted = booking.passengers().iter().any(|p| {
            flagged_keys.contains(p.name_key().as_str())
                || gibberish_score(&p.first_name).max(gibberish_score(&p.surname)) > 0.5
        });
        confusion.record(truth_is_attack, predicted);
    }

    let report = CaseBReport {
        automated_flagged: report.automated_suspected(),
        manual_flagged: report.manual_suspected(),
        precision: confusion.precision(),
        recall: confusion.recall(),
        confusion,
        bookings_by_source: by_source,
    };
    (report, telemetry, alerts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_attack_styles_are_flagged_at_stream_level() {
        let report = run(CaseBConfig::default());
        assert!(report.automated_flagged, "{report}");
        assert!(report.manual_flagged, "{report}");
        assert!(report.bookings_by_source[1] > 10, "{report}");
        assert!(report.bookings_by_source[2] > 10, "{report}");
    }

    #[test]
    fn per_booking_detection_is_precise_and_sensitive() {
        let report = run(CaseBConfig::default());
        assert!(report.precision > 0.9, "precision {:.3}", report.precision);
        assert!(report.recall > 0.7, "recall {:.3}", report.recall);
    }

    #[test]
    fn legit_only_traffic_is_clean() {
        // Rerun analysis over a legit-only world: no flags.
        let fork = SeedFork::new(1);
        let geo = GeoDatabase::default_world();
        let end = SimTime::from_days(3);
        let mut app = DefendedApp::new(AppConfig::airline(PolicyConfig::unprotected()), 1);
        app.add_flight(Flight::new(FlightId(1), 10_000, SimTime::from_days(40)));
        let mut sim = Simulation::new(app, fork.seed("sim"));
        let (_l, agent) = share(LegitPopulation::new(
            LegitConfig::default_airline(vec![FlightId(1)], end),
            geo,
            1_000_000,
        ));
        sim.add_agent(agent, SimTime::ZERO);
        let app = sim.run(end);

        let mut analyzer = NameAbuseAnalyzer::new();
        for b in app.reservations().bookings() {
            analyzer.record(b.passengers());
        }
        let r = analyzer.report();
        assert!(!r.automated_suspected(), "{r:?}");
        assert!(!r.manual_suspected(), "{r:?}");
    }

    #[test]
    fn report_renders() {
        let s = run(CaseBConfig::default()).to_string();
        assert!(s.contains("precision"));
        assert!(s.contains("automated="));
    }
}
