//! **Table I** — per-country SMS surge during the boarding-pass pumping
//! attack.
//!
//! One baseline week of legitimate traffic establishes each destination's
//! normal SMS volume; the Airline D pumper then runs for the second week
//! against the vulnerable (unprotected) configuration. The report is the
//! paper's table: countries ranked by percentage increase, with the premium
//! head (Uzbekistan, Iran, …) surging by orders of magnitude more than
//! mainstream destinations (UK, China, Thailand in double digits).

use crate::app::{AppConfig, DefendedApp};
use crate::engine::{share, Simulation};
use fg_behavior::{LegitConfig, LegitPopulation, SmsPumper, SmsPumperConfig};
use fg_core::ids::{ClientId, CountryCode, FlightId};
use fg_core::money::Money;
use fg_core::rng::SeedFork;
use fg_core::shard::ConcurrencyMode;
use fg_core::time::SimTime;
use fg_inventory::flight::Flight;
use fg_mitigation::policy::PolicyConfig;
use fg_netsim::geo::GeoDatabase;
use fg_sentinel::{AlertPolicy, AlertRule, MetricSelector, SentinelReport};
use serde::Serialize;
use std::fmt;

/// Table I experiment configuration.
#[derive(Clone, Debug)]
pub struct Table1Config {
    /// Master seed.
    pub seed: u64,
    /// Legitimate bookers per day (scales the per-country baselines).
    pub arrivals_per_day: f64,
    /// Attacker SMS attempts per hour.
    pub pump_per_hour: f64,
    /// How many rows to report.
    pub top_n: usize,
    /// Defence-state partitioning (see [`ConcurrencyMode`]); the report is
    /// identical in every mode when replayed single-threaded.
    pub concurrency: ConcurrencyMode,
}

impl Default for Table1Config {
    fn default() -> Self {
        Table1Config {
            seed: 0x7AB1E1,
            arrivals_per_day: 2_000.0,
            pump_per_hour: 600.0,
            top_n: 10,
            concurrency: ConcurrencyMode::Deterministic,
        }
    }
}

/// A CI-sized config: lighter traffic, smaller pump.
pub fn smoke_config() -> Table1Config {
    Table1Config {
        arrivals_per_day: 200.0,
        pump_per_hour: 60.0,
        ..Table1Config::default()
    }
}

/// The defence deployments this experiment exercises, for `fg-analyze`'s
/// config pass.
pub fn defence_profiles() -> Vec<fg_mitigation::profile::DefenceProfile> {
    use fg_mitigation::profile::DefenceProfile;
    let config = Table1Config::default();
    // Arrivals send OTPs and boarding passes (0.674 SMS per arrival); the
    // pump adds its hourly rate around the clock. No defence is in force,
    // so the config pass records the exposure without channel lints.
    vec![
        DefenceProfile::airline("unprotected", PolicyConfig::unprotected())
            .horizon(fg_core::time::SimDuration::from_days(14))
            .sms(config.arrivals_per_day * 0.674, config.pump_per_hour * 24.0)
            .expected_bookings((config.arrivals_per_day * 14.0) as u64),
    ]
}

/// The alert policy the sentinel evaluates online during this experiment:
/// Table I itself as a detector — any destination country's delivered-SMS
/// rate surging far above its sliding weekly baseline — plus the owner's
/// SMS spend burning above its baseline rate.
pub fn alert_policy() -> AlertPolicy {
    use fg_core::time::SimDuration;
    AlertPolicy::named("table1-sms-surge")
        .rule(AlertRule::surge(
            "sms-country-surge",
            MetricSelector::any("fg_sms_sent_total"),
            SimDuration::from_hours(1),
            SimDuration::from_days(7),
            8.0,
            10.0,
        ))
        .rule(AlertRule::burn_rate(
            "sms-burn-rate",
            SimDuration::from_hours(6),
            SimDuration::from_days(7),
            3.0,
            2.0,
        ))
        .campaign(SimTime::from_weeks(1), 1)
}

/// Registry entry for the multi-seed harness.
pub fn spec() -> crate::harness::ExperimentSpec {
    crate::harness::ExperimentSpec {
        name: "table1",
        default_seed: Table1Config::default().seed,
        telemetry_capable: false,
        run: |p| {
            let mut config = if p.smoke {
                smoke_config()
            } else {
                Table1Config::default()
            };
            config.seed = p.seed;
            config.concurrency = p.concurrency();
            if p.traces {
                let (report, alerts, traces) = run_traced(config);
                crate::harness::CellOutput::of(&report)
                    .with_alerts(p.alerts.then_some(alerts))
                    .with_traces(Some(traces))
            } else {
                let (report, alerts) = run_instrumented(config);
                crate::harness::CellOutput::of(&report).with_alerts(p.alerts.then_some(alerts))
            }
        },
        profiles: defence_profiles,
        alerts: alert_policy,
    }
}

/// One row of the surge table.
#[derive(Clone, Debug, Serialize)]
pub struct SurgeRow {
    /// Destination country.
    pub country: String,
    /// Percentage increase, attack week over baseline week.
    pub increase_pct: f64,
    /// Baseline-week SMS count.
    pub baseline: u64,
    /// Attack-week SMS count.
    pub attack: u64,
}

/// The Table I report.
#[derive(Clone, Debug, Serialize)]
pub struct Table1Report {
    /// Rows ranked by surge, top-N.
    pub rows: Vec<SurgeRow>,
    /// Distinct countries that received attack-window SMS (§IV-C: 42).
    pub countries_reached: usize,
    /// The application owner's total SMS bill (both weeks).
    pub owner_cost: Money,
    /// The attacker's SMS kickback revenue.
    pub attacker_revenue: Money,
}

impl fmt::Display for Table1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table I — top {} countries by SMS surge (attack week vs baseline week)",
            self.rows.len()
        )?;
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.country.clone(),
                    crate::report::format_pct(r.increase_pct),
                    r.baseline.to_string(),
                    r.attack.to_string(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            crate::report::render_table(&["Country", "Increase", "Baseline", "Attack"], &rows)
        )?;
        writeln!(
            f,
            "countries reached in attack week: {}; owner SMS cost: {}; attacker revenue: {}",
            self.countries_reached, self.owner_cost, self.attacker_revenue
        )
    }
}

/// Runs the Table I scenario.
pub fn run(config: Table1Config) -> Table1Report {
    run_instrumented(config).0
}

/// Runs the Table I scenario with the sentinel attached, returning the
/// report plus the online alerting outcome. Observation is read-only, so
/// the report is identical to [`run`]'s.
pub fn run_instrumented(config: Table1Config) -> (Table1Report, SentinelReport) {
    let (report, alerts, _) = run_inner(config, false);
    (report, alerts)
}

/// Like [`run_instrumented`], with span tracing enabled on the defended
/// app, additionally returning the trace export. Tracing is read-only, so
/// the report is still identical to [`run`]'s.
pub fn run_traced(
    config: Table1Config,
) -> (Table1Report, SentinelReport, fg_telemetry::TraceSnapshot) {
    let (report, alerts, traces) = run_inner(config, true);
    (report, alerts, traces.expect("tracing was enabled"))
}

fn run_inner(
    config: Table1Config,
    traces: bool,
) -> (
    Table1Report,
    SentinelReport,
    Option<fg_telemetry::TraceSnapshot>,
) {
    let fork = SeedFork::new(config.seed);
    let geo = GeoDatabase::default_world();
    let end = SimTime::from_weeks(2);

    // Airline D, December 2022: no per-feature limits at all.
    let mut app = DefendedApp::new(
        AppConfig::airline(PolicyConfig::unprotected()).with_concurrency(config.concurrency),
        config.seed,
    );
    app.attach_sentinel(alert_policy());
    if traces {
        app.telemetry()
            .enable_tracing(fg_telemetry::TraceConfig::default());
    }
    let flight = FlightId(1);
    let capacity = (config.arrivals_per_day * 14.0 * 2.0 * 1.5) as u32;
    app.add_flight(Flight::new(flight, capacity, SimTime::from_days(30)));

    let mut sim = Simulation::new(app, fork.seed("sim"));

    let mut legit_cfg = LegitConfig::default_airline(vec![flight], end);
    legit_cfg.arrivals_per_day = config.arrivals_per_day;
    let (_legit, legit_agent) = share(LegitPopulation::new(legit_cfg, geo.clone(), 1_000_000));
    sim.add_agent(legit_agent, SimTime::ZERO);

    // The pumper joins at the start of week 1.
    let mut pump_cfg = SmsPumperConfig::airline_d(flight, end);
    pump_cfg.sms_per_hour = config.pump_per_hour;
    let rates = fg_smsgw::rates::RateTable::default_world();
    let mut pumper_rng = fork.rng("pumper");
    let (_pumper, pumper_agent) = share(SmsPumper::new(
        pump_cfg,
        ClientId(1),
        geo,
        &rates,
        &mut pumper_rng,
    ));
    sim.add_agent(pumper_agent, SimTime::from_weeks(1));

    let app = sim.run(end);
    let alerts = app.sentinel_report(end).expect("sentinel attached above");

    let baseline = (SimTime::ZERO, SimTime::from_weeks(1));
    let window = (SimTime::from_weeks(1), SimTime::from_weeks(2));
    let mut rows: Vec<SurgeRow> = app
        .gateway()
        .surge_table(baseline, window)
        .into_iter()
        .map(|(country, pct)| SurgeRow {
            baseline: app
                .gateway()
                .sent_to_between(country, baseline.0, baseline.1),
            attack: app.gateway().sent_to_between(country, window.0, window.1),
            country: country_name(country),
            increase_pct: pct,
        })
        .collect();
    rows.truncate(config.top_n);

    let report = Table1Report {
        countries_reached: app.gateway().countries_reached_between(window.0, window.1),
        owner_cost: app.gateway().owner_cost(),
        attacker_revenue: app.gateway().attacker_revenue(),
        rows,
    };
    let trace_snapshot = traces.then(|| app.telemetry().trace_snapshot());
    (report, alerts, trace_snapshot)
}

/// Human-readable country names for the report (Table I prints names).
pub fn country_name(code: CountryCode) -> String {
    match code.as_str() {
        "UZ" => "Uzbekistan".to_owned(),
        "IR" => "Iran".to_owned(),
        "KG" => "Kyrgyzstan".to_owned(),
        "JO" => "Jordan".to_owned(),
        "NG" => "Nigeria".to_owned(),
        "KH" => "Cambodia".to_owned(),
        "SG" => "Singapore".to_owned(),
        "GB" => "United Kingdom".to_owned(),
        "CN" => "China".to_owned(),
        "TH" => "Thailand".to_owned(),
        other => other.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Table1Config {
        Table1Config {
            arrivals_per_day: 600.0,
            pump_per_hour: 300.0,
            ..Table1Config::default()
        }
    }

    #[test]
    fn premium_head_surges_orders_of_magnitude_above_tail() {
        let report = run(small());
        assert!(report.rows.len() >= 8, "{report}");

        // The head rows are premium/high-cost destinations.
        for row in &report.rows[..3] {
            assert!(
                [
                    "Uzbekistan",
                    "Iran",
                    "Kyrgyzstan",
                    "Jordan",
                    "Nigeria",
                    "Cambodia"
                ]
                .contains(&row.country.as_str()),
                "unexpected head country {}",
                row.country
            );
        }
        let top = report.rows[0].increase_pct;
        assert!(top > 10_000.0, "top surge {top}%");
        let mainstream = report.rows.iter().find(|r| {
            ["United Kingdom", "China", "Thailand", "Singapore"].contains(&r.country.as_str())
        });
        if let Some(m) = mainstream {
            assert!(
                top / m.increase_pct.max(1.0) > 100.0,
                "head {top}% vs mainstream {}%",
                m.increase_pct
            );
        }
    }

    #[test]
    fn reaches_dozens_of_countries() {
        let report = run(small());
        assert!(
            report.countries_reached >= 35,
            "countries {}",
            report.countries_reached
        );
    }

    #[test]
    fn money_flows_are_consistent() {
        let report = run(small());
        assert!(report.owner_cost > Money::ZERO);
        assert!(report.attacker_revenue > Money::ZERO);
        assert!(report.attacker_revenue < report.owner_cost);
    }

    #[test]
    fn report_renders_table() {
        let report = run(small());
        let s = report.to_string();
        assert!(s.contains("| Country"));
        assert!(s.contains('%'));
    }
}
