//! **§V mitigation ablation** — the defensive-posture grid.
//!
//! Every §V mitigation family (none / traditional anti-bot / the paper's
//! recommended stack, with honeypot or hard blocking) faces both attack
//! classes. Each cell reports the attack's residual effect, the legitimate
//! population's friction, and both sides' money — the quantities §V's
//! usability-vs-security and economics arguments are about.

use crate::app::{AppConfig, DefendedApp};
use crate::engine::{share, Simulation};
use crate::monitor::HoldMonitor;
use crate::team::TeamConfig;
use fg_behavior::{
    LegitConfig, LegitPopulation, SeatSpinner, SeatSpinnerConfig, SmsPumper, SmsPumperConfig,
};
use fg_core::ids::{ClientId, FlightId};
use fg_core::money::Money;
use fg_core::rng::SeedFork;
use fg_core::shard::ConcurrencyMode;
use fg_core::time::{SimDuration, SimTime};
use fg_inventory::flight::Flight;
use fg_mitigation::policy::PolicyConfig;
use fg_netsim::geo::GeoDatabase;
use fg_sentinel::{AlertPolicy, AlertRule, MetricSelector, SentinelReport};
use serde::Serialize;
use std::fmt;

/// The defensive postures compared.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Posture {
    /// No defence at all.
    Unprotected,
    /// Fingerprint/behaviour thresholds + coarse path limit; hard blocks.
    Traditional,
    /// The full §V stack, diverting confirmed bots to the honeypot.
    RecommendedHoneypot,
    /// The full §V stack with hard blocking instead of diversion.
    RecommendedBlocking,
}

impl Posture {
    /// All postures, report order.
    pub const ALL: [Posture; 4] = [
        Posture::Unprotected,
        Posture::Traditional,
        Posture::RecommendedHoneypot,
        Posture::RecommendedBlocking,
    ];

    fn policy(self) -> PolicyConfig {
        match self {
            Posture::Unprotected => PolicyConfig::unprotected(),
            Posture::Traditional => PolicyConfig::traditional_antibot(),
            Posture::RecommendedHoneypot => PolicyConfig::recommended(),
            Posture::RecommendedBlocking => {
                let mut p = PolicyConfig::recommended();
                p.honeypot_instead_of_block = false;
                p
            }
        }
    }
}

impl fmt::Display for Posture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Posture::Unprotected => "unprotected",
            Posture::Traditional => "traditional",
            Posture::RecommendedHoneypot => "recommended+honeypot",
            Posture::RecommendedBlocking => "recommended+blocking",
        };
        f.write_str(s)
    }
}

/// Which attack runs in a cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum AttackKind {
    /// The §IV-A seat spinner.
    SeatSpinning,
    /// The §IV-C SMS pumper.
    SmsPumping,
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AttackKind::SeatSpinning => "seat-spinning",
            AttackKind::SmsPumping => "sms-pumping",
        })
    }
}

/// Ablation configuration.
#[derive(Clone, Debug)]
pub struct AblationConfig {
    /// Master seed.
    pub seed: u64,
    /// Days simulated per cell (attack runs from day 1).
    pub days: u64,
    /// Legitimate bookers per day.
    pub arrivals_per_day: f64,
    /// Defence-state partitioning (see [`ConcurrencyMode`]); the report is
    /// identical in every mode when replayed single-threaded.
    pub concurrency: ConcurrencyMode,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            seed: 0xAB1A,
            days: 7,
            arrivals_per_day: 250.0,
            concurrency: ConcurrencyMode::Deterministic,
        }
    }
}

/// A CI-sized config: the full posture × attack grid in seconds.
pub fn smoke_config() -> AblationConfig {
    AblationConfig {
        days: 2,
        arrivals_per_day: 40.0,
        ..AblationConfig::default()
    }
}

/// The defence deployments this experiment exercises, for `fg-analyze`'s
/// config pass: all four postures against the SMS-pump pressure they face.
pub fn defence_profiles() -> Vec<fg_mitigation::profile::DefenceProfile> {
    use fg_mitigation::profile::DefenceProfile;
    let config = AblationConfig::default();
    let legit_sms_daily = config.arrivals_per_day * (0.35 + 0.45 * 0.72);
    Posture::ALL
        .iter()
        .map(|&posture| {
            let profile = DefenceProfile::airline(posture.to_string(), posture.policy())
                .horizon(fg_core::time::SimDuration::from_days(config.days as i64))
                .sms(legit_sms_daily, 200.0 * 24.0)
                .expected_bookings((config.arrivals_per_day * config.days as f64) as u64);
            if posture == Posture::Traditional {
                profile.waive(
                    "limiter-never-fires",
                    "the SIV-C finding reproduced: a 20 000/day path limit sized for volumetric bots never meets this pump",
                )
            } else {
                profile
            }
        })
        .collect()
}

/// The alert policy the sentinel evaluates online during this experiment:
/// the loud 200 SMS/h pump lights up both the per-country surge rule and
/// the owner's spend burn rate within the first hours of day 1.
pub fn alert_policy() -> AlertPolicy {
    AlertPolicy::named("ablation-sms-surge")
        .rule(AlertRule::surge(
            "sms-country-surge",
            MetricSelector::any("fg_sms_sent_total"),
            SimDuration::from_hours(1),
            SimDuration::from_days(1),
            8.0,
            10.0,
        ))
        .rule(AlertRule::burn_rate(
            "sms-burn-rate",
            SimDuration::from_hours(6),
            SimDuration::from_days(1),
            3.0,
            1.0,
        ))
        .campaign(SimTime::from_days(1), 1)
}

/// Registry entry for the multi-seed harness.
pub fn spec() -> crate::harness::ExperimentSpec {
    crate::harness::ExperimentSpec {
        name: "ablation",
        default_seed: AblationConfig::default().seed,
        telemetry_capable: false,
        run: |p| {
            let mut config = if p.smoke {
                smoke_config()
            } else {
                AblationConfig::default()
            };
            config.seed = p.seed;
            config.concurrency = p.concurrency();
            if p.traces {
                let (report, alerts, traces) = run_traced(config);
                crate::harness::CellOutput::of(&report)
                    .with_alerts(p.alerts.then_some(alerts))
                    .with_traces(Some(traces))
            } else {
                let (report, alerts) = run_instrumented(config);
                crate::harness::CellOutput::of(&report).with_alerts(p.alerts.then_some(alerts))
            }
        },
        profiles: defence_profiles,
        alerts: alert_policy,
    }
}

/// One grid cell's outcome.
#[derive(Clone, Debug, Serialize)]
pub struct Cell {
    /// The posture.
    pub posture: Posture,
    /// The attack.
    pub attack: AttackKind,
    /// Residual attack effect: mean target-flight hold ratio (DoI) or
    /// delivered attack SMS (pumping), normalized to the unprotected cell
    /// later by the caller; raw value here.
    pub attack_effect: f64,
    /// Legit bookers refused or abandoned due to the defence, as a fraction
    /// of arrivals.
    pub legit_friction: f64,
    /// Attacker profit (revenue − proxy/solver/ticket spend).
    pub attacker_profit: Money,
    /// Defender total loss (SMS + lost sales + friction + mitigation).
    pub defender_loss: Money,
}

/// The ablation report.
#[derive(Clone, Debug, Serialize)]
pub struct AblationReport {
    /// All cells, posture-major order.
    pub cells: Vec<Cell>,
}

impl AblationReport {
    /// The cell for a posture/attack pair.
    pub fn cell(&self, posture: Posture, attack: AttackKind) -> &Cell {
        self.cells
            .iter()
            .find(|c| c.posture == posture && c.attack == attack)
            .expect("grid is complete")
    }
}

impl fmt::Display for AblationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mitigation ablation — posture × attack grid")?;
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.posture.to_string(),
                    c.attack.to_string(),
                    format!("{:.3}", c.attack_effect),
                    format!("{:.2}%", c.legit_friction * 100.0),
                    c.attacker_profit.to_string(),
                    c.defender_loss.to_string(),
                ]
            })
            .collect();
        write!(
            f,
            "{}",
            crate::report::render_table(
                &[
                    "Posture",
                    "Attack",
                    "Attack effect",
                    "Legit friction",
                    "Attacker profit",
                    "Defender loss",
                ],
                &rows
            )
        )
    }
}

fn run_cell(
    config: &AblationConfig,
    posture: Posture,
    attack: AttackKind,
    traces: bool,
) -> (Cell, SentinelReport, Option<fg_telemetry::TraceSnapshot>) {
    let fork = SeedFork::new(config.seed ^ (posture as u64) << 8 ^ attack as u64);
    let geo = GeoDatabase::default_world();
    let end = SimTime::from_days(config.days);

    let mut app = DefendedApp::new(
        AppConfig::airline(posture.policy()).with_concurrency(config.concurrency),
        fork.seed("app"),
    );
    app.attach_sentinel(alert_policy());
    if traces {
        app.telemetry()
            .enable_tracing(fg_telemetry::TraceConfig::default());
    }
    let target = FlightId(1);
    app.add_flight(Flight::new(
        target,
        180,
        SimTime::from_days(config.days + 3),
    ));
    for f in 2..=3 {
        app.add_flight(Flight::new(
            FlightId(f),
            (config.arrivals_per_day * config.days as f64 * 2.0) as u32,
            SimTime::from_days(40),
        ));
    }

    let mut sim = Simulation::new(app, fork.seed("sim"));
    if posture != Posture::Unprotected {
        sim.with_team(
            TeamConfig::default(),
            SimDuration::from_hours(2),
            SimTime::from_hours(2),
        );
    }

    let flights: Vec<FlightId> = (1..=3).map(FlightId).collect();
    let mut legit_cfg = LegitConfig::default_airline(flights, end);
    legit_cfg.arrivals_per_day = config.arrivals_per_day;
    let (legit, legit_agent) = share(LegitPopulation::new(legit_cfg, geo.clone(), 1_000_000));
    sim.add_agent(legit_agent, SimTime::ZERO);

    let (mon, mon_agent) = share(HoldMonitor::new(target, SimDuration::from_mins(30), end));
    sim.add_agent(mon_agent, SimTime::ZERO);

    let attack_start = SimTime::from_days(1);
    let mut attacker_rng = fork.rng("attacker");
    let (spinner, pumper) = match attack {
        AttackKind::SeatSpinning => {
            let (h, agent) = share(SeatSpinner::new(
                SeatSpinnerConfig::airline_a(target),
                ClientId(1),
                geo.clone(),
                &mut attacker_rng,
            ));
            sim.add_agent(agent, attack_start);
            (Some(h), None)
        }
        AttackKind::SmsPumping => {
            let mut cfg = SmsPumperConfig::airline_d(target, end);
            cfg.sms_per_hour = 200.0;
            let rates = fg_smsgw::rates::RateTable::default_world();
            let (h, agent) = share(SmsPumper::new(
                cfg,
                ClientId(1),
                geo.clone(),
                &rates,
                &mut attacker_rng,
            ));
            sim.add_agent(agent, attack_start);
            (None, Some(h))
        }
    };

    let app = sim.run(end);
    let alerts = app.sentinel_report(end).expect("sentinel attached above");

    let legit_stats = legit.borrow().stats();
    let friction = if legit_stats.arrivals == 0 {
        0.0
    } else {
        legit_stats.defence_friction as f64 / legit_stats.arrivals as f64
    };

    let (attack_effect, mut attacker_ledger) = match attack {
        AttackKind::SeatSpinning => {
            let spinner = spinner.expect("spinner ran").borrow().ledger();
            (
                mon.borrow().mean_hold_ratio_between(attack_start, end),
                spinner,
            )
        }
        AttackKind::SmsPumping => {
            let pumper = pumper.expect("pumper ran");
            let stats = pumper.borrow().stats();
            let mut ledger = pumper.borrow().ledger();
            ledger.sms_revenue = app.gateway().attacker_revenue();
            (stats.sms_sent as f64, ledger)
        }
    };
    attacker_ledger.solver_spend += app.solver_spend(ClientId(1));

    let mut defender = app.defender_ledger();
    // Lost sales: bookers denied by stock while the attack held inventory.
    defender.lost_sales = Money::from_units(120) * (legit_stats.denied_by_stock.min(10_000));

    let cell = Cell {
        posture,
        attack,
        attack_effect,
        legit_friction: friction,
        attacker_profit: attacker_ledger.profit(),
        defender_loss: defender.total_loss(),
    };
    let trace_snapshot = traces.then(|| app.telemetry().trace_snapshot());
    (cell, alerts, trace_snapshot)
}

/// Runs the full grid.
pub fn run(config: AblationConfig) -> AblationReport {
    run_instrumented(config).0
}

/// Runs the full grid, also returning the sentinel outcome for the
/// unprotected SMS-pumping cell — the configuration with no defence at all,
/// where the online alert is the only thing that notices the attack.
pub fn run_instrumented(config: AblationConfig) -> (AblationReport, SentinelReport) {
    let (report, alerts, _) = run_inner(config, false);
    (report, alerts)
}

/// Like [`run_instrumented`], with span tracing enabled on the designated
/// (unprotected × SMS-pumping) cell, additionally returning that cell's
/// trace export. Tracing is read-only, so the grid is unchanged.
pub fn run_traced(
    config: AblationConfig,
) -> (AblationReport, SentinelReport, fg_telemetry::TraceSnapshot) {
    let (report, alerts, traces) = run_inner(config, true);
    (report, alerts, traces.expect("tracing was enabled"))
}

fn run_inner(
    config: AblationConfig,
    traces: bool,
) -> (
    AblationReport,
    SentinelReport,
    Option<fg_telemetry::TraceSnapshot>,
) {
    let mut cells = Vec::new();
    let mut designated = None;
    for posture in Posture::ALL {
        for attack in [AttackKind::SeatSpinning, AttackKind::SmsPumping] {
            let is_designated = posture == Posture::Unprotected && attack == AttackKind::SmsPumping;
            let (cell, alerts, cell_traces) =
                run_cell(&config, posture, attack, traces && is_designated);
            if is_designated {
                designated = Some((alerts, cell_traces));
            }
            cells.push(cell);
        }
    }
    let (alerts, trace_snapshot) = designated.expect("grid covers the unprotected pumping cell");
    (AblationReport { cells }, alerts, trace_snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> AblationReport {
        run(AblationConfig {
            days: 5,
            arrivals_per_day: 150.0,
            ..AblationConfig::default()
        })
    }

    #[test]
    fn recommended_postures_blunt_both_attacks() {
        let r = report();

        // DoI: hold ratio under the recommended stack is far below the
        // unprotected cell.
        let open = r
            .cell(Posture::Unprotected, AttackKind::SeatSpinning)
            .attack_effect;
        let defended = r
            .cell(Posture::RecommendedHoneypot, AttackKind::SeatSpinning)
            .attack_effect;
        assert!(open > 0.25, "unprotected hold ratio {open:.3}");
        assert!(
            defended < open / 2.0,
            "defended hold ratio {defended:.3} vs open {open:.3}"
        );

        // Pumping: delivered SMS collapse under the recommended stack.
        let open_sms = r
            .cell(Posture::Unprotected, AttackKind::SmsPumping)
            .attack_effect;
        let defended_sms = r
            .cell(Posture::RecommendedHoneypot, AttackKind::SmsPumping)
            .attack_effect;
        assert!(
            defended_sms < open_sms / 4.0,
            "defended SMS {defended_sms} vs open {open_sms}"
        );
    }

    #[test]
    fn pumping_profit_flips_negative_under_defence() {
        let r = report();
        let open = r
            .cell(Posture::Unprotected, AttackKind::SmsPumping)
            .attacker_profit;
        let defended = r
            .cell(Posture::RecommendedHoneypot, AttackKind::SmsPumping)
            .attacker_profit;
        assert!(open.is_positive(), "undefended pumping profits: {open}");
        assert!(defended < open, "defence cuts profit: {defended} vs {open}");
        assert!(
            defended.is_negative(),
            "defended pumping loses money: {defended}"
        );
    }

    #[test]
    fn friction_stays_modest_even_at_full_stack() {
        let r = report();
        for posture in Posture::ALL {
            let c = r.cell(posture, AttackKind::SeatSpinning);
            assert!(
                c.legit_friction < 0.30,
                "{posture}: friction {:.3}",
                c.legit_friction
            );
        }
        // And unprotected has (near) zero friction by construction.
        assert!(
            r.cell(Posture::Unprotected, AttackKind::SeatSpinning)
                .legit_friction
                < 0.01
        );
    }

    #[test]
    fn grid_is_complete_and_renders() {
        let r = report();
        assert_eq!(r.cells.len(), 8);
        let s = r.to_string();
        assert!(s.contains("recommended+honeypot"));
        assert!(s.contains("sms-pumping"));
    }
}
