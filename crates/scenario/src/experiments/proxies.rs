//! **§III-B proxy ablation** — why IP blocking dies against residential
//! pools.
//!
//! "Many bot operators leverage residential proxies … to add more legitimacy
//! to their fingerprints" (and, per ref \[23\], as DoI vectors). The same
//! seat spinner attacks the same IP-blocking defence twice — once from cheap
//! datacenter exits (a handful of /24s the reputation ledger's subnet
//! aggregation burns wholesale), once from residential exits scattered
//! across consumer space (every block only ever removes one device). The
//! differential is the paper's argument in numbers.

use crate::app::{AppConfig, DefendedApp};
use crate::engine::{share, Simulation};
use crate::monitor::HoldMonitor;
use crate::team::TeamConfig;
use fg_behavior::{LegitConfig, LegitPopulation, SeatSpinner, SeatSpinnerConfig};
use fg_core::ids::{ClientId, FlightId};
use fg_core::rng::SeedFork;
use fg_core::shard::ConcurrencyMode;
use fg_core::time::{SimDuration, SimTime};
use fg_inventory::flight::Flight;
use fg_mitigation::policy::PolicyConfig;
use fg_netsim::geo::GeoDatabase;
use fg_sentinel::{AlertPolicy, AlertRule, DriftStat, MetricSelector, SentinelReport};
use serde::Serialize;
use std::fmt;

/// Proxy-ablation configuration.
#[derive(Clone, Debug)]
pub struct ProxiesConfig {
    /// Master seed.
    pub seed: u64,
    /// Days simulated.
    pub days: u64,
    /// Legitimate bookers per day.
    pub arrivals_per_day: f64,
    /// Defence-state partitioning (see [`ConcurrencyMode`]); the report is
    /// identical in every mode when replayed single-threaded.
    pub concurrency: ConcurrencyMode,
}

impl Default for ProxiesConfig {
    fn default() -> Self {
        ProxiesConfig {
            seed: 0x9120,
            days: 4,
            arrivals_per_day: 100.0,
            concurrency: ConcurrencyMode::Deterministic,
        }
    }
}

/// A CI-sized config: two days, lighter traffic.
pub fn smoke_config() -> ProxiesConfig {
    ProxiesConfig {
        days: 2,
        arrivals_per_day: 40.0,
        ..ProxiesConfig::default()
    }
}

/// The defence deployments this experiment exercises, for `fg-analyze`'s
/// config pass.
pub fn defence_profiles() -> Vec<fg_mitigation::profile::DefenceProfile> {
    use fg_mitigation::profile::DefenceProfile;
    let config = ProxiesConfig::default();
    let mut policy = PolicyConfig::traditional_antibot();
    policy.block_threshold = 0.75;
    vec![DefenceProfile::airline("ip-reputation", policy)
        .horizon(fg_core::time::SimDuration::from_days(config.days as i64))
        .holds(config.arrivals_per_day, 576.0)
        .expected_bookings((config.arrivals_per_day * config.days as f64) as u64)
        .waive(
            "unguarded-channel",
            "the defence under study is IP reputation at the network edge, not a hold limiter",
        )]
}

/// The alert policy the sentinel evaluates online during this experiment:
/// IP blocking cannot burn a residential pool (§III-B), but the spinner's
/// NiP-6 holds still distort the hold-size distribution — the functional
/// signal stays visible whichever exits the attacker rents.
pub fn alert_policy() -> AlertPolicy {
    AlertPolicy::named("proxies-nip-drift")
        .rule(AlertRule::drift(
            "nip-distribution-drift",
            MetricSelector::exact("fg_nip_hold", &[]),
            SimDuration::from_hours(6),
            30,
            super::nip_baseline(),
            DriftStat::ChiSquarePerSample,
            0.5,
        ))
        .campaign(SimTime::ZERO, 1)
}

/// Registry entry for the multi-seed harness.
pub fn spec() -> crate::harness::ExperimentSpec {
    crate::harness::ExperimentSpec {
        name: "proxies",
        default_seed: ProxiesConfig::default().seed,
        telemetry_capable: false,
        run: |p| {
            let mut config = if p.smoke {
                smoke_config()
            } else {
                ProxiesConfig::default()
            };
            config.seed = p.seed;
            config.concurrency = p.concurrency();
            if p.traces {
                let (report, alerts, traces) = run_traced(config);
                crate::harness::CellOutput::of(&report)
                    .with_alerts(p.alerts.then_some(alerts))
                    .with_traces(Some(traces))
            } else {
                let (report, alerts) = run_instrumented(config);
                crate::harness::CellOutput::of(&report).with_alerts(p.alerts.then_some(alerts))
            }
        },
        profiles: defence_profiles,
        alerts: alert_policy,
    }
}

/// One arm's outcome.
#[derive(Clone, Debug, Serialize)]
pub struct ProxyArm {
    /// `true` for the datacenter arm.
    pub datacenter: bool,
    /// Mean hold ratio on the target flight after the defence warmed up.
    pub hold_ratio: f64,
    /// Holds the spinner got through.
    pub holds_placed: u64,
    /// Requests the defence refused.
    pub defence_refusals: u64,
    /// Distinct proxy leases the attacker consumed.
    pub leases_used: u64,
}

/// The proxy-ablation report.
#[derive(Clone, Debug, Serialize)]
pub struct ProxiesReport {
    /// Datacenter-exit arm.
    pub datacenter: ProxyArm,
    /// Residential-exit arm.
    pub residential: ProxyArm,
}

impl fmt::Display for ProxiesReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Proxy ablation — the same spinner vs the same IP-blocking defence"
        )?;
        let row = |a: &ProxyArm| {
            vec![
                if a.datacenter {
                    "datacenter"
                } else {
                    "residential"
                }
                .to_owned(),
                format!("{:.1}%", a.hold_ratio * 100.0),
                a.holds_placed.to_string(),
                a.defence_refusals.to_string(),
                a.leases_used.to_string(),
            ]
        };
        write!(
            f,
            "{}",
            crate::report::render_table(
                &["Exits", "Hold ratio", "Holds placed", "Refusals", "Leases"],
                &[row(&self.datacenter), row(&self.residential)]
            )
        )
    }
}

fn run_arm(
    config: &ProxiesConfig,
    datacenter: bool,
    traces: bool,
) -> (
    ProxyArm,
    SentinelReport,
    Option<fg_telemetry::TraceSnapshot>,
) {
    let fork = SeedFork::new(config.seed);
    let geo = GeoDatabase::default_world();
    let end = SimTime::from_days(config.days);

    // An IP-blocking-forward posture: reputation evidence alone suffices to
    // block (signal weight 0.8 ≥ threshold 0.75).
    let mut policy = PolicyConfig::traditional_antibot();
    policy.block_threshold = 0.75;
    let mut app = DefendedApp::new(
        AppConfig::airline(policy).with_concurrency(config.concurrency),
        fork.seed("app"),
    );
    app.attach_sentinel(alert_policy());
    if traces {
        app.telemetry()
            .enable_tracing(fg_telemetry::TraceConfig::default());
    }
    // A long-memory blocklist: confirmed attack exits stay burned for the
    // whole campaign (the realistic posture for manually curated lists).
    app.detection_mut()
        .replace_reputation(fg_netsim::reputation::ReputationLedger::new(
            SimDuration::from_days(14),
            3.0,
            10.0,
        ));
    let target = FlightId(1);
    app.add_flight(Flight::new(
        target,
        400,
        SimTime::from_days(config.days + 3),
    ));
    app.add_flight(Flight::new(
        FlightId(2),
        (config.arrivals_per_day * config.days as f64 * 2.0) as u32,
        SimTime::from_days(40),
    ));

    let mut sim = Simulation::new(app, fork.seed("sim"));
    // IP-only incident response: the dimension under test is the exit pool.
    // Name heuristics are off — in `report_ips_only` mode they feed nothing
    // but informational counters this report never reads, and their pairwise
    // misspelling clustering is quadratic in the window's passenger count
    // (the spinner's churning holds would dominate every review's cost).
    let team_cfg = TeamConfig {
        report_ips_only: true,
        use_name_heuristics: false,
        ..TeamConfig::default()
    };
    sim.with_team(team_cfg, SimDuration::from_mins(30), SimTime::from_mins(30));

    // Legit traffic books the background flight; the target's hold ratio
    // then isolates the spinner's achievable pressure under each exit class.
    let mut legit_cfg = LegitConfig::default_airline(vec![FlightId(2)], end);
    legit_cfg.arrivals_per_day = config.arrivals_per_day;
    let (_legit, legit_agent) = share(LegitPopulation::new(legit_cfg, geo.clone(), 1_000_000));
    sim.add_agent(legit_agent, SimTime::ZERO);

    let mut spinner_cfg = SeatSpinnerConfig::airline_a(target);
    spinner_cfg.datacenter_proxies = datacenter;
    // Residential subscriptions offer orders of magnitude more exits than a
    // datacenter pool — that asymmetry is the §III-B point.
    spinner_cfg.proxy_exits_per_country = if datacenter { 64 } else { 2_048 };
    // Fast reactive rotation: the arms race runs many rounds in a short run,
    // so exit-pool burn-down, not fingerprint blocking, is the bottleneck.
    spinner_cfg.rotation_schedule = fg_fingerprint::rotation::RotationSchedule::OnBlock {
        reaction: SimDuration::from_mins(30),
    };
    let mut spinner_rng = fork.rng("spinner");
    let (spinner, spinner_agent) = share(SeatSpinner::new(
        spinner_cfg,
        ClientId(1),
        geo,
        &mut spinner_rng,
    ));
    sim.add_agent(spinner_agent, SimTime::ZERO);

    let (mon, mon_agent) = share(HoldMonitor::new(target, SimDuration::from_mins(30), end));
    sim.add_agent(mon_agent, SimTime::ZERO);

    let app = sim.run(end);
    let alerts = app.sentinel_report(end).expect("sentinel attached above");

    let spinner = spinner.borrow();
    let stats = spinner.stats();
    let hold_ratio = mon
        .borrow()
        .mean_hold_ratio_between(SimTime::from_days(1), end);
    let arm = ProxyArm {
        datacenter,
        hold_ratio,
        holds_placed: stats.holds_placed,
        defence_refusals: stats.defence_refusals,
        leases_used: spinner.ledger().proxy_spend.as_f64() as u64, // ≥ leases × price
    };
    let trace_snapshot = traces.then(|| app.telemetry().trace_snapshot());
    (arm, alerts, trace_snapshot)
}

/// Runs both arms.
pub fn run(config: ProxiesConfig) -> ProxiesReport {
    run_instrumented(config).0
}

/// Runs both arms, also returning the sentinel outcome for the residential
/// arm — the paper's hard case, where IP blocking fails and the functional
/// drift alert is what still catches the attack.
pub fn run_instrumented(config: ProxiesConfig) -> (ProxiesReport, SentinelReport) {
    let (report, alerts, _) = run_inner(config, false);
    (report, alerts)
}

/// Like [`run_instrumented`], with span tracing enabled on the residential
/// arm, additionally returning that arm's trace export. Tracing is
/// read-only, so the report is unchanged.
pub fn run_traced(
    config: ProxiesConfig,
) -> (ProxiesReport, SentinelReport, fg_telemetry::TraceSnapshot) {
    let (report, alerts, traces) = run_inner(config, true);
    (report, alerts, traces.expect("tracing was enabled"))
}

fn run_inner(
    config: ProxiesConfig,
    traces: bool,
) -> (
    ProxiesReport,
    SentinelReport,
    Option<fg_telemetry::TraceSnapshot>,
) {
    let (datacenter, _, _) = run_arm(&config, true, false);
    let (residential, alerts, trace_snapshot) = run_arm(&config, false, traces);
    (
        ProxiesReport {
            datacenter,
            residential,
        },
        alerts,
        trace_snapshot,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residential_exits_sustain_the_attack_datacenter_exits_die() {
        let r = run(ProxiesConfig::default());
        assert!(
            r.residential.hold_ratio > r.datacenter.hold_ratio * 2.0,
            "residential {:.3} vs datacenter {:.3}",
            r.residential.hold_ratio,
            r.datacenter.hold_ratio
        );
        assert!(
            r.residential.holds_placed > r.datacenter.holds_placed,
            "residential {} vs datacenter {} holds",
            r.residential.holds_placed,
            r.datacenter.holds_placed
        );
    }

    #[test]
    fn report_renders() {
        let s = run(ProxiesConfig::default()).to_string();
        assert!(s.contains("residential"));
        assert!(s.contains("Hold ratio"));
    }
}
