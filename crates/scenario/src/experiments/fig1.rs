//! **Fig. 1** — Number-in-Party distribution across three weeks.
//!
//! Week 0: the average week (legitimate traffic only). Week 1: the Seat
//! Spinning attack runs with no NiP restriction — the stealth strategy lands
//! on NiP 6 under a maximum of 9. Week 2: the defender caps NiP at 4 at the
//! week boundary; legitimate groups split to the cap and the attacker adapts
//! to it — both effects the paper reports.

use crate::app::{AppConfig, DefendedApp};
use crate::engine::{share, Simulation};
use fg_behavior::{LegitConfig, LegitPopulation, SeatSpinner, SeatSpinnerConfig};
use fg_core::ids::{ClientId, FlightId};
use fg_core::rng::SeedFork;
use fg_core::shard::ConcurrencyMode;
use fg_core::stats::Histogram;
use fg_core::time::SimTime;
use fg_detection::anomaly::NipDistributionMonitor;
use fg_inventory::flight::Flight;
use fg_mitigation::policy::PolicyConfig;
use fg_netsim::geo::GeoDatabase;
use fg_sentinel::{
    AlertPolicy, AlertRule, DriftBaseline, DriftStat, MetricSelector, SentinelReport,
};
use serde::Serialize;
use std::fmt;

/// Fig. 1 experiment configuration.
#[derive(Clone, Debug)]
pub struct Fig1Config {
    /// Master seed.
    pub seed: u64,
    /// Number of flights the airline operates ("hundreds per week" in the
    /// paper; scaled down, attack still visible globally).
    pub flights: u64,
    /// Seats per flight.
    pub capacity: u32,
    /// Legitimate bookers per day across the airline.
    pub arrivals_per_day: f64,
    /// The NiP cap introduced at the start of week 2.
    pub cap: u32,
    /// Defence-state partitioning (see [`ConcurrencyMode`]); the report is
    /// identical in every mode when replayed single-threaded.
    pub concurrency: ConcurrencyMode,
}

impl Default for Fig1Config {
    fn default() -> Self {
        Fig1Config {
            seed: 0xF161,
            flights: 12,
            capacity: 180,
            arrivals_per_day: 400.0,
            cap: 4,
            concurrency: ConcurrencyMode::Deterministic,
        }
    }
}

/// A CI-sized config: fewer flights, lighter traffic.
pub fn smoke_config() -> Fig1Config {
    Fig1Config {
        flights: 4,
        arrivals_per_day: 80.0,
        ..Fig1Config::default()
    }
}

/// The defence deployments this experiment exercises, for `fg-analyze`'s
/// config pass.
pub fn defence_profiles() -> Vec<fg_mitigation::profile::DefenceProfile> {
    use fg_core::time::SimDuration;
    use fg_mitigation::profile::DefenceProfile;
    let config = Fig1Config::default();
    // Legitimate holds track arrivals; the spinner keeps 6 holds alive and
    // re-places them every 3-hour TTL cycle (48/day).
    vec![DefenceProfile::airline(
        "traditional+nip-cap",
        PolicyConfig::traditional_antibot(),
    )
    .horizon(SimDuration::from_days(21))
    .hold_ttl(SimDuration::from_hours(3))
    .max_nip(4)
    .holds(config.arrivals_per_day, 48.0)
    .expected_bookings((config.arrivals_per_day * 21.0) as u64)
    .waive(
        "unguarded-channel",
        "era posture under study: the NiP cap, not a hold limiter, is the defence being measured",
    )]
}

/// The alert policy the sentinel evaluates online during this experiment:
/// the Fig. 1 monitoring story itself — the NiP distribution of successful
/// holds drifting away from a baseline learned over the clean first week.
pub fn alert_policy() -> AlertPolicy {
    AlertPolicy::named("fig1-nip-drift")
        .rule(AlertRule::drift(
            "nip-distribution-drift",
            MetricSelector::exact("fg_nip_hold", &[]),
            fg_core::time::SimDuration::from_hours(12),
            40,
            DriftBaseline::Learned {
                until: SimTime::from_weeks(1),
            },
            DriftStat::ChiSquarePerSample,
            0.35,
        ))
        .campaign(SimTime::from_weeks(1), 1)
}

/// Registry entry for the multi-seed harness.
pub fn spec() -> crate::harness::ExperimentSpec {
    crate::harness::ExperimentSpec {
        name: "fig1",
        default_seed: Fig1Config::default().seed,
        telemetry_capable: false,
        run: |p| {
            let mut config = if p.smoke {
                smoke_config()
            } else {
                Fig1Config::default()
            };
            config.seed = p.seed;
            config.concurrency = p.concurrency();
            if p.traces {
                let (report, alerts, traces) = run_traced(config);
                crate::harness::CellOutput::of(&report)
                    .with_alerts(p.alerts.then_some(alerts))
                    .with_traces(Some(traces))
            } else {
                let (report, alerts) = run_instrumented(config);
                crate::harness::CellOutput::of(&report).with_alerts(p.alerts.then_some(alerts))
            }
        },
        profiles: defence_profiles,
        alerts: alert_policy,
    }
}

/// The Fig. 1 report: one NiP histogram per week.
#[derive(Clone, Debug, Serialize)]
pub struct Fig1Report {
    /// Week 0 (average), week 1 (attack), week 2 (capped) histograms.
    pub weeks: [Histogram; 3],
    /// Chi-square-per-booking drift of weeks 1 and 2 against week 0.
    pub drift_scores: [f64; 2],
    /// The NiP bucket most inflated during the attack week.
    pub attack_bucket: Option<usize>,
    /// The NiP bucket most inflated during the capped week.
    pub capped_bucket: Option<usize>,
    /// Bookings per week.
    pub totals: [u64; 3],
}

impl fmt::Display for Fig1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 1 — NiP distribution (shares per week)")?;
        for (label, week) in ["average week", "attack week (no cap)", "week after NiP cap"]
            .iter()
            .zip(&self.weeks)
        {
            write!(
                f,
                "{}",
                crate::report::render_share_bars(label, &week.shares(), 60)
            )?;
        }
        writeln!(
            f,
            "attack-week drift {:.2} (inflated NiP {:?}); capped-week drift {:.2} (inflated NiP {:?})",
            self.drift_scores[0], self.attack_bucket, self.drift_scores[1], self.capped_bucket
        )
    }
}

/// Runs the Fig. 1 scenario.
pub fn run(config: Fig1Config) -> Fig1Report {
    run_instrumented(config).0
}

/// Runs the Fig. 1 scenario with the sentinel attached, returning the
/// report plus the online alerting outcome. Observation is read-only, so
/// the report is identical to [`run`]'s.
pub fn run_instrumented(config: Fig1Config) -> (Fig1Report, SentinelReport) {
    let (report, alerts, _) = run_inner(config, false);
    (report, alerts)
}

/// Like [`run_instrumented`], with span tracing enabled on the defended
/// app, additionally returning the trace export. Tracing is read-only, so
/// the report is still identical to [`run`]'s.
pub fn run_traced(config: Fig1Config) -> (Fig1Report, SentinelReport, fg_telemetry::TraceSnapshot) {
    let (report, alerts, traces) = run_inner(config, true);
    (report, alerts, traces.expect("tracing was enabled"))
}

fn run_inner(
    config: Fig1Config,
    traces: bool,
) -> (
    Fig1Report,
    SentinelReport,
    Option<fg_telemetry::TraceSnapshot>,
) {
    let fork = SeedFork::new(config.seed);
    let geo = GeoDatabase::default_world();
    let end = SimTime::from_weeks(3);

    // The application: Airline A, initially uncapped at NiP 9, with the
    // era-appropriate (traditional) anti-bot posture. The domain uses a
    // multi-hour hold TTL (the paper: "30 minutes to several hours").
    let mut app_config = AppConfig::airline(PolicyConfig::traditional_antibot())
        .with_concurrency(config.concurrency);
    app_config.hold_ttl = fg_core::time::SimDuration::from_hours(3);
    let mut app = DefendedApp::new(app_config, config.seed);
    app.attach_sentinel(alert_policy());
    if traces {
        app.telemetry()
            .enable_tracing(fg_telemetry::TraceConfig::default());
    }
    let flights: Vec<FlightId> = (1..=config.flights).map(FlightId).collect();
    // Capacity sized so legitimate demand over three weeks does not sell the
    // airline out (selling out would distort the distribution for reasons
    // unrelated to the attack).
    let capacity = ((config.arrivals_per_day * 21.0 * 2.0 * 1.5) / config.flights as f64) as u32;
    let capacity = capacity.max(config.capacity);
    for &f in &flights {
        // Depart comfortably after the observation horizon + the attacker's
        // stop-margin so the endgame does not truncate the capped week.
        app.add_flight(Flight::new(f, capacity, SimTime::from_days(40)));
    }

    let mut sim = Simulation::new(app, fork.seed("sim"));

    // Legitimate population across all flights, all three weeks.
    let mut legit_cfg = LegitConfig::default_airline(flights.clone(), end);
    legit_cfg.arrivals_per_day = config.arrivals_per_day;
    let (_legit_handle, legit_agent) =
        share(LegitPopulation::new(legit_cfg, geo.clone(), 1_000_000));
    sim.add_agent(legit_agent, SimTime::ZERO);

    // The attacker joins at the start of week 1, targeting one flight. Its
    // reconnaissance learned the domain's 3 h hold TTL.
    let mut spinner_rng = fork.rng("spinner");
    let mut spinner_cfg = SeatSpinnerConfig::airline_a(flights[0]);
    spinner_cfg.known_hold_ttl = fg_core::time::SimDuration::from_hours(3);
    spinner_cfg.concurrent_holds = 6;
    let spinner = SeatSpinner::new(spinner_cfg, ClientId(1), geo, &mut spinner_rng);
    let (_spinner_handle, spinner_agent) = share(spinner);
    sim.add_agent(spinner_agent, SimTime::from_weeks(1));

    // The mitigation: cap NiP at week 2.
    let cap = config.cap;
    sim.schedule(SimTime::from_weeks(2), move |app, _now| {
        app.reservations_mut().set_max_nip(cap);
    });

    let app = sim.run(end);
    let alerts = app.sentinel_report(end).expect("sentinel attached above");

    let weeks = [
        app.reservations()
            .nip_histogram(SimTime::ZERO, SimTime::from_weeks(1), 9),
        app.reservations()
            .nip_histogram(SimTime::from_weeks(1), SimTime::from_weeks(2), 9),
        app.reservations()
            .nip_histogram(SimTime::from_weeks(2), SimTime::from_weeks(3), 9),
    ];
    let monitor = NipDistributionMonitor::fit(&weeks[0], 2.0);
    let report = Fig1Report {
        drift_scores: [monitor.score(&weeks[1]), monitor.score(&weeks[2])],
        attack_bucket: monitor.most_inflated_bucket(&weeks[1]),
        capped_bucket: monitor.most_inflated_bucket(&weeks[2]),
        totals: [weeks[0].total(), weeks[1].total(), weeks[2].total()],
        weeks,
    };
    let trace_snapshot = traces.then(|| app.telemetry().trace_snapshot());
    (report, alerts, trace_snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> Fig1Config {
        Fig1Config {
            arrivals_per_day: 150.0,
            flights: 6,
            ..Fig1Config::default()
        }
    }

    #[test]
    fn reproduces_the_three_bar_shape() {
        let report = run(small_config());

        // Week 0: dominated by NiP 1–2, like the paper's first bar.
        let w0 = &report.weeks[0];
        assert!(w0.share(1) > 0.4, "NiP-1 share {}", w0.share(1));
        assert!(w0.share(1) + w0.share(2) > 0.7);
        assert!(w0.share(6) < 0.05, "NiP-6 is rare in the average week");

        // Week 1: sharp NiP-6 spike (stealth below the max of 9).
        let w1 = &report.weeks[1];
        assert!(
            w1.share(6) > w0.share(6) * 4.0,
            "attack week NiP-6 share {} vs baseline {}",
            w1.share(6),
            w0.share(6)
        );
        assert_eq!(report.attack_bucket, Some(6));

        // Week 2: the cap kills NiP > 4 and lifts NiP 4 (legit splits +
        // attacker adaptation).
        let w2 = &report.weeks[2];
        assert_eq!(
            w2.count(5) + w2.count(6) + w2.count(7) + w2.count(8) + w2.count(9),
            0
        );
        assert!(
            w2.share(4) > w0.share(4) * 2.0,
            "capped week NiP-4 share {} vs baseline {}",
            w2.share(4),
            w0.share(4)
        );
        assert_eq!(report.capped_bucket, Some(4));

        // Drift alarms fire for both anomalous weeks.
        assert!(report.drift_scores[0] > 2.0, "{}", report.drift_scores[0]);
        assert!(report.drift_scores[1] > 2.0, "{}", report.drift_scores[1]);
    }

    #[test]
    fn report_renders() {
        let report = run(small_config());
        let s = report.to_string();
        assert!(s.contains("average week"));
        assert!(s.contains("NiP 6"));
        let json = crate::report::to_json(&report);
        assert!(json.contains("drift_scores"));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(small_config());
        let b = run(small_config());
        assert_eq!(a.totals, b.totals);
        assert_eq!(a.weeks[1].buckets(), b.weeks[1].buckets());
    }
}
