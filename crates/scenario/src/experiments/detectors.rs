//! **§III-A claim** — volume features fail on low-volume functional abuse.
//!
//! "The primary challenge in applying simple behavior-based detection to DoI
//! and SMS Pumping attacks is that these bots do not require a high request
//! volume within a single session." A production defender has no labels, so
//! the comparison pits the two *unsupervised* rules actually used in the
//! field against each other on the same mixed traffic:
//!
//! * **Volume rule** (classical): flag sessions whose request count is a
//!   robust outlier (median + 10·MAD) — catches scrapers, misses a
//!   low-and-slow seat spinner whose sessions look volumetrically human.
//! * **Domain rule** (functional-abuse aware): flag sessions with repeated
//!   holds and no payment — the funnel signature volume metrics cannot see.

use crate::app::{AppConfig, DefendedApp};
use crate::engine::{share, Simulation};
use fg_behavior::seat_spinner::NipStrategy;
use fg_behavior::{
    LegitConfig, LegitPopulation, Scraper, ScraperConfig, SeatSpinner, SeatSpinnerConfig,
};
use fg_core::ids::{ClientId, FlightId};
use fg_core::rng::SeedFork;
use fg_core::shard::ConcurrencyMode;
use fg_core::time::{SimDuration, SimTime};
use fg_detection::classify::ConfusionMatrix;
use fg_detection::features::SessionFeatures;
use fg_detection::session::sessionize;
use fg_fingerprint::rotation::{RotationSchedule, RotationStrategy};
use fg_inventory::flight::Flight;
use fg_mitigation::policy::PolicyConfig;
use fg_netsim::geo::GeoDatabase;
use fg_sentinel::{AlertPolicy, AlertRule, MetricSelector, SentinelReport};
use serde::Serialize;
use std::fmt;

/// Detector-comparison configuration.
#[derive(Clone, Debug)]
pub struct DetectorsConfig {
    /// Master seed.
    pub seed: u64,
    /// Days simulated.
    pub days: u64,
    /// Legitimate bookers per day.
    pub arrivals_per_day: f64,
    /// Defence-state partitioning (see [`ConcurrencyMode`]); the report is
    /// identical in every mode when replayed single-threaded.
    pub concurrency: ConcurrencyMode,
}

impl Default for DetectorsConfig {
    fn default() -> Self {
        DetectorsConfig {
            seed: 0xDE7EC7,
            days: 4,
            arrivals_per_day: 250.0,
            concurrency: ConcurrencyMode::Deterministic,
        }
    }
}

/// A CI-sized config: two days, lighter traffic.
pub fn smoke_config() -> DetectorsConfig {
    DetectorsConfig {
        days: 2,
        arrivals_per_day: 80.0,
        ..DetectorsConfig::default()
    }
}

/// The defence deployments this experiment exercises, for `fg-analyze`'s
/// config pass.
pub fn defence_profiles() -> Vec<fg_mitigation::profile::DefenceProfile> {
    use fg_mitigation::profile::DefenceProfile;
    let config = DetectorsConfig::default();
    // The slow spinner re-places 12 seats as their 30-minute TTLs lapse
    // (576 holds/day) — far under the volumetric alert threshold, which is
    // exactly the §III-A blind spot this experiment studies.
    vec![
        DefenceProfile::airline("unprotected", PolicyConfig::unprotected())
            .horizon(fg_core::time::SimDuration::from_days(config.days as i64))
            .holds(config.arrivals_per_day, 576.0)
            .expected_bookings((config.arrivals_per_day * config.days as f64) as u64)
            .waive(
                "alert-rule-never-fires",
                "SIII-A reproduced: the volumetric hold-volume rule is the blind spot under study",
            ),
    ]
}

/// The alert policy the sentinel evaluates online during this experiment —
/// deliberately the §III-A blind spot. A volume rule on the abused hold
/// path, sized for volumetric bots, never meets the low-and-slow spinner's
/// request rate; `expect_detection(false)` records that no alert firing is
/// the *correct*, paper-accurate outcome here, not a monitoring gap.
pub fn alert_policy() -> AlertPolicy {
    AlertPolicy::named("detectors-volume-blindspot")
        .rule(AlertRule::threshold(
            "hold-volume-spike",
            MetricSelector::exact("fg_requests_total", &[("endpoint", "/booking/hold")]),
            SimDuration::from_hours(1),
            2_000.0,
        ))
        .campaign(SimTime::ZERO, 1)
        .expect_detection(false)
}

/// Registry entry for the multi-seed harness.
pub fn spec() -> crate::harness::ExperimentSpec {
    crate::harness::ExperimentSpec {
        name: "detectors",
        default_seed: DetectorsConfig::default().seed,
        telemetry_capable: false,
        run: |p| {
            let mut config = if p.smoke {
                smoke_config()
            } else {
                DetectorsConfig::default()
            };
            config.seed = p.seed;
            config.concurrency = p.concurrency();
            if p.traces {
                let (report, alerts, traces) = run_traced(config);
                crate::harness::CellOutput::of(&report)
                    .with_alerts(p.alerts.then_some(alerts))
                    .with_traces(Some(traces))
            } else {
                let (report, alerts) = run_instrumented(config);
                crate::harness::CellOutput::of(&report).with_alerts(p.alerts.then_some(alerts))
            }
        },
        profiles: defence_profiles,
        alerts: alert_policy,
    }
}

/// One rule's evaluation.
#[derive(Clone, Debug, Serialize)]
pub struct RuleOutcome {
    /// Rule label.
    pub rule: String,
    /// Confusion matrix over all sessions.
    pub confusion: ConfusionMatrix,
    /// Recall on bot sessions.
    pub recall: f64,
    /// Precision of the rule's flags.
    pub precision: f64,
}

/// The detector-comparison report.
#[derive(Clone, Debug, Serialize)]
pub struct DetectorsReport {
    /// Volume-rule outcome.
    pub volume: RuleOutcome,
    /// Domain-rule outcome.
    pub domain: RuleOutcome,
    /// Sessions evaluated.
    pub sessions: usize,
    /// Bot sessions among them.
    pub bot_sessions: usize,
    /// The volume threshold used (median + 10·MAD).
    pub volume_threshold: f64,
    /// The same volume rule evaluated against the loud scraper — the class
    /// it was invented for.
    pub volume_on_scraper: RuleOutcome,
}

impl fmt::Display for DetectorsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Behaviour-rule comparison over {} sessions ({} bot; volume threshold {:.1})",
            self.sessions, self.bot_sessions, self.volume_threshold
        )?;
        for rule in [&self.volume, &self.domain, &self.volume_on_scraper] {
            writeln!(
                f,
                "  {:<18} recall={:.3} precision={:.3} ({})",
                rule.rule, rule.recall, rule.precision, rule.confusion
            )?;
        }
        Ok(())
    }
}

/// Runs the detector comparison.
pub fn run(config: DetectorsConfig) -> DetectorsReport {
    run_instrumented(config).0
}

/// Runs the detector comparison with the sentinel attached. The expected
/// outcome is *no* detection — the volume blind spot under test.
pub fn run_instrumented(config: DetectorsConfig) -> (DetectorsReport, SentinelReport) {
    let (report, alerts, _) = run_inner(config, false);
    (report, alerts)
}

/// Like [`run_instrumented`], with span tracing enabled on the defended
/// app, additionally returning the trace export. Tracing is read-only, so
/// the report is still identical to [`run`]'s.
pub fn run_traced(
    config: DetectorsConfig,
) -> (DetectorsReport, SentinelReport, fg_telemetry::TraceSnapshot) {
    let (report, alerts, traces) = run_inner(config, true);
    (report, alerts, traces.expect("tracing was enabled"))
}

fn run_inner(
    config: DetectorsConfig,
    traces: bool,
) -> (
    DetectorsReport,
    SentinelReport,
    Option<fg_telemetry::TraceSnapshot>,
) {
    let fork = SeedFork::new(config.seed);
    let geo = GeoDatabase::default_world();
    let end = SimTime::from_days(config.days);

    let mut app = DefendedApp::new(
        AppConfig::airline(PolicyConfig::unprotected()).with_concurrency(config.concurrency),
        config.seed,
    );
    app.attach_sentinel(alert_policy());
    if traces {
        app.telemetry()
            .enable_tracing(fg_telemetry::TraceConfig::default());
    }
    for f in 1..=3 {
        app.add_flight(Flight::new(
            FlightId(f),
            (config.arrivals_per_day * config.days as f64 * 2.0) as u32,
            SimTime::from_days(40),
        ));
    }

    let mut sim = Simulation::new(app, fork.seed("sim"));
    let flights: Vec<FlightId> = (1..=3).map(FlightId).collect();
    let mut legit_cfg = LegitConfig::default_airline(flights.clone(), end);
    legit_cfg.arrivals_per_day = config.arrivals_per_day;
    let (_legit, legit_agent) = share(LegitPopulation::new(legit_cfg, geo.clone(), 1_000_000));
    sim.add_agent(legit_agent, SimTime::ZERO);

    // The evolved low-and-slow spinner (§IV-A's closing observation): small
    // parties, few concurrent holds, sparse wake-ups, and scheduled identity
    // rotation so no single (ip, fingerprint) session accumulates volume.
    let mut spin_cfg = SeatSpinnerConfig::airline_a(FlightId(1));
    spin_cfg.nip_strategy = NipStrategy::LowAndSlow(2);
    spin_cfg.concurrent_holds = 2;
    spin_cfg.recheck_interval = SimDuration::from_mins(30);
    spin_cfg.rotation_strategy = RotationStrategy::Mimicry;
    spin_cfg.rotation_schedule = RotationSchedule::Interval {
        mean: SimDuration::from_hours(1),
        jitter_frac: 0.3,
    };
    let mut spin_rng = fork.rng("spin");
    let (_s, spin_agent) = share(SeatSpinner::new(
        spin_cfg,
        ClientId(1),
        geo.clone(),
        &mut spin_rng,
    ));
    sim.add_agent(spin_agent, SimTime::ZERO);

    // The contrast class: a loud fare scraper (client id 2). Classical
    // volume detection exists because of this bot — and it works on it.
    let mut scrape_rng = fork.rng("scrape");
    let (_sc, scrape_agent) = share(Scraper::new(
        ScraperConfig::naive(flights.clone(), end),
        ClientId(2),
        geo,
        &mut scrape_rng,
    ));
    sim.add_agent(scrape_agent, SimTime::ZERO);

    let app = sim.run(end);
    let alerts = app.sentinel_report(end).expect("sentinel attached above");

    let sessions = sessionize(app.logs().to_vec(), SimDuration::from_mins(30));
    let features: Vec<SessionFeatures> = sessions.iter().map(SessionFeatures::extract).collect();
    // Ground truth per session: 0 = legit, 1 = spinner, 2 = scraper.
    let classes: Vec<u8> = sessions
        .iter()
        .map(|s| {
            if s.records().iter().any(|r| r.truth_client == ClientId(1)) {
                1
            } else if s.records().iter().any(|r| r.truth_client == ClientId(2)) {
                2
            } else {
                0
            }
        })
        .collect();
    let labels: Vec<bool> = classes.iter().map(|&c| c == 1).collect();

    // Volume rule: robust outlier threshold (median + 10·MAD). Plain
    // mean+3σ self-destructs the moment a loud scraper inflates the
    // variance; median/MAD is what an operator actually deploys.
    let mut volumes: Vec<f64> = features.iter().map(|f| f.volume).collect();
    volumes.sort_by(|a, b| a.partial_cmp(b).expect("volumes are finite"));
    let median = volumes.get(volumes.len() / 2).copied().unwrap_or(0.0);
    let mut deviations: Vec<f64> = volumes.iter().map(|v| (v - median).abs()).collect();
    deviations.sort_by(|a, b| a.partial_cmp(b).expect("deviations are finite"));
    let mad = deviations.get(deviations.len() / 2).copied().unwrap_or(0.0);
    let threshold = median + 10.0 * mad.max(0.5);

    let mut volume_cm = ConfusionMatrix::new();
    let mut domain_cm = ConfusionMatrix::new();
    let mut scraper_cm = ConfusionMatrix::new();
    for ((f, &y), &class) in features.iter().zip(&labels).zip(&classes) {
        volume_cm.record(y, f.volume > threshold);
        domain_cm.record(y, f.holds >= 2.0 && f.pays == 0.0);
        // The same volume rule, evaluated against the scraper class.
        scraper_cm.record(class == 2, f.volume > threshold);
    }

    let report = DetectorsReport {
        volume: RuleOutcome {
            rule: "volume(median+10·MAD)".to_owned(),
            recall: volume_cm.recall(),
            precision: volume_cm.precision(),
            confusion: volume_cm,
        },
        domain: RuleOutcome {
            rule: "domain(hold-no-pay)".to_owned(),
            recall: domain_cm.recall(),
            precision: domain_cm.precision(),
            confusion: domain_cm,
        },
        sessions: sessions.len(),
        bot_sessions: labels.iter().filter(|&&b| b).count(),
        volume_threshold: threshold,
        volume_on_scraper: RuleOutcome {
            rule: "volume-vs-scraper".to_owned(),
            recall: scraper_cm.recall(),
            precision: scraper_cm.precision(),
            confusion: scraper_cm,
        },
    };
    let trace_snapshot = traces.then(|| app.telemetry().trace_snapshot());
    (report, alerts, trace_snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_rule_beats_volume_rule_on_low_volume_abuse() {
        let report = run(DetectorsConfig::default());
        assert!(report.bot_sessions > 15, "{report}");
        assert!(
            report.volume.recall < 0.3,
            "volume rule misses the low-volume bot: recall {:.3}",
            report.volume.recall
        );
        assert!(
            report.domain.recall > 0.7,
            "domain rule catches it: recall {:.3}",
            report.domain.recall
        );
        assert!(
            report.domain.precision > 0.8,
            "domain rule stays precise: {:.3}",
            report.domain.precision
        );
        // The same volume rule catches the loud scraper — it is not a straw
        // man; it simply measures the wrong thing for functional abuse.
        assert!(
            report.volume_on_scraper.recall > 0.7,
            "volume rule still catches scrapers: {:.3}",
            report.volume_on_scraper.recall
        );
    }

    #[test]
    fn report_renders() {
        let s = run(DetectorsConfig::default()).to_string();
        assert!(s.contains("volume"));
        assert!(s.contains("domain"));
    }
}
