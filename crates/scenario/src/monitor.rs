//! Passive measurement agents.

use fg_behavior::api::{Agent, App};
use fg_core::ids::FlightId;
use fg_core::time::{SimDuration, SimTime};
use fg_inventory::flight::Availability;
use rand::rngs::StdRng;

/// Samples one flight's seat ledger on a fixed cadence — the measurement
/// behind "held seats over time" curves and the DoI harm metric (mean hold
/// ratio).
///
/// # Example
///
/// ```no_run
/// use fg_scenario::monitor::HoldMonitor;
/// use fg_scenario::engine::share;
/// use fg_core::ids::FlightId;
/// use fg_core::time::{SimDuration, SimTime};
///
/// let (handle, agent) = share(HoldMonitor::new(
///     FlightId(1),
///     SimDuration::from_hours(1),
///     SimTime::from_weeks(3),
/// ));
/// // sim.add_agent(agent, SimTime::ZERO); … after run:
/// // handle.borrow().mean_hold_ratio()
/// # let _ = (handle, agent);
/// ```
#[derive(Debug)]
pub struct HoldMonitor {
    flight: FlightId,
    interval: SimDuration,
    end: SimTime,
    samples: Vec<(SimTime, Availability)>,
    label: String,
}

impl HoldMonitor {
    /// Creates a monitor sampling `flight` every `interval` until `end`.
    pub fn new(flight: FlightId, interval: SimDuration, end: SimTime) -> Self {
        HoldMonitor {
            flight,
            interval,
            end,
            samples: Vec::new(),
            label: "hold-monitor".to_owned(),
        }
    }

    /// All samples taken, time-ordered.
    pub fn samples(&self) -> &[(SimTime, Availability)] {
        &self.samples
    }

    /// Mean fraction of capacity locked in holds across all samples.
    pub fn mean_hold_ratio(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .map(|(_, a)| a.hold_ratio())
            .sum::<f64>()
            / self.samples.len() as f64
    }

    /// Mean hold ratio within a window `[from, to)`.
    pub fn mean_hold_ratio_between(&self, from: SimTime, to: SimTime) -> f64 {
        let window: Vec<f64> = self
            .samples
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|(_, a)| a.hold_ratio())
            .collect();
        if window.is_empty() {
            0.0
        } else {
            window.iter().sum::<f64>() / window.len() as f64
        }
    }

    /// The highest hold ratio observed.
    pub fn peak_hold_ratio(&self) -> f64 {
        self.samples
            .iter()
            .map(|(_, a)| a.hold_ratio())
            .fold(0.0, f64::max)
    }
}

impl Agent for HoldMonitor {
    fn wake(&mut self, app: &mut dyn App, now: SimTime, _rng: &mut StdRng) -> Option<SimTime> {
        if now > self.end {
            return None;
        }
        if let Some(a) = app.availability(self.flight) {
            self.samples.push((now, a));
        }
        Some(now + self.interval)
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_over_synthetic_samples() {
        let mut m = HoldMonitor::new(
            FlightId(1),
            SimDuration::from_hours(1),
            SimTime::from_days(1),
        );
        m.samples = vec![
            (
                SimTime::from_hours(1),
                Availability {
                    available: 50,
                    held: 50,
                    sold: 0,
                },
            ),
            (
                SimTime::from_hours(2),
                Availability {
                    available: 100,
                    held: 0,
                    sold: 0,
                },
            ),
        ];
        assert!((m.mean_hold_ratio() - 0.25).abs() < 1e-12);
        assert!((m.peak_hold_ratio() - 0.5).abs() < 1e-12);
        assert!(
            (m.mean_hold_ratio_between(SimTime::from_hours(2), SimTime::from_hours(3)) - 0.0).abs()
                < 1e-12
        );
        assert_eq!(m.samples().len(), 2);
    }

    #[test]
    fn empty_monitor_is_zero() {
        let m = HoldMonitor::new(
            FlightId(1),
            SimDuration::from_hours(1),
            SimTime::from_days(1),
        );
        assert_eq!(m.mean_hold_ratio(), 0.0);
        assert_eq!(m.peak_hold_ratio(), 0.0);
    }
}
