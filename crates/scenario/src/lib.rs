//! # fg-scenario
//!
//! The scenario layer of FeatureGuard — where the paper's systems meet.
//!
//! * [`app`] — [`DefendedApp`]: the airline web application with the full
//!   defence pipeline (detection engine → policy engine → CAPTCHA /
//!   honeypot / rate limits / gating) wired in front of the reservation
//!   system and the SMS gateway. Implements [`fg_behavior::App`] so every
//!   agent — legitimate or attacker — drives it identically.
//! * [`team`] — [`SecurityTeam`]: the §IV-A incident-response loop that
//!   periodically reviews logs and bookings, deploys fingerprint block
//!   rules, and feeds IP reputation.
//! * [`engine`] — [`Simulation`]: the deterministic discrete-event driver
//!   over agents, scheduled interventions, and periodic reviews.
//! * [`experiments`] — one runner per paper artifact (Fig. 1, Table I, the
//!   §IV case studies, and the §V mitigation/honeypot ablations), each
//!   returning a typed, printable report.
//! * [`harness`] — the parallel multi-seed harness: fans (experiment ×
//!   seed) cells across worker threads and aggregates replicates into
//!   mean ± stddev tables and merged telemetry.
//! * [`report`] — plain-text table rendering and JSON export.
//!
//! # Example
//!
//! ```no_run
//! use fg_scenario::experiments::fig1;
//!
//! let report = fig1::run(fig1::Fig1Config::default());
//! println!("{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod engine;
pub mod experiments;
pub mod harness;
pub mod monitor;
pub mod report;
pub mod team;
pub mod workload;

pub use app::{AppConfig, DefendedApp, GateDecision};
pub use engine::{share, Simulation};
pub use harness::{run_matrix, ExperimentRun, ExperimentSpec, HarnessConfig};
pub use team::SecurityTeam;
