//! End-to-end shard-count independence: every artifact the harness exports —
//! report JSON, alerts JSON, trace exports — is byte-identical between the
//! deterministic single-shard mode and an N-shard `ShardedStore` run, when
//! both replay single-threaded.
//!
//! This is the tentpole's safety rail. Hash-partitioning the keyed defence
//! stores (limiter buckets, velocity windows, reputation evidence,
//! fingerprint populations) must not change a single decision or aggregate:
//! per-key state is untouched by where it lives, and every exported total is
//! an order-insensitive fold over shards. The smoke subset mirrors
//! `trace_determinism.rs`: a direct-body experiment (fig1), a multi-cell
//! grid (ablation), and a telemetry-capable module (case_a).

use fg_core::shard::ConcurrencyMode;
use fg_scenario::experiments::{ablation, case_a, fig1};
use fg_scenario::harness::{run_matrix, ExperimentSpec, HarnessConfig};

fn smoke(shards: usize) -> HarnessConfig {
    HarnessConfig {
        seeds: 2,
        jobs: 1,
        smoke: true,
        alerts: true,
        traces: true,
        shards,
        ..HarnessConfig::default()
    }
}

fn specs() -> [ExperimentSpec; 3] {
    [fig1::spec(), ablation::spec(), case_a::spec()]
}

#[test]
fn sharded_artifacts_are_byte_identical_to_deterministic_mode() {
    let flat = run_matrix(&specs(), &smoke(1));
    let sharded = run_matrix(&specs(), &smoke(4));
    for (f, s) in flat.iter().zip(&sharded) {
        assert_eq!(f.name, s.name);
        for (fc, sc) in f.cells.iter().zip(&s.cells) {
            assert_eq!(fc.seed, sc.seed);
            assert_eq!(
                fc.json, sc.json,
                "{} seed {:#x}: report diverged between 1 and 4 shards",
                f.name, fc.seed
            );
        }
        assert_eq!(
            f.alerts_json(),
            s.alerts_json(),
            "{}: alerts.json diverged between 1 and 4 shards",
            f.name
        );
        assert_eq!(
            f.traces_json(),
            s.traces_json(),
            "{}: traces.json diverged between 1 and 4 shards",
            f.name
        );
        assert_eq!(f.aggregate, s.aggregate, "{}", f.name);
    }
}

#[test]
fn sharded_mode_composes_with_parallel_replay() {
    // Shard count and worker count are orthogonal: a 4-shard sweep replayed
    // on 4 harness threads still lands on the deterministic artifacts.
    let flat = run_matrix(&specs(), &smoke(1));
    let config = HarnessConfig {
        jobs: 4,
        ..smoke(4)
    };
    let sharded_parallel = run_matrix(&specs(), &config);
    for (f, s) in flat.iter().zip(&sharded_parallel) {
        for (fc, sc) in f.cells.iter().zip(&s.cells) {
            assert_eq!(
                fc.json, sc.json,
                "{} seed {:#x}: shards=4/jobs=4 diverged from shards=1/jobs=1",
                f.name, fc.seed
            );
        }
        assert_eq!(f.alerts_json(), s.alerts_json(), "{}", f.name);
    }
}

#[test]
fn module_level_reports_match_across_shard_counts() {
    // The same invariant without the harness in the loop: flipping a config
    // to `Sharded` changes no reported number.
    let flat = case_a::run(case_a::smoke_config());
    let mut sharded_cfg = case_a::smoke_config();
    sharded_cfg.concurrency = ConcurrencyMode::Sharded { shards: 8 };
    let sharded = case_a::run(sharded_cfg);
    assert_eq!(
        serde_json::to_string(&flat).unwrap(),
        serde_json::to_string(&sharded).unwrap()
    );
}
