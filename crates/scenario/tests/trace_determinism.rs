//! End-to-end tracing determinism: the `--traces` artifact is a pure
//! function of (experiment, seed) — byte-identical whatever `--jobs` is —
//! valid Chrome trace-event JSON, and every incident's exemplar trace ids
//! resolve inside it.
//!
//! The smoke subset covers the three module shapes: a direct-body
//! experiment (fig1), a multi-cell grid tracing only its designated cell
//! (ablation), and a telemetry-capable module whose spec snapshots through
//! the shared sink (case_a).

use fg_scenario::experiments::{ablation, case_a, fig1};
use fg_scenario::harness::{run_matrix, ExperimentSpec, HarnessConfig};

fn traced_smoke(jobs: usize) -> HarnessConfig {
    HarnessConfig {
        seeds: 2,
        seed_offset: 0,
        jobs,
        smoke: true,
        telemetry: false,
        alerts: true,
        traces: true,
        shards: 1,
    }
}

fn specs() -> [ExperimentSpec; 3] {
    [fig1::spec(), ablation::spec(), case_a::spec()]
}

/// The artifact must parse as a Chrome trace-event object with complete
/// `ph: "X"` events, so Perfetto / `chrome://tracing` load it directly.
fn assert_valid_chrome_trace(name: &str, json: &str) {
    let value: serde_json::Value = serde_json::from_str(json).expect("artifact parses");
    let serde_json::Value::Object(fields) = &value else {
        panic!("{name}: top level must be an object");
    };
    let events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .expect("traceEvents present");
    let serde_json::Value::Array(events) = events else {
        panic!("{name}: traceEvents must be an array");
    };
    assert!(!events.is_empty(), "{name}: no spans exported");
    for event in events {
        let serde_json::Value::Object(ev) = event else {
            panic!("{name}: event must be an object");
        };
        for required in ["name", "ph", "ts", "dur", "pid", "tid"] {
            assert!(
                ev.iter().any(|(k, _)| k == required),
                "{name}: event missing {required}"
            );
        }
    }
}

#[test]
fn trace_artifacts_are_deterministic_valid_and_exemplars_resolve() {
    let sequential = run_matrix(&specs(), &traced_smoke(1));
    let parallel = run_matrix(&specs(), &traced_smoke(4));
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s.name, p.name);
        let s_json = s.traces_json().expect("traces requested");
        let p_json = p.traces_json().expect("traces requested");
        assert_eq!(
            s_json, p_json,
            "{}: traces.json diverged between jobs=1 and jobs=4",
            s.name
        );
        // The report artifacts stay byte-identical too: tracing reads the
        // decision path, it never perturbs it.
        for (sc, pc) in s.cells.iter().zip(&p.cells) {
            assert_eq!(sc.json, pc.json, "{} seed {:#x}", s.name, sc.seed);
        }

        assert_valid_chrome_trace(s.name, &s_json);

        // The `--traces` CI gate condition, plus the stronger claim that
        // exemplars actually exist: the attacker session is pinned, so its
        // decision records are always retained.
        assert!(
            !s.exemplars_unresolved(),
            "{}: an exemplar trace id does not resolve",
            s.name
        );
        let cell = s
            .cells
            .iter()
            .find(|c| c.traces.is_some())
            .expect("replicate 0 is traced");
        assert_eq!(cell.replicate, 0, "{}: only replicate 0 is traced", s.name);
        let alerts = cell.alerts.as_ref().expect("alerts requested");
        assert!(
            !alerts.incident.exemplar_trace_ids.is_empty(),
            "{}: incident has no exemplar traces",
            s.name
        );
    }
}

#[test]
fn run_traced_reports_match_plain_runs() {
    // The tentpole's behavioural invariant at module level: enabling the
    // tracer does not change a single reported number.
    let (plain, _) = fig1::run_instrumented(fig1::smoke_config());
    let (traced, _, snapshot) = fig1::run_traced(fig1::smoke_config());
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&traced).unwrap()
    );
    assert!(snapshot.kept > 0, "smoke run retains spans");
}
