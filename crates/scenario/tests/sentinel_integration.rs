//! End-to-end sentinel pinning: exact time-to-detection and incident-event
//! sequences for the seeded smoke scenarios, plus thread-count independence
//! of the alerts artifact (ISSUE 5 acceptance).
//!
//! These values are properties of the committed seeds: any change to the
//! traffic models, detector stack, or sentinel rules that shifts detection
//! must re-pin them deliberately.

use fg_core::time::{SimDuration, SimTime};
use fg_scenario::experiments::{case_a, table1};
use fg_scenario::harness::{run_matrix, HarnessConfig};
use fg_sentinel::engine::AlertTransition;

/// Case A (seat-spinner with fingerprint rotation) under the default smoke
/// seed: the NiP-distribution drift sentinel first fires at d1 22:05:00 —
/// a time-to-detection of exactly 2 765 sim-minutes.
#[test]
fn case_a_smoke_ttd_and_timeline_are_pinned() {
    let (_, _, alerts) = case_a::run_full(case_a::smoke_config());

    assert_eq!(alerts.time_to_detection, Some(SimDuration::from_mins(2765)));
    assert_eq!(alerts.first_firing, Some(SimTime::from_mins(2765)));
    assert_eq!(alerts.events.len(), 10);
    assert_eq!(alerts.active_at_end, 0);

    // The incident narrative interleaves the mined evidence (campaign start,
    // rotation epochs, first mitigation) with the alert lifecycle, in order.
    let kinds: Vec<&str> = alerts
        .incident
        .entries
        .iter()
        .map(|e| e.kind.as_str())
        .collect();
    assert_eq!(kinds[0], "campaign-start");
    assert_eq!(kinds[1], "fingerprint-rotation");
    assert_eq!(kinds[2], "mitigation-engaged");
    assert_eq!(kinds.last(), Some(&"incident-end"));
    assert_eq!(
        kinds.iter().filter(|k| **k == "alert-firing").count(),
        5,
        "five distinct drift excursions in the smoke horizon"
    );
    assert_eq!(
        kinds
            .iter()
            .filter(|k| **k == "fingerprint-rotation")
            .count(),
        11,
        "ten detailed rotation epochs plus the summarised tail"
    );

    let first_alert = alerts
        .incident
        .entries
        .iter()
        .find(|e| e.kind == "alert-firing")
        .expect("timeline records the detection");
    assert_eq!(first_alert.at.to_string(), "d1 22:05:00");
    assert!(first_alert.detail.contains("nip-distribution-drift"));

    let mitigation = &alerts.incident.entries[2];
    assert_eq!(mitigation.at.to_string(), "d0 01:05:00");
    assert!(
        first_alert.at > mitigation.at,
        "inline defence engages before the offline sentinel confirms"
    );
}

/// Table I (SMS pumping) under the default smoke seed: the burn-rate rule
/// fires 16 min 54 s after the week-1 campaign start, and the per-country
/// surge follows for each premium-rate destination. This is the paper's
/// §V framing made measurable: the operator invoice surfaced the fraud a
/// month later; the sentinel surfaces it within sim-minutes.
#[test]
fn table1_smoke_surge_fires_within_minutes_of_campaign_start() {
    let (_, alerts) = table1::run_instrumented(table1::smoke_config());

    let campaign = SimTime::from_weeks(1);
    let ttd = alerts.time_to_detection.expect("pumping must be detected");
    assert_eq!(ttd, SimDuration::from_millis(1_014_172));
    assert_eq!(alerts.first_firing, Some(campaign + ttd));
    assert!(
        ttd < SimDuration::from_mins(20),
        "detection within sim-minutes of campaign start, got {ttd:?}"
    );

    // First blood goes to the aggregate burn-rate rule ...
    let first = alerts
        .events
        .iter()
        .find(|e| e.event == AlertTransition::Firing)
        .expect("at least one firing");
    assert_eq!(first.rule, "sms-burn-rate");

    // ... then each abused premium-rate corridor trips its own surge alert.
    let surge_countries: Vec<&str> = alerts
        .events
        .iter()
        .filter(|e| e.rule == "sms-country-surge" && e.event == AlertTransition::Firing)
        .map(|e| e.series.as_str())
        .collect();
    for corridor in [
        "fg_sms_sent_total{country=\"IR\"}",
        "fg_sms_sent_total{country=\"UZ\"}",
        "fg_sms_sent_total{country=\"KG\"}",
    ] {
        assert!(
            surge_countries.contains(&corridor),
            "expected a surge firing on {corridor}, got {surge_countries:?}"
        );
    }
    let first_surge = alerts
        .events
        .iter()
        .find(|e| e.rule == "sms-country-surge" && e.event == AlertTransition::Firing)
        .expect("per-country surge fires");
    assert_eq!(first_surge.at.to_string(), "d7 00:38:29");
}

/// The alerts artifact — the exact JSON the experiments binary writes to
/// `results/<name>.alerts.json` — is byte-identical whatever `--jobs` is.
#[test]
fn alerts_artifact_is_thread_count_independent() {
    let specs: Vec<_> = fg_scenario::experiments::all_specs()
        .into_iter()
        .filter(|s| s.name == "table1" || s.name == "case_a")
        .collect();
    let run = |jobs| {
        run_matrix(
            &specs,
            &HarnessConfig {
                seeds: 2,
                jobs,
                smoke: true,
                alerts: true,
                ..HarnessConfig::default()
            },
        )
    };
    let sequential = run(1);
    let parallel = run(4);
    for (s, p) in sequential.iter().zip(&parallel) {
        let s_json = s.alerts_json().expect("alerts captured");
        let p_json = p.alerts_json().expect("alerts captured");
        assert_eq!(
            s_json, p_json,
            "{} alerts artifact diverged across jobs",
            s.name
        );
        assert!(!s.detection_missing(), "{} missed detection", s.name);
    }
}
