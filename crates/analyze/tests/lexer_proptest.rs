//! Property tests for the analyzer's lexer: totality and tiling.
//!
//! Every pass downstream of [`fg_analyze::lexer::lex`] assumes two
//! invariants the lexer's module docs promise:
//!
//! * **totality** — any input string lexes without panicking (the analyzer
//!   reads every `.rs` file in the workspace, including fixtures that are
//!   deliberately not valid Rust);
//! * **tiling** — token spans partition the input exactly: they start at 0,
//!   are contiguous, never empty, and end at `len`, so `strip_lines` can
//!   reassemble per-line code/comment views without losing or duplicating
//!   bytes.

use fg_analyze::lexer::{lex, strip_lines};
use proptest::prelude::*;

/// Asserts the tiling invariant for `src`.
fn assert_tiles(src: &str) {
    let tokens = lex(src);
    let mut cursor = 0usize;
    for tok in &tokens {
        assert_eq!(
            tok.start, cursor,
            "gap or overlap at byte {cursor} in {src:?}"
        );
        assert!(
            tok.end > tok.start,
            "empty token at byte {cursor} in {src:?}"
        );
        cursor = tok.end;
    }
    assert_eq!(cursor, src.len(), "tokens must cover all of {src:?}");
}

/// Maps draws from `0..300` to bytes biased towards the characters that
/// drive the lexer's state machine, so random inputs actually reach the
/// string/comment/raw-string states (values ≥ 256 pick from the salt).
fn salt(raw: Vec<u16>) -> Vec<u8> {
    const SALT: &[u8] = b"\"'/r#*\\\nb/**/r#\"";
    raw.into_iter()
        .map(|v| match v {
            0..=255 => v as u8,
            other => SALT[(other as usize - 256) % SALT.len()],
        })
        .collect()
}

proptest! {
    /// Arbitrary (lossily decoded) bytes never panic the lexer, and the
    /// resulting token spans tile the input.
    #[test]
    fn arbitrary_bytes_lex_totally_and_tile(
        raw in proptest::collection::vec(0u16..300, 0..512),
    ) {
        let src = String::from_utf8_lossy(&salt(raw)).into_owned();
        assert_tiles(&src);
    }

    /// Unterminated constructs (a lone quote, an open block comment, a raw
    /// string missing its closing hashes) still lex to end of input.
    #[test]
    fn truncations_of_tricky_rust_lex_totally(cut_permille in 0u32..1001) {
        let src = "fn f<'a>() { let s = r##\"raw \"quoted\" text\"##; \
                   /* outer /* nested */ */ let c = 'x'; let b = b\"\\x00\"; } // t\n";
        let cut = (src.len() as u64 * u64::from(cut_permille) / 1000) as usize;
        // Cut on a char boundary (the fixture is ASCII, so every byte is).
        assert_tiles(&src[..cut]);
    }

    /// `strip_lines` produces exactly one view per input line regardless of
    /// input shape, and never panics.
    #[test]
    fn strip_lines_matches_line_count(
        raw in proptest::collection::vec(0u16..300, 0..256),
    ) {
        let src = String::from_utf8_lossy(&salt(raw)).into_owned();
        let views = strip_lines(&src);
        // Empty input still yields one (empty) view.
        prop_assert_eq!(views.len(), src.lines().count().max(1));
    }
}
