//! Snapshot test: the call graph extracted from a small fixture crate.
//!
//! The fixture exercises every resolution rule the dataflow passes depend
//! on — free calls, `Self::` calls inside an impl, method calls on a local
//! type, fully-qualified `Type::method` calls, cross-crate `fg_`-aliased
//! calls, and a nested fn whose body must not leak into its parent (it
//! becomes its own crate-level node). The
//! expected edge list is committed inline; any change to extraction or
//! resolution shows up as a readable diff, not a silent behaviour shift.

use fg_analyze::callgraph::{crate_edges, CallGraph, Workspace};

const APP: &str = r#"
pub struct Store {
    items: Vec<u64>,
}

impl Store {
    pub fn new() -> Store {
        Store { items: Vec::new() }
    }

    pub fn admit(&mut self, item: u64) {
        self.items.push(item);
        Self::audit(item);
    }

    fn audit(_item: u64) {}
}

pub fn boot() -> Store {
    let mut store = Store::new();
    store.admit(seed_value());
    store
}

fn seed_value() -> u64 {
    fn nested_helper() -> u64 {
        fg_util::stamp()
    }
    nested_helper()
}
"#;

const UTIL: &str = r#"
pub fn stamp() -> u64 {
    7
}

pub fn unused() -> u64 {
    stamp()
}
"#;

fn fixture() -> Workspace {
    Workspace::from_sources(vec![
        ("app", "crates/app/src/lib.rs", APP),
        ("util", "crates/util/src/lib.rs", UTIL),
    ])
}

#[test]
fn fixture_crate_edges_match_snapshot() {
    let ws = fixture();
    let graph = CallGraph::build(&ws);
    let expected = "\
app::Store::admit -> app::Store::audit
app::boot -> app::Store::admit
app::boot -> app::Store::new
app::boot -> app::seed_value
app::nested_helper -> util::stamp
app::seed_value -> app::nested_helper
util::unused -> util::stamp
";
    assert_eq!(graph.snapshot(&ws), expected);
}

#[test]
fn crate_edges_group_by_caller_and_cross_crate_targets_resolve() {
    let ws = fixture();
    let graph = CallGraph::build(&ws);
    let edges = crate_edges(&ws, &graph, "app");
    let helper = edges
        .get("app::nested_helper")
        .expect("nested helper is its own node");
    assert_eq!(
        helper,
        &vec!["util::stamp".to_owned()],
        "`fg_util::stamp()` resolves across the crate boundary"
    );
    assert!(
        !edges.contains_key("util::unused"),
        "crate filter excludes other crates' callers"
    );
}

#[test]
fn nested_fn_bodies_do_not_leak_into_the_parent() {
    let ws = fixture();
    let graph = CallGraph::build(&ws);
    let snapshot = graph.snapshot(&ws);
    assert!(
        !snapshot.contains("app::seed_value -> util::stamp"),
        "the nested fn's call must belong to the nested fn:\n{snapshot}"
    );
}
