//! Pass 6 — shard and lock discipline for the concurrent layers.
//!
//! PR 7 sharded the defence state (`fg_core`'s `ShardedStore`) and PR 8
//! put a worker pool in front of it; this pass enforces the access rules
//! those designs rely on:
//!
//! * **`nested-shard-borrow`** ([`Severity::Deny`]) — two `shard_mut`
//!   borrows of the same store inside one statement. Today's `&mut self`
//!   API makes this a compile error for a single store, but the lint keeps
//!   the rule when shards grow interior mutability or per-shard locks,
//!   where nesting becomes a deadlock instead of a borrow error.
//! * **`shard-discipline`** ([`Severity::Warn`]) — `shards_mut` hands out
//!   every shard at once and therefore bypasses key→shard routing. The
//!   documented uses are full-sweep maintenance and the disjoint-worker
//!   pattern (each worker owns one `&mut` slot); every call site must say
//!   which one it is with `// fg-analyze: allow(shard-discipline): <why>`.
//!   Only the accessor's own definition is exempt.
//! * **`lock-order-inversion`** ([`Severity::Deny`]) — two named `Mutex`es
//!   in `fg-serve` acquired in opposite orders in two code paths. Lock
//!   traces are per-function acquisition sequences with one level of
//!   same-crate call inlining (enough to see `try_reload → reload_inner`
//!   compose `active` then `last_reload`); an inversion between any two
//!   traces is a potential deadlock under the worker pool.
//! * **`atomic-ordering`** ([`Severity::Warn`]) — `Ordering::Relaxed` is
//!   reserved for the allowlisted monotone counters ([`RELAXED_COUNTERS`]);
//!   `Ordering::SeqCst` is banned outright (the workspace uses explicit
//!   acquire/release pairs — a stray SeqCst usually marks reasoning by
//!   superstition). `fg-telemetry` is exempt wholesale: its counters are
//!   statistical by contract.

use crate::callgraph::{CallGraph, SourceFile, Workspace};
use crate::diag::{Diagnostic, Severity};
use crate::lexer::{LineIndex, TokKind};

/// Stable lint ids for the discipline pass.
pub mod lints {
    /// Two `shard_mut` borrows of one store in a single statement.
    pub const NESTED_SHARD_BORROW: &str = "nested-shard-borrow";
    /// `shards_mut` without a documented-pattern waiver.
    pub const SHARD_DISCIPLINE: &str = "shard-discipline";
    /// Two fg-serve mutexes acquired in opposite orders.
    pub const LOCK_ORDER_INVERSION: &str = "lock-order-inversion";
    /// Relaxed/SeqCst atomics outside the counter policy.
    pub const ATOMIC_ORDERING: &str = "atomic-ordering";
}

/// Fields whose `Ordering::Relaxed` loads/stores are sanctioned: monotone
/// statistics counters and latched flags where staleness is harmless and
/// no other memory is published through them.
pub const RELAXED_COUNTERS: &[&str] = &[
    "decisions",
    "reports",
    "generation",
    "draining",
    "limit",
    "last_tick_ms",
    "next_index",
    "shutdown",
    "cursor",
    // Flight-recorder sequence numbers: display ordering only, nothing is
    // published through them.
    "request_seq",
    // Breaker-trip high-water latch: the freeze decision it feeds is made
    // under the flight-recorder mutex, the atomic only dedups the edge.
    "seen_trips",
];

/// Runs all four discipline checks.
pub fn run(ws: &Workspace, graph: &CallGraph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    shard_checks(ws, graph, &mut diags);
    lock_order(ws, graph, &mut diags);
    atomic_ordering(ws, graph, &mut diags);
    diags
}

/// Significant-token indices of a node's body.
fn sig_tokens(file: &SourceFile, body: std::ops::Range<usize>) -> Vec<usize> {
    body.filter(|i| {
        !matches!(
            file.tokens[*i].kind,
            TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
        )
    })
    .collect()
}

/// The receiver ident directly before `.name(` at significant index `k` of
/// `name` — `self.active.lock()` → `active`, `rx.lock()` → `rx`,
/// `self.lock()` → `self`.
fn receiver<'a>(file: &'a SourceFile, idx: &[usize], k: usize) -> Option<&'a str> {
    if k < 2 || file.tokens[idx[k - 1]].text(&file.src) != "." {
        return None;
    }
    let prev = &file.tokens[idx[k - 2]];
    (prev.kind == TokKind::Ident || prev.text(&file.src) == ")").then(|| prev.text(&file.src))
}

fn shard_checks(ws: &Workspace, graph: &CallGraph, diags: &mut Vec<Diagnostic>) {
    for id in 0..graph.fns.len() {
        let file = graph.file(ws, id);
        let item = graph.item(ws, id);
        let lines = LineIndex::new(&file.src);
        let idx = sig_tokens(file, item.body.clone());
        let text = |k: usize| file.tokens[idx[k]].text(&file.src);

        // Statement-scoped shard_mut borrows, keyed by receiver.
        let mut in_stmt: Vec<(String, usize)> = Vec::new();
        for k in 0..idx.len() {
            let t = text(k);
            if t == ";" {
                in_stmt.clear();
                continue;
            }
            if file.tokens[idx[k]].kind != TokKind::Ident {
                continue;
            }
            let next = if k + 1 < idx.len() { text(k + 1) } else { "" };
            if next != "(" {
                continue;
            }
            let line_no = lines.line(file.tokens[idx[k]].start);
            if t == "shard_mut" {
                let recv = receiver(file, &idx, k).unwrap_or("").to_owned();
                if let Some((_, first_line)) =
                    in_stmt.iter().find(|(r, _)| *r == recv && !recv.is_empty())
                {
                    if !file.allows(line_no, lints::NESTED_SHARD_BORROW) {
                        diags.push(
                            Diagnostic::new(
                                lints::NESTED_SHARD_BORROW,
                                Severity::Deny,
                                format!("{}:{}", file.path, line_no),
                                format!(
                                    "`{}` borrows `{recv}.shard_mut(…)` twice in one \
                                     statement: with per-shard locking this is a \
                                     self-deadlock — split the statement",
                                    item.path
                                ),
                            )
                            .note("receiver", &recv)
                            .note("first_borrow_line", first_line),
                        );
                    }
                } else {
                    in_stmt.push((recv, line_no));
                }
            } else if t == "shards_mut" {
                // The accessor's own definition (and delegating accessors of
                // the same name) define the pattern; call sites justify it.
                if item.name == "shards_mut" {
                    continue;
                }
                if !file.allows(line_no, lints::SHARD_DISCIPLINE) {
                    diags.push(
                        Diagnostic::new(
                            lints::SHARD_DISCIPLINE,
                            Severity::Warn,
                            format!("{}:{}", file.path, line_no),
                            format!(
                                "`{}` takes `shards_mut()` without a documented \
                                 pattern: annotate the site — full-sweep \
                                 maintenance or disjoint per-worker hand-out",
                                item.path
                            ),
                        )
                        .note("function", &item.path),
                    );
                }
            }
        }
    }
}

/// One lock acquisition in a trace.
#[derive(Clone, Debug)]
struct Acq {
    name: String,
    line: usize,
}

/// Per-function acquisition sequence: syntactic `.lock()` receivers, with
/// `self.lock()` helpers named by their impl type.
fn own_trace(file: &SourceFile, item: &crate::items::FnItem) -> Vec<Acq> {
    let lines = LineIndex::new(&file.src);
    let idx = sig_tokens(file, item.body.clone());
    let mut out = Vec::new();
    for k in 0..idx.len() {
        let tok = &file.tokens[idx[k]];
        if tok.kind != TokKind::Ident || tok.text(&file.src) != "lock" {
            continue;
        }
        if k + 1 >= idx.len() || file.tokens[idx[k + 1]].text(&file.src) != "(" {
            continue;
        }
        let Some(recv) = receiver(file, &idx, k) else {
            continue;
        };
        let name = if recv == "self" {
            // A `fn lock(&self)` convenience wrapper: the mutex is the
            // impl type's single inner lock.
            item.impl_type.clone().unwrap_or_else(|| "self".to_owned())
        } else {
            recv.to_owned()
        };
        out.push(Acq {
            name,
            line: lines.line(tok.start),
        });
    }
    out
}

fn lock_order(ws: &Workspace, graph: &CallGraph, diags: &mut Vec<Diagnostic>) {
    // Own traces for every serve fn, then one level of same-crate inlining.
    let mut own: Vec<Vec<Acq>> = Vec::with_capacity(graph.fns.len());
    for id in 0..graph.fns.len() {
        let file = graph.file(ws, id);
        own.push(if file.krate == "serve" {
            own_trace(file, graph.item(ws, id))
        } else {
            Vec::new()
        });
    }
    // pair (a, b) → first witness "fn path (a@line, b@line)"
    let mut pairs: std::collections::BTreeMap<(String, String), (usize, String)> =
        std::collections::BTreeMap::new();
    for id in 0..graph.fns.len() {
        let file = graph.file(ws, id);
        if file.krate != "serve" {
            continue;
        }
        let mut trace = own[id].clone();
        for call in &graph.calls[id] {
            if graph.file(ws, call.callee).krate == "serve" {
                for acq in &own[call.callee] {
                    trace.push(Acq {
                        name: acq.name.clone(),
                        line: call.line,
                    });
                }
            }
        }
        trace.sort_by_key(|a| a.line);
        let item = graph.item(ws, id);
        for i in 0..trace.len() {
            for j in i + 1..trace.len() {
                let (a, b) = (&trace[i], &trace[j]);
                if a.name == b.name {
                    continue;
                }
                let witness = format!(
                    "{} ({}@{} then {}@{})",
                    item.path, a.name, a.line, b.name, b.line
                );
                pairs
                    .entry((a.name.clone(), b.name.clone()))
                    .or_insert((id, witness));
            }
        }
    }
    let mut reported = std::collections::BTreeSet::new();
    for ((a, b), (id, witness)) in &pairs {
        let Some((other_id, other_witness)) = pairs.get(&(b.clone(), a.clone())) else {
            continue;
        };
        let key = if a < b {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        };
        if !reported.insert(key) {
            continue;
        }
        let item = graph.item(ws, *id);
        let line = own[*id].first().map_or(item.line, |acq| acq.line);
        let file = graph.file(ws, *id);
        if file.allows(line, lints::LOCK_ORDER_INVERSION) {
            continue;
        }
        diags.push(
            Diagnostic::new(
                lints::LOCK_ORDER_INVERSION,
                Severity::Deny,
                format!("{}:{}", file.path, line),
                format!(
                    "mutexes `{a}` and `{b}` are acquired in opposite orders in \
                     two fg-serve code paths — a deadlock window under the \
                     worker pool; pick one order",
                ),
            )
            .note("order_one", witness)
            .note("order_two", other_witness)
            .note("also_in", &graph.item(ws, *other_id).path),
        );
    }
}

fn atomic_ordering(ws: &Workspace, graph: &CallGraph, diags: &mut Vec<Diagnostic>) {
    for id in 0..graph.fns.len() {
        let file = graph.file(ws, id);
        // Telemetry counters are statistical by contract.
        if file.krate == "telemetry" {
            continue;
        }
        let item = graph.item(ws, id);
        let lines = LineIndex::new(&file.src);
        let idx = sig_tokens(file, item.body.clone());
        let text = |k: usize| file.tokens[idx[k]].text(&file.src);
        for (k, &ti) in idx.iter().enumerate() {
            if file.tokens[ti].kind != TokKind::Ident {
                continue;
            }
            let name = file.tokens[ti].text(&file.src);
            if name != "Relaxed" && name != "SeqCst" {
                continue;
            }
            // Require the `Ordering::` qualifier so a stray ident (an enum
            // variant in domain code) cannot trip the lint.
            if k < 3 || text(k - 1) != ":" || text(k - 2) != ":" || text(k - 3) != "Ordering" {
                continue;
            }
            let line_no = lines.line(file.tokens[ti].start);
            if file.allows(line_no, lints::ATOMIC_ORDERING) {
                continue;
            }
            if name == "Relaxed" {
                let code = &file.line(line_no).code;
                if RELAXED_COUNTERS.iter().any(|c| code.contains(c)) {
                    continue;
                }
                diags.push(
                    Diagnostic::new(
                        lints::ATOMIC_ORDERING,
                        Severity::Warn,
                        format!("{}:{}", file.path, line_no),
                        format!(
                            "`Ordering::Relaxed` in `{}` outside the counter policy: \
                             Relaxed is reserved for allowlisted monotone counters — \
                             use acquire/release, extend RELAXED_COUNTERS, or waive",
                            item.path
                        ),
                    )
                    .note("function", &item.path),
                );
            } else {
                diags.push(
                    Diagnostic::new(
                        lints::ATOMIC_ORDERING,
                        Severity::Warn,
                        format!("{}:{}", file.path, line_no),
                        format!(
                            "`Ordering::SeqCst` in `{}`: the workspace uses explicit \
                             acquire/release pairs — justify with a waiver or weaken",
                            item.path
                        ),
                    )
                    .note("function", &item.path),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Workspace;

    fn run_on(sources: Vec<(&str, &str, &str)>) -> Vec<Diagnostic> {
        let ws = Workspace::from_sources(sources);
        let graph = CallGraph::build(&ws);
        run(&ws, &graph)
    }

    #[test]
    fn nested_shard_borrow_in_one_statement_is_denied() {
        let diags = run_on(vec![(
            "core",
            "crates/core/src/lib.rs",
            "fn merge(store: &mut Store, a: u64, b: u64) {\n\
                 combine(store.shard_mut(&a), store.shard_mut(&b));\n\
             }\n",
        )]);
        let hit: Vec<_> = diags
            .iter()
            .filter(|d| d.lint == lints::NESTED_SHARD_BORROW)
            .collect();
        assert_eq!(hit.len(), 1, "{diags:?}");
        assert_eq!(hit[0].severity, Severity::Deny);
        assert_eq!(hit[0].explanation["receiver"], "store");
    }

    #[test]
    fn sequential_statements_and_distinct_stores_are_fine() {
        let diags = run_on(vec![(
            "core",
            "crates/core/src/lib.rs",
            "fn ok(a_store: &mut Store, b_store: &mut Store, k: u64) {\n\
                 a_store.shard_mut(&k).push(k);\n\
                 a_store.shard_mut(&k).push(k);\n\
                 combine(a_store.shard_mut(&k), b_store.shard_mut(&k));\n\
             }\n",
        )]);
        assert!(
            diags.iter().all(|d| d.lint != lints::NESTED_SHARD_BORROW),
            "{diags:?}"
        );
    }

    #[test]
    fn shards_mut_requires_a_pattern_waiver() {
        let bare = run_on(vec![(
            "mitigation",
            "crates/mitigation/src/lib.rs",
            "fn sweep(s: &mut Store) { for shard in s.shards_mut() { shard.gc(); } }\n",
        )]);
        assert!(
            bare.iter().any(|d| d.lint == lints::SHARD_DISCIPLINE),
            "{bare:?}"
        );
        let waived = run_on(vec![(
            "mitigation",
            "crates/mitigation/src/lib.rs",
            "fn sweep(s: &mut Store) {\n\
                 // fg-analyze: allow(shard-discipline): full-sweep gc\n\
                 for shard in s.shards_mut() { shard.gc(); } // fg-analyze: allow(shard-discipline): full-sweep gc\n\
             }\n",
        )]);
        assert!(
            waived.iter().all(|d| d.lint != lints::SHARD_DISCIPLINE),
            "{waived:?}"
        );
    }

    #[test]
    fn inverted_lock_order_across_serve_paths_is_denied() {
        let diags = run_on(vec![(
            "serve",
            "crates/serve/src/server.rs",
            "fn path_one(s: &State) {\n\
                 let a = s.active.lock();\n\
                 let b = s.last_reload.lock();\n\
             }\n\
             fn path_two(s: &State) {\n\
                 let b = s.last_reload.lock();\n\
                 let a = s.active.lock();\n\
             }\n",
        )]);
        let hit: Vec<_> = diags
            .iter()
            .filter(|d| d.lint == lints::LOCK_ORDER_INVERSION)
            .collect();
        assert_eq!(hit.len(), 1, "one inversion, reported once: {diags:?}");
        assert!(hit[0].message.contains("active"), "{:?}", hit[0]);
    }

    #[test]
    fn consistent_order_and_inlined_callees_are_clean() {
        // path_two takes `active` via a callee, still before `last_reload`.
        let diags = run_on(vec![(
            "serve",
            "crates/serve/src/server.rs",
            "fn path_one(s: &State) {\n\
                 let a = s.active.lock();\n\
                 let b = s.last_reload.lock();\n\
             }\n\
             fn take_active(s: &State) { let a = s.active.lock(); }\n\
             fn path_two(s: &State) {\n\
                 take_active(s);\n\
                 let b = s.last_reload.lock();\n\
             }\n",
        )]);
        assert!(
            diags.iter().all(|d| d.lint != lints::LOCK_ORDER_INVERSION),
            "{diags:?}"
        );
    }

    #[test]
    fn atomic_policy_allows_counters_and_flags_the_rest() {
        let diags = run_on(vec![(
            "serve",
            "crates/serve/src/lib.rs",
            "fn f(s: &S) {\n\
                 s.decisions.fetch_add(1, Ordering::Relaxed);\n\
                 s.shared_ptr.store(p, Ordering::Relaxed);\n\
                 s.flag.store(true, Ordering::SeqCst);\n\
             }\n",
        )]);
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.lint == lints::ATOMIC_ORDERING)
            .collect();
        assert_eq!(hits.len(), 2, "{diags:?}");
        assert!(hits.iter().any(|d| d.source.ends_with(":3")));
        assert!(hits.iter().any(|d| d.source.ends_with(":4")));
    }

    #[test]
    fn telemetry_is_exempt_from_the_atomic_policy() {
        let diags = run_on(vec![(
            "telemetry",
            "crates/telemetry/src/lib.rs",
            "fn f(s: &S) { s.anything.store(1, Ordering::Relaxed); }\n",
        )]);
        assert!(
            diags.iter().all(|d| d.lint != lints::ATOMIC_ORDERING),
            "{diags:?}"
        );
    }
}
