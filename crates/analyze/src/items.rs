//! Item extraction: functions, impl blocks, and modules from a token
//! stream, with crate-qualified paths.
//!
//! This is the IR layer between the [`crate::lexer`] and the call graph: a
//! brace-depth walk (not a full parser) that recognises `mod NAME {`,
//! `impl … {`, `trait NAME {`, and `fn NAME(…) {` and records, for every
//! function with a body, a crate-qualified path like
//! `serve::server::ServeState::decide` plus the token range of its body.
//!
//! Test code is excluded at this layer: items inside a `#[cfg(test)]`
//! module, or functions carrying `#[test]`, are marked `is_test` and every
//! downstream pass skips them — an `unwrap()` in a unit test is not a
//! panic-surface finding.
//!
//! Known approximations (documented, tested, acceptable for the passes):
//! `use` trees and `macro_rules!` bodies are skipped wholesale so their
//! braces cannot desynchronise the scope stack; function pointers
//! (`fn(u8)`) are not items; nested `fn`s become their own items under the
//! enclosing module path.

use crate::lexer::{LineIndex, TokKind, Token};

/// One function item with a body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnItem {
    /// The crate the function lives in (directory name, e.g. `"serve"`).
    pub krate: String,
    /// Crate-qualified path: `crate::mod::…::Type::name` (impl type
    /// included when the fn is an associated item).
    pub path: String,
    /// The bare function name.
    pub name: String,
    /// The impl/trait type the fn is associated with, if any.
    pub impl_type: Option<String>,
    /// Root-relative file path (diagnostic spans).
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token-index range of the body, *excluding* the outer braces.
    pub body: std::ops::Range<usize>,
    /// Inside `#[cfg(test)]` or carrying `#[test]`.
    pub is_test: bool,
}

#[derive(Clone, Debug)]
enum Scope {
    Mod { name: String, test: bool },
    Impl { ty: String },
    Fn,
    Block,
}

/// Extracts every function item from `tokens` (as produced by
/// [`crate::lexer::lex`] over `src`).
pub fn extract_fns(krate: &str, file: &str, src: &str, tokens: &[Token]) -> Vec<FnItem> {
    let lines = LineIndex::new(src);
    let mut fns = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    // Attribute state for the *next* item at this nesting level.
    let mut pending_cfg_test = false;
    let mut pending_attr_test = false;

    let significant: Vec<usize> = (0..tokens.len())
        .filter(|&i| {
            !matches!(
                tokens[i].kind,
                TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
            )
        })
        .collect();
    let text = |si: usize| tokens[significant[si]].text(src);
    let kind = |si: usize| tokens[significant[si]].kind;

    let mut si = 0usize;
    while si < significant.len() {
        match (kind(si), text(si)) {
            (TokKind::Punct, "#") => {
                // Attribute: `#[…]` (or `#![…]`). Scan the bracket group and
                // look for cfg(test) / test markers.
                let mut j = si + 1;
                if j < significant.len() && text(j) == "!" {
                    j += 1;
                }
                if j < significant.len() && text(j) == "[" {
                    let mut depth = 0usize;
                    let mut words: Vec<&str> = Vec::new();
                    while j < significant.len() {
                        match text(j) {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            w if kind(j) == TokKind::Ident => words.push(w),
                            _ => {}
                        }
                        j += 1;
                    }
                    if words.first() == Some(&"cfg") && words.contains(&"test") {
                        pending_cfg_test = true;
                    }
                    if words.len() == 1 && (words[0] == "test" || words[0] == "bench") {
                        pending_attr_test = true;
                    }
                    si = j + 1;
                    continue;
                }
                si += 1;
            }
            (TokKind::Ident, "use") => {
                // `use a::{b, c};` — braces here are not scopes.
                while si < significant.len() && text(si) != ";" {
                    si += 1;
                }
                si += 1;
            }
            (TokKind::Ident, "macro_rules") => {
                // `macro_rules! name { … }` — skip the balanced brace group.
                while si < significant.len() && text(si) != "{" {
                    si += 1;
                }
                si = skip_balanced(&significant, tokens, src, si, "{", "}");
                pending_cfg_test = false;
                pending_attr_test = false;
            }
            (TokKind::Ident, "mod") => {
                let name = if si + 1 < significant.len() && kind(si + 1) == TokKind::Ident {
                    text(si + 1).to_owned()
                } else {
                    String::new()
                };
                si += 2;
                // `mod name;` declares an out-of-line module — no scope.
                if si < significant.len() && text(si) == "{" {
                    scopes.push(Scope::Mod {
                        name,
                        test: pending_cfg_test,
                    });
                    si += 1;
                }
                pending_cfg_test = false;
                pending_attr_test = false;
            }
            (TokKind::Ident, "impl" | "trait") => {
                let ty = impl_type(&significant, tokens, src, si, text(si) == "trait");
                while si < significant.len() && text(si) != "{" && text(si) != ";" {
                    si += 1;
                }
                if si < significant.len() && text(si) == "{" {
                    scopes.push(Scope::Impl { ty });
                    si += 1;
                } else {
                    si += 1; // `impl Trait for X;` — nothing to scope
                }
                pending_cfg_test = false;
                pending_attr_test = false;
            }
            (TokKind::Ident, "fn")
                if si + 1 < significant.len() && kind(si + 1) == TokKind::Ident =>
            {
                let name = text(si + 1).to_owned();
                let fn_line = lines.line(tokens[significant[si]].start);
                // Scan the signature to the body `{` or a `;` declaration.
                // Parens/brackets are balanced; `->` return types may carry
                // braces only after generic/paren depth returns to zero.
                let mut j = si + 2;
                let mut paren = 0i32;
                let mut bracket = 0i32;
                let mut found_body = None;
                while j < significant.len() {
                    match text(j) {
                        "(" => paren += 1,
                        ")" => paren -= 1,
                        "[" => bracket += 1,
                        "]" => bracket -= 1,
                        "{" if paren == 0 && bracket == 0 => {
                            found_body = Some(j);
                            break;
                        }
                        ";" if paren == 0 && bracket == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let in_test_scope = scopes
                    .iter()
                    .any(|s| matches!(s, Scope::Mod { test: true, .. }))
                    || pending_cfg_test;
                if let Some(body_open) = found_body {
                    let body_close = find_close(&significant, tokens, src, body_open);
                    let impl_ty = scopes.iter().rev().find_map(|s| match s {
                        Scope::Impl { ty } => Some(ty.clone()),
                        _ => None,
                    });
                    let mut path = vec![krate.to_owned()];
                    for s in &scopes {
                        if let Scope::Mod { name, .. } = s {
                            path.push(name.clone());
                        }
                    }
                    if let Some(ty) = &impl_ty {
                        path.push(ty.clone());
                    }
                    path.push(name.clone());
                    fns.push(FnItem {
                        krate: krate.to_owned(),
                        path: path.join("::"),
                        name,
                        impl_type: impl_ty,
                        file: file.to_owned(),
                        line: fn_line,
                        body: significant[body_open] + 1..significant[body_close],
                        is_test: in_test_scope || pending_attr_test,
                    });
                    scopes.push(Scope::Fn);
                    si = body_open + 1;
                } else {
                    si = j + 1;
                }
                pending_cfg_test = false;
                pending_attr_test = false;
            }
            (TokKind::Punct, "{") => {
                scopes.push(Scope::Block);
                si += 1;
            }
            (TokKind::Punct, "}") => {
                scopes.pop();
                si += 1;
            }
            _ => si += 1,
        }
    }
    fns
}

/// Finds the significant-index of the `}` matching the `{` at `open`.
fn find_close(significant: &[usize], tokens: &[Token], src: &str, open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < significant.len() {
        match tokens[significant[j]].text(src) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    significant.len().saturating_sub(1)
}

/// Skips past a balanced `open`…`close` group starting at or after `si`;
/// returns the index just past the closing token.
fn skip_balanced(
    significant: &[usize],
    tokens: &[Token],
    src: &str,
    si: usize,
    open: &str,
    close: &str,
) -> usize {
    let mut depth = 0i32;
    let mut j = si;
    while j < significant.len() {
        let t = tokens[significant[j]].text(src);
        if t == open {
            depth += 1;
        } else if t == close {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Resolves the self-type of an `impl` / `trait` header starting at `si`
/// (which points at the keyword): the last top-level path segment before
/// the body, after `for` when present (`impl Trait for Foo` → `Foo`).
fn impl_type(
    significant: &[usize],
    tokens: &[Token],
    src: &str,
    si: usize,
    is_trait: bool,
) -> String {
    let mut angle = 0i32;
    let mut last_ident = String::new();
    let mut j = si + 1;
    while j < significant.len() {
        let t = tokens[significant[j]].text(src);
        match t {
            "{" | ";" if angle == 0 => break,
            "where" if angle == 0 => break,
            "<" => angle += 1,
            // `->` inside generic bounds (`Fn() -> u8`) is not a close.
            ">" if tokens[significant[j.saturating_sub(1)]].text(src) != "-" => {
                angle -= 1;
            }
            ">" => {}
            "for" if angle == 0 => last_ident.clear(),
            "dyn" | "mut" | "const" => {}
            w if angle == 0 && tokens[significant[j]].kind == TokKind::Ident => {
                last_ident = w.to_owned();
                if is_trait {
                    // `trait Name …` — the first ident is the name.
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    last_ident
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Vec<FnItem> {
        extract_fns("demo", "crates/demo/src/lib.rs", src, &lex(src))
    }

    #[test]
    fn free_and_associated_fns_get_qualified_paths() {
        let src = "pub fn top() {}\n\
                   mod inner {\n\
                       pub struct S;\n\
                       impl S { pub fn method(&self) -> u8 { 1 } }\n\
                       impl std::fmt::Display for S {\n\
                           fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n\
                       }\n\
                   }\n";
        let found = items(src);
        let got: Vec<&str> = found.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(
            got,
            vec!["demo::top", "demo::inner::S::method", "demo::inner::S::fmt"]
        );
    }

    #[test]
    fn cfg_test_modules_and_test_fns_are_marked() {
        let src = "fn real() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn checks() { real(); }\n\
                       fn helper() {}\n\
                   }\n";
        let got = items(src);
        assert_eq!(got.len(), 3);
        assert!(!got[0].is_test, "{got:?}");
        assert!(got[1].is_test, "fn under cfg(test) mod");
        assert!(got[2].is_test, "helper under cfg(test) mod");
    }

    #[test]
    fn use_trees_and_fn_pointers_do_not_derail_scoping() {
        let src = "use std::collections::{HashMap, HashSet};\n\
                   struct Holder { callback: fn(u8) -> u8 }\n\
                   impl Holder { fn call(&self) -> u8 { (self.callback)(1) } }\n";
        let got = items(src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].path, "demo::Holder::call");
    }

    #[test]
    fn trait_default_methods_belong_to_the_trait() {
        let src = "trait Scorer { fn base(&self) -> f64 { 0.5 } fn score(&self) -> f64; }";
        let got = items(src);
        assert_eq!(got.len(), 1, "declarations without bodies are not items");
        assert_eq!(got[0].path, "demo::Scorer::base");
    }

    #[test]
    fn nested_fns_and_generics_parse() {
        let src = "fn outer<T: Into<Vec<u8>>>(x: T) -> impl Iterator<Item = u8> {\n\
                       fn inner(v: Vec<u8>) -> std::vec::IntoIter<u8> { v.into_iter() }\n\
                       inner(x.into())\n\
                   }\n\
                   fn after() {}\n";
        let found = items(src);
        let got: Vec<&str> = found.iter().map(|f| f.path.as_str()).collect();
        assert_eq!(got, vec!["demo::outer", "demo::inner", "demo::after"]);
    }

    #[test]
    fn body_ranges_cover_the_body_tokens() {
        let src = "fn f() { helper(1); }";
        let got = items(src);
        let tokens = lex(src);
        let body_text: String = tokens[got[0].body.clone()]
            .iter()
            .map(|t| t.text(src))
            .collect();
        assert_eq!(body_text.trim(), "helper(1);");
    }

    #[test]
    fn macro_rules_bodies_are_opaque() {
        let src = "macro_rules! gen { () => { fn generated() {} }; }\nfn real() {}";
        let found = items(src);
        let got: Vec<&str> = found.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(got, vec!["real"]);
    }
}
