//! Pass 4 — determinism taint, propagated through the call graph.
//!
//! The v1 source pass flags a wall-clock or entropy read *on the line it
//! occurs*, which a one-line helper defeats: wrap `Instant::now()` in a
//! function and every caller is clean. This pass closes that hole with a
//! transitive taint analysis over the [`crate::callgraph::CallGraph`]:
//!
//! * A function is **directly tainted** when its body reads a
//!   non-deterministic source — any v1 wall-clock / entropy / machine-
//!   dependent pattern — without the corresponding sanitizing
//!   `fg-analyze: allow(<lint>)` marker. Exempt crates (`telemetry`,
//!   `serve`, …) never need markers, so their clock-reading APIs are
//!   tainted *as propagation sources* even though they are legal locally.
//! * Taint flows caller-ward: a function that calls a tainted function is
//!   itself tainted, unless the call line carries
//!   `// fg-analyze: allow(determinism-taint): <why>` — the sanction that
//!   says "this call's non-determinism never reaches sim state".
//! * Findings are emitted only where the contract is at stake: a call site
//!   in a [`crate::source::DETERMINISM_CRITICAL`] crate whose callee is
//!   tainted is a [`Severity::Deny`], with the taint's root source in the
//!   explanation so the chain is auditable.
//!
//! The same pass owns the **stale-allow** lint: an inline
//! `fg-analyze: allow(...)` marker whose line no longer matches the lint it
//! waives (the clock read was refactored away, the lint id was typo'd) is
//! dead sanction — reported at [`Severity::Warn`] so waivers cannot quietly
//! outlive the code they justified.

use crate::callgraph::{CallGraph, SourceFile, Workspace};
use crate::diag::{Diagnostic, Severity};
use crate::source;
use std::collections::BTreeMap;

/// Stable lint ids for the taint pass.
pub mod lints {
    /// A determinism-critical function calls a (transitively) tainted one.
    pub const DETERMINISM_TAINT: &str = "determinism-taint";
    /// An inline `allow(...)` marker whose line no longer matches its lint.
    pub const STALE_ALLOW: &str = "stale-allow";
}

/// Why a function is tainted: the root non-deterministic read.
#[derive(Clone, Debug)]
pub struct TaintCause {
    /// The v1 pattern that matched (`"Instant::now"`, `"thread_rng"`, …).
    pub pattern: String,
    /// `path:line` of the root read.
    pub at: String,
}

/// Per-node taint state for the whole graph, in node-id order.
pub fn taint_map(ws: &Workspace, graph: &CallGraph) -> Vec<Option<TaintCause>> {
    let mut tainted: Vec<Option<TaintCause>> = vec![None; graph.fns.len()];

    // Seed: direct non-deterministic reads inside each body.
    for (id, slot) in tainted.iter_mut().enumerate() {
        let file = graph.file(ws, id);
        let item = graph.item(ws, id);
        'lines: for line_no in body_lines(file, item.body.clone()) {
            let view = file.line(line_no);
            // Only genuine non-determinism seeds taint — the std-hash lint
            // in pattern_classes() is a performance contract, not a source.
            for (lint, patterns) in source::pattern_classes()
                .into_iter()
                .filter(|(id, _)| *id != source::lints::STD_HASH_COLLECTIONS)
            {
                for pat in patterns {
                    if view.code.contains(pat)
                        && !file.allows(line_no, lint)
                        && !file.allows(line_no, lints::DETERMINISM_TAINT)
                    {
                        *slot = Some(TaintCause {
                            pattern: pat.to_string(),
                            at: format!("{}:{}", file.path, line_no),
                        });
                        break 'lines;
                    }
                }
            }
        }
    }

    // Propagate caller-ward to a fixpoint. A sanitized call line stops the
    // flow; everything else conducts.
    loop {
        let mut changed = false;
        for id in 0..graph.fns.len() {
            if tainted[id].is_some() {
                continue;
            }
            let file = graph.file(ws, id);
            for call in &graph.calls[id] {
                if let Some(cause) = &tainted[call.callee] {
                    if !file.allows(call.line, lints::DETERMINISM_TAINT) {
                        tainted[id] = Some(cause.clone());
                        changed = true;
                        break;
                    }
                }
            }
        }
        if !changed {
            return tainted;
        }
    }
}

/// Runs the taint pass: flags tainted call sites in determinism-critical
/// crates, then sweeps the whole workspace for stale allow markers.
pub fn run(ws: &Workspace, graph: &CallGraph) -> Vec<Diagnostic> {
    let tainted = taint_map(ws, graph);
    let mut diags = Vec::new();

    // Call-site findings, deduplicated per (site, callee) — the same line
    // may resolve to several same-named methods.
    let mut seen: BTreeMap<(String, String), ()> = BTreeMap::new();
    for id in 0..graph.fns.len() {
        let file = graph.file(ws, id);
        if !source::DETERMINISM_CRITICAL.contains(&file.krate.as_str()) {
            continue;
        }
        let caller = graph.item(ws, id);
        for call in &graph.calls[id] {
            let Some(cause) = &tainted[call.callee] else {
                continue;
            };
            if file.allows(call.line, lints::DETERMINISM_TAINT) {
                continue;
            }
            let callee = graph.item(ws, call.callee);
            let site = format!("{}:{}", file.path, call.line);
            if seen
                .insert((site.clone(), callee.path.clone()), ())
                .is_some()
            {
                continue;
            }
            diags.push(
                Diagnostic::new(
                    lints::DETERMINISM_TAINT,
                    Severity::Deny,
                    site,
                    format!(
                        "`{}` calls `{}`, which (transitively) reads `{}`: \
                         non-determinism reaches a determinism-critical crate",
                        caller.path, callee.path, cause.pattern
                    ),
                )
                .note("callee", &callee.path)
                .note("root_source", &cause.at)
                .note("root_pattern", &cause.pattern),
            );
        }
    }

    diags.extend(stale_allows(ws, graph, &tainted));
    diags
}

/// Lint ids whose markers this pass can verify against their line. Markers
/// for other ids (file-scoped waivers like `missing-forbid-unsafe`) are
/// trusted as written.
const LINE_CHECKED: &[&str] = &[
    source::lints::WALL_CLOCK,
    source::lints::ENTROPY_RNG,
    source::lints::MACHINE_DEPENDENT,
    source::lints::STD_HASH_COLLECTIONS,
    lints::DETERMINISM_TAINT,
    crate::panic_path::lints::PANIC_PATH,
    crate::panic_path::lints::PARTIAL_OP,
    crate::locks::lints::SHARD_DISCIPLINE,
    crate::locks::lints::NESTED_SHARD_BORROW,
    crate::locks::lints::LOCK_ORDER_INVERSION,
    crate::locks::lints::ATOMIC_ORDERING,
];

/// Every lint id that may legitimately appear in an allow marker.
const KNOWN_LINTS: &[&str] = &[
    source::lints::WALL_CLOCK,
    source::lints::ENTROPY_RNG,
    source::lints::MACHINE_DEPENDENT,
    source::lints::MISSING_FORBID_UNSAFE,
    source::lints::STD_HASH_COLLECTIONS,
    lints::DETERMINISM_TAINT,
    lints::STALE_ALLOW,
    crate::panic_path::lints::PANIC_PATH,
    crate::panic_path::lints::PARTIAL_OP,
    crate::locks::lints::SHARD_DISCIPLINE,
    crate::locks::lints::NESTED_SHARD_BORROW,
    crate::locks::lints::LOCK_ORDER_INVERSION,
    crate::locks::lints::ATOMIC_ORDERING,
];

/// Does the code on `view.code` still justify an `allow(lint)` marker?
fn marker_is_live(
    lint: &str,
    code: &str,
    file_path: &str,
    line_no: usize,
    tainted_call_lines: &std::collections::BTreeSet<(String, usize)>,
) -> bool {
    match lint {
        l if l == source::lints::WALL_CLOCK
            || l == source::lints::ENTROPY_RNG
            || l == source::lints::MACHINE_DEPENDENT
            || l == source::lints::STD_HASH_COLLECTIONS =>
        {
            source::pattern_classes()
                .iter()
                .find(|(id, _)| *id == l)
                .is_some_and(|(_, pats)| pats.iter().any(|p| code.contains(p)))
        }
        l if l == lints::DETERMINISM_TAINT => {
            tainted_call_lines.contains(&(file_path.to_owned(), line_no))
        }
        l if l == crate::panic_path::lints::PANIC_PATH => [
            "unwrap",
            "expect",
            "panic!",
            "todo!",
            "unimplemented!",
            "unreachable!",
        ]
        .iter()
        .any(|p| code.contains(p)),
        l if l == crate::panic_path::lints::PARTIAL_OP => {
            code.contains('[') || code.contains('/') || code.contains('%')
        }
        l if l == crate::locks::lints::SHARD_DISCIPLINE => code.contains("shards_mut"),
        l if l == crate::locks::lints::NESTED_SHARD_BORROW => code.contains("shard_mut"),
        l if l == crate::locks::lints::LOCK_ORDER_INVERSION => code.contains(".lock"),
        l if l == crate::locks::lints::ATOMIC_ORDERING => code.contains("Ordering::"),
        _ => true,
    }
}

/// Reports `allow(...)` markers that no longer match their line, and markers
/// naming a lint id no pass has ever emitted (typos never waive anything).
fn stale_allows(
    ws: &Workspace,
    graph: &CallGraph,
    tainted: &[Option<TaintCause>],
) -> Vec<Diagnostic> {
    // Call-site lines that actually conduct taint — a marker there is live.
    let mut tainted_call_lines = std::collections::BTreeSet::new();
    for id in 0..graph.fns.len() {
        let file = graph.file(ws, id);
        for call in &graph.calls[id] {
            if tainted[call.callee].is_some() {
                tainted_call_lines.insert((file.path.clone(), call.line));
            }
        }
    }

    let mut diags = Vec::new();
    for file in &ws.files {
        for (idx, view) in file.lines.iter().enumerate() {
            let line_no = idx + 1;
            // A standalone marker line waives the line below it — check the
            // marker against the code it actually applies to.
            let (code_line, code) = if view.code.trim().is_empty() {
                (line_no + 1, file.line(line_no + 1).code.clone())
            } else {
                (line_no, view.code.clone())
            };
            let mut rest = view.comment.as_str();
            while let Some(pos) = rest.find("fg-analyze: allow(") {
                rest = &rest[pos + "fg-analyze: allow(".len()..];
                let Some(close) = rest.find(')') else { break };
                let lint = &rest[..close];
                rest = &rest[close..];
                if !KNOWN_LINTS.contains(&lint) {
                    diags.push(
                        Diagnostic::new(
                            lints::STALE_ALLOW,
                            Severity::Warn,
                            format!("{}:{}", file.path, line_no),
                            format!(
                                "allow marker names unknown lint `{lint}`: \
                                 a typo'd marker waives nothing"
                            ),
                        )
                        .note("marker_lint", lint),
                    );
                } else if LINE_CHECKED.contains(&lint)
                    && !marker_is_live(lint, &code, &file.path, code_line, &tainted_call_lines)
                {
                    diags.push(
                        Diagnostic::new(
                            lints::STALE_ALLOW,
                            Severity::Warn,
                            format!("{}:{}", file.path, line_no),
                            format!(
                                "allow({lint}) marker is dead: the line no longer \
                                 matches what it waives — remove the marker"
                            ),
                        )
                        .note("marker_lint", lint),
                    );
                }
            }
        }
    }
    diags
}

/// The 1-based lines spanned by the token range `body` in `file`, as a
/// half-open range.
fn body_lines(file: &SourceFile, body: std::ops::Range<usize>) -> std::ops::Range<usize> {
    let lines = crate::lexer::LineIndex::new(&file.src);
    if body.is_empty() {
        return 0..0;
    }
    let first = lines.line(file.tokens[body.start].start);
    let last = lines.line(file.tokens[body.end - 1].start);
    first..last + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Workspace;

    fn run_on(sources: Vec<(&str, &str, &str)>) -> Vec<Diagnostic> {
        let ws = Workspace::from_sources(sources);
        let graph = CallGraph::build(&ws);
        run(&ws, &graph)
    }

    #[test]
    fn helper_wrapped_clock_is_flagged_at_the_call_site() {
        let diags = run_on(vec![(
            "detection",
            "crates/detection/src/lib.rs",
            "fn stamp() -> u64 { let t = std::time::Instant::now(); 0 }\n\
             fn score() -> u64 { stamp() }\n",
        )]);
        let taints: Vec<_> = diags
            .iter()
            .filter(|d| d.lint == lints::DETERMINISM_TAINT)
            .collect();
        assert_eq!(taints.len(), 1, "{diags:?}");
        assert!(taints[0].source.ends_with(":2"), "{:?}", taints[0]);
        assert_eq!(taints[0].explanation["root_pattern"], "Instant::now");
    }

    #[test]
    fn taint_crosses_crates_into_exempt_apis() {
        // telemetry may read clocks (exempt from v1), but a sim-path call
        // into that API still carries the taint into the critical crate.
        let diags = run_on(vec![
            (
                "telemetry",
                "crates/telemetry/src/lib.rs",
                "pub fn wall_ms() -> u64 { let t = std::time::SystemTime::now(); 0 }\n",
            ),
            (
                "scenario",
                "crates/scenario/src/lib.rs",
                "fn step() { let _ = fg_telemetry::wall_ms(); }\n",
            ),
        ]);
        let taints: Vec<_> = diags
            .iter()
            .filter(|d| d.lint == lints::DETERMINISM_TAINT)
            .collect();
        assert_eq!(taints.len(), 1, "{diags:?}");
        assert!(taints[0].source.starts_with("crates/scenario/"));
        assert!(taints[0].explanation["root_source"].starts_with("crates/telemetry/"));
    }

    #[test]
    fn sanitizing_markers_stop_propagation_and_waive_sites() {
        // An allow(wall-clock) on the read keeps the helper clean, so
        // callers see no taint at all.
        let clean = run_on(vec![(
            "detection",
            "crates/detection/src/lib.rs",
            "fn stamp() -> u64 { let t = Instant::now(); 0 } // fg-analyze: allow(wall-clock): profiling only\n\
             fn score() -> u64 { stamp() }\n",
        )]);
        assert!(
            clean.iter().all(|d| d.lint != lints::DETERMINISM_TAINT),
            "{clean:?}"
        );

        // An allow(determinism-taint) on the call site waives that edge and
        // stops the flow there.
        let waived = run_on(vec![(
            "detection",
            "crates/detection/src/lib.rs",
            "fn stamp() -> u64 { let t = Instant::now(); 0 }\n\
             fn score() -> u64 { stamp() } // fg-analyze: allow(determinism-taint): telemetry only\n\
             fn outer() -> u64 { score() }\n",
        )]);
        assert!(
            waived.iter().all(|d| d.lint != lints::DETERMINISM_TAINT),
            "sanitized call stops the flow before `outer`:\n{waived:?}"
        );
    }

    #[test]
    fn stale_markers_and_unknown_lints_are_reported() {
        let diags = run_on(vec![(
            "detection",
            "crates/detection/src/lib.rs",
            "fn a() -> u64 { 0 } // fg-analyze: allow(wall-clock): refactored away\n\
             fn b() -> u64 { 0 } // fg-analyze: allow(wall-clocks): typo'd id\n",
        )]);
        let stale: Vec<_> = diags
            .iter()
            .filter(|d| d.lint == lints::STALE_ALLOW)
            .collect();
        assert_eq!(stale.len(), 2, "{diags:?}");
        assert!(stale.iter().any(|d| d.source.ends_with(":1")));
        assert!(stale
            .iter()
            .any(|d| d.message.contains("unknown lint `wall-clocks`")));
    }

    #[test]
    fn live_markers_are_not_stale() {
        let diags = run_on(vec![(
            "scenario",
            "crates/scenario/src/lib.rs",
            "fn stamp() -> u64 { let t = Instant::now(); 0 } // fg-analyze: allow(wall-clock): profiling\n",
        )]);
        assert!(
            diags.iter().all(|d| d.lint != lints::STALE_ALLOW),
            "{diags:?}"
        );
    }
}
