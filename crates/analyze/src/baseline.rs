//! The committed diagnostics baseline and its "no new diagnostics" comparator.
//!
//! `--deny warn` already keeps the workspace free of unwaived warn/deny
//! findings, but Info-level findings (`partial-op`, `nip-cap-friction`) are
//! advisory by design and would be noise as a hard gate. The baseline makes
//! them ratchet instead: `ANALYZE_baseline.json` records how many findings of
//! each lint exist **per file**, and CI fails only when a file gains findings
//! it did not have at the last bless.
//!
//! Entries are keyed on `(lint, file)` with line numbers stripped
//! ([`crate::sarif::split_source`]), so moving code within a file — or an
//! unrelated edit shifting line numbers — never trips the comparator. Counts
//! still do: adding a second `.unwrap()`-adjacent slice index to a file that
//! had one is a new finding, even though the key already existed.
//!
//! Regenerate with `fg-analyze --bless-baseline ANALYZE_baseline.json` after
//! deliberately adding or burning down findings; the comparator also names
//! stale entries (recorded findings that no longer exist) so burn-downs
//! shrink the file rather than fossilise it.

use crate::diag::Diagnostic;
use crate::sarif::split_source;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Current schema version of `ANALYZE_baseline.json`.
pub const VERSION: u32 = 1;

/// One `(lint, file)` bucket and how many findings it held at bless time.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entry {
    /// Stable lint id.
    pub lint: String,
    /// Source file (or logical source), line number stripped.
    pub file: String,
    /// Findings in this bucket at bless time.
    pub count: usize,
}

/// The committed baseline: a sorted list of [`Entry`] buckets.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Baseline {
    /// Schema version (currently [`VERSION`]).
    pub version: u32,
    /// Buckets, sorted by `(lint, file)` for stable diffs.
    pub entries: Vec<Entry>,
}

/// What [`Baseline::compare`] found.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Comparison {
    /// Buckets that grew (or appeared) since the bless — these fail CI.
    pub regressions: Vec<String>,
    /// Buckets that shrank or vanished — advisory, re-bless to shed them.
    pub stale: Vec<String>,
}

fn buckets(diags: &[Diagnostic]) -> BTreeMap<(String, String), usize> {
    let mut map = BTreeMap::new();
    for d in diags {
        let (file, _) = split_source(&d.source);
        *map.entry((d.lint.clone(), file.to_owned())).or_insert(0) += 1;
    }
    map
}

impl Baseline {
    /// Builds a baseline from the current report (every diagnostic, waived
    /// included — a new waived finding is still a new finding).
    pub fn from_diags(diags: &[Diagnostic]) -> Baseline {
        Baseline {
            version: VERSION,
            entries: buckets(diags)
                .into_iter()
                .map(|((lint, file), count)| Entry { lint, file, count })
                .collect(),
        }
    }

    /// Serializes to the committed JSON form (stable ordering).
    pub fn render(&self) -> String {
        let mut text = serde_json::to_string_pretty(self).expect("baseline serializes infallibly");
        text.push('\n');
        text
    }

    /// Parses a committed baseline, rejecting unknown schema versions.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let baseline: Baseline =
            serde_json::from_str(text).map_err(|e| format!("malformed baseline: {e}"))?;
        if baseline.version != VERSION {
            return Err(format!(
                "baseline schema version {} (this binary understands {VERSION})",
                baseline.version
            ));
        }
        Ok(baseline)
    }

    /// Compares the current report against this baseline.
    pub fn compare(&self, diags: &[Diagnostic]) -> Comparison {
        let recorded: BTreeMap<(String, String), usize> = self
            .entries
            .iter()
            .map(|e| ((e.lint.clone(), e.file.clone()), e.count))
            .collect();
        let current = buckets(diags);
        let mut cmp = Comparison::default();
        for ((lint, file), &count) in &current {
            let was = recorded
                .get(&(lint.clone(), file.clone()))
                .copied()
                .unwrap_or(0);
            if count > was {
                cmp.regressions.push(format!(
                    "{lint} in {file}: {count} finding(s), baseline {was}"
                ));
            }
        }
        for ((lint, file), &was) in &recorded {
            let now = current
                .get(&(lint.clone(), file.clone()))
                .copied()
                .unwrap_or(0);
            if now < was {
                cmp.stale.push(format!(
                    "{lint} in {file}: {now} finding(s), baseline {was}"
                ));
            }
        }
        cmp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn d(lint: &str, source: &str) -> Diagnostic {
        Diagnostic::new(lint, Severity::Info, source, "msg")
    }

    #[test]
    fn baseline_round_trips_and_buckets_by_file() {
        let diags = vec![
            d("partial-op", "crates/a/src/x.rs:10"),
            d("partial-op", "crates/a/src/x.rs:99"),
            d("partial-op", "crates/b/src/y.rs:1"),
        ];
        let baseline = Baseline::from_diags(&diags);
        assert_eq!(baseline.entries.len(), 2);
        assert_eq!(baseline.entries[0].count, 2);
        let back = Baseline::parse(&baseline.render()).expect("self-render parses");
        assert_eq!(back, baseline);
    }

    #[test]
    fn line_moves_do_not_regress_but_new_findings_do() {
        let blessed = Baseline::from_diags(&[d("partial-op", "crates/a/src/x.rs:10")]);
        // Same finding on a different line: clean.
        let moved = [d("partial-op", "crates/a/src/x.rs:42")];
        assert_eq!(blessed.compare(&moved), Comparison::default());
        // A second finding in the same file: regression.
        let grown = [
            d("partial-op", "crates/a/src/x.rs:42"),
            d("partial-op", "crates/a/src/x.rs:50"),
        ];
        let cmp = blessed.compare(&grown);
        assert_eq!(cmp.regressions.len(), 1);
        assert!(cmp.regressions[0].contains("2 finding(s), baseline 1"));
        // A new lint in a new file: regression.
        let novel = [
            d("partial-op", "crates/a/src/x.rs:42"),
            d("nested-shard-borrow", "crates/c/src/z.rs:7"),
        ];
        assert_eq!(blessed.compare(&novel).regressions.len(), 1);
    }

    #[test]
    fn burned_down_findings_surface_as_stale() {
        let blessed = Baseline::from_diags(&[
            d("partial-op", "crates/a/src/x.rs:10"),
            d("partial-op", "crates/b/src/y.rs:3"),
        ]);
        let cmp = blessed.compare(&[d("partial-op", "crates/a/src/x.rs:10")]);
        assert!(cmp.regressions.is_empty());
        assert_eq!(cmp.stale.len(), 1);
        assert!(cmp.stale[0].contains("crates/b/src/y.rs"));
    }

    #[test]
    fn unknown_schema_versions_are_rejected() {
        let mut baseline = Baseline::from_diags(&[]);
        baseline.version = 99;
        let err = Baseline::parse(&baseline.render()).unwrap_err();
        assert!(err.contains("99"), "{err}");
    }
}
