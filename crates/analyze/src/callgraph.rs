//! The intra-workspace call-graph approximation the dataflow passes run on.
//!
//! [`Workspace`] loads every `crates/*/src/**/*.rs` file (vendor trees are
//! excluded by design — third-party idiom is not held to workspace
//! contracts), lexes it, extracts items, and pre-computes the per-line
//! code/comment views. [`CallGraph::build`] then links call sites to
//! workspace functions:
//!
//! * `foo(…)` — a free call: candidates are same-crate functions named
//!   `foo`, falling back to the whole workspace (imports are not tracked).
//! * `Type::foo(…)` / `module::foo(…)` — qualified: the last path segment
//!   before the name is matched against impl types, then crate/module
//!   names (`fg_core::hash::trace_id` resolves through the `fg_` alias).
//! * `recv.foo(…)` — a method call: matched against *every* workspace impl
//!   carrying `foo`, except for names on [`METHOD_SKIP`] (std-prelude
//!   collisions like `.get(`/`.push(` that would otherwise wire unrelated
//!   types together).
//!
//! The result over-approximates: edges may exist that no execution takes
//! (two unrelated `decide` methods share a name). The passes that consume
//! it are designed for that bias — taint and panic-surface findings are
//! waivable at the site, and an over-approximate graph errs toward
//! reporting, never toward silence. Macro-generated calls and fn-pointer
//! values (`map(Self::helper)`) are invisible; those are accepted misses,
//! documented in DESIGN.md.

use crate::items::{extract_fns, FnItem};
use crate::lexer::{lex, strip_lines, LineIndex, LineView, TokKind, Token};
use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io;
use std::path::Path;

/// One parsed source file.
pub struct SourceFile {
    /// Crate directory name (`"serve"`, `"core"`, …) or `"vendor"`.
    pub krate: String,
    /// Root-relative path with `/` separators.
    pub path: String,
    /// The file contents.
    pub src: String,
    /// Token stream over `src`.
    pub tokens: Vec<Token>,
    /// Per-line code/comment views (1-based line `n` is `lines[n-1]`).
    pub lines: Vec<LineView>,
    /// Function items found in this file.
    pub fns: Vec<FnItem>,
}

impl SourceFile {
    /// Parses one file from memory.
    pub fn parse(krate: &str, path: &str, src: String) -> SourceFile {
        let tokens = lex(&src);
        let fns = extract_fns(krate, path, &src, &tokens);
        let lines = strip_lines(&src);
        SourceFile {
            krate: krate.to_owned(),
            path: path.to_owned(),
            src,
            tokens,
            lines,
            fns,
        }
    }

    /// The code/comment view of 1-based line `n`.
    pub fn line(&self, n: usize) -> &LineView {
        static EMPTY: LineView = LineView {
            code: String::new(),
            comment: String::new(),
        };
        self.lines.get(n.wrapping_sub(1)).unwrap_or(&EMPTY)
    }

    /// `true` when line `n` is waived for `lint`: the marker sits either in
    /// a trailing comment on the line itself, or alone on the line directly
    /// above it (a standalone marker line carries no code of its own).
    pub fn allows(&self, n: usize, lint: &str) -> bool {
        let marker = format!("fg-analyze: allow({lint})");
        if self.line(n).comment.contains(&marker) {
            return true;
        }
        if n >= 2 {
            let prev = self.line(n - 1);
            return prev.code.trim().is_empty() && prev.comment.contains(&marker);
        }
        false
    }
}

/// The workspace the dataflow passes analyze.
pub struct Workspace {
    /// All parsed files, in path order.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads every workspace crate under `root/crates` (skipping `vendor/`,
    /// which only the line-oriented unsafe-code check visits).
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let dir = root.join("crates");
        let mut crate_dirs: Vec<_> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        let mut files = Vec::new();
        for crate_dir in crate_dirs {
            let krate = crate_dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_owned();
            let src_dir = crate_dir.join("src");
            if !src_dir.is_dir() {
                continue;
            }
            let mut paths = Vec::new();
            collect_rs(&src_dir, &mut paths)?;
            paths.sort();
            for p in paths {
                let rel = p
                    .strip_prefix(root)
                    .unwrap_or(&p)
                    .to_string_lossy()
                    .replace('\\', "/");
                files.push(SourceFile::parse(&krate, &rel, fs::read_to_string(&p)?));
            }
        }
        Ok(Workspace { files })
    }

    /// Builds a workspace from in-memory sources — the fixture entry point
    /// for unit tests: `(crate, path, source)` triples.
    pub fn from_sources(sources: Vec<(&str, &str, &str)>) -> Workspace {
        Workspace {
            files: sources
                .into_iter()
                .map(|(k, p, s)| SourceFile::parse(k, p, s.to_owned()))
                .collect(),
        }
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Method names never linked through bare `.name(` calls: they collide with
/// std/prelude methods on maps, vecs, strings, locks, and iterators, and
/// linking them would wire unrelated types together. Qualified calls
/// (`Type::name(…)`) resolve regardless of this list.
pub const METHOD_SKIP: &[&str] = &[
    "new",
    "default",
    "clone",
    "fmt",
    "from",
    "into",
    "try_into",
    "get",
    "get_mut",
    "insert",
    "remove",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "push",
    "pop",
    "contains",
    "contains_key",
    "entry",
    "next",
    "extend",
    "clear",
    "eq",
    "cmp",
    "partial_cmp",
    "hash",
    "drop",
    "to_string",
    "to_owned",
    "as_str",
    "as_bytes",
    "parse",
    "lock",
    "read",
    "write",
    "flush",
    "send",
    "recv",
    "join",
    "map",
    "filter",
    "find",
    "position",
    "sort",
    "sort_by",
    "first",
    "last",
    "split",
    "trim",
    "min",
    "max",
    "abs",
    "floor",
    "ceil",
    "keys",
    "values",
    "start",
    "end",
    // Workspace-internal collisions: `record` (velocity counters vs the
    // serve circuit breaker) and `try_acquire` (limiter shards vs the same
    // breaker) would wire every detection/mitigation hot path to the
    // wall-clock-reading breaker convenience methods.
    "record",
    "try_acquire",
];

/// A call site inside some function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Index of the called function in [`CallGraph::fns`].
    pub callee: usize,
    /// 1-based line of the call.
    pub line: usize,
}

/// The resolved call graph: one node per non-test workspace function.
pub struct CallGraph {
    /// Node table; indices are stable handles.
    pub fns: Vec<NodeRef>,
    /// Outgoing resolved call edges per node.
    pub calls: Vec<Vec<CallSite>>,
    by_path: HashMap<String, usize>,
}

/// A node's identity: which file and which item within it.
#[derive(Clone, Copy, Debug)]
pub struct NodeRef {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Index into that file's [`SourceFile::fns`].
    pub item: usize,
}

impl CallGraph {
    /// Builds the graph over every non-test function in `ws`.
    pub fn build(ws: &Workspace) -> CallGraph {
        let mut fns = Vec::new();
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_type_method: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        let mut by_crate_name: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        let mut by_path: HashMap<String, usize> = HashMap::new();
        for (fi, file) in ws.files.iter().enumerate() {
            for (ii, item) in file.fns.iter().enumerate() {
                if item.is_test {
                    continue;
                }
                let id = fns.len();
                fns.push(NodeRef { file: fi, item: ii });
                by_name.entry(&item.name).or_default().push(id);
                by_crate_name
                    .entry((&file.krate, &item.name))
                    .or_default()
                    .push(id);
                if let Some(ty) = &item.impl_type {
                    by_type_method.entry((ty, &item.name)).or_default().push(id);
                }
                by_path.insert(item.path.clone(), id);
            }
        }

        let mut calls: Vec<Vec<CallSite>> = vec![Vec::new(); fns.len()];
        for (id, node) in fns.iter().enumerate() {
            let file = &ws.files[node.file];
            let item = &file.fns[node.item];
            let nested: Vec<std::ops::Range<usize>> = file
                .fns
                .iter()
                .enumerate()
                .filter(|(k, f)| {
                    *k != node.item && f.body.start > item.body.start && f.body.end <= item.body.end
                })
                .map(|(_, f)| f.body.clone())
                .collect();
            for site in extract_calls(file, item.body.clone(), &nested) {
                let candidates =
                    resolve(&site, file, item, &by_name, &by_type_method, &by_crate_name);
                for callee in candidates {
                    if callee != id {
                        calls[id].push(CallSite {
                            callee,
                            line: site.line,
                        });
                    }
                }
            }
            calls[id].sort_by_key(|c| (c.line, c.callee));
            calls[id].dedup();
        }
        CallGraph {
            fns,
            calls,
            by_path,
        }
    }

    /// Finds the node whose crate-qualified path ends with `suffix`
    /// (full-segment match: `server::handle_connection` matches
    /// `serve::server::handle_connection` but not `…::mishandle_connection`).
    pub fn find(&self, ws: &Workspace, suffix: &str) -> Option<usize> {
        if let Some(&id) = self.by_path.get(suffix) {
            return Some(id);
        }
        (0..self.fns.len()).find(|&id| {
            let path = &self.item(ws, id).path;
            path.ends_with(suffix) && path[..path.len() - suffix.len()].ends_with("::")
        })
    }

    /// The item behind node `id`.
    pub fn item<'w>(&self, ws: &'w Workspace, id: usize) -> &'w FnItem {
        let node = self.fns[id];
        &ws.files[node.file].fns[node.item]
    }

    /// The file behind node `id`.
    pub fn file<'w>(&self, ws: &'w Workspace, id: usize) -> &'w SourceFile {
        &ws.files[self.fns[id].file]
    }

    /// Breadth-first reachability from `entries`; returns, per reached node,
    /// the predecessor edge used to reach it (for witness chains).
    pub fn reachable(&self, entries: &[usize]) -> HashMap<usize, Option<usize>> {
        let mut seen: HashMap<usize, Option<usize>> = HashMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &e in entries {
            if let std::collections::hash_map::Entry::Vacant(slot) = seen.entry(e) {
                slot.insert(None);
                queue.push_back(e);
            }
        }
        while let Some(id) = queue.pop_front() {
            for call in &self.calls[id] {
                if let std::collections::hash_map::Entry::Vacant(slot) = seen.entry(call.callee) {
                    slot.insert(Some(id));
                    queue.push_back(call.callee);
                }
            }
        }
        seen
    }

    /// Renders the witness chain `entry → … → id` using the predecessor map
    /// from [`CallGraph::reachable`].
    pub fn chain(
        &self,
        ws: &Workspace,
        preds: &HashMap<usize, Option<usize>>,
        id: usize,
    ) -> String {
        let mut parts = vec![self.item(ws, id).path.clone()];
        let mut cur = id;
        while let Some(Some(prev)) = preds.get(&cur) {
            parts.push(self.item(ws, *prev).path.clone());
            cur = *prev;
        }
        parts.reverse();
        parts.join(" → ")
    }

    /// A deterministic textual dump of every edge, for snapshot tests.
    pub fn snapshot(&self, ws: &Workspace) -> String {
        let mut out = String::new();
        let mut rows: Vec<String> = Vec::new();
        for id in 0..self.fns.len() {
            for call in &self.calls[id] {
                rows.push(format!(
                    "{} -> {}",
                    self.item(ws, id).path,
                    self.item(ws, call.callee).path
                ));
            }
        }
        rows.sort();
        rows.dedup();
        for row in rows {
            out.push_str(&row);
            out.push('\n');
        }
        out
    }
}

/// An unresolved call reference found in a body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawCall {
    /// Path segments before the name (`["fg_core", "hash"]`), empty for
    /// free and method calls.
    pub segments: Vec<String>,
    /// The called name.
    pub name: String,
    /// `true` for `.name(…)` method syntax.
    pub is_method: bool,
    /// 1-based line of the call.
    pub line: usize,
}

/// Extracts raw call references from the token range `body`, skipping the
/// `nested` sub-ranges (bodies of nested fn items).
pub fn extract_calls(
    file: &SourceFile,
    body: std::ops::Range<usize>,
    nested: &[std::ops::Range<usize>],
) -> Vec<RawCall> {
    let lines = LineIndex::new(&file.src);
    let toks = &file.tokens;
    // Significant tokens within the body, outside nested fn bodies.
    let idx: Vec<usize> = body
        .clone()
        .filter(|i| {
            !matches!(
                toks[*i].kind,
                TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
            ) && !nested.iter().any(|r| r.contains(i))
        })
        .collect();
    let text = |k: usize| toks[idx[k]].text(&file.src);
    let mut out = Vec::new();
    for k in 0..idx.len() {
        if toks[idx[k]].kind != TokKind::Ident {
            continue;
        }
        // Must be directly followed by `(` — and not `!` (macro).
        if k + 1 >= idx.len() || text(k + 1) != "(" {
            continue;
        }
        let name = text(k).to_owned();
        if matches!(
            name.as_str(),
            "if" | "while" | "match" | "for" | "return" | "fn"
        ) {
            continue;
        }
        // Walk backwards: `.` → method; `::`-joined idents → path.
        let prev = k.checked_sub(1).map(text);
        if prev == Some(".") {
            out.push(RawCall {
                segments: Vec::new(),
                name,
                is_method: true,
                line: lines.line(toks[idx[k]].start),
            });
            continue;
        }
        let mut segments: Vec<String> = Vec::new();
        let mut j = k;
        while j >= 2 && text(j - 1) == ":" && text(j - 2) == ":" {
            // Skip a possible turbofish `::<…>` — the segment before `::<`
            // is not an ident, so resolution simply stops there.
            if j >= 3 && toks[idx[j - 3]].kind == TokKind::Ident {
                segments.push(text(j - 3).to_owned());
                j -= 3;
            } else {
                break;
            }
        }
        segments.reverse();
        out.push(RawCall {
            segments,
            name,
            is_method: false,
            line: lines.line(toks[idx[k]].start),
        });
    }
    out
}

/// Maps a `fg_xxx` path segment to the crate directory name (`xxx`).
fn crate_alias(segment: &str) -> Option<&str> {
    segment.strip_prefix("fg_")
}

fn resolve(
    site: &RawCall,
    file: &SourceFile,
    caller: &FnItem,
    by_name: &HashMap<&str, Vec<usize>>,
    by_type_method: &HashMap<(&str, &str), Vec<usize>>,
    by_crate_name: &HashMap<(&str, &str), Vec<usize>>,
) -> Vec<usize> {
    let name = site.name.as_str();
    if site.is_method {
        if METHOD_SKIP.contains(&name) {
            return Vec::new();
        }
        // All workspace impls carrying this method (over-approximation).
        return by_type_method
            .iter()
            .filter(|((_, m), _)| *m == name)
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect();
    }
    if let Some(last) = site.segments.last() {
        let seg = last.as_str();
        // `Self::helper(…)` — the caller's own impl type.
        if seg == "Self" {
            if let Some(ty) = &caller.impl_type {
                if let Some(ids) = by_type_method.get(&(ty.as_str(), name)) {
                    return ids.clone();
                }
            }
            return Vec::new();
        }
        // `Type::method(…)` — a type segment starts uppercase.
        if seg.chars().next().is_some_and(char::is_uppercase) {
            return by_type_method
                .get(&(seg, name))
                .cloned()
                .unwrap_or_default();
        }
        // `fg_other::module::f(…)` — cross-crate module call.
        if let Some(krate) = site.segments.iter().find_map(|s| crate_alias(s)) {
            return by_crate_name
                .get(&(krate, name))
                .cloned()
                .unwrap_or_default();
        }
        // `self::f` / `crate::m::f` / `module::f` — same crate.
        return by_crate_name
            .get(&(file.krate.as_str(), name))
            .cloned()
            .unwrap_or_default();
    }
    // Free call: prefer same-crate, fall back to the whole workspace.
    if let Some(ids) = by_crate_name.get(&(file.krate.as_str(), name)) {
        return ids.clone();
    }
    by_name.get(name).cloned().unwrap_or_default()
}

/// Deterministically ordered `(path → path)` edge list for one crate, used
/// by the fixture snapshot test.
pub fn crate_edges(
    ws: &Workspace,
    graph: &CallGraph,
    krate: &str,
) -> BTreeMap<String, Vec<String>> {
    let mut out: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for id in 0..graph.fns.len() {
        let item = graph.item(ws, id);
        if item.krate != krate {
            continue;
        }
        let mut callees: Vec<String> = graph.calls[id]
            .iter()
            .map(|c| graph.item(ws, c.callee).path.clone())
            .collect();
        callees.sort();
        callees.dedup();
        out.insert(item.path.clone(), callees);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        Workspace::from_sources(vec![("demo", "crates/demo/src/lib.rs", src)])
    }

    #[test]
    fn free_calls_resolve_within_the_crate() {
        let w = ws("fn a() { b(); }\nfn b() {}\n");
        let g = CallGraph::build(&w);
        let a = g.find(&w, "demo::a").unwrap();
        let b = g.find(&w, "demo::b").unwrap();
        assert_eq!(g.calls[a], vec![CallSite { callee: b, line: 1 }]);
    }

    #[test]
    fn qualified_and_self_calls_resolve_to_impl_methods() {
        let w = ws("struct S;\n\
                    impl S {\n\
                        fn run(&self) { S::helper(); Self::helper(); }\n\
                        fn helper() {}\n\
                    }\n");
        let g = CallGraph::build(&w);
        let run = g.find(&w, "S::run").unwrap();
        let helper = g.find(&w, "S::helper").unwrap();
        assert_eq!(
            g.calls[run],
            vec![CallSite {
                callee: helper,
                line: 3
            }],
            "both spellings deduplicate to one edge"
        );
    }

    #[test]
    fn method_calls_overapproximate_but_skip_std_collisions() {
        let w = ws("struct A; struct B;\n\
                    impl A { fn score(&self) -> u8 { 1 } }\n\
                    impl B { fn score(&self) -> u8 { 2 } }\n\
                    fn f(x: &A) -> u8 { x.score() }\n\
                    fn g(v: &Vec<u8>) -> usize { v.len() }\n");
        let g = CallGraph::build(&w);
        let f = g.find(&w, "demo::f").unwrap();
        assert_eq!(g.calls[f].len(), 2, "links to every `score` impl");
        let gg = g.find(&w, "demo::g").unwrap();
        assert!(
            g.calls[gg].is_empty(),
            "`.len()` is a std collision, skipped"
        );
    }

    #[test]
    fn cross_crate_calls_resolve_through_the_fg_alias() {
        let w = Workspace::from_sources(vec![
            (
                "core",
                "crates/core/src/lib.rs",
                "pub fn trace_id() -> u64 { 7 }",
            ),
            (
                "serve",
                "crates/serve/src/lib.rs",
                "fn handler() { let _ = fg_core::trace_id(); }",
            ),
        ]);
        let g = CallGraph::build(&w);
        let h = g.find(&w, "serve::handler").unwrap();
        let t = g.find(&w, "core::trace_id").unwrap();
        assert_eq!(g.calls[h], vec![CallSite { callee: t, line: 1 }]);
    }

    #[test]
    fn reachability_reports_witness_chains() {
        let w = ws("fn entry() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() {}\n");
        let g = CallGraph::build(&w);
        let entry = g.find(&w, "demo::entry").unwrap();
        let leaf = g.find(&w, "demo::leaf").unwrap();
        let island = g.find(&w, "demo::island").unwrap();
        let preds = g.reachable(&[entry]);
        assert!(preds.contains_key(&leaf));
        assert!(!preds.contains_key(&island));
        assert_eq!(
            g.chain(&w, &preds, leaf),
            "demo::entry → demo::mid → demo::leaf"
        );
    }

    #[test]
    fn test_code_is_not_in_the_graph() {
        let w = ws("fn real() {}\n#[cfg(test)]\nmod tests { fn t() { super::real(); } }\n");
        let g = CallGraph::build(&w);
        assert!(g.find(&w, "tests::t").is_none());
        assert_eq!(g.fns.len(), 1);
    }

    #[test]
    fn macro_invocations_are_not_calls() {
        let w = ws("fn f() { println!(\"x\"); vec![1]; }\nfn println() {}\n");
        let g = CallGraph::build(&w);
        let f = g.find(&w, "demo::f").unwrap();
        assert!(g.calls[f].is_empty(), "{:?}", g.calls[f]);
    }
}
