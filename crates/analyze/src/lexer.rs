//! A small Rust lexer for the dataflow passes.
//!
//! The v1 source pass stripped comments and strings with a per-line
//! heuristic that was blind to raw strings (`r#"…"#`) and fragile around
//! nested block comments spanning odd boundaries. Everything in `fg-analyze`
//! v2 — the item extractor, the call graph, and the line-oriented pattern
//! scanner — now sits on this tokenizer instead.
//!
//! Design constraints:
//!
//! * **Total.** Any `&str` lexes without panicking; malformed input degrades
//!   to `Punct`/unterminated-literal tokens, never an error (property-tested
//!   in `tests/lexer_proptest.rs`).
//! * **Tiling.** Token spans partition the input exactly: concatenating
//!   `&src[t.start..t.end]` over all tokens reproduces the source
//!   byte-for-byte. Line/column mapping is therefore exact.
//! * **Faithful where it matters.** Nested block comments, raw (byte)
//!   strings with any `#` count, raw identifiers, byte/char literals,
//!   lifetimes vs chars, and float-vs-range (`1.5` vs `1..2`) are
//!   distinguished; operator gluing is not (multi-char operators come out
//!   as adjacent `Punct` tokens, which the consumers re-associate).

use std::ops::Range;

/// What a token is. Coarse on purpose: the passes match identifier text and
/// structure, not expression grammar.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (including raw `r#ident`).
    Ident,
    /// A lifetime (`'a`, `'static`), including the quote.
    Lifetime,
    /// Any string-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// A char or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A numeric literal (integer or float, any base, with suffix).
    Num,
    /// A single non-whitespace symbol (`{`, `:`, `+`, …).
    Punct,
    /// `// …` to end of line (newline excluded).
    LineComment,
    /// `/* … */`, nesting-aware; unterminated runs to end of input.
    BlockComment,
    /// A run of whitespace (kept so spans tile the input).
    Whitespace,
}

/// One token: a kind and a byte span into the lexed source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// What kind of token.
    pub kind: TokKind,
    /// Starting byte offset (inclusive).
    pub start: usize,
    /// Ending byte offset (exclusive).
    pub end: usize,
}

impl Token {
    /// The token's text within `src` (the same string passed to [`lex`]).
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    /// The byte span as a range.
    pub fn span(&self) -> Range<usize> {
        self.start..self.end
    }
}

/// Tokenizes `src` completely. Never fails; see module docs for guarantees.
pub fn lex(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::with_capacity(src.len() / 4 + 8);
    let mut i = 0usize;
    while i < bytes.len() {
        let start = i;
        let b = bytes[i];
        let kind = if b.is_ascii_whitespace() {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            TokKind::Whitespace
        } else if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            TokKind::LineComment
        } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            i += 2;
            let mut depth = 1usize;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i = next_char_boundary(src, i);
                }
            }
            TokKind::BlockComment
        } else if b == b'r' || b == b'b' {
            // Raw strings, byte strings, byte chars, raw identifiers — or a
            // plain identifier starting with r/b.
            if let Some(end) = raw_or_byte_literal(src, i) {
                i = end.0;
                end.1
            } else {
                i = ident_end(src, i);
                TokKind::Ident
            }
        } else if b == b'"' {
            i = string_end(src, i + 1, b'"');
            TokKind::Str
        } else if b == b'\'' {
            let (end, kind) = quote_token(src, i);
            i = end;
            kind
        } else if b.is_ascii_digit() {
            i = number_end(src, i);
            TokKind::Num
        } else if is_ident_start(src, i) {
            i = ident_end(src, i);
            TokKind::Ident
        } else {
            i = next_char_boundary(src, i);
            TokKind::Punct
        };
        tokens.push(Token {
            kind,
            start,
            end: i,
        });
    }
    tokens
}

fn next_char_boundary(src: &str, i: usize) -> usize {
    if i >= src.len() {
        return src.len();
    }
    let mut j = i + 1;
    while j < src.len() && !src.is_char_boundary(j) {
        j += 1;
    }
    j
}

fn is_ident_start(src: &str, i: usize) -> bool {
    src[i..]
        .chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
}

fn is_ident_continue(src: &str, i: usize) -> bool {
    src[i..]
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

fn ident_end(src: &str, mut i: usize) -> usize {
    i = next_char_boundary(src, i);
    while i < src.len() && is_ident_continue(src, i) {
        i = next_char_boundary(src, i);
    }
    i
}

/// Scans past a `"`-style body starting *after* the opening quote, honouring
/// backslash escapes; unterminated runs to end of input. Returns the offset
/// just past the closing quote.
fn string_end(src: &str, mut i: usize, quote: u8) -> usize {
    let bytes = src.as_bytes();
    while i < bytes.len() {
        if bytes[i] == b'\\' {
            // Skip the backslash and the escaped character after it.
            i = next_char_boundary(src, i + 1);
            continue;
        }
        if bytes[i] == quote {
            return i + 1;
        }
        i = next_char_boundary(src, i);
    }
    i
}

/// Attempts `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`, or a raw identifier
/// at `i` (which points at `r` or `b`). Returns `(end, kind)` on a match,
/// `None` when the text is just an ordinary identifier.
fn raw_or_byte_literal(src: &str, i: usize) -> Option<(usize, TokKind)> {
    let bytes = src.as_bytes();
    let mut j = i + 1;
    let mut saw_r = bytes[i] == b'r';
    if bytes[i] == b'b' {
        match bytes.get(j) {
            Some(&b'\'') => {
                // Byte char b'x'.
                let (end, _) = quote_token(src, j);
                return Some((end, TokKind::Char));
            }
            Some(&b'"') => return Some((string_end(src, j + 1, b'"'), TokKind::Str)),
            Some(&b'r') => {
                saw_r = true;
                j += 1;
            }
            _ => return None,
        }
    }
    if !saw_r {
        return None;
    }
    // At this point src[..j] is `r` or `br`; a raw string needs `#* "`.
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    match bytes.get(j) {
        Some(&b'"') => {
            // Raw string: no escapes; terminated by `"` + `hashes` hashes.
            j += 1;
            while j < bytes.len() {
                if bytes[j] == b'"'
                    && bytes[j + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&b| b == b'#')
                        .count()
                        == hashes
                {
                    return Some((j + 1 + hashes, TokKind::Str));
                }
                j = next_char_boundary(src, j);
            }
            Some((j, TokKind::Str)) // unterminated
        }
        _ if hashes == 1 && j < src.len() && is_ident_start(src, j) => {
            // Raw identifier r#ident.
            Some((ident_end(src, j), TokKind::Ident))
        }
        _ => None,
    }
}

/// Disambiguates `'` at `i`: char literal (`'x'`, `'\n'`, `'\u{7ff}'`),
/// lifetime (`'a`, `'_`), or a lone `Punct`.
fn quote_token(src: &str, i: usize) -> (usize, TokKind) {
    let bytes = src.as_bytes();
    match bytes.get(i + 1) {
        Some(&b'\\') => (string_end(src, i + 1, b'\''), TokKind::Char),
        Some(_)
            if {
                // 'x' — any single char directly followed by a closing quote.
                let after = next_char_boundary(src, i + 1);
                bytes.get(i + 1) != Some(&b'\'') && bytes.get(after) == Some(&b'\'')
            } =>
        {
            let after = next_char_boundary(src, i + 1);
            (after + 1, TokKind::Char)
        }
        Some(_) if is_ident_start(src, i + 1) => (ident_end(src, i + 1), TokKind::Lifetime),
        _ => (i + 1, TokKind::Punct),
    }
}

fn number_end(src: &str, mut i: usize) -> usize {
    let bytes = src.as_bytes();
    // Leading digit run, including base prefixes, underscores, and suffixes
    // (`0xff_u64`); alphanumerics cover `e`/`E` exponents without a sign.
    i = ident_end(src, i);
    // Fractional part: only when `.` is followed by a digit (so `1..2` and
    // `x.method()` stay out of the number).
    if bytes.get(i) == Some(&b'.') && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
        i = ident_end(src, i + 1);
    }
    // Signed exponent: `1.5e-3` — the run above stopped at the sign.
    if matches!(bytes.get(i), Some(&b'+') | Some(&b'-'))
        && i > 0
        && matches!(bytes.get(i - 1), Some(&b'e') | Some(&b'E'))
        && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
    {
        i = ident_end(src, i + 1);
    }
    i
}

/// One source line, split into its code and comment parts with literal
/// contents blanked — the view the pattern lints match against.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LineView {
    /// Code with string/char contents removed (quotes kept) and comments
    /// stripped.
    pub code: String,
    /// Comment text on this line (both `//` and `/* */` bodies), where the
    /// inline `fg-analyze: allow(…)` waiver grammar lives. Doc comments
    /// (`///`, `//!`, `/**`, `/*!`) are excluded: documentation *describing*
    /// the waiver grammar must never act as a waiver.
    pub comment: String,
}

/// Splits `src` into per-line [`LineView`]s using the lexer — the
/// raw-string- and nested-comment-correct replacement for the v1 per-line
/// stripper.
pub fn strip_lines(src: &str) -> Vec<LineView> {
    let n_lines = src.lines().count().max(1);
    let mut lines: Vec<LineView> = vec![LineView::default(); n_lines];
    let mut line = 0usize;
    for tok in lex(src) {
        let text = tok.text(src);
        let is_doc = matches!(tok.kind, TokKind::LineComment | TokKind::BlockComment)
            && (text.starts_with("///") && !text.starts_with("////")
                || text.starts_with("//!")
                || text.starts_with("/**") && !text.starts_with("/***") && text != "/**/"
                || text.starts_with("/*!"));
        for (k, piece) in text.split('\n').enumerate() {
            if k > 0 {
                line += 1;
            }
            if piece.is_empty() {
                continue;
            }
            let view = &mut lines[line.min(n_lines - 1)];
            match tok.kind {
                TokKind::LineComment | TokKind::BlockComment if is_doc => {}
                TokKind::LineComment | TokKind::BlockComment => view.comment.push_str(piece),
                TokKind::Str | TokKind::Char => {
                    // Keep the delimiters so e.g. `"` counts as code, but
                    // blank the contents so prose never matches a pattern.
                    if k == 0 {
                        view.code.push(piece.chars().next().unwrap_or('"'));
                    }
                    if tok.kind == TokKind::Str
                        && k == text.split('\n').count() - 1
                        && piece.len() > usize::from(k == 0)
                    {
                        view.code.push('"');
                    }
                }
                _ => view.code.push_str(piece),
            }
        }
    }
    lines
}

/// Maps byte offsets to 1-based line numbers.
pub struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    /// Builds the index for `src`.
    pub fn new(src: &str) -> Self {
        let mut starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    /// 1-based line containing byte `offset`.
    pub fn line(&self, offset: usize) -> usize {
        match self.starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Whitespace)
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    fn tiles(src: &str) -> bool {
        let mut rebuilt = String::new();
        for t in lex(src) {
            rebuilt.push_str(t.text(src));
        }
        rebuilt == src
    }

    #[test]
    fn tokens_tile_ordinary_code() {
        let src = "fn main() { let x = 1 + 2; }\n";
        assert!(tiles(src));
        assert_eq!(kinds(src)[0], (TokKind::Ident, "fn"));
    }

    #[test]
    fn raw_strings_lex_as_one_literal() {
        for src in [
            r##"let s = r"Instant::now";"##,
            r###"let s = r#"thread_rng " inside"#;"###,
            r####"let s = r##"nested "# still inside"##;"####,
            r###"let b = br#"bytes"#;"###,
        ] {
            assert!(tiles(src), "{src}");
            assert!(
                kinds(src).iter().any(|(k, _)| *k == TokKind::Str),
                "{src}: {:?}",
                kinds(src)
            );
            // Nothing inside the raw string leaks out as an identifier.
            assert!(
                !kinds(src)
                    .iter()
                    .any(|(k, t)| *k == TokKind::Ident && (*t == "Instant" || *t == "thread_rng")),
                "{src}"
            );
        }
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let src = "let r#type = 1;";
        assert!(tiles(src));
        assert!(kinds(src).contains(&(TokKind::Ident, "r#type")));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* outer /* inner */ still comment */ let x = 1;";
        assert!(tiles(src));
        let ks = kinds(src);
        assert_eq!(ks[0].0, TokKind::BlockComment);
        assert!(ks[0].1.ends_with("comment */"), "{:?}", ks[0].1);
        assert!(ks.contains(&(TokKind::Ident, "let")));
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let src = "fn f<'a>(x: &'a str) -> char { let q = '\"'; let n = '\\n'; 'x' }";
        assert!(tiles(src));
        let ks = kinds(src);
        assert!(ks.contains(&(TokKind::Lifetime, "'a")));
        assert!(ks.contains(&(TokKind::Char, "'\"'")));
        assert!(ks.contains(&(TokKind::Char, "'\\n'")));
        assert!(ks.contains(&(TokKind::Char, "'x'")));
    }

    #[test]
    fn numbers_cover_floats_ranges_and_suffixes() {
        let src = "let a = 1.5e-3; let b = 0xff_u64; for i in 1..20 {}";
        assert!(tiles(src));
        let ks = kinds(src);
        assert!(ks.contains(&(TokKind::Num, "1.5e-3")), "{ks:?}");
        assert!(ks.contains(&(TokKind::Num, "0xff_u64")));
        assert!(ks.contains(&(TokKind::Num, "1")));
        assert!(ks.contains(&(TokKind::Num, "20")));
    }

    #[test]
    fn unterminated_literals_never_panic() {
        for src in ["let s = \"open", "let s = r#\"open", "/* open", "let c = '"] {
            assert!(tiles(src), "{src}");
        }
    }

    #[test]
    fn strip_lines_blanks_strings_and_collects_comments() {
        let src = "let s = \"Instant::now\"; // fg-analyze: allow(wall-clock): x\n\
                   let t = r#\"thread_rng\"#;\n\
                   /* SystemTime in\n   a block */ let u = 1;\n";
        let lines = strip_lines(src);
        assert!(!lines[0].code.contains("Instant"));
        assert!(lines[0].comment.contains("allow(wall-clock)"));
        assert!(!lines[1].code.contains("thread_rng"));
        assert!(lines[2].comment.contains("SystemTime"));
        assert!(!lines[3].code.contains("SystemTime"));
        assert!(lines[3].code.contains("let u = 1;"));
    }

    #[test]
    fn line_index_maps_offsets() {
        let idx = LineIndex::new("ab\ncd\nef");
        assert_eq!(idx.line(0), 1);
        assert_eq!(idx.line(2), 1);
        assert_eq!(idx.line(3), 2);
        assert_eq!(idx.line(7), 3);
    }
}
